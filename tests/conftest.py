"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding import THREE_BIT_CODE
from repro.local import ONE_D_DATA_POSITIONS


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator per test."""
    return np.random.default_rng(12345)


def embed_codeword(codeword, data_wires, n_wires: int = 9) -> tuple[int, ...]:
    """Place a codeword on selected wires, zeros elsewhere."""
    state = [0] * n_wires
    for wire, bit in zip(data_wires, codeword):
        state[wire] = bit
    return tuple(state)


def embed_standard(codeword) -> tuple[int, ...]:
    """Codeword on wires 0,1,2 of the standard Figure-2 layout."""
    return tuple(codeword) + (0,) * 6


def embed_one_d(codeword) -> tuple[int, ...]:
    """Codeword on the 1D line's data positions 0, 3, 6."""
    return embed_codeword(codeword, ONE_D_DATA_POSITIONS)


def all_corrupted_codewords():
    """Every codeword with zero or one bit flipped, with its logical."""
    cases = []
    for logical in (0, 1):
        codeword = THREE_BIT_CODE.encode(logical)
        cases.append((logical, codeword))
        for position in range(3):
            cases.append((logical, THREE_BIT_CODE.corrupt(codeword, [position])))
    return cases
