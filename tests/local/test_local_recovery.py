"""Exhaustive tests for the 1D (Figure 7) and 2D (Figure 4) recovery."""

from __future__ import annotations

import pytest

from repro.coding.repetition import THREE_BIT_CODE
from repro.core.simulator import run
from repro.core.circuit import Circuit
from repro.local.lattice import circuit_is_local
from repro.local.local_recovery import (
    ONE_D_DATA_POSITIONS,
    STANDARD_TILE_ORIENTATION,
    TileOrientation,
    TileRecovery,
    one_d_census,
    one_d_lattice,
    one_d_recovery_circuit,
    one_d_routing_ops,
    two_d_lattice,
    two_d_recovery_circuit,
)
from repro.noise.injector import iter_single_faults, run_with_faults
from repro.errors import CodingError, LocalityError

from tests.conftest import all_corrupted_codewords, embed_codeword, embed_one_d


class TestOneDStructure:
    def test_locality_over_multiple_cycles(self):
        assert circuit_is_local(one_d_recovery_circuit(4), one_d_lattice())

    def test_census_matches_paper_gate_count(self):
        census = one_d_census(include_resets=True)
        assert census["MAJ"] == 3 and census["MAJ⁻¹"] == 3
        assert census["SWAP3_UP"] == 4
        assert census["SWAP"] == 1
        assert census["RESET"] == 3  # three local 2-bit resets
        assert census["paper_accounting"] == 13

    def test_gates_excluding_init_is_eleven(self):
        circuit = one_d_recovery_circuit(1)
        assert circuit.gate_count(include_resets=False) == 11

    def test_without_resets(self):
        census = one_d_census(include_resets=False)
        assert "RESET" not in census
        assert census["paper_accounting"] == 11

    def test_routing_is_four_swap3_plus_one_swap(self):
        kinds = [op.kind for op in one_d_routing_ops()]
        assert kinds.count("SWAP") == 1
        assert sum(1 for kind in kinds if kind.startswith("SWAP3")) == 4

    def test_wrong_width_rejected(self):
        from repro.local.local_recovery import append_one_d_recovery

        with pytest.raises(CodingError):
            append_one_d_recovery(Circuit(8))

    def test_negative_cycles_rejected(self):
        with pytest.raises(CodingError):
            one_d_recovery_circuit(-1)


class TestOneDSemantics:
    @pytest.mark.parametrize("logical,word", all_corrupted_codewords())
    def test_corrects_all_single_errors(self, logical, word):
        circuit = one_d_recovery_circuit(1)
        output = run(circuit, embed_one_d(word))
        recovered = tuple(output[p] for p in ONE_D_DATA_POSITIONS)
        assert recovered == THREE_BIT_CODE.encode(logical)

    def test_data_returns_to_same_positions(self):
        # Unlike the non-local circuit, the 1D cycle ends with the
        # codeword back on positions 0, 3, 6 — cycles chain directly.
        circuit = one_d_recovery_circuit(3)
        output = run(circuit, embed_one_d((1, 1, 1)))
        assert tuple(output[p] for p in ONE_D_DATA_POSITIONS) == (1, 1, 1)

    def test_single_fault_leaves_at_most_one_error(self):
        circuit = one_d_recovery_circuit(1)
        for logical in (0, 1):
            codeword = THREE_BIT_CODE.encode(logical)
            for fault in iter_single_faults(circuit):
                output = run_with_faults(circuit, embed_one_d(codeword), [fault])
                recovered = tuple(output[p] for p in ONE_D_DATA_POSITIONS)
                assert THREE_BIT_CODE.errors_in(recovered, logical) <= 1

    def test_fault_then_clean_cycle_restores(self):
        two_cycles = one_d_recovery_circuit(2)
        one_cycle = one_d_recovery_circuit(1)
        for logical in (0, 1):
            codeword = THREE_BIT_CODE.encode(logical)
            for fault in iter_single_faults(one_cycle):
                output = run_with_faults(two_cycles, embed_one_d(codeword), [fault])
                recovered = tuple(output[p] for p in ONE_D_DATA_POSITIONS)
                assert recovered == codeword


class TestTileOrientation:
    def test_data_cells_column(self):
        cells = TileOrientation("col", 1).data_cells()
        assert cells == ((0, 1), (1, 1), (2, 1))

    def test_data_cells_row(self):
        cells = TileOrientation("row", 2).data_cells()
        assert cells == ((2, 0), (2, 1), (2, 2))

    def test_validation(self):
        with pytest.raises(LocalityError):
            TileOrientation("diag", 0)
        with pytest.raises(LocalityError):
            TileOrientation("row", 3)


class TestTwoDStructure:
    def test_locality_over_multiple_cycles(self):
        circuit, _ = two_d_recovery_circuit(5)
        assert circuit_is_local(circuit, two_d_lattice())

    def test_cycle_ops_match_nonlocal_count(self):
        circuit, _ = two_d_recovery_circuit(1)
        assert len(circuit) == 8
        counts = circuit.count_ops()
        assert counts == {"RESET": 2, "MAJ⁻¹": 3, "MAJ": 3}

    def test_orientation_alternates(self):
        tracker = TileRecovery()
        assert tracker.orientation == STANDARD_TILE_ORIENTATION
        circuit = Circuit(9)
        tracker.append_cycle(circuit)
        assert tracker.orientation.axis == "row"
        tracker.append_cycle(circuit)
        assert tracker.orientation.axis == "col"


class TestTwoDSemantics:
    @pytest.mark.parametrize("logical,word", all_corrupted_codewords())
    def test_corrects_all_single_errors(self, logical, word):
        circuit, tracker = two_d_recovery_circuit(1)
        start = (1, 4, 7)  # column 1 on the row-major 3x3 grid
        output = run(circuit, embed_codeword(word, start))
        recovered = tuple(output[w] for w in tracker.data_wires())
        assert recovered == THREE_BIT_CODE.encode(logical)

    def test_single_fault_leaves_at_most_one_error(self):
        circuit, tracker = two_d_recovery_circuit(1)
        start = (1, 4, 7)
        for logical in (0, 1):
            codeword = THREE_BIT_CODE.encode(logical)
            for fault in iter_single_faults(circuit):
                output = run_with_faults(circuit, embed_codeword(codeword, start), [fault])
                recovered = tuple(output[w] for w in tracker.data_wires())
                assert THREE_BIT_CODE.errors_in(recovered, logical) <= 1

    def test_many_cycles_preserve_corrupted_input(self):
        circuit, tracker = two_d_recovery_circuit(6)
        start = (1, 4, 7)
        for logical, word in all_corrupted_codewords():
            output = run(circuit, embed_codeword(word, start))
            recovered = tuple(output[w] for w in tracker.data_wires())
            assert recovered == THREE_BIT_CODE.encode(logical)
