"""Tests for the Figure-4 tile layout and assemblies."""

from __future__ import annotations

import pytest

from repro.local.lattice import is_connected_set
from repro.local.layout import (
    DATA_COLUMN,
    FIG4_TILE,
    TileAssembly,
    tile_position,
    tile_wire,
)
from repro.errors import LocalityError


class TestTile:
    def test_figure_4_rows(self):
        assert FIG4_TILE == ((8, 2, 5), (7, 1, 4), (6, 0, 3))

    def test_position_wire_inverse(self):
        for label in range(9):
            row, col = tile_position(label)
            assert tile_wire(row, col) == label

    def test_data_on_middle_column(self):
        for label in (0, 1, 2):
            assert tile_position(label)[1] == DATA_COLUMN

    def test_encode_triples_are_rows(self):
        for triple in ((0, 3, 6), (1, 4, 7), (2, 5, 8)):
            rows = {tile_position(label)[0] for label in triple}
            assert len(rows) == 1

    def test_decode_triples_are_columns(self):
        for triple in ((0, 1, 2), (3, 4, 5), (6, 7, 8)):
            cols = {tile_position(label)[1] for label in triple}
            assert len(cols) == 1

    def test_unknown_label_rejected(self):
        with pytest.raises(LocalityError):
            tile_position(9)
        with pytest.raises(LocalityError):
            tile_wire(3, 0)


class TestAssembly:
    def test_stacked_geometry(self):
        assembly = TileAssembly(3, "stacked")
        assert assembly.grid.rows == 9 and assembly.grid.cols == 3
        # Tile 1's q0 sits three rows below tile 0's q0.
        r0 = assembly.position(assembly.wire(0, 0))
        r1 = assembly.position(assembly.wire(1, 0))
        assert r1 == (r0[0] + 3, r0[1])

    def test_side_by_side_geometry(self):
        assembly = TileAssembly(3, "side_by_side")
        assert assembly.grid.rows == 3 and assembly.grid.cols == 9
        c0 = assembly.position(assembly.wire(0, 0))
        c1 = assembly.position(assembly.wire(1, 0))
        assert c1 == (c0[0], c0[1] + 3)

    def test_data_columns_two_apart_side_by_side(self):
        # "the ancillary bits in between two logical lines"
        assembly = TileAssembly(2, "side_by_side")
        col0 = {assembly.position(w)[1] for w in assembly.data_wires(0)}
        col1 = {assembly.position(w)[1] for w in assembly.data_wires(1)}
        assert col0 == {1} and col1 == {4}

    def test_stacked_data_collinear(self):
        assembly = TileAssembly(2, "stacked")
        cols = {
            assembly.position(w)[1]
            for t in range(2)
            for w in assembly.data_wires(t)
        }
        assert cols == {DATA_COLUMN}

    def test_stacked_data_bits_contiguous_across_tiles(self):
        # Consecutive tiles' codewords form one unbroken column of data
        # cells — the "parallel" interleave geometry.
        assembly = TileAssembly(3, "stacked")
        positions = [
            assembly.position(w)
            for t in range(3)
            for w in assembly.data_wires(t)
        ]
        assert is_connected_set(assembly.grid, positions)

    def test_wire_at_round_trip(self):
        assembly = TileAssembly(2, "stacked")
        for wire in range(assembly.n_wires):
            row, col = assembly.position(wire)
            assert assembly.wire_at(row, col) == wire

    def test_grid_lattice_wire_map_is_a_bijection(self):
        assembly = TileAssembly(2, "side_by_side")
        mapping = assembly.grid_lattice_wire_map()
        assert sorted(mapping) == list(range(assembly.n_wires))

    def test_adjacency_delegates_to_grid(self):
        assembly = TileAssembly(1)
        assert assembly.adjacent((0, 0), (0, 1))
        assert not assembly.adjacent((0, 0), (2, 2))

    def test_validation(self):
        with pytest.raises(LocalityError):
            TileAssembly(0)
        with pytest.raises(LocalityError):
            TileAssembly(1, "diagonal")
        with pytest.raises(LocalityError):
            TileAssembly(1).wire(3, 0)
