"""Tests for the interleaving schedules (Figures 4 and 6)."""

from __future__ import annotations

from repro.local.interleave import (
    interleave_1d_schedule,
    one_d_cycle_operation_count,
    one_d_initial_line,
    parallel_2d_schedule,
    perpendicular_2d_schedule,
)
from repro.local.routing import apply_swap_schedule


class TestParallel2D:
    def test_nine_swaps(self):
        _, report = parallel_2d_schedule()
        assert report.total_swaps == 9

    def test_at_most_six_per_codeword(self):
        _, report = parallel_2d_schedule()
        assert report.max_swaps_per_codeword <= 6

    def test_three_swap3_per_codeword(self):
        _, report = parallel_2d_schedule()
        assert report.max_swap3_per_codeword == 3

    def test_final_order_interleaved(self):
        _, report = parallel_2d_schedule()
        kinds = [(token[2], token[1]) for token in report.final_line]
        assert kinds == sorted(kinds)

    def test_schedule_actually_produces_final_line(self):
        swaps, report = parallel_2d_schedule()
        line = [("data", j, i) for j in range(3) for i in range(3)]
        apply_swap_schedule(line, swaps)
        assert tuple(line) == report.final_line


class TestPerpendicular2D:
    def test_twelve_swaps(self):
        _, report = perpendicular_2d_schedule()
        assert report.total_swaps == 12

    def test_middle_codeword_untouched(self):
        _, report = perpendicular_2d_schedule()
        assert report.swaps_per_codeword[1] == 0

    def test_outer_codewords_six_each(self):
        _, report = perpendicular_2d_schedule()
        assert report.swaps_per_codeword[0] == 6
        assert report.swaps_per_codeword[2] == 6

    def test_swaps_are_horizontal_neighbours(self):
        swaps, _ = perpendicular_2d_schedule()
        for (r1, c1), (r2, c2) in swaps:
            assert r1 == r2 and abs(c1 - c2) == 1


class TestOneD:
    def test_total_is_45(self):
        _, report = interleave_1d_schedule()
        assert report.total_swaps == 45

    def test_move_breakdown_matches_paper(self):
        # "8 for the last bit, 7 for the second bit, 6 for the first"
        # and "10 for the first bit, 8 for the second, and 6 for the
        # last".
        _, report = interleave_1d_schedule()
        assert report.move_breakdown[0] == (8, 7, 6)
        assert report.move_breakdown[2] == (10, 8, 6)
        assert report.move_swaps_per_codeword == (21, 0, 24)

    def test_at_most_24_swaps_act_on_a_single_codeword(self):
        # Touch counting (including being swapped past) also respects
        # the paper's "at most 24 act on a single bit".
        _, report = interleave_1d_schedule()
        assert report.max_swaps_per_codeword == 24

    def test_twelve_swap3_per_codeword(self):
        _, report = interleave_1d_schedule()
        assert report.max_swap3_per_codeword == 12

    def test_initial_line_structure(self):
        line = one_d_initial_line()
        assert len(line) == 27
        data_positions = [
            index for index, token in enumerate(line) if token[0] == "data"
        ]
        assert data_positions == [0, 3, 6, 9, 12, 15, 18, 21, 24]

    def test_transversal_triples_contiguous_after_interleave(self):
        _, report = interleave_1d_schedule()
        line = list(report.final_line)
        for index in range(3):
            positions = sorted(
                line.index(("data", codeword, index)) for codeword in range(3)
            )
            assert positions[2] - positions[0] == 2

    def test_schedule_is_adjacent_swaps(self):
        swaps, _ = interleave_1d_schedule()
        for low, high in swaps:
            assert high == low + 1

    def test_uninterleave_by_reversal(self):
        swaps, report = interleave_1d_schedule()
        line = list(report.final_line)
        for low, high in reversed(swaps):
            line[low], line[high] = line[high], line[low]
        assert line == one_d_initial_line()


class TestCycleCounts:
    def test_paper_g_values(self):
        assert one_d_cycle_operation_count(include_init=True) == 40
        assert one_d_cycle_operation_count(include_init=False) == 38
