"""Tests for the fully assembled 1D and 2D logical cycles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding import THREE_BIT_CODE
from repro.core import MAJ, MAJ_INV, TOFFOLI, run
from repro.core.bits import index_to_bits
from repro.local import Chain, circuit_is_local
from repro.local.logical_cycle import (
    one_d_cycle_io,
    one_d_logical_cycle,
    two_d_cycle_io,
    two_d_logical_cycle,
)
from repro.noise import NoiseModel, NoisyRunner
from repro.errors import CodingError


def _decode_1d(output, data_wires):
    return tuple(
        THREE_BIT_CODE.decode(tuple(output[w] for w in data_wires[3 * j : 3 * j + 3]))
        for j in range(3)
    )


class TestOneDCycle:
    @pytest.mark.parametrize("gate", [MAJ, MAJ_INV, TOFFOLI])
    def test_logical_semantics_exhaustive(self, gate):
        circuit, _ = one_d_logical_cycle(gate)
        for packed in range(8):
            bits = index_to_bits(packed, 3)
            state, data_wires = one_d_cycle_io(bits)
            output = run(circuit, state)
            assert _decode_1d(output, data_wires) == gate.apply(bits)

    def test_locality(self):
        circuit, _ = one_d_logical_cycle(MAJ)
        assert circuit_is_local(circuit, Chain(27))

    def test_cycles_chain(self):
        # Two cycles of MAJ then MAJ⁻¹ restore the logical values.
        first, _ = one_d_logical_cycle(MAJ)
        second, _ = one_d_logical_cycle(MAJ_INV)
        combined = first + second
        state, data_wires = one_d_cycle_io((1, 0, 1))
        output = run(combined, state)
        assert _decode_1d(output, data_wires) == (1, 0, 1)

    def test_census_upper_bounds_schedule_count(self):
        # Home-cell counting includes pass-through operations, so it
        # sits at or above the schedule-level per-codeword G = 40.
        _, census = one_d_logical_cycle(MAJ)
        assert census.worst_codeword_ops >= 40
        assert census.total_ops < 3 * 40  # but far below 3 G

    def test_corrects_planted_error_during_cycle(self):
        circuit, _ = one_d_logical_cycle(MAJ)
        state, data_wires = one_d_cycle_io((1, 1, 1))
        corrupted = list(state)
        corrupted[data_wires[0]] ^= 1
        output = run(circuit, tuple(corrupted))
        assert _decode_1d(output, data_wires) == MAJ.apply((1, 1, 1))

    def test_gate_arity_validated(self):
        from repro.core import CNOT

        with pytest.raises(CodingError):
            one_d_logical_cycle(CNOT)

    def test_io_validation(self):
        with pytest.raises(CodingError):
            one_d_cycle_io((1, 0))
        with pytest.raises(CodingError):
            one_d_cycle_io((1, 0, 2))

    def test_survives_noise_below_threshold(self):
        circuit, _ = one_d_logical_cycle(MAJ)
        state, data_wires = one_d_cycle_io((1, 0, 1))
        runner = NoisyRunner(NoiseModel(gate_error=3e-4), seed=111)
        result = runner.run_from_input(circuit, state, trials=20000)
        expected = MAJ.apply((1, 0, 1))
        correct = np.ones(20000, dtype=bool)
        for j in range(3):
            majority = result.states.majority_of(data_wires[3 * j : 3 * j + 3])
            correct &= majority == expected[j]
        assert correct.mean() > 0.995


class TestTwoDCycle:
    def _decode(self, output, assembly, trackers):
        decoded = []
        for tile, tracker in enumerate(trackers):
            wires = [
                assembly.wire_at(3 * tile + row, col)
                for (row, col) in tracker.orientation.data_cells()
            ]
            decoded.append(THREE_BIT_CODE.decode(tuple(output[w] for w in wires)))
        return tuple(decoded)

    @pytest.mark.parametrize("gate", [MAJ, TOFFOLI])
    def test_logical_semantics_exhaustive(self, gate):
        circuit, _, assembly, trackers = two_d_logical_cycle(gate)
        for packed in range(8):
            bits = index_to_bits(packed, 3)
            state, _ = two_d_cycle_io(bits, assembly)
            output = run(circuit, state)
            assert self._decode(output, assembly, trackers) == gate.apply(bits)

    def test_locality_on_stacked_assembly(self):
        circuit, _, assembly, _ = two_d_logical_cycle(MAJ)
        assert circuit_is_local(circuit, assembly)

    def test_total_ops_far_below_one_d(self):
        _, census_2d, _, _ = two_d_logical_cycle(MAJ)
        _, census_1d = one_d_logical_cycle(MAJ)
        assert census_2d.total_ops < census_1d.total_ops / 2

    def test_interleave_is_nine_swap_equivalents(self):
        circuit, _, _, _ = two_d_logical_cycle(MAJ)
        counts = circuit.count_ops()
        swap_equivalents = counts.get("SWAP", 0) + 2 * (
            counts.get("SWAP3_UP", 0) + counts.get("SWAP3_DOWN", 0)
        )
        assert swap_equivalents == 18  # 9 interleave + 9 uninterleave

    def test_corrects_planted_error(self):
        circuit, _, assembly, trackers = two_d_logical_cycle(MAJ)
        state, data = two_d_cycle_io((0, 1, 0), assembly)
        corrupted = list(state)
        corrupted[data[1][2]] ^= 1
        output = run(circuit, tuple(corrupted))
        assert self._decode(output, assembly, trackers) == MAJ.apply((0, 1, 0))

    def test_io_validation(self):
        _, _, assembly, _ = two_d_logical_cycle(MAJ)
        with pytest.raises(CodingError):
            two_d_cycle_io((1,), assembly)
