"""Tests for adjacent-SWAP routing and SWAP3 packing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circuit import Circuit
from repro.core.truth_table import circuit_permutation
from repro.core.permutation import Permutation
from repro.local.routing import (
    PackedOp,
    adjacent_swaps_to_sort,
    apply_swap_schedule,
    move_token,
    pack_swaps,
    packed_census,
    swaps_touching,
)
from repro.errors import LocalityError

lines = st.permutations(list(range(9)))


class TestSortSchedules:
    @given(lines)
    def test_schedule_sorts(self, line):
        working = list(line)
        apply_swap_schedule(working, adjacent_swaps_to_sort(line))
        assert working == sorted(line)

    @given(lines)
    def test_schedule_length_equals_inversions(self, line):
        swaps = adjacent_swaps_to_sort(line)
        assert len(swaps) == Permutation(tuple(line)).inversions()

    def test_figure_7_line_needs_nine_swaps(self):
        assert len(adjacent_swaps_to_sort([0, 3, 6, 1, 4, 7, 2, 5, 8])) == 9

    def test_sorted_line_needs_no_swaps(self):
        assert adjacent_swaps_to_sort(list(range(5))) == []


class TestMoveToken:
    def test_move_right_shifts_others_left(self):
        line = list("abcde")
        swaps = move_token(line, 0, 3)
        assert line == list("bcdae")
        assert len(swaps) == 3

    def test_move_left(self):
        line = list("abcde")
        swaps = move_token(line, 4, 1)
        assert line == list("aebcd")
        assert len(swaps) == 3

    def test_no_move(self):
        line = list("ab")
        assert move_token(line, 1, 1) == []
        assert line == list("ab")

    def test_bounds_checked(self):
        with pytest.raises(LocalityError):
            move_token(list("ab"), 0, 5)


class TestPacking:
    def test_paper_packing_census(self):
        swaps = adjacent_swaps_to_sort([0, 3, 6, 1, 4, 7, 2, 5, 8])
        census = packed_census(pack_swaps(swaps))
        assert census["SWAP3_UP"] + census.get("SWAP3_DOWN", 0) == 4
        assert census["SWAP"] == 1

    @given(lines)
    @settings(max_examples=30, deadline=None)
    def test_packed_ops_reproduce_the_swaps(self, line):
        """Replacing swap pairs with SWAP3 gates preserves the action."""
        swaps = adjacent_swaps_to_sort(line)
        packed = pack_swaps(swaps)

        plain = Circuit(9)
        for low, high in swaps:
            plain.swap(low, high)
        fused = Circuit(9)
        for op in packed:
            if op.kind == "SWAP":
                fused.swap(*op.wires)
            elif op.kind == "SWAP3_UP":
                fused.swap3_up(*op.wires)
            else:
                fused.swap3_down(*op.wires)
        assert circuit_permutation(plain) == circuit_permutation(fused)

    @given(lines)
    def test_packing_never_lengthens(self, line):
        swaps = adjacent_swaps_to_sort(line)
        packed = pack_swaps(swaps)
        assert len(packed) <= len(swaps)
        swap_equivalents = sum(
            2 if op.kind.startswith("SWAP3") else 1 for op in packed
        )
        assert swap_equivalents == len(swaps)

    def test_pack_rejects_non_adjacent(self):
        with pytest.raises(LocalityError):
            pack_swaps([(0, 2)])

    def test_single_swap_stays_swap(self):
        assert pack_swaps([(3, 4)]) == [PackedOp(kind="SWAP", wires=(3, 4))]


class TestTouchCounting:
    def test_counts_only_selected_tokens(self):
        line = ["a", "b", "c"]
        swaps = [(0, 1), (1, 2)]
        assert swaps_touching(swaps, line, {"a"}) == 2  # a moves twice
        assert swaps_touching(swaps, line, {"c"}) == 1

    def test_empty_token_set(self):
        assert swaps_touching([(0, 1)], ["a", "b"], set()) == 0
