"""Tests for lattices and the locality checker."""

from __future__ import annotations

import pytest

from repro.core.circuit import Circuit
from repro.local.lattice import (
    Chain,
    Grid,
    circuit_is_local,
    is_connected_set,
    is_local_operation,
    validate_circuit_locality,
)
from repro.errors import LocalityError


class TestChain:
    def test_positions(self):
        chain = Chain(5)
        assert chain.position(3) == (3,)

    def test_adjacency(self):
        chain = Chain(5)
        assert chain.adjacent((1,), (2,))
        assert not chain.adjacent((1,), (3,))

    def test_wire_range_validated(self):
        with pytest.raises(LocalityError):
            Chain(3).position(5)

    def test_rejects_empty(self):
        with pytest.raises(LocalityError):
            Chain(0)


class TestGrid:
    def test_wire_and_position_inverse(self):
        grid = Grid(3, 4)
        for wire in range(grid.n_sites):
            row, col = grid.position(wire)
            assert grid.wire(row, col) == wire

    def test_adjacency_is_manhattan_one(self):
        grid = Grid(3, 3)
        assert grid.adjacent((0, 0), (0, 1))
        assert grid.adjacent((0, 0), (1, 0))
        assert not grid.adjacent((0, 0), (1, 1))
        assert not grid.adjacent((0, 0), (0, 2))

    def test_bounds_checked(self):
        grid = Grid(2, 2)
        with pytest.raises(LocalityError):
            grid.wire(2, 0)
        with pytest.raises(LocalityError):
            grid.position(4)


class TestConnectedSets:
    def test_empty_and_singleton_connected(self):
        chain = Chain(5)
        assert is_connected_set(chain, [])
        assert is_connected_set(chain, [(2,)])

    def test_contiguous_triple_connected(self):
        chain = Chain(5)
        assert is_connected_set(chain, [(1,), (2,), (3,)])

    def test_gap_disconnects(self):
        chain = Chain(5)
        assert not is_connected_set(chain, [(0,), (2,)])

    def test_l_shape_connected_on_grid(self):
        grid = Grid(3, 3)
        assert is_connected_set(grid, [(0, 0), (0, 1), (1, 1)])

    def test_diagonal_not_connected(self):
        grid = Grid(3, 3)
        assert not is_connected_set(grid, [(0, 0), (1, 1)])


class TestOperationLocality:
    def test_size_limit(self):
        chain = Chain(6)
        assert not is_local_operation(chain, [0, 1, 2, 3])
        assert is_local_operation(chain, [0, 1, 2])

    def test_order_irrelevant(self):
        chain = Chain(6)
        assert is_local_operation(chain, [2, 0, 1])

    def test_circuit_validation_passes_for_local(self):
        circuit = Circuit(4).maj(0, 1, 2).swap(2, 3)
        validate_circuit_locality(circuit, Chain(4))

    def test_circuit_validation_raises_with_context(self):
        circuit = Circuit(4).cnot(0, 3)
        with pytest.raises(LocalityError) as info:
            validate_circuit_locality(circuit, Chain(4))
        assert "CNOT" in str(info.value)

    def test_boolean_form(self):
        assert circuit_is_local(Circuit(3).maj(0, 1, 2), Chain(3))
        assert not circuit_is_local(Circuit(3).cnot(0, 2), Chain(3))

    def test_resets_also_checked(self):
        circuit = Circuit(4).append_reset(0, 3)
        assert not circuit_is_local(circuit, Chain(4))
