"""Tests for the unprotected baseline."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.unprotected import (
    identity_module,
    largest_reliable_module,
    module_error,
    module_error_linear,
    simulate_unprotected,
)
from repro.core.simulator import run
from repro.core.truth_table import circuit_permutation
from repro.errors import AnalysisError


class TestFormulas:
    def test_module_error_values(self):
        assert module_error(0.0, 100) == 0.0
        assert module_error(1.0, 1) == 1.0
        assert module_error(1e-3, 1000) == pytest.approx(1 - (1 - 1e-3) ** 1000)

    @given(st.floats(1e-6, 0.01), st.integers(1, 1000))
    def test_linear_approximation_dominates(self, g, T):
        assert module_error(g, T) <= module_error_linear(g, T) + 1e-12

    def test_paper_narrative(self):
        # g ~ 1e-3: modules beyond ~1000 gates are almost certainly bad.
        assert module_error(1e-3, 1000) > 0.6
        assert largest_reliable_module(1e-3) == pytest.approx(693, rel=0.01)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            module_error(2.0, 10)
        with pytest.raises(AnalysisError):
            largest_reliable_module(0.0)


class TestIdentityModule:
    def test_action_is_identity(self):
        circuit = identity_module(10, n_wires=4)
        assert circuit_permutation(circuit).is_identity()

    def test_gate_count(self):
        assert len(identity_module(12)) == 12

    def test_odd_count_rejected(self):
        with pytest.raises(AnalysisError):
            identity_module(7)

    def test_narrow_circuit_rejected(self):
        with pytest.raises(AnalysisError):
            identity_module(4, n_wires=2)

    def test_runs_to_identity(self):
        circuit = identity_module(20, n_wires=5)
        assert run(circuit, (1, 0, 1, 0, 1)) == (1, 0, 1, 0, 1)


class TestSimulation:
    def test_zero_noise_never_fails(self):
        assert simulate_unprotected(0.0, 100, trials=200, seed=0) == 0.0

    def test_matches_formula_within_tolerance(self):
        g, T = 2e-3, 200
        measured = simulate_unprotected(g, T, trials=20000, seed=1)
        predicted = module_error(g, T)
        # Randomising faults are sometimes silent, so measured sits a
        # bit below the all-faults-visible prediction.
        assert 0.5 * predicted < measured <= predicted * 1.05

    def test_monotone_in_g(self):
        low = simulate_unprotected(1e-3, 100, trials=20000, seed=2)
        high = simulate_unprotected(1e-2, 100, trials=20000, seed=2)
        assert high > low
