"""Tests for the von Neumann NAND multiplexing baseline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.threshold import threshold
from repro.baselines.nand_multiplexing import (
    BundleSimulator,
    critical_epsilon,
    degrades,
    iterate_units,
    monte_carlo_degrades,
    multiplexed_unit_fraction,
    nand_stage_fraction,
)
from repro.errors import AnalysisError


class TestStageMap:
    def test_noiseless_nand_of_clean_bundles(self):
        assert nand_stage_fraction(1.0, 1.0, 0.0) == 0.0
        assert nand_stage_fraction(0.0, 0.0, 0.0) == 1.0
        assert nand_stage_fraction(1.0, 0.0, 0.0) == 1.0

    def test_gate_flips_invert(self):
        assert nand_stage_fraction(1.0, 1.0, 1.0) == 1.0

    @given(st.floats(0, 1), st.floats(0, 1), st.floats(0, 1))
    def test_output_fraction_in_range(self, a, b, eps):
        assert 0.0 <= nand_stage_fraction(a, b, eps) <= 1.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            nand_stage_fraction(0.5, 0.5, -0.1)


class TestDeterministicThreshold:
    def test_clean_signal_survives_low_noise(self):
        assert not degrades(0.01)

    def test_signal_lost_at_high_noise(self):
        assert degrades(0.2)

    def test_critical_epsilon_same_order_as_paper(self):
        # The paper quotes "about 11%" for NAND multiplexing; our
        # deterministic-limit model lands in the same decade.
        eps = critical_epsilon()
        assert 0.05 < eps < 0.15

    def test_order_of_magnitude_above_reversible(self):
        # The irreversible baseline tolerates ~10x the noise of the
        # best reversible scheme — the comparison the paper draws.
        assert critical_epsilon() / threshold(9) > 5

    def test_unit_restores_toward_nominal_below_threshold(self):
        eps = 0.02
        trajectory = iterate_units(0.9, eps, 30)
        # Error relative to alternating nominal decays.
        final = trajectory[-1]
        assert final > 0.9 or final < 0.1

    def test_unit_fraction_in_range(self):
        assert 0.0 <= multiplexed_unit_fraction(0.7, 0.7, 0.05) <= 1.0


class TestMonteCarlo:
    def test_finite_bundle_agrees_below_threshold(self):
        assert not monte_carlo_degrades(0.02, bundle_size=2000, units=20, seed=0)

    def test_finite_bundle_agrees_above_threshold(self):
        assert monte_carlo_degrades(0.2, bundle_size=2000, units=20, seed=0)

    def test_bundle_construction(self):
        simulator = BundleSimulator.create(100, 0.0, seed=0)
        bundle = simulator.bundle(1, error_fraction=0.1)
        assert bundle.sum() == 90

    def test_bundle_validation(self):
        simulator = BundleSimulator.create(10, 0.0, seed=0)
        with pytest.raises(AnalysisError):
            simulator.bundle(2)
        with pytest.raises(AnalysisError):
            BundleSimulator.create(0, 0.1)

    def test_nand_stage_computes_nand(self):
        import numpy as np

        simulator = BundleSimulator.create(64, 0.0, seed=0)
        ones = simulator.bundle(1)
        zeros = simulator.bundle(0)
        assert (simulator.nand_stage(ones, ones) == 0).all()
        assert (simulator.nand_stage(ones, zeros) == 1).all()

    @settings(max_examples=10, deadline=None)
    @given(st.floats(0.0, 0.05))
    def test_run_chain_margin_positive_below_threshold(self, eps):
        simulator = BundleSimulator.create(1500, eps, seed=3)
        assert simulator.run_chain(10) > 0.1
