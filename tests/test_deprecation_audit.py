"""The CI deprecation audit must pass on the tree as committed."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_audit_is_clean():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "deprecation_audit.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_audit_flags_new_callers(tmp_path, monkeypatch):
    # The audit must actually detect a stray caller, or it guards
    # nothing.  Point it at a fake repo with one offender.
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import deprecation_audit
    finally:
        sys.path.pop(0)
    offender = tmp_path / "src" / "thing.py"
    offender.parent.mkdir(parents=True)
    offender.write_text("rate, _ = logical_error_per_cycle(0.01, 100)\n")
    offenses = deprecation_audit.audit(tmp_path)
    assert offenses == ["src/thing.py:1: logical_error_per_cycle"]


def test_audit_covers_jobs_package(tmp_path):
    # The jobs layer is new enough that it is worth pinning: an
    # offender planted at the same depth as src/repro/jobs must be
    # flagged, so the audit's scan really recurses into the package.
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import deprecation_audit
    finally:
        sys.path.pop(0)
    offender = tmp_path / "src" / "repro" / "jobs" / "runner.py"
    offender.parent.mkdir(parents=True)
    offender.write_text("p = estimate_failure_probability(circuit, 0.01)\n")
    offenses = deprecation_audit.audit(tmp_path)
    assert offenses == [
        "src/repro/jobs/runner.py:1: estimate_failure_probability"
    ]
