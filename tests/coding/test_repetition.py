"""Tests for the repetition code."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coding.repetition import (
    LOGICAL_ONE,
    LOGICAL_ZERO,
    RepetitionCode,
    THREE_BIT_CODE,
)
from repro.errors import CodingError

odd_lengths = st.integers(0, 4).map(lambda k: 2 * k + 1)


class TestConstruction:
    def test_default_is_three(self):
        assert RepetitionCode().length == 3
        assert THREE_BIT_CODE.length == 3

    def test_rejects_even_length(self):
        with pytest.raises(CodingError):
            RepetitionCode(4)

    def test_rejects_non_positive(self):
        with pytest.raises(CodingError):
            RepetitionCode(-3)

    def test_distance_and_correction(self):
        code = RepetitionCode(5)
        assert code.distance == 5
        assert code.correctable_errors == 2


class TestEncodeDecode:
    def test_codewords(self):
        assert THREE_BIT_CODE.encode(0) == LOGICAL_ZERO == (0, 0, 0)
        assert THREE_BIT_CODE.encode(1) == LOGICAL_ONE == (1, 1, 1)

    def test_encode_rejects_non_bit(self):
        with pytest.raises(CodingError):
            THREE_BIT_CODE.encode(2)

    def test_decode_majority(self):
        assert THREE_BIT_CODE.decode((1, 0, 1)) == 1
        assert THREE_BIT_CODE.decode((0, 0, 1)) == 0

    def test_decode_rejects_wrong_length(self):
        with pytest.raises(CodingError):
            THREE_BIT_CODE.decode((0, 1))

    @given(odd_lengths, st.integers(0, 1))
    def test_round_trip(self, length, bit):
        code = RepetitionCode(length)
        assert code.decode(code.encode(bit)) == bit

    @given(st.integers(0, 1), st.data())
    def test_decoding_corrects_up_to_t_errors(self, bit, data):
        length = data.draw(odd_lengths)
        code = RepetitionCode(length)
        n_errors = data.draw(st.integers(0, code.correctable_errors))
        positions = data.draw(
            st.lists(
                st.integers(0, length - 1),
                min_size=n_errors,
                max_size=n_errors,
                unique=True,
            )
        )
        corrupted = code.corrupt(code.encode(bit), positions)
        assert code.decode(corrupted) == bit

    @given(st.integers(0, 1), st.data())
    def test_majority_plus_one_errors_flip_decoding(self, bit, data):
        length = data.draw(odd_lengths)
        code = RepetitionCode(length)
        n_errors = code.correctable_errors + 1
        positions = list(range(n_errors))
        corrupted = code.corrupt(code.encode(bit), positions)
        # With exactly t+1 errors on a 2t+1 code the majority flips.
        assert code.decode(corrupted) == bit ^ 1


class TestUtilities:
    def test_is_codeword(self):
        assert THREE_BIT_CODE.is_codeword((1, 1, 1))
        assert not THREE_BIT_CODE.is_codeword((1, 0, 1))

    def test_errors_in(self):
        assert THREE_BIT_CODE.errors_in((1, 0, 1), 1) == 1
        assert THREE_BIT_CODE.errors_in((1, 0, 1), 0) == 2

    def test_codewords_listing(self):
        zero, one = THREE_BIT_CODE.codewords()
        assert zero == (0, 0, 0) and one == (1, 1, 1)

    def test_corrupt_validates_positions(self):
        with pytest.raises(CodingError):
            THREE_BIT_CODE.corrupt((0, 0, 0), [5])

    def test_corrupt_deduplicates_positions(self):
        assert THREE_BIT_CODE.corrupt((0, 0, 0), [1, 1]) == (0, 1, 0)
