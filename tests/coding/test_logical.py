"""Tests for level-1 transversal logic (LogicalProcessor)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.logical import (
    LogicalProcessor,
    transversal_wire_triples,
)
from repro.coding.recovery import RecoveryLayout
from repro.core import library
from repro.core.bits import all_bit_vectors, index_to_bits
from repro.core.simulator import run
from repro.noise.model import NoiseModel
from repro.noise.monte_carlo import NoisyRunner
from repro.errors import CodingError

three_bit_gates = st.sampled_from(
    [library.MAJ, library.MAJ_INV, library.TOFFOLI, library.FREDKIN, library.SWAP3_UP]
)


class TestTransversal:
    def test_wire_triples(self):
        layouts = [RecoveryLayout.standard(0), RecoveryLayout.standard(9)]
        triples = transversal_wire_triples(layouts)
        assert triples == ((0, 9), (1, 10), (2, 11))

    def test_arity_checked(self):
        processor = LogicalProcessor(2)
        with pytest.raises(CodingError):
            processor.apply(library.MAJ, 0, 1)  # arity 3, two operands

    def test_distinct_operands_required(self):
        processor = LogicalProcessor(2)
        with pytest.raises(CodingError):
            processor.apply(library.CNOT, 0, 0)

    def test_operand_range_checked(self):
        processor = LogicalProcessor(2)
        with pytest.raises(CodingError):
            processor.apply(library.CNOT, 0, 5)


class TestNoiselessSemantics:
    @given(three_bit_gates, st.integers(0, 7))
    @settings(max_examples=24, deadline=None)
    def test_logical_gate_acts_on_logical_values(self, gate, packed):
        logical_in = index_to_bits(packed, 3)
        processor = LogicalProcessor(3)
        processor.apply(gate, 0, 1, 2)
        output = run(processor.circuit, processor.physical_input(logical_in))
        assert processor.decode_output(output) == gate.apply(logical_in)

    def test_cnot_on_two_logical_bits(self):
        processor = LogicalProcessor(2)
        processor.apply(library.CNOT, 0, 1)
        output = run(processor.circuit, processor.physical_input((1, 0)))
        assert processor.decode_output(output) == (1, 1)

    def test_gate_sequence(self):
        # A chain of logical gates with interleaved recovery cycles.
        processor = LogicalProcessor(3)
        processor.apply(library.CNOT, 0, 1)
        processor.apply(library.TOFFOLI, 0, 1, 2)
        processor.apply(library.CNOT, 1, 2)
        state = (1, 0, 0)
        output = run(processor.circuit, processor.physical_input(state))
        expected = (1, 1, 0)
        expected = (expected[0], expected[1], expected[2] ^ (expected[0] & expected[1]))
        expected = (expected[0], expected[1], expected[2] ^ expected[1])
        assert processor.decode_output(output) == expected

    def test_recovery_cycles_appended_per_operand(self):
        processor = LogicalProcessor(3)
        processor.apply(library.MAJ, 0, 1, 2)
        # 3 transversal + 3 recoveries of 8 ops each.
        assert len(processor.circuit) == 3 + 3 * 8

    def test_recover_flag_skips_recovery(self):
        processor = LogicalProcessor(3)
        processor.apply(library.MAJ, 0, 1, 2, recover=False)
        assert len(processor.circuit) == 3

    def test_recover_all(self):
        processor = LogicalProcessor(2)
        processor.recover_all()
        assert len(processor.circuit) == 2 * 8


class TestInputOutput:
    def test_physical_input_places_codewords(self):
        processor = LogicalProcessor(2)
        state = processor.physical_input((1, 0))
        assert state[0:3] == (1, 1, 1)
        assert state[9:12] == (0, 0, 0)
        assert sum(state) == 3

    def test_physical_input_length_checked(self):
        with pytest.raises(CodingError):
            LogicalProcessor(2).physical_input((1,))

    def test_decode_follows_layout_rotation(self):
        processor = LogicalProcessor(1)
        processor.recover(0)
        output = run(processor.circuit, processor.physical_input((1,)))
        assert processor.decode_output(output) == (1,)

    def test_decode_batch_matches_scalar_decode(self):
        processor = LogicalProcessor(2)
        processor.apply(library.CNOT, 0, 1)
        physical = processor.physical_input((1, 1))
        runner = NoisyRunner(NoiseModel.noiseless(), seed=0)
        result = runner.run_from_input(processor.circuit, physical, trials=8)
        decoded = processor.decode_batch(result.states)
        assert decoded.shape == (8, 2)
        assert (decoded == np.array([1, 0], dtype=np.uint8)).all()


class TestFaultToleranceValue:
    def test_protected_beats_unprotected_at_moderate_noise(self):
        gate_error = 0.004
        trials = 4000
        logical_in = (1, 0, 1)
        expected = library.MAJ.apply(logical_in)

        protected = LogicalProcessor(3)
        for _ in range(4):
            protected.apply(library.MAJ, 0, 1, 2)
            protected.apply(library.MAJ_INV, 0, 1, 2)
        protected.apply(library.MAJ, 0, 1, 2)
        runner = NoisyRunner(NoiseModel(gate_error=gate_error), seed=5)
        result = runner.run_from_input(
            protected.circuit, protected.physical_input(logical_in), trials
        )
        decoded = protected.decode_batch(result.states)
        protected_failures = (
            (decoded != np.asarray(expected, dtype=np.uint8)).any(axis=1).mean()
        )

        from repro.core.circuit import Circuit

        bare = Circuit(3)
        for _ in range(4):
            bare.maj(0, 1, 2).maj_inv(0, 1, 2)
        bare.maj(0, 1, 2)
        runner = NoisyRunner(NoiseModel(gate_error=gate_error), seed=6)
        bare_result = runner.run_from_input(bare, logical_in, trials)
        bare_failures = (
            (bare_result.states.array != np.asarray(expected, dtype=np.uint8))
            .any(axis=1)
            .mean()
        )
        assert protected_failures < bare_failures
