"""Exhaustive verification of the Figure-2 recovery circuit.

These tests *prove* (by enumeration, not sampling) the three
fault-tolerance properties the paper argues in Section 2.
"""

from __future__ import annotations

import pytest

from repro.coding.recovery import (
    OUTPUT_WIRES,
    RECOVERY_OPS_WITH_INIT,
    RECOVERY_OPS_WITHOUT_INIT,
    RecoveryLayout,
    append_recovery,
    operations_per_encoded_gate,
    recovery_circuit,
    recovery_op_count,
    repeated_recovery,
)
from repro.coding.repetition import THREE_BIT_CODE
from repro.core.circuit import Circuit
from repro.core.simulator import run
from repro.noise.injector import iter_single_faults, run_with_faults
from repro.errors import CodingError

from tests.conftest import all_corrupted_codewords, embed_standard


class TestStructure:
    def test_operation_counts_match_paper(self):
        assert len(recovery_circuit(include_resets=True)) == 8
        assert len(recovery_circuit(include_resets=False)) == 6
        assert recovery_op_count(True) == RECOVERY_OPS_WITH_INIT == 8
        assert recovery_op_count(False) == RECOVERY_OPS_WITHOUT_INIT == 6

    def test_g_is_three_plus_e(self):
        assert operations_per_encoded_gate(True) == 11
        assert operations_per_encoded_gate(False) == 9

    def test_gate_kinds(self):
        counts = recovery_circuit().count_ops()
        assert counts == {"RESET": 2, "MAJ⁻¹": 3, "MAJ": 3}

    def test_encode_before_decode(self):
        labels = [op.label for op in recovery_circuit(include_resets=False)]
        assert labels == ["MAJ⁻¹"] * 3 + ["MAJ"] * 3


class TestCorrection:
    @pytest.mark.parametrize("logical,word", all_corrupted_codewords())
    def test_corrects_all_single_errors(self, logical, word):
        circuit = recovery_circuit()
        output = run(circuit, embed_standard(word))
        recovered = tuple(output[w] for w in OUTPUT_WIRES)
        assert recovered == THREE_BIT_CODE.encode(logical)

    def test_double_errors_flip_the_logical_value(self):
        circuit = recovery_circuit()
        word = THREE_BIT_CODE.corrupt(THREE_BIT_CODE.encode(0), [0, 1])
        output = run(circuit, embed_standard(word))
        recovered = tuple(output[w] for w in OUTPUT_WIRES)
        assert recovered == THREE_BIT_CODE.encode(1)

    def test_requires_clean_ancillas_without_resets(self):
        circuit = recovery_circuit(include_resets=False)
        dirty = (1, 1, 1) + (1, 0, 0, 0, 0, 0)
        output = run(circuit, dirty)
        # A dirty ancilla acts like an input error somewhere; the point
        # here is just that the reset-free circuit is not magically
        # immune — the with-resets version is.
        with_resets = run(recovery_circuit(include_resets=True), dirty)
        assert tuple(with_resets[w] for w in OUTPUT_WIRES) == (1, 1, 1)
        assert len(output) == 9


class TestFaultTolerance:
    def test_any_single_fault_leaves_at_most_one_output_error(self):
        circuit = recovery_circuit()
        for logical in (0, 1):
            codeword = THREE_BIT_CODE.encode(logical)
            for fault in iter_single_faults(circuit):
                output = run_with_faults(circuit, embed_standard(codeword), [fault])
                recovered = tuple(output[w] for w in OUTPUT_WIRES)
                errors = THREE_BIT_CODE.errors_in(recovered, logical)
                assert errors <= 1, (logical, fault)

    def test_single_fault_then_clean_recovery_restores(self):
        # "that can be repaired in the next error-recovery cycle"
        circuit, layout = repeated_recovery(2)
        one_cycle = recovery_circuit()
        for logical in (0, 1):
            codeword = THREE_BIT_CODE.encode(logical)
            for fault in iter_single_faults(one_cycle):
                output = run_with_faults(circuit, embed_standard(codeword), [fault])
                recovered = tuple(output[w] for w in layout.data)
                assert recovered == codeword, (logical, fault)

    def test_encode_fault_never_corrupts_output(self):
        # A fault on an encode MAJ⁻¹ hits one bit per decode block, so
        # the output codeword is *fully* correct, not just within
        # distance one.
        circuit = recovery_circuit()
        encode_indices = [
            i for i, op in enumerate(circuit) if op.label == "MAJ⁻¹"
        ]
        for logical in (0, 1):
            codeword = THREE_BIT_CODE.encode(logical)
            for fault in iter_single_faults(circuit):
                if fault.op_index not in encode_indices:
                    continue
                output = run_with_faults(circuit, embed_standard(codeword), [fault])
                recovered = tuple(output[w] for w in OUTPUT_WIRES)
                assert recovered == codeword


class TestLayout:
    def test_standard_layout(self):
        layout = RecoveryLayout.standard()
        assert layout.data == (0, 1, 2)
        assert layout.encode_triples() == ((0, 3, 6), (1, 4, 7), (2, 5, 8))
        assert layout.decode_triples() == ((0, 1, 2), (3, 4, 5), (6, 7, 8))
        assert layout.output_wires() == (0, 3, 6)

    def test_offset_layout(self):
        layout = RecoveryLayout.standard(offset=9)
        assert layout.data == (9, 10, 11)

    def test_advance_matches_outputs(self):
        layout = RecoveryLayout.standard()
        assert layout.advance().data == layout.output_wires()

    def test_advance_partitions_wires(self):
        layout = RecoveryLayout.standard()
        advanced = layout.advance()
        assert sorted(advanced.data + advanced.ancillas) == list(range(9))

    def test_rejects_overlapping_wires(self):
        with pytest.raises(CodingError):
            RecoveryLayout(data=(0, 1, 2), ancillas=(2, 3, 4, 5, 6, 7))

    def test_append_recovery_returns_advanced_layout(self):
        circuit = Circuit(9)
        layout = append_recovery(circuit, RecoveryLayout.standard())
        assert layout.data == (0, 3, 6)
        assert len(circuit) == 8


class TestRepeatedRecovery:
    def test_many_cycles_preserve_logical_value(self):
        circuit, layout = repeated_recovery(6)
        for logical, word in all_corrupted_codewords():
            output = run(circuit, embed_standard(word))
            recovered = tuple(output[w] for w in layout.data)
            assert recovered == THREE_BIT_CODE.encode(logical)

    def test_cycle_count_scales_ops(self):
        circuit, _ = repeated_recovery(4)
        assert len(circuit) == 4 * 8

    def test_negative_cycles_rejected(self):
        with pytest.raises(CodingError):
            repeated_recovery(-1)
