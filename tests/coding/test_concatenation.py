"""Tests for the concatenation compiler (Figure 3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.concatenation import (
    Block,
    ConcatenatedComputation,
    compile_recovery,
    concatenated_gate_circuit,
    gamma_census,
)
from repro.core import library
from repro.core.bits import index_to_bits
from repro.core.circuit import Circuit
from repro.core.simulator import run
from repro.errors import CodingError


class TestBlockGeometry:
    def test_level_zero(self):
        block = Block.allocate(0, base=7)
        assert block.size == 1
        assert list(block.wires) == [7]
        assert block.deep_data_wires() == [7]

    def test_level_one(self):
        block = Block.allocate(1)
        assert block.size == 9
        assert block.deep_data_wires() == [0, 1, 2]
        assert [b.base for b in block.ancilla_blocks()] == [3, 4, 5, 6, 7, 8]

    def test_level_two_size(self):
        block = Block.allocate(2, base=81)
        assert block.size == 81
        assert block.wires == range(81, 162)
        # Deep data: 3 data children x 3 deep wires each.
        assert len(block.deep_data_wires()) == 9

    def test_level_zero_has_no_children_queries(self):
        block = Block.allocate(0)
        with pytest.raises(CodingError):
            block.data_blocks()
        with pytest.raises(CodingError):
            block.ancilla_blocks()

    def test_advance_roles_partitions_children(self):
        block = Block.allocate(1)
        block.advance_roles()
        assert sorted(block.data_children + block.ancilla_children) == list(range(9))
        assert block.data_children == [0, 3, 6]

    def test_decode_level_zero(self):
        block = Block.allocate(0, base=2)
        assert block.decode([0, 0, 1]) == 1

    def test_decode_level_one_majority(self):
        block = Block.allocate(1)
        state = [1, 0, 1] + [0] * 6
        assert block.decode(state) == 1


class TestCompiledSemantics:
    @given(st.integers(0, 7))
    @settings(max_examples=8, deadline=None)
    def test_level_one_gate_matches_logical_action(self, packed):
        logical_in = index_to_bits(packed, 3)
        computation = ConcatenatedComputation(3, level=1)
        physical = computation.physical_input(logical_in)
        computation.apply(library.MAJ, 0, 1, 2)
        output = run(computation.circuit, physical)
        assert computation.decode_output(output) == library.MAJ.apply(logical_in)

    def test_level_two_gate_matches_logical_action(self):
        computation = ConcatenatedComputation(3, level=2)
        physical = computation.physical_input((1, 0, 1))
        computation.apply(library.MAJ, 0, 1, 2)
        output = run(computation.circuit, physical)
        assert computation.decode_output(output) == library.MAJ.apply((1, 0, 1))

    def test_level_two_corrects_a_planted_physical_error(self):
        computation = ConcatenatedComputation(3, level=2)
        physical = list(computation.physical_input((1, 1, 0)))
        # Flip one deep physical bit of the first logical block.
        physical[computation.blocks[0].deep_data_wires()[0]] ^= 1
        computation.apply(library.MAJ, 0, 1, 2)
        output = run(computation.circuit, tuple(physical))
        assert computation.decode_output(output) == library.MAJ.apply((1, 1, 0))

    def test_two_logical_bit_gate(self):
        computation = ConcatenatedComputation(2, level=1)
        physical = computation.physical_input((1, 0))
        computation.apply(library.CNOT, 0, 1)
        output = run(computation.circuit, physical)
        assert computation.decode_output(output) == (1, 1)


class TestGamma:
    def test_census_matches_paper_gamma(self):
        # Gamma_k = (3(1+E))^k with E = 6 (gates-only accounting).
        for level, expected in ((1, 21), (2, 441)):
            circuit, _ = concatenated_gate_circuit(library.MAJ, level)
            assert gamma_census(circuit)["gates"] == expected

    def test_level_one_reset_count(self):
        circuit, _ = concatenated_gate_circuit(library.MAJ, 1)
        assert gamma_census(circuit)["resets"] == 3 * 2  # 3 recoveries

    def test_recovery_only_census(self):
        circuit = Circuit(9)
        compile_recovery(circuit, Block.allocate(1))
        counts = circuit.count_ops()
        assert counts == {"RESET": 2, "MAJ⁻¹": 3, "MAJ": 3}

    def test_recover_false_gives_bare_transversal(self):
        computation = ConcatenatedComputation(3, level=1)
        computation.apply(library.MAJ, 0, 1, 2, recover=False)
        assert len(computation.circuit) == 3


class TestValidation:
    def test_recovery_needs_level_one(self):
        with pytest.raises(CodingError):
            compile_recovery(Circuit(1), Block.allocate(0))

    def test_level_must_be_positive(self):
        with pytest.raises(CodingError):
            ConcatenatedComputation(1, level=0)

    def test_operands_must_be_distinct(self):
        computation = ConcatenatedComputation(2, level=1)
        with pytest.raises(CodingError):
            computation.apply(library.CNOT, 0, 0)

    def test_physical_input_validates(self):
        computation = ConcatenatedComputation(2, level=1)
        with pytest.raises(CodingError):
            computation.physical_input((1,))
        with pytest.raises(CodingError):
            computation.physical_input((1, 2))

    def test_mixed_level_operands_rejected(self):
        from repro.coding.concatenation import compile_gate

        circuit = Circuit(90)
        blocks = [Block.allocate(1, 0), Block.allocate(0, 9), Block.allocate(1, 10)]
        with pytest.raises(CodingError):
            compile_gate(circuit, library.MAJ, blocks)
