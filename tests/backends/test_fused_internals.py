"""Unit tests of the fused backend's planner, codegen, and tape paths.

The conformance suite pins end-to-end bit-identity; these tests pin the
*mechanisms*: common-subexpression extraction actually shares work, the
generated kernels write outputs in place under the dependency order
(including the SWAP spill), the dnf fallback routes through the generic
interpreter, the register-tape interpreter (the numba path, exercised
here unjitted) matches the generated kernels, and prepared programs and
scratch pools are cached at the right scopes.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.backends import FusedBackend, get_backend, register_backend
from repro.backends.fused import (
    FusedProgram,
    _build_tape,
    _codegen_spec,
    _generic_kernel,
    _plan_group,
    _tape_apply,
)
from repro.backends.numpy_backend import NumpyBackend
from repro.coding import recovery_circuit
from repro.core import MAJ, SWAP, TOFFOLI
from repro.core.bitplane import BitplaneState
from repro.core.compiled import (
    ALL_ONES,
    SlotGroup,
    _column_slices,
    compile_circuit,
    gate_plane_program,
)
from repro.errors import ConfigError


def stacked_group(gate, wire_rows) -> SlotGroup:
    matrix = np.asarray(wire_rows, dtype=np.intp)
    return SlotGroup(
        program=gate_plane_program(gate),
        wire_matrix=matrix,
        row_slices=_column_slices(matrix),
    )


def run_chain_on(specs, planes):
    """Execute kernel specs on raw planes with fresh scratch."""
    for spec in specs:
        if spec.nbuf:
            buffers = [
                np.empty((spec.k, planes.shape[1]), dtype=np.uint64)
                for _ in range(spec.nbuf)
            ]
            spec.fn(planes, *buffers)
        else:
            spec.fn(planes)


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------


def test_planner_extracts_shared_pairs():
    # out0 = x0 ^ x1·x2 and out1 = x0 ^ x1 ^ x1·x2 share the
    # x0 ^ x1·x2 pair; the greedy extraction must factor it out so the
    # generated kernel computes it once.
    program = (
        ("anf", False, ((0,), (1, 2))),
        ("anf", False, ((0,), (1,), (1, 2))),
        ("copy", 2),
    )
    plan = _plan_group(program)
    assert plan is not None
    assert plan.monomials == [(1, 2)]
    assert len(plan.pairs) == 1
    shared = frozenset({("x", 0), ("m", 0)})
    assert frozenset(plan.pairs[0]) == shared
    # Both outputs now reference the extracted pair term.
    pair_users = [terms for terms, _ in plan.outputs if ("t", 0) in terms]
    assert len(pair_users) == 2


def test_planner_handles_maj_without_shared_pairs():
    # MAJ's outputs (x1x2^x0x2^x0x1, x0^x1, x0^x2) share no term pair;
    # the planner must still produce a full three-monomial plan.
    plan = _plan_group(gate_plane_program(MAJ))
    assert plan is not None
    assert sorted(plan.monomials) == [(0, 1), (0, 2), (1, 2)]
    assert plan.pairs == []


def test_planner_declines_dnf_programs():
    assert _plan_group((("copy", 0), ("dnf", (1, 3, 5, 6)))) is None


def test_planner_is_deterministic():
    first = _plan_group(gate_plane_program(MAJ))
    second = _plan_group(gate_plane_program(MAJ))
    assert first.pairs == second.pairs
    assert first.monomials == second.monomials
    assert [sorted(t) for t, _ in first.outputs] == [
        sorted(t) for t, _ in second.outputs
    ]


# ----------------------------------------------------------------------
# Generated kernels
# ----------------------------------------------------------------------


def test_codegen_kernel_is_in_place_and_correct():
    group = stacked_group(MAJ, [[0, 1, 2], [3, 4, 5], [6, 7, 8]])
    spec = _codegen_spec(group, _plan_group(group.program))
    # In-place contract: the kernel allocates nothing — every statement
    # is a gather, an out= ufunc call, or a copyto.
    assert "out=" in spec.source
    for line in spec.source.splitlines()[1:]:
        statement = line.strip()
        assert statement.startswith(("x", "np.", "planes[")), statement
    rng = np.random.default_rng(3)
    planes = rng.integers(0, 2**64, size=(9, 7), dtype=np.uint64)
    expected = planes.copy()
    run_chain_on([spec], planes)
    state = BitplaneState(expected, 7 * 64)
    state.apply_program_stacked(
        group.program, group.wire_matrix, group.row_slices
    )
    np.testing.assert_array_equal(planes, expected)


def test_codegen_handles_swap_cycle_with_spill():
    # SWAP's two outputs read each other's planes: the scheduler must
    # spill one through scratch and still land both values.
    group = stacked_group(SWAP, [[0, 1], [2, 3]])
    spec = _codegen_spec(group, _plan_group(group.program))
    rng = np.random.default_rng(4)
    planes = rng.integers(0, 2**64, size=(4, 5), dtype=np.uint64)
    original = planes.copy()
    run_chain_on([spec], planes)
    np.testing.assert_array_equal(planes[0], original[1])
    np.testing.assert_array_equal(planes[1], original[0])
    np.testing.assert_array_equal(planes[2], original[3])
    np.testing.assert_array_equal(planes[3], original[2])


def test_codegen_handles_fancy_indexed_positions():
    # Non-arithmetic wire columns (row_slices None) must gather and
    # scatter through fancy indexing without aliasing bugs.
    group = stacked_group(TOFFOLI, [[0, 2, 4], [5, 1, 3]])
    assert any(sl is None for sl in group.row_slices)
    spec = _codegen_spec(group, _plan_group(group.program))
    rng = np.random.default_rng(5)
    planes = rng.integers(0, 2**64, size=(6, 3), dtype=np.uint64)
    expected = planes.copy()
    run_chain_on([spec], planes)
    state = BitplaneState(expected, 3 * 64)
    state.apply_program_stacked(
        group.program, group.wire_matrix, group.row_slices
    )
    np.testing.assert_array_equal(planes, expected)


def test_dnf_group_falls_back_to_generic_kernel():
    # No library gate lowers to dnf, so build the Toffoli target column
    # as an explicit minterm program: x2' = OR of inputs 001,011,101,110.
    program = (("copy", 0), ("copy", 1), ("dnf", (1, 3, 5, 6)))
    matrix = np.asarray([[0, 1, 2], [3, 4, 5]], dtype=np.intp)
    group = SlotGroup(
        program=program, wire_matrix=matrix, row_slices=_column_slices(matrix)
    )
    slot = SimpleNamespace(is_reset=False, groups=(group,), resets=())
    compiled = SimpleNamespace(slots=(slot,), prepared={})
    prog = FusedProgram(compiled, jit=False)
    rng = np.random.default_rng(6)
    planes = rng.integers(0, 2**64, size=(6, 4), dtype=np.uint64)
    state = BitplaneState(planes.copy(), 4 * 64)
    prog.run(state)
    reference = planes.copy()
    _generic_kernel(group).fn(reference)
    np.testing.assert_array_equal(state.planes, reference)
    # And the dnf program really computes Toffoli on those wires.
    toffoli = BitplaneState(planes.copy(), 4 * 64)
    toffoli.apply_program_stacked(
        gate_plane_program(TOFFOLI), matrix, group.row_slices
    )
    np.testing.assert_array_equal(state.planes, toffoli.planes)


# ----------------------------------------------------------------------
# Register-tape interpreter (the numba path, run unjitted)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("gate", [MAJ, SWAP, TOFFOLI], ids=lambda g: g.name)
def test_tape_interpreter_matches_stacked_apply(gate):
    rows = [[0, 1, 2], [3, 4, 5]] if gate.arity == 3 else [[0, 1], [2, 3]]
    group = stacked_group(gate, rows)
    plan = _plan_group(group.program)
    tape, out_pos, out_reg, n_regs = _build_tape(plan, gate.arity)
    rng = np.random.default_rng(7)
    planes = rng.integers(0, 2**64, size=(6, 2), dtype=np.uint64)
    expected = planes.copy()
    _tape_apply(
        planes,
        np.ascontiguousarray(group.wire_matrix, dtype=np.int64),
        tape,
        out_pos,
        out_reg,
        np.empty(n_regs, dtype=np.uint64),
        ALL_ONES,
    )
    state = BitplaneState(expected, 2 * 64)
    state.apply_program_stacked(
        group.program, group.wire_matrix, group.row_slices
    )
    np.testing.assert_array_equal(planes, expected)


def test_jit_absence_falls_back_silently():
    # jit=True on a numba-less machine (or jit failure) must produce a
    # working chain-path program, not an error.  With numba installed
    # this instead asserts the JIT program stays bit-identical.
    backend = FusedBackend(jit=True)
    compiled = compile_circuit(recovery_circuit())
    state = BitplaneState.broadcast((1, 1, 1) + (0,) * 6, 1000)
    reference = state.copy()
    backend.prepare(compiled).run(state)
    get_backend("numpy").prepare(compiled).run(reference)
    np.testing.assert_array_equal(state.planes, reference.planes)


# ----------------------------------------------------------------------
# Caching scopes
# ----------------------------------------------------------------------


def test_prepared_program_cached_per_compiled_circuit():
    compiled = compile_circuit(recovery_circuit())
    backend = get_backend("fused")
    assert backend.prepare(compiled) is backend.prepare(compiled)
    # Differently configured fused backends must not share an entry
    # when their prepared programs would differ (JIT on vs off).
    no_jit = FusedBackend(jit=False)
    assert no_jit.prepare_key() == "fused"


def test_scratch_pool_is_shared_and_rebound_per_width():
    compiled = compile_circuit(recovery_circuit())
    program = FusedBackend(jit=False).prepare(compiled)
    assert isinstance(program, FusedProgram)
    chain_small = program._chain(4)
    assert program._chain(4) is chain_small  # cached per width
    chain_large = program._chain(1563)
    assert chain_large is not chain_small
    state = BitplaneState.broadcast((1, 1, 1) + (0,) * 6, 256)
    program.run(state)  # binds width 4 chain; executes cleanly


# ----------------------------------------------------------------------
# Registry behaviour
# ----------------------------------------------------------------------


def test_unknown_backend_raises_config_error():
    with pytest.raises(ConfigError, match="nonesuch"):
        get_backend("nonesuch")


def test_duplicate_registration_requires_replace():
    with pytest.raises(ConfigError, match="already registered"):
        register_backend("numpy", NumpyBackend)
    register_backend("numpy", NumpyBackend, replace=True)  # restores


def test_get_backend_passes_instances_through():
    backend = FusedBackend(jit=False)
    assert get_backend(backend) is backend
