"""Instantiate the backend conformance suite for every registered backend.

One subclass of :class:`conformance.BackendConformance` per registered
backend (plus a forced-configuration variant of the fused backend), and
a completeness guard: registering a backend without adding it here
fails the suite, so no backend can ship unconformed.
"""

from __future__ import annotations

from conformance import BackendConformance

from repro.backends import FusedBackend, available_backends


class TestNumpyBackendConformance(BackendConformance):
    backend_name = "numpy"


class TestFusedBackendConformance(BackendConformance):
    """The fused backend in its environment-selected configuration.

    With numba importable this exercises the JIT tape path; without it,
    the generated NumPy kernel chain — CI runs the suite in both
    environments.
    """

    backend_name = "fused"


class TestFusedBackendNoJitConformance(BackendConformance):
    """The generated-kernel chain, with JIT explicitly forced off.

    Keeps the pure-NumPy path conformed even on machines where numba
    happens to be importable.
    """

    backend_name = "fused"

    def make_backend(self):
        return FusedBackend(jit=False)


def test_every_registered_backend_is_conformance_tested():
    covered = {
        subclass.backend_name for subclass in BackendConformance.__subclasses__()
    }
    missing = set(available_backends()) - covered
    assert not missing, (
        f"registered backends without a conformance suite: {sorted(missing)} "
        f"— add a BackendConformance subclass in {__file__}"
    )
