"""Reusable conformance suite every plane-program backend must pass.

Subclass :class:`BackendConformance` with a ``backend_name`` (and
optionally a ``make_backend`` override for hand-configured instances)
to instantiate the whole suite for one backend —
``test_conformance.py`` does exactly that for every registered backend,
and asserts none is left out.  The suite is behavioural: it pins the
four guarantees the execution layers rely on, so any future backend
that passes it can be swapped in without re-validating the physics.

1. **Small-circuit equivalence** — every library gate and a population
   of random mixed circuits, evaluated over *all* inputs at once,
   agree bit for bit with the reference single-state simulator.
2. **Stacked vs solo bit-identity** — multi-point executor batches
   reproduce solo ``NoisyRunner`` runs exactly, per point.
3. **Fault-draw bit-identity** — noisy runs (sparse and dense fault
   regimes, odd trial counts exercising the padding rule) are
   bit-identical to the ``numpy`` reference backend: backends execute
   programs and scatter pre-drawn faults, they never touch the RNG.
4. **Decode correctness** — the backend's majority/popcount decode
   primitives match brute-force per-trial computation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import get_backend
from repro.coding import recovery_circuit
from repro.core.circuit import Circuit
from repro.core.compiled import compile_circuit
from repro.core.library import REGISTRY
from repro.core.simulator import run as reference_run
from repro.noise import NoiseModel, NoisyRunner
from repro.runtime import ExecutionPolicy, Executor, RunSpec

RECOVERY_INPUT = (1, 1, 1) + (0,) * 6


def all_input_rows(n_wires: int) -> np.ndarray:
    """Every ``n_wires``-bit input as one (2**n, n) trial block."""
    patterns = np.arange(1 << n_wires, dtype=np.int64)
    shifts = np.arange(n_wires - 1, -1, -1, dtype=np.int64)
    return ((patterns[:, None] >> shifts) & 1).astype(np.uint8)


def reference_rows(circuit: Circuit, rows: np.ndarray) -> np.ndarray:
    """The single-state reference simulator over a block of inputs."""
    return np.asarray(
        [reference_run(circuit, tuple(int(b) for b in row)) for row in rows],
        dtype=np.uint8,
    )


def random_circuit(rng: np.random.Generator, n_wires: int, n_ops: int) -> Circuit:
    """A random mix of library gates and resets on ``n_wires`` wires."""
    circuit = Circuit(n_wires)
    gates = [g for g in REGISTRY.values() if g.arity <= n_wires]
    for _ in range(n_ops):
        if rng.random() < 0.15:
            wires = rng.choice(n_wires, size=rng.integers(1, 3), replace=False)
            circuit.append_reset(
                *(int(w) for w in wires), value=int(rng.integers(2))
            )
        else:
            gate = gates[rng.integers(len(gates))]
            wires = rng.choice(n_wires, size=gate.arity, replace=False)
            circuit.append_gate(gate, *(int(w) for w in wires))
    return circuit


def failure_counts(policy: ExecutionPolicy, specs) -> list[int]:
    return [result.failures for result in Executor(policy).run(specs)]


class BackendConformance:
    """The parametrized suite; subclass with ``backend_name = ...``."""

    backend_name: str = ""

    def make_backend(self):
        """Override to conformance-test a hand-configured instance."""
        return get_backend(self.backend_name)

    @pytest.fixture
    def backend(self):
        return self.make_backend()

    # ------------------------------------------------------------------
    # 1. Exhaustive small-circuit equivalence vs the reference simulator
    # ------------------------------------------------------------------

    def test_every_library_gate_on_all_inputs(self, backend):
        for name, gate in sorted(REGISTRY.items()):
            circuit = Circuit(gate.arity)
            circuit.append_gate(gate, *range(gate.arity))
            rows = all_input_rows(gate.arity)
            state = backend.from_rows(rows)
            backend.prepare(compile_circuit(circuit)).run(state)
            np.testing.assert_array_equal(
                state.array, reference_rows(circuit, rows), err_msg=name
            )

    def test_random_mixed_circuits_on_all_inputs(self, backend):
        rng = np.random.default_rng(606)
        for n_wires in (3, 4, 5, 6):
            for _ in range(6):
                circuit = random_circuit(rng, n_wires, n_ops=12)
                rows = all_input_rows(n_wires)
                state = backend.from_rows(rows)
                backend.prepare(compile_circuit(circuit)).run(state)
                np.testing.assert_array_equal(
                    state.array, reference_rows(circuit, rows)
                )

    def test_recovery_circuit_against_numpy_backend(self, backend):
        # Wide batch (multi-word planes, stacked transversal groups).
        rng = np.random.default_rng(7)
        rows = rng.integers(0, 2, size=(1000, 9), dtype=np.uint8)
        compiled = compile_circuit(recovery_circuit())
        state = backend.from_rows(rows)
        backend.prepare(compiled).run(state)
        reference = get_backend("numpy").from_rows(rows)
        get_backend("numpy").prepare(compiled).run(reference)
        np.testing.assert_array_equal(state.planes, reference.planes)

    def test_slotwise_apply_matches_whole_run(self, backend):
        # apply_slot is the noisy engines' entry point; slot-by-slot
        # execution must equal the one-shot run.
        compiled = compile_circuit(recovery_circuit())
        a = backend.broadcast(RECOVERY_INPUT, 777)
        b = backend.broadcast(RECOVERY_INPUT, 777)
        prepared = backend.prepare(compiled)
        prepared.run(a)
        for index in range(len(compiled.slots)):
            prepared.apply_slot(b, index)
        np.testing.assert_array_equal(a.planes, b.planes)

    # ------------------------------------------------------------------
    # 2. Stacked vs solo bit-identity through the executor
    # ------------------------------------------------------------------

    def test_stacked_points_match_solo_runs(self, backend):
        circuit = recovery_circuit()
        noise_levels = (0.0, 1e-3, 0.05)
        policy = ExecutionPolicy(engine="bitplane", backend=self.backend_name)
        specs = [
            RunSpec(
                circuit=circuit,
                input_bits=RECOVERY_INPUT,
                observable=lambda s: s.majority_of((0, 1, 2)) != 1,
                noise=NoiseModel(gate_error=g),
                trials=3000,
                seed=40 + i,
            )
            for i, g in enumerate(noise_levels)
        ]
        stacked = failure_counts(policy, specs)
        solo = [
            failure_counts(policy, [spec])[0] for spec in specs
        ]
        assert stacked == solo

    # ------------------------------------------------------------------
    # 3. Fault-draw bit-identity against the numpy reference backend
    # ------------------------------------------------------------------

    @pytest.mark.parametrize(
        "gate_error, trials",
        [
            (0.01, 2000),  # sparse gap-jumping regime
            (0.3, 1999),   # dense regime + padding bits in the last word
        ],
    )
    def test_noisy_run_bit_identical_to_numpy(self, backend, gate_error, trials):
        def noisy(chosen_backend):
            runner = NoisyRunner(
                NoiseModel(gate_error=gate_error),
                seed=2026,
                engine="bitplane",
                backend=chosen_backend,
            )
            return runner.run_from_input(
                recovery_circuit(), RECOVERY_INPUT, trials
            )

        ours = noisy(backend)
        reference = noisy("numpy")
        np.testing.assert_array_equal(
            ours.fault_counts, reference.fault_counts
        )
        np.testing.assert_array_equal(
            ours.states.planes, reference.states.planes
        )

    # ------------------------------------------------------------------
    # 4. Decode correctness (majority / popcount primitives)
    # ------------------------------------------------------------------

    def test_majority_plane_matches_bruteforce(self, backend):
        rng = np.random.default_rng(11)
        rows = rng.integers(0, 2, size=(500, 9), dtype=np.uint8)
        state = backend.from_rows(rows)
        for wires in ((0, 1, 2), (0, 3, 6), (1, 4, 7)):
            plane = backend.majority_plane(state, wires)
            expected = (
                rows[:, list(wires)].sum(axis=1) > len(wires) // 2
            ).astype(np.uint8)
            from repro.core.bitplane import unpack_words

            np.testing.assert_array_equal(
                unpack_words(plane, state.trials), expected
            )

    def test_popcount_primitives(self, backend):
        rng = np.random.default_rng(12)
        flags = rng.integers(0, 2, size=130, dtype=np.uint8)
        from repro.core.bitplane import pack_bool

        words = pack_bool(flags)
        assert backend.popcount(words) == int(flags.sum())
        assert backend.count_trial_ones(words, 130) == int(flags.sum())
        # Padding bits must not leak into the trial count.
        words_padded = words.copy()
        words_padded[-1] |= np.uint64(1) << np.uint64(63)
        assert backend.count_trial_ones(words_padded, 130) == int(flags.sum())
