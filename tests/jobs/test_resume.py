"""Crash-safe resume and bit-identical merge for sharded sweep jobs.

The load-bearing guarantee of the job layer: a sweep that is sharded,
interrupted, resumed (possibly by a different process with a different
shard-size argument), and merged returns exactly the numbers one
uninterrupted in-process :meth:`~repro.runtime.Executor.run` returns.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import AnalysisError, JobError
from repro.harness.sweep import spawn_seeds
from repro.harness.threshold_finder import cycle_error_specs
from repro.jobs import SweepJob
from repro.runtime import ExecutionPolicy, Executor


def _specs(count=6, trials=300, base_seed=11):
    seeds = spawn_seeds(base_seed, count)
    points = tuple((0.002 * (i + 1), seeds[i]) for i in range(count))
    return cycle_error_specs(points, trials, cycles=1)


@pytest.fixture
def policy():
    return ExecutionPolicy.from_env()


class TestSubmitAndRun:
    def test_complete_run_matches_serial_executor(self, tmp_path, policy):
        specs = _specs()
        job = SweepJob.submit(tmp_path / "job", specs, policy, shard_size=2)
        report = job.run()
        assert report.shards_run == len(job.shards)
        assert not report.interrupted
        assert job.collect() == Executor(policy).run(specs)

    def test_empty_spec_list_refused(self, tmp_path, policy):
        with pytest.raises(AnalysisError, match="at least one"):
            SweepJob.submit(tmp_path / "job", [], policy)

    def test_different_sweep_in_same_dir_refused(self, tmp_path, policy):
        SweepJob.submit(tmp_path / "job", _specs(4), policy)
        with pytest.raises(JobError, match="different sweep"):
            SweepJob.submit(tmp_path / "job", _specs(4, trials=999), policy)

    def test_pooled_run_bit_identical(self, tmp_path, policy):
        specs = _specs(4, trials=200)
        job = SweepJob.submit(tmp_path / "job", specs, policy, shard_size=1)
        job.run(workers=2)
        assert job.collect() == Executor(policy).run(specs)


class TestInterruptAndResume:
    def test_killed_sweep_resumes_bit_identical(self, tmp_path, policy):
        # The acceptance scenario: interrupt mid-run, resume in a
        # "new process" (a freshly loaded job), merge, and require
        # bit-identity with the uninterrupted single-process run.
        specs = _specs()
        direct = Executor(policy).run(specs)

        job = SweepJob.submit(tmp_path / "job", specs, policy, shard_size=2)
        report = job.run(max_shards=1)
        assert report.interrupted
        assert report.shards_run == 1
        status = job.status()
        assert not status.complete
        assert status.shards_done == 1

        resumed = SweepJob.submit(
            tmp_path / "job", specs, policy, shard_size=2
        )
        report = resumed.run()
        assert report.shards_skipped == 1
        assert report.shards_run == len(resumed.shards) - 1
        assert resumed.status().complete
        assert resumed.collect() == direct

    def test_resume_with_drifted_shard_size_uses_stored_plan(
        self, tmp_path, policy
    ):
        # Shard size is scheduling, not identity: a resume that asks
        # for a different chunking still runs the manifest's plan.
        specs = _specs(4, trials=200)
        job = SweepJob.submit(tmp_path / "job", specs, policy, shard_size=2)
        job.run(max_shards=1)
        resumed = SweepJob.submit(
            tmp_path / "job", specs, policy, shard_size=64
        )
        assert [s.shard_id for s in resumed.shards] == [
            s.shard_id for s in job.shards
        ]
        resumed.run()
        assert resumed.collect() == Executor(policy).run(specs)

    def test_lost_checkpoint_reruns_only_that_shard_from_store(
        self, tmp_path, policy
    ):
        # A crash can die between the store puts and the checkpoint
        # write; the shard re-runs, but its points come back from the
        # store without a single simulation.
        specs = _specs()
        job = SweepJob.submit(tmp_path / "job", specs, policy, shard_size=2)
        job.run()
        victim = job.shards[0]
        (tmp_path / "job" / "shards" / f"{victim.shard_id}.json").unlink()
        resumed = SweepJob.load(tmp_path / "job")
        report = resumed.run()
        assert report.shards_run == 1
        assert report.simulated_points == 0
        assert report.cached_points == len(victim)
        assert resumed.collect() == Executor(policy).run(specs)

    def test_completed_resubmit_serves_everything_from_disk(
        self, tmp_path, policy
    ):
        # Acceptance criterion: repeating a completed sweep costs zero
        # simulation, asserted via counters.
        specs = _specs()
        SweepJob.submit(tmp_path / "job", specs, policy, shard_size=2).run()
        repeat = SweepJob.submit(
            tmp_path / "job", specs, policy, shard_size=2
        )
        report = repeat.run()
        assert report.shards_run == 0
        assert report.simulated_points == 0
        assert repeat.collect() == Executor(policy).run(specs)


class TestCollect:
    def test_collect_before_any_run_raises(self, tmp_path, policy):
        job = SweepJob.submit(tmp_path / "job", _specs(4), policy)
        with pytest.raises(AnalysisError, match="store is empty"):
            job.collect()

    def test_collect_incomplete_names_pending_shards(self, tmp_path, policy):
        job = SweepJob.submit(
            tmp_path / "job", _specs(), policy, shard_size=2
        )
        job.run(max_shards=1)
        with pytest.raises(AnalysisError, match="incomplete"):
            job.collect()

    def test_collect_rows_pairs_specs_and_wilson(self, tmp_path, policy):
        specs = _specs(4, trials=200)
        job = SweepJob.submit(tmp_path / "job", specs, policy, shard_size=2)
        job.run()
        rows = job.collect_rows()
        assert [spec for spec, _, _ in rows] == specs
        for spec, result, estimate in rows:
            assert estimate.failures == result.failures
            assert estimate.trials == spec.trials
            low, high = estimate.interval
            assert 0.0 <= low <= high <= 1.0


class TestManifestIntegrity:
    def test_load_missing_manifest_raises(self, tmp_path):
        with pytest.raises(JobError, match="manifest"):
            SweepJob.load(tmp_path / "nowhere")

    def test_edited_manifest_specs_detected(self, tmp_path, policy):
        job = SweepJob.submit(tmp_path / "job", _specs(4), policy)
        manifest_path = tmp_path / "job" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["specs"][0]["trials"] += 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(JobError, match="do not hash"):
            SweepJob.load(tmp_path / "job")

    def test_foreign_checkpoint_detected(self, tmp_path, policy):
        specs = _specs(4, trials=200)
        job = SweepJob.submit(tmp_path / "job", specs, policy, shard_size=2)
        job.run()
        shard = job.shards[0]
        path = tmp_path / "job" / "shards" / f"{shard.shard_id}.json"
        checkpoint = json.loads(path.read_text())
        checkpoint["job_id"] = "somebody-else"
        path.write_text(json.dumps(checkpoint))
        with pytest.raises(JobError, match="does not belong"):
            job.status()

    def test_unreadable_checkpoint_is_pending_not_fatal(
        self, tmp_path, policy
    ):
        # Crash-safety: a torn/garbage checkpoint file means the shard
        # simply has not finished; it re-runs (from the store).
        specs = _specs(4, trials=200)
        job = SweepJob.submit(tmp_path / "job", specs, policy, shard_size=2)
        job.run()
        shard = job.shards[0]
        path = tmp_path / "job" / "shards" / f"{shard.shard_id}.json"
        path.write_text("{torn")
        assert job.status().shards_done == len(job.shards) - 1
        report = job.run()
        assert report.shards_run == 1
        assert report.simulated_points == 0
        assert job.collect() == Executor(policy).run(specs)

    def test_tampered_checkpoint_counts_detected(self, tmp_path, policy):
        specs = _specs(4, trials=200)
        job = SweepJob.submit(tmp_path / "job", specs, policy, shard_size=2)
        job.run()
        shard = job.shards[0]
        path = tmp_path / "job" / "shards" / f"{shard.shard_id}.json"
        checkpoint = json.loads(path.read_text())
        checkpoint["points"][0]["result"]["failures"] = (
            checkpoint["points"][0]["result"]["trials"] + 1
        )
        path.write_text(json.dumps(checkpoint))
        with pytest.raises(JobError, match="inconsistent"):
            job.collect()
