"""End-to-end tests for the tools/jobs.py command line."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def jobs_cli():
    spec = importlib.util.spec_from_file_location(
        "tools_jobs", REPO_ROOT / "tools" / "jobs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


SWEEP = ["--points", "4", "--trials", "300", "--shard-size", "2"]


class TestCliLifecycle:
    def test_interrupt_resume_collect(self, tmp_path, jobs_cli, capsys):
        job_dir = str(tmp_path / "job")

        # Interrupted submit: one shard only.
        rc = jobs_cli.main(["submit", job_dir, *SWEEP, "--max-shards", "1"])
        assert rc == 0
        assert "resubmit to finish" in capsys.readouterr().out

        # Status of an incomplete job exits 3.
        assert jobs_cli.main(["status", job_dir]) == 3
        assert "1/2 shards" in capsys.readouterr().out

        # Collect refuses while incomplete.
        assert jobs_cli.main(["collect", job_dir]) == 2
        assert "incomplete" in capsys.readouterr().err

        # Resume finishes the job; status then exits 0.
        assert jobs_cli.main(["submit", job_dir, *SWEEP]) == 0
        capsys.readouterr()
        assert jobs_cli.main(["status", job_dir]) == 0

        # Merged table is bit-identical to a serial in-process run.
        rc = jobs_cli.main(["collect", job_dir, "--check-serial"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "bit-identical" in out
        assert "gate_error" in out

    def test_completed_resubmit_simulates_nothing(
        self, tmp_path, jobs_cli, capsys
    ):
        job_dir = str(tmp_path / "job")
        assert jobs_cli.main(["submit", job_dir, *SWEEP]) == 0
        capsys.readouterr()
        assert jobs_cli.main(["submit", job_dir, *SWEEP]) == 0
        assert "0 points simulated" in capsys.readouterr().out

    def test_conflicting_sweep_reported_as_error(
        self, tmp_path, jobs_cli, capsys
    ):
        job_dir = str(tmp_path / "job")
        assert jobs_cli.main(["submit", job_dir, *SWEEP]) == 0
        capsys.readouterr()
        rc = jobs_cli.main(
            ["submit", job_dir, "--points", "4", "--trials", "999"]
        )
        assert rc == 2
        assert "different sweep" in capsys.readouterr().err


class TestVerboseStatus:
    def test_verbose_shard_table_and_hit_ratio(
        self, tmp_path, jobs_cli, capsys
    ):
        job_dir = str(tmp_path / "job")
        assert jobs_cli.main(["submit", job_dir, *SWEEP, "--verbose"]) == 0
        captured = capsys.readouterr()
        # The submit heartbeat goes to stderr, one line per shard.
        assert captured.err.count("shard ") == 2

        assert jobs_cli.main(["status", job_dir, "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "store hit ratio: 0/4 (0.0%)" in out
        assert out.count("done") == 2

    def test_verbose_is_observational_only(self, tmp_path, jobs_cli, capsys):
        # Exit contract unchanged: incomplete job still exits 3 under
        # --verbose, and pending shards render without stats.
        job_dir = str(tmp_path / "job")
        assert (
            jobs_cli.main(["submit", job_dir, *SWEEP, "--max-shards", "1"])
            == 0
        )
        capsys.readouterr()
        assert jobs_cli.main(["status", job_dir, "--verbose"]) == 3
        out = capsys.readouterr().out
        assert "pending" in out

    def test_old_checkpoints_without_stats_render(
        self, tmp_path, jobs_cli, capsys
    ):
        # Strip the stats block (simulating a pre-obs checkpoint);
        # verbose status must degrade to dashes, not crash.
        import json

        job_dir = tmp_path / "job"
        assert jobs_cli.main(["submit", str(job_dir), *SWEEP]) == 0
        capsys.readouterr()
        for checkpoint in (job_dir / "shards").glob("*.json"):
            data = json.loads(checkpoint.read_text())
            data.pop("stats", None)
            checkpoint.write_text(json.dumps(data))
        assert jobs_cli.main(["status", str(job_dir), "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "-" in out
        assert "store hit ratio" not in out
