"""Tests for deterministic shard planning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AnalysisError, JobError
from repro.harness.sweep import spawn_seeds
from repro.harness.threshold_finder import cycle_error_specs
from repro.jobs import DEFAULT_SHARD_SIZE, plan_shards
from repro.runtime import ExecutionPolicy


def _specs(count, trials=100, cycles=1):
    seeds = spawn_seeds(0, count)
    points = tuple((0.001 * (i + 1), seeds[i]) for i in range(count))
    return cycle_error_specs(points, trials, cycles=cycles)


@pytest.fixture
def policy():
    return ExecutionPolicy.from_env()


class TestPlanning:
    def test_deterministic_ids_and_indices(self, policy):
        first = plan_shards(_specs(7), policy, shard_size=3)
        second = plan_shards(_specs(7), policy, shard_size=3)
        assert first == second

    def test_covers_each_spec_exactly_once(self, policy):
        shards = plan_shards(_specs(10), policy, shard_size=3)
        covered = sorted(i for shard in shards for i in shard.indices)
        assert covered == list(range(10))

    def test_respects_shard_size(self, policy):
        shards = plan_shards(_specs(10), policy, shard_size=4)
        assert max(len(shard) for shard in shards) <= 4

    def test_distinct_sweeps_get_distinct_ids(self, policy):
        a = plan_shards(_specs(4, trials=100), policy, shard_size=2)
        b = plan_shards(_specs(4, trials=200), policy, shard_size=2)
        assert {s.shard_id for s in a}.isdisjoint(s.shard_id for s in b)

    def test_groups_by_circuit_before_chunking(self, policy):
        # Mixed 1-cycle and 2-cycle specs have different circuits;
        # shards must never straddle the two compiled programs.
        one = _specs(3, cycles=1)
        two = _specs(3, cycles=2)
        mixed = [one[0], two[0], one[1], two[1], one[2], two[2]]
        shards = plan_shards(mixed, policy, shard_size=10)
        for shard in shards:
            keys = {
                mixed[i].circuit.content_key() for i in shard.indices
            }
            assert len(keys) == 1
        assert len(shards) == 2

    def test_default_shard_size(self, policy):
        shards = plan_shards(_specs(3), policy)
        assert len(shards) == 1
        assert DEFAULT_SHARD_SIZE >= 3


class TestRefusals:
    def test_non_positive_shard_size(self, policy):
        with pytest.raises(AnalysisError, match="shard_size"):
            plan_shards(_specs(2), policy, shard_size=0)

    def test_generator_seed_named_by_index(self, policy):
        specs = _specs(3)
        bad = type(specs[1])(
            circuit=specs[1].circuit,
            input_bits=specs[1].input_bits,
            observable=specs[1].observable,
            noise=specs[1].noise,
            trials=specs[1].trials,
            seed=np.random.default_rng(5),
        )
        with pytest.raises(JobError, match="spec 1"):
            plan_shards([specs[0], bad, specs[2]], policy)
