"""Store-backed harness entry points stay bit-identical to plain ones."""

from __future__ import annotations

import pytest

from repro.errors import AnalysisError
from repro.harness.sweep import spawn_seeds
from repro.harness.threshold_finder import (
    cycle_stage_spec,
    find_pseudo_threshold_adaptive,
    measure_cycle_errors,
)
from repro.jobs import ResultStore
from repro.runtime import ExecutionPolicy


@pytest.fixture
def policy():
    return ExecutionPolicy.from_env()


class TestMeasureCycleErrorsStore:
    def _points(self, count=3):
        seeds = spawn_seeds(3, count)
        return tuple((0.002 * (i + 1), seeds[i]) for i in range(count))

    def test_stored_measurement_matches_plain(self, tmp_path, policy):
        points = self._points()
        plain = measure_cycle_errors(points, 400, policy=policy)
        store = ResultStore(tmp_path)
        first = measure_cycle_errors(points, 400, policy=policy, store=store)
        assert first == plain
        assert store.stats()["puts"] == len(points)

    def test_repeat_measurement_is_simulation_free(self, tmp_path, policy):
        points = self._points()
        store = ResultStore(tmp_path)
        first = measure_cycle_errors(points, 400, policy=policy, store=store)
        before = store.stats()["puts"]
        again = measure_cycle_errors(points, 400, policy=policy, store=store)
        assert again == first
        assert store.stats()["puts"] == before  # nothing new simulated
        assert store.stats()["hits"] >= len(points)


class TestAdaptiveSearchStore:
    def _search(self, policy, store=None):
        return find_pseudo_threshold_adaptive(
            lower=1e-3,
            upper=5e-2,
            trials=2000,
            iterations=4,
            spec_builder=cycle_stage_spec,
            policy=policy,
            store=store,
        )

    def test_stored_search_matches_plain(self, tmp_path, policy):
        plain = self._search(policy)
        stored = self._search(policy, store=ResultStore(tmp_path))
        assert stored == plain

    def test_repeat_search_is_simulation_free(self, tmp_path, policy):
        store = ResultStore(tmp_path)
        first = self._search(policy, store=store)
        puts_after_first = store.stats()["puts"]
        again = self._search(policy, store=store)
        assert again == first
        assert store.stats()["puts"] == puts_after_first

    def test_store_with_evaluate_form_refused(self, tmp_path):
        def evaluate(g, n, seed):  # pragma: no cover - never called
            return 0.0, 0

        with pytest.raises(AnalysisError, match="spec_builder"):
            find_pseudo_threshold_adaptive(
                evaluate,
                lower=1e-3,
                upper=5e-2,
                trials=100,
                store=ResultStore(tmp_path),
            )
