"""Tests for the content-keyed result store."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import JobError
from repro.harness.threshold_finder import cycle_error_specs
from repro.jobs import (
    CachingExecutor,
    RESULT_STREAM_VERSION,
    STORE_FORMAT_VERSION,
    ResultStore,
    point_key,
)
from repro.runtime import ExecutionPolicy, Executor, PointResult


def _specs(count=2, trials=200):
    points = tuple((0.002 * (i + 1), 100 + i) for i in range(count))
    return cycle_error_specs(points, trials, cycles=1)


@pytest.fixture
def policy():
    return ExecutionPolicy.from_env()


class TestPointKey:
    def test_deterministic(self, policy):
        (spec,) = _specs(1)
        assert point_key(spec, policy) == point_key(spec, policy)

    def test_seed_and_noise_change_the_key(self, policy):
        spec_a, spec_b = _specs(2)
        assert point_key(spec_a, policy) != point_key(spec_b, policy)

    def test_backend_and_parallel_do_not_change_the_key(self, policy):
        # Backends and pool width are bit-identical by contract, so
        # they are provenance, not identity: a point computed under
        # one backend must be a cache hit under another.
        from dataclasses import replace

        (spec,) = _specs(1)
        base = point_key(spec, policy)
        assert point_key(spec, replace(policy, parallel=4)) == base
        assert point_key(spec, replace(policy, backend=policy.backend)) == base

    def test_engine_changes_the_key(self, policy):
        # The engine selects the RNG stream; forcing a different
        # engine is a different (still valid) result.
        from dataclasses import replace

        (spec,) = _specs(1)
        keys = {
            point_key(spec, replace(policy, engine=engine))
            for engine in ("batched", "bitplane")
        }
        assert len(keys) == 2

    def test_non_integer_seed_refused(self, policy):
        spec = _specs(1)[0]
        bad = type(spec)(
            circuit=spec.circuit,
            input_bits=spec.input_bits,
            observable=spec.observable,
            noise=spec.noise,
            trials=spec.trials,
            seed=np.random.default_rng(0),
        )
        with pytest.raises(JobError, match="integer"):
            point_key(bad, policy)


class TestStoreRoundTrip:
    def test_miss_then_put_then_hit(self, tmp_path, policy):
        store = ResultStore(tmp_path)
        (spec,) = _specs(1)
        assert store.get(spec, policy) is None
        (result,) = Executor(policy).run([spec])
        store.put(spec, policy, result)
        assert store.get(spec, policy) == result
        assert store.stats() == {"hits": 1, "misses": 1, "puts": 1, "stale": 0}
        assert len(store) == 1

    def test_entry_embeds_provenance(self, tmp_path, policy):
        store = ResultStore(tmp_path)
        (spec,) = _specs(1)
        (result,) = Executor(policy).run([spec])
        key = store.put(spec, policy, result)
        entry = json.loads((tmp_path / key[:2] / f"{key}.json").read_text())
        assert entry["format"] == STORE_FORMAT_VERSION
        assert entry["provenance"]["stream"] == RESULT_STREAM_VERSION
        assert entry["provenance"]["backend"] == policy.backend
        assert "version" in entry["provenance"]

    def test_mismatched_trials_refused_on_put(self, tmp_path, policy):
        store = ResultStore(tmp_path)
        (spec,) = _specs(1, trials=200)
        bad = PointResult(failures=0, trials=100, faulted_trials=5, engine="batched")
        with pytest.raises(JobError, match="mismatched"):
            store.put(spec, policy, bad)


class TestStaleDetection:
    def _stored(self, tmp_path, policy):
        store = ResultStore(tmp_path)
        (spec,) = _specs(1)
        (result,) = Executor(policy).run([spec])
        key = store.put(spec, policy, result)
        return store, spec, tmp_path / key[:2] / f"{key}.json"

    def test_corrupt_json_raises_not_served(self, tmp_path, policy):
        store, spec, path = self._stored(tmp_path, policy)
        path.write_text("{not json")
        with pytest.raises(JobError, match="unreadable"):
            store.get(spec, policy)
        assert store.stats()["stale"] == 1

    def test_foreign_format_version_raises(self, tmp_path, policy):
        store, spec, path = self._stored(tmp_path, policy)
        entry = json.loads(path.read_text())
        entry["format"] = STORE_FORMAT_VERSION + 1
        path.write_text(json.dumps(entry))
        with pytest.raises(JobError, match="format"):
            store.get(spec, policy)

    def test_tampered_counts_raise(self, tmp_path, policy):
        store, spec, path = self._stored(tmp_path, policy)
        entry = json.loads(path.read_text())
        entry["result"]["failures"] = entry["result"]["trials"] + 1
        path.write_text(json.dumps(entry))
        with pytest.raises(JobError, match="stale"):
            store.get(spec, policy)

    def test_swapped_spec_raises(self, tmp_path, policy):
        # An entry whose embedded spec differs from the request means
        # the file was moved or the key scheme broke — never serve it.
        store, spec, path = self._stored(tmp_path, policy)
        entry = json.loads(path.read_text())
        entry["spec"]["trials"] = entry["spec"]["trials"] + 1
        path.write_text(json.dumps(entry))
        with pytest.raises(JobError, match="spec"):
            store.get(spec, policy)


class TestCachingExecutor:
    def test_second_run_is_all_cache_hits(self, tmp_path, policy):
        specs = _specs(3)
        direct = Executor(policy).run(specs)
        caching = CachingExecutor(ResultStore(tmp_path), policy=policy)
        first = caching.run(specs)
        assert first == direct
        assert caching.simulated_points == 3
        assert caching.cached_points == 0
        again = CachingExecutor(caching.store, policy=policy)
        assert again.run(specs) == direct
        assert again.simulated_points == 0
        assert again.cached_points == 3

    def test_partial_hit_simulates_only_misses(self, tmp_path, policy):
        specs = _specs(3)
        store = ResultStore(tmp_path)
        CachingExecutor(store, policy=policy).run(specs[:1])
        caching = CachingExecutor(store, policy=policy)
        assert caching.run(specs) == Executor(policy).run(specs)
        assert caching.simulated_points == 2
        assert caching.cached_points == 1

    def test_generator_seed_bypasses_the_store(self, tmp_path, policy):
        (spec,) = _specs(1)
        bad = type(spec)(
            circuit=spec.circuit,
            input_bits=spec.input_bits,
            observable=spec.observable,
            noise=spec.noise,
            trials=spec.trials,
            seed=np.random.default_rng(0),
        )
        store = ResultStore(tmp_path)
        caching = CachingExecutor(store, policy=policy)
        caching.run([bad])
        assert caching.simulated_points == 1
        assert len(store) == 0  # nothing durable for an unreproducible point

    def test_run_one(self, tmp_path, policy):
        (spec,) = _specs(1)
        caching = CachingExecutor(ResultStore(tmp_path), policy=policy)
        assert caching.run_one(spec) == Executor(policy).run([spec])[0]
