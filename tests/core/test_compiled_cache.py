"""The process-wide compile cache: keying, counters, env knobs."""

from __future__ import annotations

import pytest

from repro.core.circuit import Circuit
from repro.core.compiled import (
    CompiledCircuit,
    clear_compile_cache,
    compile_cache_stats,
    compile_circuit,
)
from repro.core.library import MAJ


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


def build_circuit() -> Circuit:
    return Circuit(4).cnot(0, 1).toffoli(1, 2, 3).append_reset(2, value=1)


class TestContentKey:
    """The public content key the cache (and the synth database) share."""

    def test_rebuilt_circuit_shares_key(self):
        assert build_circuit().content_key() == build_circuit().content_key()

    def test_name_is_not_content(self):
        assert (
            build_circuit().copy(name="renamed").content_key()
            == build_circuit().content_key()
        )

    def test_mutation_changes_key(self):
        circuit = build_circuit()
        key = circuit.content_key()
        circuit.x(0)
        assert circuit.content_key() != key

    def test_key_is_hashable(self):
        assert {build_circuit().content_key(): 1}[build_circuit().content_key()] == 1


class TestKeying:
    def test_identical_content_hits(self):
        first = compile_circuit(build_circuit())
        second = compile_circuit(build_circuit())  # rebuilt from scratch
        assert first is second
        stats = compile_cache_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1

    def test_mutated_circuit_misses(self):
        circuit = build_circuit()
        first = compile_circuit(circuit)
        circuit.maj(0, 1, 2)
        second = compile_circuit(circuit)
        assert first is not second
        assert len(second) == len(first) + 1
        assert compile_cache_stats() == {"hits": 0, "misses": 2, "size": 2}

    def test_reset_value_is_part_of_the_key(self):
        first = compile_circuit(Circuit(2).append_reset(0, value=0))
        second = compile_circuit(Circuit(2).append_reset(0, value=1))
        assert first is not second

    def test_wire_count_is_part_of_the_key(self):
        first = compile_circuit(Circuit(3).cnot(0, 1))
        second = compile_circuit(Circuit(4).cnot(0, 1))
        assert first is not second

    def test_gate_identity_is_part_of_the_key(self):
        first = compile_circuit(Circuit(3).maj(0, 1, 2))
        second = compile_circuit(Circuit(3).append_gate(MAJ.inverse(), 0, 1, 2))
        assert first is not second

    def test_fuse_flag_is_part_of_the_key(self):
        fused = compile_circuit(build_circuit(), fuse=True)
        unfused = compile_circuit(build_circuit(), fuse=False)
        assert fused is not unfused
        assert fused.fused and not unfused.fused


class TestKnobs:
    def test_cache_disabled_compiles_fresh(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILE_CACHE", "0")
        first = compile_circuit(build_circuit())
        second = compile_circuit(build_circuit())
        assert first is not second
        assert compile_cache_stats() == {"hits": 0, "misses": 0, "size": 0}

    def test_disabling_ignores_warm_entries(self, monkeypatch):
        warm = compile_circuit(build_circuit())
        monkeypatch.setenv("REPRO_COMPILE_CACHE", "0")
        assert compile_circuit(build_circuit()) is not warm

    def test_fusion_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSE", "0")
        compiled = compile_circuit(build_circuit())
        assert not compiled.fused
        assert len(compiled.slots) == len(compiled.schedule)

    def test_clear_resets_counters(self):
        compile_circuit(build_circuit())
        clear_compile_cache()
        assert compile_cache_stats() == {"hits": 0, "misses": 0, "size": 0}

    def test_direct_construction_bypasses_cache(self):
        CompiledCircuit(build_circuit())
        assert compile_cache_stats()["size"] == 0


class TestEviction:
    def test_bounded_with_lru_eviction(self):
        from repro.core.compiled import _COMPILE_CACHE

        oldest = compile_circuit(Circuit(2).cnot(0, 1))
        for wires in range(3, 2 + _COMPILE_CACHE.max_entries):  # fill to the bound
            compile_circuit(Circuit(wires).cnot(0, 1))
        # Touch the oldest entry so eviction removes something else.
        assert compile_circuit(Circuit(2).cnot(0, 1)) is oldest
        compile_circuit(Circuit(2).swap(0, 1))  # exceeds the bound
        assert compile_cache_stats()["size"] == _COMPILE_CACHE.max_entries
        assert compile_circuit(Circuit(2).cnot(0, 1)) is oldest  # survived
