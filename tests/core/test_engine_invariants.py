"""Invariant-based property tests shared by all three engines.

Conservative gates (Fredkin-style ops: SWAP, FREDKIN, and the SWAP3
rotations) permute bits without creating or destroying ones, so any
circuit built from them must preserve the per-trial Hamming weight —
and a fortiori the parity — of every state.  The MAJ network interior
(a MAJ immediately undone by MAJ⁻¹, the shape of every recovery
decode/encode block) is the identity, so it must restore states
exactly.  These invariants hold with zero tolerance and serve as
noise-free oracles for the engines: a lowering bug that survives the
differential suite by luck still has to conserve weight here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BatchedState,
    BitplaneState,
    run,
    run_batched,
    run_bitplane,
)
from repro.core.circuit import Circuit
from repro.core.library import FREDKIN, MAJ, MAJ_INV, SWAP, SWAP3_DOWN, SWAP3_UP, X
from repro.noise import NoiseModel, NoisyRunner

#: Conservative (weight-preserving) gates of the library.
CONSERVATIVE_GATES = (SWAP, FREDKIN, SWAP3_DOWN, SWAP3_UP)


def random_conservative_circuit(
    rng: np.random.Generator, n_wires: int, n_ops: int
) -> Circuit:
    circuit = Circuit(n_wires)
    for _ in range(n_ops):
        gate = CONSERVATIVE_GATES[int(rng.integers(len(CONSERVATIVE_GATES)))]
        wires = rng.choice(n_wires, size=gate.arity, replace=False)
        circuit.append_gate(gate, *(int(w) for w in wires))
    return circuit


def random_batch(rng: np.random.Generator, trials: int, n_wires: int) -> np.ndarray:
    return rng.integers(0, 2, size=(trials, n_wires), dtype=np.uint8)


class TestHammingWeightInvariant:
    @pytest.mark.parametrize("n_wires", [3, 6, 9])
    def test_conservative_circuits_preserve_weight(self, n_wires):
        rng = np.random.default_rng(8000 + n_wires)
        for _ in range(4):
            circuit = random_conservative_circuit(rng, n_wires, n_ops=30)
            rows = random_batch(rng, 200, n_wires)
            weights = rows.sum(axis=1)

            batched = run_batched(circuit, BatchedState(rows.copy()))
            bitplane = run_bitplane(circuit, BitplaneState.from_rows(rows))
            np.testing.assert_array_equal(batched.array.sum(axis=1), weights)
            np.testing.assert_array_equal(bitplane.array.sum(axis=1), weights)
            for index in (0, 77, 199):
                output = run(circuit, tuple(int(b) for b in rows[index]))
                assert sum(output) == int(weights[index])

    def test_weight_invariant_survives_noiseless_runner(self):
        # The same oracle through the Monte-Carlo layer: with zero
        # noise, both engine paths of NoisyRunner must conserve weight.
        rng = np.random.default_rng(8500)
        circuit = random_conservative_circuit(rng, 6, n_ops=25)
        input_bits = (1, 0, 1, 1, 0, 0)
        for engine in ("batched", "bitplane"):
            runner = NoisyRunner(NoiseModel.noiseless(), seed=0, engine=engine)
            result = runner.run_from_input(circuit, input_bits, trials=500)
            assert (result.states.array.sum(axis=1) == 3).all()
            assert result.fraction_with_faults() == 0.0


class TestParityInvariant:
    def test_parity_tracks_x_count(self):
        # Conservative gates preserve parity; each X flips it.  Random
        # mixtures must land on parity_in ^ (number of X ops mod 2).
        rng = np.random.default_rng(9000)
        n_wires = 7
        for _ in range(6):
            circuit = Circuit(n_wires)
            x_count = 0
            for _ in range(30):
                if rng.random() < 0.3:
                    circuit.append_gate(X, int(rng.integers(n_wires)))
                    x_count += 1
                else:
                    gate = CONSERVATIVE_GATES[
                        int(rng.integers(len(CONSERVATIVE_GATES)))
                    ]
                    wires = rng.choice(n_wires, size=gate.arity, replace=False)
                    circuit.append_gate(gate, *(int(w) for w in wires))
            rows = random_batch(rng, 150, n_wires)
            expected_parity = (rows.sum(axis=1) + x_count) % 2

            batched = run_batched(circuit, BatchedState(rows.copy()))
            bitplane = run_bitplane(circuit, BitplaneState.from_rows(rows))
            np.testing.assert_array_equal(
                batched.array.sum(axis=1) % 2, expected_parity
            )
            np.testing.assert_array_equal(
                bitplane.array.sum(axis=1) % 2, expected_parity
            )
            output = run(circuit, tuple(int(b) for b in rows[0]))
            assert sum(output) % 2 == int(expected_parity[0])


class TestMajNetworkInterior:
    def test_maj_sandwich_is_identity(self):
        # MAJ immediately undone by MAJ⁻¹ — the interior of every
        # recovery decode/encode block — must restore states exactly.
        rng = np.random.default_rng(9500)
        n_wires = 9
        circuit = Circuit(n_wires)
        for _ in range(12):
            wires = tuple(int(w) for w in rng.choice(n_wires, size=3, replace=False))
            circuit.append_gate(MAJ, *wires)
            circuit.append_gate(MAJ_INV, *wires)
        rows = random_batch(rng, 300, n_wires)

        batched = run_batched(circuit, BatchedState(rows.copy()))
        bitplane = run_bitplane(circuit, BitplaneState.from_rows(rows))
        np.testing.assert_array_equal(batched.array, rows)
        np.testing.assert_array_equal(bitplane.array, rows)

    def test_inverse_sandwich_restores_any_gate_soup(self):
        # C followed by C⁻¹ is the identity for any reset-free circuit;
        # with the full library in play this exercises every compiled
        # plane program forwards and backwards.
        from repro.core.library import REGISTRY

        gates = [gate for gate in REGISTRY.values() if gate.arity <= 6]
        rng = np.random.default_rng(9900)
        for _ in range(4):
            circuit = Circuit(6)
            for _ in range(20):
                gate = gates[int(rng.integers(len(gates)))]
                wires = rng.choice(6, size=gate.arity, replace=False)
                circuit.append_gate(gate, *(int(w) for w in wires))
            sandwich = circuit + circuit.inverse()
            rows = random_batch(rng, 128, 6)
            bitplane = run_bitplane(sandwich, BitplaneState.from_rows(rows))
            np.testing.assert_array_equal(bitplane.array, rows)
            batched = run_batched(sandwich, BatchedState(rows.copy()))
            np.testing.assert_array_equal(batched.array, rows)
