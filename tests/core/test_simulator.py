"""Tests for the deterministic and batched simulators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import library
from repro.core.bits import index_to_bits
from repro.core.circuit import Circuit
from repro.core.simulator import BatchedState, apply_gate, run, run_batched
from repro.errors import SimulationError


def random_circuit(draw, n_wires: int, n_ops: int) -> Circuit:
    """Hypothesis helper: a random circuit mixing gates and resets."""
    circuit = Circuit(n_wires)
    gates = [library.X, library.CNOT, library.SWAP, library.TOFFOLI, library.MAJ,
             library.MAJ_INV, library.FREDKIN, library.SWAP3_UP]
    for _ in range(n_ops):
        gate = draw(st.sampled_from(gates))
        wires = draw(
            st.permutations(list(range(n_wires))).map(lambda p: p[: gate.arity])
        )
        circuit.append_gate(gate, *wires)
    return circuit


circuits = st.integers(3, 6).flatmap(
    lambda n: st.builds(
        lambda ops: (n, ops),
        st.integers(0, 12),
    )
)


class TestReferenceSimulator:
    def test_single_gate(self):
        state = [1, 0, 0]
        apply_gate(state, library.MAJ_INV, (0, 1, 2))
        assert state == [1, 1, 1]

    def test_wire_order_matters(self):
        state = [0, 1]
        apply_gate(state, library.CNOT, (1, 0))
        assert state == [1, 1]

    def test_run_with_reset(self):
        circuit = Circuit(2).x(0).append_reset(0)
        assert run(circuit, (0, 1)) == (0, 1)

    def test_run_rejects_wrong_width(self):
        with pytest.raises(SimulationError):
            run(Circuit(2), (0, 0, 0))

    def test_run_preserves_input(self):
        input_bits = (1, 0, 1)
        run(Circuit(3).maj(0, 1, 2), input_bits)
        assert input_bits == (1, 0, 1)


class TestBatchedState:
    def test_broadcast(self):
        batch = BatchedState.broadcast((1, 0), trials=4)
        assert batch.array.shape == (4, 2)
        assert (batch.column(0) == 1).all()

    def test_zeros(self):
        batch = BatchedState.zeros(3, 5)
        assert batch.array.sum() == 0

    def test_from_rows(self):
        batch = BatchedState.from_rows([(0, 1), (1, 0)])
        assert batch.trials == 2

    def test_rejects_non_binary(self):
        with pytest.raises(SimulationError):
            BatchedState(np.full((2, 2), 3, dtype=np.uint8))

    def test_rejects_wrong_rank(self):
        with pytest.raises(SimulationError):
            BatchedState(np.zeros(4, dtype=np.uint8))

    def test_apply_gate_vectorised(self):
        batch = BatchedState.from_rows([(1, 0, 0), (0, 0, 0), (1, 1, 1)])
        batch.apply_gate(library.MAJ_INV, (0, 1, 2))
        assert batch.array.tolist() == [[1, 1, 1], [0, 0, 0], [0, 1, 1]]

    def test_apply_gate_with_mask(self):
        batch = BatchedState.from_rows([(0,), (0,)])
        batch.apply_gate(library.X, (0,), mask=np.array([True, False]))
        assert batch.array.tolist() == [[1], [0]]

    def test_reset_with_mask(self):
        batch = BatchedState.from_rows([(1, 1), (1, 1)])
        batch.reset((0,), value=0, mask=np.array([True, False]))
        assert batch.array.tolist() == [[0, 1], [1, 1]]

    def test_randomize_only_touches_selected_wires(self, rng):
        batch = BatchedState.zeros(4, 100)
        batch.randomize((1, 2), rng)
        assert (batch.column(0) == 0).all()
        assert (batch.column(3) == 0).all()
        assert batch.columns((1, 2)).sum() > 0

    def test_randomize_with_mask(self, rng):
        batch = BatchedState.zeros(1, 1000)
        mask = np.zeros(1000, dtype=bool)
        mask[:500] = True
        batch.randomize((0,), rng, mask)
        assert (batch.column(0)[500:] == 0).all()
        # Roughly half of the masked trials become 1.
        assert 150 < batch.column(0)[:500].sum() < 350

    def test_majority_of(self):
        batch = BatchedState.from_rows([(1, 0, 1), (0, 0, 1)])
        assert batch.majority_of((0, 1, 2)).tolist() == [1, 0]

    def test_majority_requires_odd(self):
        batch = BatchedState.zeros(2, 1)
        with pytest.raises(SimulationError):
            batch.majority_of((0, 1))

    def test_copy_is_independent(self):
        batch = BatchedState.zeros(2, 2)
        clone = batch.copy()
        clone.array[0, 0] = 1
        assert batch.array[0, 0] == 0


class TestEquivalence:
    """The batched engine must agree with the reference simulator."""

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_batched_matches_reference(self, data):
        n_wires = data.draw(st.integers(3, 6))
        n_ops = data.draw(st.integers(0, 12))
        circuit = random_circuit(data.draw, n_wires, n_ops)
        inputs = [
            index_to_bits(data.draw(st.integers(0, (1 << n_wires) - 1)), n_wires)
            for _ in range(4)
        ]
        batch = BatchedState.from_rows(inputs)
        run_batched(circuit, batch)
        for row, input_bits in enumerate(inputs):
            expected = run(circuit, input_bits)
            assert tuple(batch.array[row]) == expected

    def test_run_batched_rejects_width_mismatch(self):
        with pytest.raises(SimulationError):
            run_batched(Circuit(3), BatchedState.zeros(2, 4))
