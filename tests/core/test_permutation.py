"""Unit and property tests for repro.core.permutation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.permutation import Permutation, permutation_distance
from repro.errors import GateDefinitionError

permutations = st.permutations(list(range(8))).map(lambda p: Permutation(tuple(p)))
small_permutations = st.integers(1, 7).flatmap(
    lambda n: st.permutations(list(range(n))).map(lambda p: Permutation(tuple(p)))
)


class TestConstruction:
    def test_identity(self):
        identity = Permutation.identity(4)
        assert identity.mapping == (0, 1, 2, 3)
        assert identity.is_identity()

    def test_rejects_repeats(self):
        with pytest.raises(GateDefinitionError):
            Permutation((0, 0, 1))

    def test_rejects_out_of_range(self):
        with pytest.raises(GateDefinitionError):
            Permutation((0, 3))

    def test_from_cycles(self):
        perm = Permutation.from_cycles(4, [(0, 1, 2)])
        assert perm.mapping == (1, 2, 0, 3)

    def test_from_cycles_rejects_overlap(self):
        with pytest.raises(GateDefinitionError):
            Permutation.from_cycles(4, [(0, 1), (1, 2)])


class TestGroupLaws:
    @given(small_permutations)
    def test_inverse_composes_to_identity(self, perm):
        assert perm.compose(perm.inverse()).is_identity()
        assert perm.inverse().compose(perm).is_identity()

    @given(permutations, permutations, permutations)
    def test_associativity(self, a, b, c):
        left = a.compose(b).compose(c)
        right = a.compose(b.compose(c))
        assert left == right

    @given(permutations)
    def test_then_is_reverse_of_compose(self, perm):
        other = Permutation.from_cycles(8, [(0, 7)])
        assert perm.then(other) == other.compose(perm)

    @given(small_permutations)
    def test_double_inverse(self, perm):
        assert perm.inverse().inverse() == perm


class TestStructure:
    def test_cycles_of_identity_empty(self):
        assert Permutation.identity(5).cycles() == []

    def test_cycles_with_fixed_points(self):
        perm = Permutation((1, 0, 2))
        assert perm.cycles() == [(0, 1)]
        assert perm.cycles(include_fixed_points=True) == [(0, 1), (2,)]

    def test_fixed_points(self):
        perm = Permutation((1, 0, 2, 3))
        assert perm.fixed_points() == (2, 3)

    @given(small_permutations)
    def test_order_annihilates(self, perm):
        assert (perm ** perm.order()).is_identity()

    def test_parity_of_transposition(self):
        assert Permutation.from_cycles(4, [(0, 1)]).parity() == 1

    def test_parity_of_three_cycle(self):
        assert Permutation.from_cycles(4, [(0, 1, 2)]).parity() == 0

    @given(permutations, permutations)
    def test_parity_is_a_homomorphism(self, a, b):
        assert a.compose(b).parity() == (a.parity() + b.parity()) % 2

    def test_inversions_of_paper_line(self):
        # The Figure-7 line order has exactly nine inversions = SWAPs.
        perm = Permutation((0, 3, 6, 1, 4, 7, 2, 5, 8))
        assert perm.inversions() == 9

    @given(small_permutations)
    def test_inversions_parity_matches_permutation_parity(self, perm):
        assert perm.inversions() % 2 == perm.parity()


class TestPower:
    @given(permutations, st.integers(-5, 10))
    def test_power_definition(self, perm, exponent):
        expected = Permutation.identity(8)
        base = perm if exponent >= 0 else perm.inverse()
        for _ in range(abs(exponent)):
            expected = base.compose(expected)
        assert perm**exponent == expected


class TestDistance:
    def test_distance_zero_for_equal(self):
        perm = Permutation((1, 0, 2))
        assert permutation_distance(perm, perm) == 0

    def test_distance_counts_disagreements(self):
        a = Permutation((0, 1, 2))
        b = Permutation((1, 0, 2))
        assert permutation_distance(a, b) == 2

    def test_distance_rejects_size_mismatch(self):
        with pytest.raises(GateDefinitionError):
            permutation_distance(Permutation((0, 1)), Permutation((0, 1, 2)))
