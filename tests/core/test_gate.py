"""Unit tests for repro.core.gate."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.gate import Gate
from repro.core.permutation import Permutation
from repro.errors import GateDefinitionError

gate_tables = st.permutations(list(range(8))).map(
    lambda p: Gate(name="g", arity=3, table=tuple(p))
)


class TestConstruction:
    def test_valid_gate(self):
        gate = Gate(name="swap", arity=1, table=(1, 0))
        assert gate.apply((0,)) == (1,)

    def test_rejects_non_permutation_table(self):
        with pytest.raises(GateDefinitionError):
            Gate(name="bad", arity=1, table=(0, 0))

    def test_rejects_wrong_table_size(self):
        with pytest.raises(GateDefinitionError):
            Gate(name="bad", arity=2, table=(0, 1))

    def test_rejects_zero_arity(self):
        with pytest.raises(GateDefinitionError):
            Gate(name="bad", arity=0, table=(0,))

    def test_from_function_checks_width(self):
        with pytest.raises(GateDefinitionError):
            Gate.from_function("bad", 2, lambda bits: (bits[0],))

    def test_from_function_checks_bijectivity(self):
        with pytest.raises(GateDefinitionError):
            Gate.from_function("bad", 1, lambda bits: (0,))

    def test_from_permutation_requires_power_of_two(self):
        with pytest.raises(GateDefinitionError):
            Gate.from_permutation("bad", Permutation((0, 1, 2)))


class TestApplication:
    def test_apply_index_and_bits_agree(self):
        gate = Gate.from_function("not", 1, lambda bits: (bits[0] ^ 1,))
        assert gate.apply_index(0) == 1
        assert gate.apply((0,)) == (1,)

    def test_apply_rejects_wrong_width(self):
        gate = Gate.from_function("not", 1, lambda bits: (bits[0] ^ 1,))
        with pytest.raises(GateDefinitionError):
            gate.apply((0, 1))

    @given(gate_tables, st.integers(0, 7))
    def test_apply_matches_table(self, gate, index):
        from repro.core.bits import bits_to_index, index_to_bits

        output = gate.apply(index_to_bits(index, 3))
        assert bits_to_index(output) == gate.table[index]


class TestInverse:
    @given(gate_tables)
    def test_inverse_round_trip(self, gate):
        inverse = gate.inverse()
        for index in range(8):
            assert inverse.apply_index(gate.apply_index(index)) == index

    def test_inverse_naming(self):
        gate = Gate(name="MAJ", arity=2, table=(1, 2, 0, 3))
        assert gate.inverse().name == "MAJ⁻¹"
        assert gate.inverse().inverse().name == "MAJ"

    def test_self_inverse_gate_keeps_name(self):
        gate = Gate(name="X", arity=1, table=(1, 0))
        assert gate.inverse().name == "X"

    def test_explicit_name(self):
        gate = Gate(name="g", arity=1, table=(1, 0))
        assert gate.inverse("h").name == "h"


class TestProperties:
    def test_self_inverse_detection(self):
        swap = Gate(name="swap", arity=2, table=(0, 2, 1, 3))
        assert swap.is_self_inverse()
        cycle = Gate.from_permutation("rot", Permutation.from_cycles(4, [(0, 1, 2)]))
        assert not cycle.is_self_inverse()

    def test_identity_detection(self):
        assert Gate(name="i", arity=1, table=(0, 1)).is_identity()
        assert not Gate(name="x", arity=1, table=(1, 0)).is_identity()

    def test_same_action_ignores_name(self):
        a = Gate(name="a", arity=1, table=(1, 0))
        b = Gate(name="b", arity=1, table=(1, 0))
        assert a.same_action(b)
        assert a != b

    def test_renamed_preserves_action(self):
        a = Gate(name="a", arity=1, table=(1, 0))
        assert a.renamed("z").same_action(a)
        assert a.renamed("z").name == "z"

    def test_truth_table_rows_format(self):
        gate = Gate(name="x", arity=1, table=(1, 0))
        assert gate.truth_table_rows() == [("0", "1"), ("1", "0")]
