"""Tests for exhaustive circuit evaluation."""

from __future__ import annotations

import pytest

from repro.core import library
from repro.core.circuit import Circuit
from repro.core.truth_table import (
    circuit_gate,
    circuit_permutation,
    format_truth_table,
    is_reversible,
    truth_table_rows,
)
from repro.errors import SimulationError


class TestCircuitPermutation:
    def test_figure_1_construction_equals_maj(self):
        circuit = Circuit(3).cnot(0, 1).cnot(0, 2).toffoli(1, 2, 0)
        assert circuit_gate(circuit, "fig1").same_action(library.MAJ)

    def test_empty_circuit_is_identity(self):
        assert circuit_permutation(Circuit(2)).is_identity()

    def test_wire_order_respected(self):
        # CNOT with control on the later wire.
        circuit = Circuit(2).append_gate(library.CNOT, 1, 0)
        permutation = circuit_permutation(circuit)
        # Input (0,1): control wire 1 is set, so wire 0 flips -> (1,1).
        assert permutation.apply(0b01) == 0b11

    def test_rejects_resets(self):
        with pytest.raises(SimulationError):
            circuit_permutation(Circuit(2).append_reset(0))

    def test_rejects_too_many_wires(self):
        with pytest.raises(SimulationError):
            circuit_permutation(Circuit(21))

    def test_inverse_circuit_gives_inverse_permutation(self):
        circuit = Circuit(3).maj(0, 1, 2).cnot(2, 0).swap3_down(0, 1, 2)
        forward = circuit_permutation(circuit)
        backward = circuit_permutation(circuit.inverse())
        assert forward.compose(backward).is_identity()


class TestReversibility:
    def test_gate_circuits_reversible(self):
        assert is_reversible(Circuit(3).maj(0, 1, 2))

    def test_reset_circuit_not_reversible(self):
        assert not is_reversible(Circuit(2).append_reset(0))

    def test_reset_of_constant_wire_counts_as_irreversible(self):
        # Even a reset that happens to preserve half the states is a
        # many-to-one map over all states.
        assert not is_reversible(Circuit(1).append_reset(0, value=1))


class TestRendering:
    def test_rows_for_gate_match_table_1(self):
        assert truth_table_rows(library.MAJ) == list(library.PAPER_TABLE_1)

    def test_rows_for_circuit(self):
        circuit = Circuit(1).x(0)
        assert truth_table_rows(circuit) == [("0", "1"), ("1", "0")]

    def test_format_contains_all_rows(self):
        text = format_truth_table(library.MAJ)
        for input_bits, output_bits in library.PAPER_TABLE_1:
            assert input_bits in text
            assert output_bits in text
        assert text.splitlines()[0].startswith("Input")
