"""Unit tests for repro.core.circuit."""

from __future__ import annotations

import pytest

from repro.core import library
from repro.core.circuit import Circuit, Operation, OpKind
from repro.errors import CircuitError


class TestOperation:
    def test_gate_operation(self):
        op = Operation(kind=OpKind.GATE, wires=(0, 1), gate=library.CNOT)
        assert op.is_gate and not op.is_reset
        assert op.label == "CNOT"

    def test_reset_operation(self):
        op = Operation(kind=OpKind.RESET, wires=(3, 4, 5))
        assert op.is_reset
        assert op.label == "RESET"

    def test_rejects_duplicate_wires(self):
        with pytest.raises(CircuitError):
            Operation(kind=OpKind.GATE, wires=(0, 0), gate=library.CNOT)

    def test_rejects_arity_mismatch(self):
        with pytest.raises(CircuitError):
            Operation(kind=OpKind.GATE, wires=(0,), gate=library.CNOT)

    def test_rejects_gate_on_reset(self):
        with pytest.raises(CircuitError):
            Operation(kind=OpKind.RESET, wires=(0,), gate=library.X)

    def test_rejects_bad_reset_value(self):
        with pytest.raises(CircuitError):
            Operation(kind=OpKind.RESET, wires=(0,), reset_value=2)

    def test_rejects_empty_wires(self):
        with pytest.raises(CircuitError):
            Operation(kind=OpKind.RESET, wires=())

    def test_remap(self):
        op = Operation(kind=OpKind.GATE, wires=(0, 1), gate=library.CNOT)
        assert op.remapped({0: 5, 1: 2}).wires == (5, 2)

    def test_remap_missing_wire(self):
        op = Operation(kind=OpKind.GATE, wires=(0, 1), gate=library.CNOT)
        with pytest.raises(CircuitError):
            op.remapped({0: 5})


class TestConstruction:
    def test_fluent_building(self):
        circuit = Circuit(3).cnot(0, 1).cnot(0, 2).toffoli(1, 2, 0)
        assert len(circuit) == 3
        assert [op.label for op in circuit] == ["CNOT", "CNOT", "TOFFOLI"]

    def test_wire_range_validated(self):
        with pytest.raises(CircuitError):
            Circuit(2).toffoli(0, 1, 2)

    def test_zero_wires_rejected(self):
        with pytest.raises(CircuitError):
            Circuit(0)

    def test_named_helpers(self):
        circuit = (
            Circuit(4)
            .x(0)
            .swap(0, 1)
            .fredkin(0, 1, 2)
            .swap3_down(0, 1, 2)
            .swap3_up(1, 2, 3)
            .maj(0, 1, 2)
            .maj_inv(1, 2, 3)
        )
        assert circuit.count_ops()["MAJ"] == 1
        assert circuit.count_ops()["MAJ⁻¹"] == 1

    def test_reset_helper(self):
        circuit = Circuit(3).append_reset(0, 1, 2, value=1)
        assert circuit.ops[0].reset_value == 1
        assert circuit.has_resets


class TestSequenceBehaviour:
    def test_indexing_and_slicing(self):
        circuit = Circuit(3).x(0).x(1).x(2)
        assert circuit[1].wires == (1,)
        sliced = circuit[1:]
        assert isinstance(sliced, Circuit)
        assert len(sliced) == 2

    def test_copy_is_independent(self):
        circuit = Circuit(2).x(0)
        clone = circuit.copy()
        clone.x(1)
        assert len(circuit) == 1
        assert len(clone) == 2


class TestAlgebra:
    def test_concatenation(self):
        left = Circuit(2).x(0)
        right = Circuit(2).x(1)
        assert [op.wires for op in left + right] == [(0,), (1,)]

    def test_concatenation_requires_same_width(self):
        with pytest.raises(CircuitError):
            Circuit(2) + Circuit(3)

    def test_inverse_reverses_and_inverts(self):
        circuit = Circuit(3).maj(0, 1, 2).cnot(0, 1)
        inverse = circuit.inverse()
        assert [op.label for op in inverse] == ["CNOT", "MAJ⁻¹"]

    def test_inverse_rejects_resets(self):
        with pytest.raises(CircuitError):
            Circuit(3).append_reset(0).inverse()

    def test_remap(self):
        circuit = Circuit(2).cnot(0, 1)
        remapped = circuit.remap({0: 2, 1: 0}, n_wires=3)
        assert remapped.ops[0].wires == (2, 0)
        assert remapped.n_wires == 3

    def test_remap_sequence_form(self):
        circuit = Circuit(2).cnot(0, 1)
        remapped = circuit.remap([1, 0], n_wires=2)
        assert remapped.ops[0].wires == (1, 0)

    def test_tensor(self):
        left = Circuit(2).cnot(0, 1)
        right = Circuit(2).swap(0, 1)
        combined = left.tensor(right)
        assert combined.n_wires == 4
        assert combined.ops[1].wires == (2, 3)

    def test_repeated(self):
        circuit = Circuit(1).x(0).repeated(3)
        assert len(circuit) == 3

    def test_repeated_rejects_negative(self):
        with pytest.raises(CircuitError):
            Circuit(1).x(0).repeated(-1)


class TestCensus:
    def test_count_ops(self):
        circuit = Circuit(9)
        circuit.append_reset(3, 4, 5).append_reset(6, 7, 8)
        circuit.maj_inv(0, 3, 6).maj(0, 1, 2)
        counts = circuit.count_ops()
        assert counts["RESET"] == 2
        assert counts["MAJ⁻¹"] == 1
        assert counts["MAJ"] == 1

    def test_gate_count_excluding_resets(self):
        circuit = Circuit(3).append_reset(0).x(1)
        assert circuit.gate_count() == 2
        assert circuit.gate_count(include_resets=False) == 1

    def test_wires_touched(self):
        circuit = Circuit(5).cnot(0, 3)
        assert circuit.wires_touched() == frozenset({0, 3})

    def test_ops_touching(self):
        circuit = Circuit(3).x(0).cnot(0, 1).x(2)
        assert circuit.ops_touching(0) == (0, 1)
        assert circuit.ops_touching(2) == (2,)

    def test_depth_parallel_ops(self):
        circuit = Circuit(4).x(0).x(1).cnot(0, 1).x(2)
        # x(0) and x(1) and x(2) parallel; cnot after the first two.
        assert circuit.depth() == 2

    def test_depth_serial_chain(self):
        circuit = Circuit(2).cnot(0, 1).cnot(0, 1).cnot(0, 1)
        assert circuit.depth() == 3
