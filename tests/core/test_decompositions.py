"""Every decomposition must reproduce its target gate exactly."""

from __future__ import annotations

import pytest

from repro.core import library
from repro.core.circuit import Circuit
from repro.core.decompositions import (
    DECOMPOSITIONS,
    maj_circuit,
    nand_via_maj_inv_circuit,
    toffoli_from_maj_circuit,
)
from repro.core.simulator import run
from repro.core.truth_table import circuit_gate, circuit_permutation


def _target_as_permutation(gate, wire_order):
    """The target gate applied on the given wire order, as a circuit."""
    circuit = Circuit(len(wire_order))
    circuit.append_gate(gate, *wire_order)
    return circuit_permutation(circuit)


class TestAllDecompositions:
    @pytest.mark.parametrize("name", sorted(DECOMPOSITIONS))
    def test_action_matches_target(self, name):
        circuit, gate, wire_order = DECOMPOSITIONS[name]
        assert circuit_permutation(circuit) == _target_as_permutation(
            gate, wire_order
        ), name

    @pytest.mark.parametrize("name", sorted(DECOMPOSITIONS))
    def test_decompositions_use_only_other_gates(self, name):
        """No decomposition cheats by containing its own target."""
        circuit, gate, _ = DECOMPOSITIONS[name]
        if name in ("maj", "maj_inv", "swap3_up", "swap3_down", "swap"):
            assert gate.name not in circuit.count_ops()


class TestSpecificConstructions:
    def test_figure_1_gate_census(self):
        counts = maj_circuit().count_ops()
        assert counts == {"CNOT": 2, "TOFFOLI": 1}

    def test_toffoli_from_maj_round_trip(self):
        # Composing the construction with a native Toffoli on the same
        # wires yields the identity.
        circuit = toffoli_from_maj_circuit()
        circuit.toffoli(1, 2, 0)
        assert circuit_permutation(circuit).is_identity()

    def test_nand_via_maj_inv(self):
        circuit = nand_via_maj_inv_circuit()
        for a in (0, 1):
            for b in (0, 1):
                output = run(circuit, (1, a, b))
                assert output[0] == 1 - (a & b)

    def test_nand_discard_distribution_is_three_halves(self):
        from repro.analysis.entropy import empirical_entropy

        circuit = nand_via_maj_inv_circuit()
        discards = []
        for a in (0, 1):
            for b in (0, 1):
                output = run(circuit, (1, a, b))
                discards.append((output[1], output[2]))
        assert empirical_entropy(discards) == pytest.approx(1.5)

    def test_fredkin_construction_is_self_inverse(self):
        circuit, _, _ = DECOMPOSITIONS["fredkin"]
        doubled = circuit + circuit
        assert circuit_permutation(doubled).is_identity()

    def test_swap3_constructions_compose_to_identity(self):
        up, _, _ = DECOMPOSITIONS["swap3_up"]
        down, _, _ = DECOMPOSITIONS["swap3_down"]
        assert circuit_permutation(up + down).is_identity()

    def test_circuit_gate_wrapping(self):
        built = circuit_gate(maj_circuit(), "maj-built")
        assert built.same_action(library.MAJ)
