"""Unit tests for repro.core.bits."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import bits
from repro.errors import GateDefinitionError

bit_vectors = st.lists(st.integers(0, 1), min_size=1, max_size=12).map(tuple)


class TestPacking:
    def test_msb_first_convention(self):
        assert bits.bits_to_index((1, 0, 0)) == 4
        assert bits.bits_to_index((0, 0, 1)) == 1

    def test_empty_vector_packs_to_zero(self):
        assert bits.bits_to_index(()) == 0

    def test_unpack_matches_table_one_reading(self):
        assert bits.index_to_bits(4, 3) == (1, 0, 0)
        assert bits.index_to_bits(3, 3) == (0, 1, 1)

    @given(bit_vectors)
    def test_round_trip(self, vector):
        index = bits.bits_to_index(vector)
        assert bits.index_to_bits(index, len(vector)) == vector

    @given(st.integers(1, 12), st.data())
    def test_round_trip_from_index(self, width, data):
        index = data.draw(st.integers(0, (1 << width) - 1))
        assert bits.bits_to_index(bits.index_to_bits(index, width)) == index

    def test_out_of_range_index_rejected(self):
        with pytest.raises(GateDefinitionError):
            bits.index_to_bits(8, 3)
        with pytest.raises(GateDefinitionError):
            bits.index_to_bits(-1, 3)

    def test_non_binary_values_rejected(self):
        with pytest.raises(GateDefinitionError):
            bits.bits_to_index((0, 2, 1))


class TestStrings:
    def test_bitstring(self):
        assert bits.bitstring((1, 0, 1)) == "101"

    def test_parse(self):
        assert bits.parse_bits("0110") == (0, 1, 1, 0)

    def test_parse_rejects_non_binary(self):
        with pytest.raises(GateDefinitionError):
            bits.parse_bits("01a")
        with pytest.raises(GateDefinitionError):
            bits.parse_bits("012")

    @given(bit_vectors)
    def test_parse_inverts_bitstring(self, vector):
        assert bits.parse_bits(bits.bitstring(vector)) == vector


class TestEnumeration:
    def test_all_bit_vectors_count_and_order(self):
        vectors = list(bits.all_bit_vectors(3))
        assert len(vectors) == 8
        assert vectors[0] == (0, 0, 0)
        assert vectors[4] == (1, 0, 0)
        assert vectors[-1] == (1, 1, 1)

    def test_all_bit_vectors_distinct(self):
        vectors = list(bits.all_bit_vectors(5))
        assert len(set(vectors)) == 32


class TestHamming:
    def test_distance(self):
        assert bits.hamming_distance((0, 0, 0), (1, 0, 1)) == 2

    def test_distance_rejects_length_mismatch(self):
        with pytest.raises(GateDefinitionError):
            bits.hamming_distance((0, 0), (0, 0, 0))

    def test_weight(self):
        assert bits.hamming_weight((1, 0, 1, 1)) == 3

    @given(bit_vectors)
    def test_distance_to_self_is_zero(self, vector):
        assert bits.hamming_distance(vector, vector) == 0

    @given(bit_vectors, st.data())
    def test_triangle_inequality(self, a, data):
        b = data.draw(
            st.lists(
                st.integers(0, 1), min_size=len(a), max_size=len(a)
            ).map(tuple)
        )
        c = data.draw(
            st.lists(
                st.integers(0, 1), min_size=len(a), max_size=len(a)
            ).map(tuple)
        )
        assert bits.hamming_distance(a, c) <= (
            bits.hamming_distance(a, b) + bits.hamming_distance(b, c)
        )


class TestMajority:
    def test_simple_cases(self):
        assert bits.majority((1, 0, 1)) == 1
        assert bits.majority((0, 0, 1)) == 0
        assert bits.majority((1,)) == 1

    def test_even_length_rejected(self):
        with pytest.raises(GateDefinitionError):
            bits.majority((0, 1))

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=9).filter(lambda v: len(v) % 2 == 1))
    def test_majority_flips_under_complement(self, vector):
        complement = [b ^ 1 for b in vector]
        assert bits.majority(vector) == 1 - bits.majority(complement)


class TestManipulation:
    def test_flip(self):
        assert bits.flip((0, 0, 0), 1) == (0, 1, 0)

    def test_flip_out_of_range(self):
        with pytest.raises(GateDefinitionError):
            bits.flip((0, 0), 5)

    def test_xor(self):
        assert bits.xor((1, 0, 1), (1, 1, 0)) == (0, 1, 1)

    @given(bit_vectors)
    def test_xor_with_self_is_zero(self, vector):
        assert bits.xor(vector, vector) == (0,) * len(vector)

    def test_concat(self):
        assert bits.concat((1, 0), (0,), (1, 1)) == (1, 0, 0, 1, 1)
