"""Tests for the standard gate library against the paper's definitions."""

from __future__ import annotations

import pytest

from repro.core import library
from repro.core.bits import all_bit_vectors, majority
from repro.errors import GateDefinitionError


class TestMajGate:
    def test_truth_table_matches_paper_table_1(self):
        assert library.MAJ.truth_table_rows() == list(library.PAPER_TABLE_1)

    def test_first_output_bit_is_majority(self):
        for bits in all_bit_vectors(3):
            output = library.MAJ.apply(bits)
            assert output[0] == majority(bits)

    def test_caption_definition(self):
        # "Flip the second two bits if the first bit is 1, then flip the
        # first bit if the second two bits are 1."
        for bits in all_bit_vectors(3):
            q0, q1, q2 = bits
            if q0:
                q1 ^= 1
                q2 ^= 1
            if q1 and q2:
                q0 ^= 1
            assert library.MAJ.apply(bits) == (q0, q1, q2)

    def test_maj_is_not_self_inverse(self):
        assert not library.MAJ.is_self_inverse()

    def test_maj_inverse_round_trip(self):
        for bits in all_bit_vectors(3):
            assert library.MAJ_INV.apply(library.MAJ.apply(bits)) == bits

    def test_maj_inv_fans_out_onto_zero_ancillas(self):
        assert library.MAJ_INV.apply((0, 0, 0)) == (0, 0, 0)
        assert library.MAJ_INV.apply((1, 0, 0)) == (1, 1, 1)

    def test_maj_compresses_codewords(self):
        assert library.MAJ.apply((1, 1, 1)) == (1, 0, 0)
        assert library.MAJ.apply((0, 0, 0)) == (0, 0, 0)


class TestClassicGates:
    def test_cnot(self):
        assert library.CNOT.apply((1, 0)) == (1, 1)
        assert library.CNOT.apply((0, 1)) == (0, 1)

    def test_toffoli_only_flips_on_both_controls(self):
        assert library.TOFFOLI.apply((1, 1, 0)) == (1, 1, 1)
        assert library.TOFFOLI.apply((1, 0, 0)) == (1, 0, 0)

    def test_swap(self):
        assert library.SWAP.apply((1, 0)) == (0, 1)

    def test_fredkin_controlled_swap(self):
        assert library.FREDKIN.apply((1, 1, 0)) == (1, 0, 1)
        assert library.FREDKIN.apply((0, 1, 0)) == (0, 1, 0)

    def test_self_inverse_family(self):
        for gate in (library.X, library.CNOT, library.TOFFOLI, library.SWAP, library.FREDKIN):
            assert gate.is_self_inverse(), gate.name


class TestSwap3:
    def test_down_rotation(self):
        assert library.SWAP3_DOWN.apply((1, 0, 0)) == (0, 0, 1)

    def test_up_rotation(self):
        assert library.SWAP3_UP.apply((1, 0, 0)) == (0, 1, 0)

    def test_rotations_are_mutually_inverse(self):
        assert library.SWAP3_UP.inverse().same_action(library.SWAP3_DOWN)

    def test_three_applications_is_identity(self):
        perm = library.SWAP3_UP.permutation
        assert (perm ** 3).is_identity()


class TestRegistry:
    def test_lookup(self):
        assert library.get("MAJ") is library.MAJ

    def test_unknown_name(self):
        with pytest.raises(GateDefinitionError):
            library.get("NOPE")

    def test_registry_names_consistent(self):
        for name, gate in library.REGISTRY.items():
            assert gate.name == name

    def test_identity_factory(self):
        gate = library.identity(3)
        assert gate.is_identity()
        assert gate.arity == 3
