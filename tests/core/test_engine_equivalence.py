"""Cross-engine differential tests: run == BatchedState == BitplaneState.

Seeded-random circuits built from the full gate library (random wire
maps, resets included) are executed through all three engines; for up
to 6 wires the check is exhaustive over all ``2**n`` inputs, and wider
circuits are checked on broadcast and random-row batches.  Any
divergence in the compiled bit-parallel lowering — plane expressions,
packing, masking, majority voting — shows up here as a bit mismatch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BatchedState,
    BitplaneState,
    run,
    run_batched,
    run_bitplane,
)
from repro.core.bits import all_bit_vectors
from repro.core.circuit import Circuit
from repro.core.library import REGISTRY
from repro.errors import SimulationError

GATES = tuple(REGISTRY.values())


def random_circuit(
    rng: np.random.Generator,
    n_wires: int,
    n_ops: int,
    reset_probability: float = 0.15,
) -> Circuit:
    """A random circuit over the full gate library, resets included."""
    circuit = Circuit(n_wires)
    usable = [gate for gate in GATES if gate.arity <= n_wires]
    for _ in range(n_ops):
        if rng.random() < reset_probability:
            count = int(rng.integers(1, min(3, n_wires) + 1))
            wires = rng.choice(n_wires, size=count, replace=False)
            circuit.append_reset(
                *(int(w) for w in wires), value=int(rng.integers(0, 2))
            )
        else:
            gate = usable[int(rng.integers(len(usable)))]
            wires = rng.choice(n_wires, size=gate.arity, replace=False)
            circuit.append_gate(gate, *(int(w) for w in wires))
    return circuit


def reference_outputs(circuit: Circuit, rows: list[tuple[int, ...]]) -> np.ndarray:
    """The tuple-engine outputs for every row, as a uint8 matrix."""
    return np.array([run(circuit, row) for row in rows], dtype=np.uint8)


class TestExhaustiveEquivalence:
    @pytest.mark.parametrize("n_wires", [1, 2, 3, 4, 5, 6])
    def test_all_inputs_all_engines(self, n_wires):
        rng = np.random.default_rng(1000 + n_wires)
        rows = list(all_bit_vectors(n_wires))
        for _ in range(6):
            circuit = random_circuit(rng, n_wires, n_ops=20)
            expected = reference_outputs(circuit, rows)
            batched = run_batched(circuit, BatchedState.from_rows(rows))
            bitplane = run_bitplane(circuit, BitplaneState.from_rows(rows))
            np.testing.assert_array_equal(batched.array, expected)
            np.testing.assert_array_equal(bitplane.array, expected)

    def test_reset_free_circuits_too(self):
        # Reset-free circuits exercise pure gate lowering (and can be
        # inverted, which the invariant suite relies on).
        rng = np.random.default_rng(77)
        rows = list(all_bit_vectors(5))
        for _ in range(4):
            circuit = random_circuit(rng, 5, n_ops=25, reset_probability=0.0)
            expected = reference_outputs(circuit, rows)
            bitplane = run_bitplane(circuit, BitplaneState.from_rows(rows))
            np.testing.assert_array_equal(bitplane.array, expected)


class TestBatchEquivalenceBeyondExhaustive:
    @pytest.mark.parametrize("trials", [1, 63, 64, 257, 1000])
    def test_broadcast_batches(self, trials):
        rng = np.random.default_rng(2000 + trials)
        circuit = random_circuit(rng, 9, n_ops=40)
        input_bits = tuple(int(b) for b in rng.integers(0, 2, size=9))
        expected_row = np.asarray(run(circuit, input_bits), dtype=np.uint8)
        batched = run_batched(circuit, BatchedState.broadcast(input_bits, trials))
        bitplane = run_bitplane(circuit, BitplaneState.broadcast(input_bits, trials))
        np.testing.assert_array_equal(batched.array, bitplane.array)
        np.testing.assert_array_equal(
            bitplane.array, np.tile(expected_row, (trials, 1))
        )

    def test_random_row_batches(self):
        rng = np.random.default_rng(3000)
        circuit = random_circuit(rng, 8, n_ops=30)
        rows = rng.integers(0, 2, size=(321, 8), dtype=np.uint8)
        batched = run_batched(circuit, BatchedState(rows.copy()))
        bitplane = run_bitplane(circuit, BitplaneState.from_rows(rows))
        np.testing.assert_array_equal(batched.array, bitplane.array)
        # Spot-check a handful of rows against the tuple engine.
        for index in (0, 63, 64, 320):
            expected = run(circuit, tuple(int(b) for b in rows[index]))
            assert tuple(bitplane.array[index]) == expected

    def test_roundtrip_between_engines(self):
        rng = np.random.default_rng(4000)
        rows = rng.integers(0, 2, size=(130, 5), dtype=np.uint8)
        bitplane = BitplaneState.from_batched(BatchedState(rows.copy()))
        np.testing.assert_array_equal(bitplane.to_batched().array, rows)


class TestMaskedApplication:
    """The noise layer's masked paths must agree across engines."""

    @pytest.mark.parametrize("trials", [64, 100, 500])
    def test_masked_gate_application(self, trials):
        rng = np.random.default_rng(5000 + trials)
        rows = rng.integers(0, 2, size=(trials, 6), dtype=np.uint8)
        batched = BatchedState(rows.copy())
        bitplane = BitplaneState.from_rows(rows)
        for _ in range(10):
            gate = GATES[int(rng.integers(len(GATES)))]
            wires = tuple(int(w) for w in rng.choice(6, size=gate.arity, replace=False))
            mask = rng.random(trials) < 0.5
            batched.apply_gate(gate, wires, mask=mask)
            bitplane.apply_gate(gate, wires, mask=mask)
            np.testing.assert_array_equal(batched.array, bitplane.array)

    def test_masked_reset(self):
        rng = np.random.default_rng(6000)
        rows = rng.integers(0, 2, size=(200, 4), dtype=np.uint8)
        for value in (0, 1):
            batched = BatchedState(rows.copy())
            bitplane = BitplaneState.from_rows(rows)
            mask = rng.random(200) < 0.3
            batched.reset((1, 3), value=value, mask=mask)
            bitplane.reset((1, 3), value=value, mask=mask)
            np.testing.assert_array_equal(batched.array, bitplane.array)


class TestObservationEquivalence:
    def test_columns_and_majority(self):
        rng = np.random.default_rng(7000)
        rows = rng.integers(0, 2, size=(513, 9), dtype=np.uint8)
        batched = BatchedState(rows.copy())
        bitplane = BitplaneState.from_rows(rows)
        for wire in range(9):
            np.testing.assert_array_equal(batched.column(wire), bitplane.column(wire))
        for size in (1, 3, 5, 7, 9):
            wires = tuple(int(w) for w in rng.choice(9, size=size, replace=False))
            np.testing.assert_array_equal(
                batched.columns(wires), bitplane.columns(wires)
            )
            np.testing.assert_array_equal(
                batched.majority_of(wires), bitplane.majority_of(wires)
            )


# ----------------------------------------------------------------------
# Error paths shared by both engines
# ----------------------------------------------------------------------

STATE_FACTORIES = [
    pytest.param(lambda: BatchedState.zeros(5, 10), id="batched"),
    pytest.param(lambda: BitplaneState.zeros(5, 10), id="bitplane"),
]


@pytest.mark.parametrize("factory", STATE_FACTORIES)
class TestSharedErrorPaths:
    def test_majority_rejects_empty_wires(self, factory):
        with pytest.raises(SimulationError, match="at least one wire"):
            factory().majority_of(())

    def test_majority_rejects_even_wire_count(self, factory):
        with pytest.raises(SimulationError, match="odd number"):
            factory().majority_of((0, 1))

    def test_reset_rejects_empty_wires(self, factory):
        with pytest.raises(SimulationError, match="at least one wire"):
            factory().reset(())

    def test_reset_rejects_empty_wires_masked(self, factory):
        mask = np.ones(10, dtype=bool)
        with pytest.raises(SimulationError, match="at least one wire"):
            factory().reset((), mask=mask)
