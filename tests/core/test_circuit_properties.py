"""Property-based laws of circuit algebra.

These pin down the semantics that every other layer builds on: circuit
concatenation is composition of actions, inversion really inverts,
remapping commutes with evaluation, and tensoring acts independently on
the two halves.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import library
from repro.core.bits import index_to_bits
from repro.core.circuit import Circuit
from repro.core.truth_table import circuit_permutation

_GATES = [
    library.X,
    library.CNOT,
    library.SWAP,
    library.TOFFOLI,
    library.MAJ,
    library.MAJ_INV,
    library.FREDKIN,
    library.SWAP3_DOWN,
]


@st.composite
def circuits(draw, n_wires: int = 4, max_ops: int = 8) -> Circuit:
    circuit = Circuit(n_wires)
    for _ in range(draw(st.integers(0, max_ops))):
        gate = draw(st.sampled_from(_GATES))
        wires = draw(
            st.permutations(list(range(n_wires))).map(lambda p: p[: gate.arity])
        )
        circuit.append_gate(gate, *wires)
    return circuit


class TestCompositionLaws:
    @given(circuits(), circuits())
    @settings(max_examples=40, deadline=None)
    def test_concatenation_composes_actions(self, left, right):
        combined = circuit_permutation(left + right)
        sequential = circuit_permutation(right).compose(circuit_permutation(left))
        assert combined == sequential

    @given(circuits())
    @settings(max_examples=40, deadline=None)
    def test_inverse_annihilates(self, circuit):
        assert circuit_permutation(circuit + circuit.inverse()).is_identity()
        assert circuit_permutation(circuit.inverse() + circuit).is_identity()

    @given(circuits(), circuits(), circuits())
    @settings(max_examples=20, deadline=None)
    def test_concatenation_associative(self, a, b, c):
        assert circuit_permutation((a + b) + c) == circuit_permutation(a + (b + c))

    @given(circuits())
    @settings(max_examples=30, deadline=None)
    def test_double_inverse_restores_action(self, circuit):
        assert circuit_permutation(circuit.inverse().inverse()) == circuit_permutation(
            circuit
        )

    @given(circuits())
    @settings(max_examples=30, deadline=None)
    def test_double_inverse_round_trips_structurally(self, circuit):
        """inverse().inverse() restores the exact op sequence.

        Stronger than action equality: the synthesis optimiser relies
        on double inversion being the identity on circuit *content*
        (same gates, same wires, same order), not merely on behaviour.
        """
        assert circuit.inverse().inverse().ops == circuit.ops


class TestRemapLaws:
    @given(circuits(), st.permutations(list(range(4))), st.integers(0, 15))
    @settings(max_examples=40, deadline=None)
    def test_remap_commutes_with_evaluation(self, circuit, wire_map, packed):
        """Evaluating a remapped circuit = permuting wires around evaluation."""
        from repro.core.simulator import run

        remapped = circuit.remap(list(wire_map), n_wires=4)
        input_bits = index_to_bits(packed, 4)
        # Input seen through the wire map: new wire wire_map[i] carries
        # what old wire i carried.
        permuted_input = [0] * 4
        for old, new in enumerate(wire_map):
            permuted_input[new] = input_bits[old]
        direct = run(remapped, tuple(permuted_input))
        original = run(circuit, input_bits)
        for old, new in enumerate(wire_map):
            assert direct[new] == original[old]


class TestTruthTablePreservation:
    @given(circuits())
    @settings(max_examples=30, deadline=None)
    def test_identity_remap_preserves_truth_table(self, circuit):
        from repro.core.truth_table import truth_table_rows

        remapped = circuit.remap(list(range(4)), n_wires=4)
        assert truth_table_rows(remapped) == truth_table_rows(circuit)

    @given(circuits(), st.permutations(list(range(4))))
    @settings(max_examples=30, deadline=None)
    def test_remap_round_trip_preserves_truth_table(self, circuit, wire_map):
        """Remapping out and back restores content and truth table."""
        from repro.core.truth_table import truth_table_rows

        inverse_map = [0] * 4
        for old, new in enumerate(wire_map):
            inverse_map[new] = old
        round_tripped = circuit.remap(list(wire_map), 4).remap(inverse_map, 4)
        assert round_tripped.ops == circuit.ops
        assert truth_table_rows(round_tripped) == truth_table_rows(circuit)

    @given(circuits(n_wires=3, max_ops=5), circuits(n_wires=3, max_ops=5))
    @settings(max_examples=20, deadline=None)
    def test_tensor_preserves_each_factor_truth_table(self, top, bottom):
        """Each tensor factor keeps its truth table on its own wires."""
        from repro.core.bits import bits_to_index, index_to_bits
        from repro.core.truth_table import circuit_permutation

        combined = circuit_permutation(top.tensor(bottom))
        top_rows = circuit_permutation(top)
        bottom_rows = circuit_permutation(bottom)
        for packed in range(64):
            bits = index_to_bits(packed, 6)
            image = index_to_bits(combined.mapping[packed], 6)
            assert bits_to_index(image[:3]) == top_rows.mapping[
                bits_to_index(bits[:3])
            ]
            assert bits_to_index(image[3:]) == bottom_rows.mapping[
                bits_to_index(bits[3:])
            ]


class TestTensorLaws:
    @given(circuits(n_wires=3, max_ops=5), circuits(n_wires=3, max_ops=5))
    @settings(max_examples=30, deadline=None)
    def test_tensor_acts_independently(self, top, bottom):
        from repro.core.simulator import run

        combined = top.tensor(bottom)
        for packed in (0, 21, 63):
            bits = index_to_bits(packed, 6)
            joint = run(combined, bits)
            assert joint[:3] == run(top, bits[:3])
            assert joint[3:] == run(bottom, bits[3:])

    @given(circuits(n_wires=3, max_ops=4))
    @settings(max_examples=20, deadline=None)
    def test_tensor_with_empty_is_padding(self, circuit):
        padded = circuit.tensor(Circuit(2))
        assert padded.n_wires == 5
        assert len(padded) == len(circuit)


class TestDepthProperties:
    @given(circuits())
    @settings(max_examples=40, deadline=None)
    def test_depth_bounded_by_length(self, circuit):
        assert circuit.depth() <= len(circuit)
        if len(circuit):
            assert circuit.depth() >= 1

    @given(circuits(), circuits())
    @settings(max_examples=30, deadline=None)
    def test_depth_subadditive_under_concatenation(self, a, b):
        assert (a + b).depth() <= a.depth() + b.depth()
