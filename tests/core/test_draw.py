"""Tests for the ASCII circuit renderer."""

from __future__ import annotations

import pytest

from repro.coding import recovery_circuit
from repro.core.circuit import Circuit
from repro.core.draw import draw
from repro.errors import CircuitError, ReproError


class TestDraw:
    def test_figure_1_symbols(self):
        circuit = Circuit(3).cnot(0, 1).cnot(0, 2).toffoli(1, 2, 0)
        art = draw(circuit)
        lines = art.splitlines()
        assert len(lines) == 3
        assert "●" in art and "⊕" in art

    def test_line_count_matches_wires(self):
        art = draw(Circuit(5).x(0))
        assert len(art.splitlines()) == 5

    def test_custom_labels(self):
        art = draw(Circuit(2).swap(0, 1), labels=["top", "bot"])
        assert art.splitlines()[0].startswith("top")
        assert "×" in art

    def test_label_count_validated(self):
        # Regression: draw() used to leak a bare ValueError here; the
        # core layer's contract is CircuitError (under ReproError, so
        # callers can catch library failures uniformly).
        with pytest.raises(CircuitError, match="1 labels for 2 wires"):
            draw(Circuit(2), labels=["only-one"])
        with pytest.raises(ReproError):
            draw(Circuit(2), labels=["a", "b", "c"])

    def test_named_gate_box(self):
        art = draw(Circuit(3).maj(0, 1, 2))
        assert "[MAJ]" in art

    def test_reset_marker(self):
        art = draw(Circuit(1).append_reset(0))
        assert "|0>" in art

    def test_recovery_circuit_renders(self):
        # The full Figure-2 circuit draws without error and shows both
        # phases.
        art = draw(recovery_circuit())
        assert "[MAJ⁻¹]" in art
        assert "[MAJ]" in art
        assert len(art.splitlines()) == 9

    def test_connector_passes_through_middle_wires(self):
        art = draw(Circuit(3).cnot(0, 2))
        middle = art.splitlines()[1]
        assert "│" in middle
