"""Property-based laws of plane-program lowering.

The compiler lowers every gate's truth table to a plane program
(``copy`` / ``affine`` / ``anf`` / ``dnf``) and every circuit to a slot
schedule; these properties pin the lowering against the single-state
reference simulator and against the gate algebra itself:

1. Compile → apply over *all* inputs equals direct simulation, for
   random circuits (mixed gates and resets, widths up to 6) and for
   every registered backend.
2. Lowering commutes with inversion: the program of ``gate.inverse()``
   undoes the program of ``gate`` on random bit planes, so the ANF /
   affine lowering is involution-stable, not merely truth-table
   correct on broadcast states.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import available_backends, get_backend
from repro.core import library
from repro.core.bitplane import BitplaneState
from repro.core.circuit import Circuit
from repro.core.compiled import compile_circuit, gate_plane_program
from repro.core.library import REGISTRY
from repro.core.simulator import run as reference_run

_GATES = [
    library.X,
    library.CNOT,
    library.SWAP,
    library.TOFFOLI,
    library.MAJ,
    library.MAJ_INV,
    library.FREDKIN,
    library.SWAP3_DOWN,
]


def _all_rows(n_wires: int) -> np.ndarray:
    patterns = np.arange(1 << n_wires, dtype=np.int64)
    shifts = np.arange(n_wires - 1, -1, -1, dtype=np.int64)
    return ((patterns[:, None] >> shifts) & 1).astype(np.uint8)


@st.composite
def mixed_circuits(draw, max_wires: int = 6, max_ops: int = 10) -> Circuit:
    """Random circuits mixing library gates with wire resets."""
    n_wires = draw(st.integers(3, max_wires))
    circuit = Circuit(n_wires)
    gates = [g for g in _GATES if g.arity <= n_wires]
    for _ in range(draw(st.integers(0, max_ops))):
        if draw(st.booleans()) and draw(st.integers(0, 4)) == 0:
            count = draw(st.integers(1, min(2, n_wires)))
            wires = draw(
                st.permutations(list(range(n_wires))).map(lambda p: p[:count])
            )
            circuit.append_reset(*wires, value=draw(st.integers(0, 1)))
        else:
            gate = draw(st.sampled_from(gates))
            wires = draw(
                st.permutations(list(range(n_wires))).map(
                    lambda p: p[: gate.arity]
                )
            )
            circuit.append_gate(gate, *wires)
    return circuit


class TestLoweringMatchesSimulation:
    @given(mixed_circuits())
    @settings(max_examples=30, deadline=None)
    def test_compiled_apply_equals_reference_on_all_inputs(self, circuit):
        rows = _all_rows(circuit.n_wires)
        expected = np.asarray(
            [
                reference_run(circuit, tuple(int(b) for b in row))
                for row in rows
            ],
            dtype=np.uint8,
        )
        compiled = compile_circuit(circuit)
        for name in available_backends():
            backend = get_backend(name)
            state = backend.from_rows(rows)
            backend.prepare(compiled).run(state)
            np.testing.assert_array_equal(state.array, expected, err_msg=name)

    @given(mixed_circuits())
    @settings(max_examples=20, deadline=None)
    def test_fused_and_unfused_schedules_agree(self, circuit):
        rows = _all_rows(circuit.n_wires)
        fused = BitplaneState.from_rows(rows)
        unfused = BitplaneState.from_rows(rows)
        compile_circuit(circuit, fuse=True).run(fused)
        compile_circuit(circuit, fuse=False).run(unfused)
        np.testing.assert_array_equal(fused.planes, unfused.planes)


class TestLoweringInvolution:
    @pytest.mark.parametrize("name", sorted(REGISTRY))
    def test_inverse_program_undoes_program(self, name, rng):
        gate = REGISTRY[name]
        forward = gate_plane_program(gate)
        backward = gate_plane_program(gate.inverse())
        planes = rng.integers(
            0, 2**64, size=(gate.arity, 5), dtype=np.uint64
        )
        state = BitplaneState(planes.copy(), 5 * 64)
        wires = tuple(range(gate.arity))
        state.apply_program(forward, wires)
        state.apply_program(backward, wires)
        np.testing.assert_array_equal(state.planes, planes, err_msg=name)

    @pytest.mark.parametrize("name", sorted(REGISTRY))
    def test_self_inverse_gates_lower_to_involutions(self, name, rng):
        gate = REGISTRY[name]
        if not gate.is_self_inverse():
            pytest.skip("not self-inverse")
        program = gate_plane_program(gate)
        planes = rng.integers(
            0, 2**64, size=(gate.arity, 3), dtype=np.uint64
        )
        state = BitplaneState(planes.copy(), 3 * 64)
        wires = tuple(range(gate.arity))
        state.apply_program(program, wires)
        state.apply_program(program, wires)
        np.testing.assert_array_equal(state.planes, planes, err_msg=name)
