"""Fused scheduling: slot invariants and execution equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding import recovery_circuit
from repro.coding.logical import LogicalProcessor
from repro.core import library, run
from repro.core.bitplane import BitplaneState
from repro.core.circuit import Circuit
from repro.core.compiled import CompiledCircuit
from repro.core.library import REGISTRY

GATES = tuple(REGISTRY.values())


def random_circuit(rng: np.random.Generator, n_wires: int, n_ops: int) -> Circuit:
    circuit = Circuit(n_wires)
    usable = [gate for gate in GATES if gate.arity <= n_wires]
    for _ in range(n_ops):
        if rng.random() < 0.2:
            count = int(rng.integers(1, min(3, n_wires) + 1))
            wires = rng.choice(n_wires, size=count, replace=False)
            circuit.append_reset(
                *(int(w) for w in wires), value=int(rng.integers(0, 2))
            )
        else:
            gate = usable[int(rng.integers(len(usable)))]
            wires = rng.choice(n_wires, size=gate.arity, replace=False)
            circuit.append_gate(gate, *(int(w) for w in wires))
    return circuit


def transversal_circuit() -> Circuit:
    processor = LogicalProcessor(3, include_resets=True)
    processor.apply(library.MAJ, 0, 1, 2)
    processor.apply(library.MAJ_INV, 0, 1, 2)
    return processor.circuit


class TestSlotInvariants:
    def test_slots_preserve_schedule_order(self):
        compiled = CompiledCircuit(transversal_circuit())
        flattened = tuple(op for slot in compiled.slots for op in slot.ops)
        assert flattened == compiled.schedule

    def test_slot_ops_are_wire_disjoint_and_same_class(self):
        compiled = CompiledCircuit(transversal_circuit())
        for slot in compiled.slots:
            seen: set[int] = set()
            for op in slot.ops:
                assert op.is_reset == slot.is_reset
                assert seen.isdisjoint(op.wires)
                seen.update(op.wires)

    def test_group_rows_map_back_to_ops(self):
        compiled = CompiledCircuit(transversal_circuit())
        for slot in compiled.slots:
            for index, op in enumerate(slot.ops):
                group = slot.groups[slot.op_group[index]]
                row = group.wire_matrix[slot.op_row[index]]
                assert tuple(row) == op.wires

    def test_class_offsets_count_prior_same_class_ops(self):
        compiled = CompiledCircuit(transversal_circuit())
        counts = {False: 0, True: 0}
        for slot in compiled.slots:
            assert slot.class_offset == counts[slot.is_reset]
            counts[slot.is_reset] += len(slot.ops)
        assert counts[False] == compiled.n_gate_ops
        assert counts[True] == compiled.n_reset_ops

    def test_transversal_layers_fuse(self):
        # Transversal gates and per-codeword recovery steps act on
        # disjoint wire sets, so fusion stacks them: every gate slot
        # carries three ops, every ancilla-reset slot two, shrinking the
        # 54-op schedule to 20 slots.
        compiled = CompiledCircuit(transversal_circuit())
        assert len(compiled.schedule) == 54
        assert len(compiled.slots) == 20
        for slot in compiled.slots:
            assert len(slot.ops) == (2 if slot.is_reset else 3)

    def test_overlapping_ops_do_not_fuse(self):
        circuit = Circuit(3).cnot(0, 1).cnot(1, 2).cnot(0, 2)
        compiled = CompiledCircuit(circuit)
        assert [len(slot.ops) for slot in compiled.slots] == [1, 1, 1]

    def test_gate_reset_boundary_splits_slots(self):
        circuit = Circuit(4).cnot(0, 1).append_reset(2).append_reset(3).cnot(0, 1)
        compiled = CompiledCircuit(circuit)
        assert [
            (slot.is_reset, len(slot.ops)) for slot in compiled.slots
        ] == [(False, 1), (True, 2), (False, 1)]


class TestExecutionEquivalence:
    @pytest.mark.parametrize("trials", [1, 63, 64, 200])
    def test_fused_equals_unfused_noiseless(self, trials):
        rng = np.random.default_rng(90)
        for case in range(20):
            circuit = random_circuit(rng, 9, n_ops=30)
            rows = rng.integers(0, 2, size=(trials, 9))
            fused_state = BitplaneState.from_rows(rows)
            unfused_state = BitplaneState.from_rows(rows)
            CompiledCircuit(circuit, fuse=True).run(fused_state)
            CompiledCircuit(circuit, fuse=False).run(unfused_state)
            np.testing.assert_array_equal(fused_state.array, unfused_state.array)

    def test_fused_recovery_matches_reference(self):
        circuit = recovery_circuit()
        for logical in (0, 1):
            word = (logical,) * 3 + (0,) * 6
            expected = run(circuit, word)
            state = BitplaneState.broadcast(word, 100)
            CompiledCircuit(circuit, fuse=True).run(state)
            np.testing.assert_array_equal(
                state.array, np.tile(np.asarray(expected, dtype=np.uint8), (100, 1))
            )

    @pytest.mark.parametrize("trials", [1, 63, 64, 200])
    def test_packed_majority_and_count(self, trials):
        rng = np.random.default_rng(11)
        rows = rng.integers(0, 2, size=(trials, 5))
        state = BitplaneState.from_rows(rows)
        plane = state.majority_plane((0, 2, 4))
        expected = (rows[:, (0, 2, 4)].sum(axis=1) >= 2).sum()
        assert state.count_ones(plane) == expected

    def test_count_ones_without_bitwise_count(self, monkeypatch):
        # NumPy < 2.0 has no bitwise_count ufunc; the unpack fallback
        # must agree with it.
        state = BitplaneState.from_rows([[1], [0], [1], [1]])
        plane = state.planes[0]
        assert state.count_ones(plane) == 3
        # On NumPy 1.x the attribute is already absent and the first
        # assertion exercised the fallback directly.
        monkeypatch.delattr(np, "bitwise_count", raising=False)
        assert state.count_ones(plane) == 3

    def test_stacked_apply_matches_sequential(self):
        # One fused slot of three MAJ gates on disjoint triples must act
        # like the three sequential applications.
        circuit = Circuit(9)
        for offset in (0, 3, 6):
            circuit.maj(offset, offset + 1, offset + 2)
        rng = np.random.default_rng(4)
        rows = rng.integers(0, 2, size=(150, 9))
        fused_state = BitplaneState.from_rows(rows)
        compiled = CompiledCircuit(circuit, fuse=True)
        assert len(compiled.slots) == 1
        compiled.run(fused_state)
        reference = np.array([run(circuit, tuple(row)) for row in rows], dtype=np.uint8)
        np.testing.assert_array_equal(fused_state.array, reference)
