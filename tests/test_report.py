"""The one-command report runner must execute and pass."""

from __future__ import annotations

import repro.report


def test_report_main_runs_all_experiments(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_TRIALS", "8000")
    exit_code = repro.report.main()
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "all 16 experiments match the paper" in captured
    # Every experiment id appears in the output.
    for experiment_id in ("table1", "table2", "fig7", "nand-cost", "synth-peephole"):
        assert experiment_id in captured
