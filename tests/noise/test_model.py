"""Unit tests for repro.noise.model."""

from __future__ import annotations

import pytest

from repro.noise.model import NoiseModel
from repro.errors import SimulationError


class TestNoiseModel:
    def test_reset_error_defaults_to_gate_error(self):
        model = NoiseModel(gate_error=0.01)
        assert model.effective_reset_error == 0.01
        assert model.counts_resets

    def test_accurate_initialisation(self):
        model = NoiseModel(gate_error=0.01, reset_error=0.0)
        assert model.effective_reset_error == 0.0
        assert not model.counts_resets

    def test_explicit_reset_error(self):
        model = NoiseModel(gate_error=0.01, reset_error=0.5)
        assert model.effective_reset_error == 0.5

    def test_rejects_bad_gate_error(self):
        with pytest.raises(SimulationError):
            NoiseModel(gate_error=1.5)
        with pytest.raises(SimulationError):
            NoiseModel(gate_error=-0.1)

    def test_rejects_bad_reset_error(self):
        with pytest.raises(SimulationError):
            NoiseModel(gate_error=0.1, reset_error=2.0)

    def test_scaled(self):
        model = NoiseModel(gate_error=0.2, reset_error=0.1).scaled(0.5)
        assert model.gate_error == pytest.approx(0.1)
        assert model.reset_error == pytest.approx(0.05)

    def test_scaled_preserves_inherited_reset(self):
        model = NoiseModel(gate_error=0.2).scaled(0.5)
        assert model.reset_error is None
        assert model.effective_reset_error == pytest.approx(0.1)

    def test_noiseless(self):
        model = NoiseModel.noiseless()
        assert model.gate_error == 0.0
        assert model.effective_reset_error == 0.0
