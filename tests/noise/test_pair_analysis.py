"""Tests for the exact fault-pair analysis."""

from __future__ import annotations

import pytest

from repro.coding.recovery import OUTPUT_WIRES, recovery_circuit
from repro.core.circuit import Circuit
from repro.noise.model import NoiseModel
from repro.noise.monte_carlo import NoisyRunner
from repro.noise.pair_analysis import (
    analyse_one_d_cycle,
    analyse_pairs,
    analyse_recovery_cycle,
)
from repro.errors import AnalysisError


class TestRecoveryCycle:
    def test_no_harmful_single_faults(self):
        """The linear term vanishes — the fault-tolerance property."""
        analysis = analyse_recovery_cycle()
        assert analysis.harmful_single_faults == 0

    def test_pair_census_shape(self):
        analysis = analyse_recovery_cycle()
        assert analysis.operations == 8
        assert analysis.pair_count == 28

    def test_exact_coefficient_below_paper_bound(self):
        """Most pairs are harmless: c2 << 3 C(E,2)."""
        analysis = analyse_recovery_cycle()
        assert 0 < analysis.quadratic_coefficient < analysis.paper_bound_coefficient()

    def test_exact_threshold_above_paper_threshold(self):
        """'A tighter bound will result in an improved error threshold.'"""
        analysis = analyse_recovery_cycle()
        assert analysis.exact_threshold > 1.0 / 108.0

    def test_without_resets_fewer_pairs(self):
        with_init = analyse_recovery_cycle(include_resets=True)
        without = analyse_recovery_cycle(include_resets=False)
        assert without.operations == 6
        assert without.pair_count < with_init.pair_count


class TestOneDCycle:
    def test_no_harmful_single_faults(self):
        analysis = analyse_one_d_cycle()
        assert analysis.harmful_single_faults == 0

    def test_one_d_weaker_than_nonlocal(self):
        """Routing adds fault pairs: the 1D cycle has a larger c2."""
        one_d = analyse_one_d_cycle()
        nonlocal_ = analyse_recovery_cycle()
        assert one_d.quadratic_coefficient > nonlocal_.quadratic_coefficient
        assert one_d.exact_threshold < nonlocal_.exact_threshold


class TestAgainstMonteCarlo:
    def test_quadratic_prediction_matches_measured_rate(self):
        """c2 g^2 predicts the measured cycle failure at small g."""
        analysis = analyse_recovery_cycle()
        g = 1e-2  # ~90 expected failure events at this trial budget
        circuit = recovery_circuit()
        trials = 400000
        runner = NoisyRunner(NoiseModel(gate_error=g), seed=17)
        result = runner.run_from_input(circuit, (1, 1, 1) + (0,) * 6, trials)
        failures = float((result.states.majority_of(OUTPUT_WIRES) != 1).mean())
        predicted = analysis.quadratic_coefficient * g * g
        assert failures == pytest.approx(predicted, rel=0.4)


class TestUnprotectedCircuit:
    def test_single_faults_harmful_without_protection(self):
        """A bare majority-vote circuit fails at first order."""
        circuit = Circuit(9).maj(0, 1, 2)
        analysis = analyse_pairs(
            circuit, (1, 1, 1) + (0,) * 6, (0, 1, 2), expected_logical=1
        )
        assert analysis.harmful_single_faults > 0

    def test_threshold_requires_harmful_pairs(self):
        # An identity circuit never fails; exact_threshold is undefined.
        circuit = Circuit(9).swap(3, 4)
        analysis = analyse_pairs(
            circuit, (1, 1, 1) + (0,) * 6, (0, 1, 2), expected_logical=1
        )
        assert analysis.harmful_pair_weight == 0.0
        with pytest.raises(AnalysisError):
            _ = analysis.exact_threshold
