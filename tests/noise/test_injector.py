"""Tests for deterministic fault injection."""

from __future__ import annotations

import pytest

from repro.core.circuit import Circuit
from repro.noise.injector import (
    Fault,
    count_fault_sites,
    iter_fault_pairs,
    iter_single_faults,
    run_with_faults,
)
from repro.errors import SimulationError


def simple_circuit() -> Circuit:
    return Circuit(3).cnot(0, 1).maj(0, 1, 2).append_reset(2)


class TestRunWithFaults:
    def test_no_faults_matches_plain_run(self):
        from repro.core.simulator import run

        circuit = simple_circuit()
        assert run_with_faults(circuit, (1, 0, 1), []) == run(circuit, (1, 0, 1))

    def test_fault_overrides_operation(self):
        circuit = Circuit(2).cnot(0, 1)
        # Fault forces the CNOT's wires to (0, 0) regardless of inputs.
        output = run_with_faults(circuit, (1, 0), [Fault(0, (0, 0))])
        assert output == (0, 0)

    def test_fault_on_reset(self):
        circuit = Circuit(1).append_reset(0)
        output = run_with_faults(circuit, (0,), [Fault(0, (1,))])
        assert output == (1,)

    def test_mapping_form(self):
        circuit = Circuit(2).cnot(0, 1)
        assert run_with_faults(circuit, (1, 0), {0: (1, 1)}) == (1, 1)

    def test_two_faults(self):
        circuit = Circuit(2).cnot(0, 1).swap(0, 1)
        output = run_with_faults(
            circuit, (0, 0), [Fault(0, (1, 1)), Fault(1, (0, 1))]
        )
        assert output == (0, 1)

    def test_rejects_pattern_width_mismatch(self):
        circuit = Circuit(2).cnot(0, 1)
        with pytest.raises(SimulationError):
            run_with_faults(circuit, (0, 0), [Fault(0, (1,))])

    def test_rejects_out_of_range_index(self):
        circuit = Circuit(2).cnot(0, 1)
        with pytest.raises(SimulationError):
            run_with_faults(circuit, (0, 0), [Fault(5, (1, 1))])

    def test_rejects_duplicate_fault_sites(self):
        circuit = Circuit(2).cnot(0, 1)
        with pytest.raises(SimulationError):
            run_with_faults(
                circuit, (0, 0), [Fault(0, (1, 1)), Fault(0, (0, 0))]
            )

    def test_rejects_wrong_input_width(self):
        with pytest.raises(SimulationError):
            run_with_faults(Circuit(2), (0,), [])


class TestEnumeration:
    def test_single_fault_count(self):
        circuit = simple_circuit()
        faults = list(iter_single_faults(circuit))
        # CNOT: 4 patterns, MAJ: 8 patterns, reset: 2 patterns.
        assert len(faults) == 4 + 8 + 2

    def test_single_faults_exclude_resets(self):
        circuit = simple_circuit()
        faults = list(iter_single_faults(circuit, include_resets=False))
        assert len(faults) == 4 + 8
        assert all(f.op_index != 2 for f in faults)

    def test_pair_count(self):
        circuit = Circuit(2).cnot(0, 1).swap(0, 1)
        pairs = list(iter_fault_pairs(circuit))
        assert len(pairs) == 4 * 4  # one op pair, 4 patterns each

    def test_pairs_use_distinct_ops(self):
        circuit = simple_circuit()
        for first, second in iter_fault_pairs(circuit):
            assert first.op_index < second.op_index

    def test_count_fault_sites(self):
        circuit = simple_circuit()
        assert count_fault_sites(circuit) == 3
        assert count_fault_sites(circuit, include_resets=False) == 2

    def test_fault_validates_pattern(self):
        with pytest.raises(Exception):
            Fault(0, (0, 2))
