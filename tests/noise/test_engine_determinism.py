"""Determinism regression for both Monte-Carlo engines.

Three guarantees are pinned here:

1. ``NoisyRunner(seed=k)`` is bit-identical across runs for each
   engine — same ``fault_counts``, same final states.
2. The exact RNG streams are frozen by SHA-256 digests.  The engines
   deliberately consume the generator differently (per-trial uniforms +
   uint8 bits for the batched engine; batched per-error-class geometric
   draws + per-slot word blocks for the fused bitplane engine), so any
   change to either stream — reordering draws, changing the fault
   sampler, resizing a batch draw — breaks the digest and must be
   called out as a breaking change to reproducibility, since published
   experiment numbers are seed-dependent.  ``REPRO_FUSE=0`` switches
   the bitplane engine back to the original per-op schedule, whose
   stream is still frozen to the PR 1 digest.
3. The compile cache is invisible to results: cached and uncached runs
   (``REPRO_COMPILE_CACHE``) produce identical digests — the cache only
   skips redundant lowering, never changes what executes.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.coding import recovery_circuit
from repro.core.compiled import clear_compile_cache, compile_cache_stats
from repro.noise import NoiseModel, NoisyRunner

#: Frozen stream digests for the reference run below.  If an
#: intentional RNG-stream change lands, re-record these and flag the
#: break in CHANGES.md.
EXPECTED_DIGESTS = {
    "batched": "976e2fba10fd010553ec05734b7f9459a65c50d6789b84ca90b5460156f04993",
    "bitplane": "ce115c34cea8959e6de21dda74fe1cf4cb39830ac1803452e1367fb39de8e108",
}

#: The PR 1 bitplane stream (per-op schedule, per-op fault draws),
#: still reachable through ``REPRO_FUSE=0``.
UNFUSED_BITPLANE_DIGEST = (
    "668ca3903bc346718cdb2a19debacae88e1db63d386439a11fcb9809bd52bcc1"
)


@pytest.fixture(autouse=True)
def _fresh_compile_cache():
    # Digest tests toggle compile knobs via the environment; make sure
    # no compiled program built under another configuration leaks in.
    clear_compile_cache()
    yield
    clear_compile_cache()


def reference_run(engine: str, seed: int = 2026, backend: str | None = None):
    runner = NoisyRunner(
        NoiseModel(gate_error=0.01), seed=seed, engine=engine, backend=backend
    )
    return runner.run_from_input(recovery_circuit(), (1, 1, 1) + (0,) * 6, 1000)


def run_digest(result) -> str:
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(result.fault_counts).tobytes())
    digest.update(np.ascontiguousarray(result.states.array).tobytes())
    return digest.hexdigest()


@pytest.mark.parametrize("engine", ["batched", "bitplane"])
class TestDeterminism:
    def test_reruns_are_bit_identical(self, engine):
        first = reference_run(engine)
        second = reference_run(engine)
        np.testing.assert_array_equal(first.fault_counts, second.fault_counts)
        np.testing.assert_array_equal(first.states.array, second.states.array)

    def test_different_seeds_differ(self, engine):
        assert run_digest(reference_run(engine)) != run_digest(
            reference_run(engine, seed=2027)
        )

    def test_stream_digest_is_frozen(self, engine):
        assert run_digest(reference_run(engine)) == EXPECTED_DIGESTS[engine]

    def test_shared_generator_advances(self, engine):
        # Passing one Generator through two runs must consume it, so
        # consecutive runs differ (no hidden reseeding).
        rng = np.random.default_rng(5)
        runner = NoisyRunner(NoiseModel(gate_error=0.05), seed=rng, engine=engine)
        circuit = recovery_circuit()
        first = runner.run_from_input(circuit, (1, 1, 1) + (0,) * 6, 2000)
        first_counts = first.fault_counts.copy()
        second = runner.run_from_input(circuit, (1, 1, 1) + (0,) * 6, 2000)
        assert not np.array_equal(first_counts, second.fault_counts)


def test_engine_streams_are_distinct():
    # Same seed, different engines: statistically identical, but the
    # realisations must not collide (documents the RNG-stream caveat).
    assert run_digest(reference_run("batched")) != run_digest(
        reference_run("bitplane")
    )


def test_unfused_stream_matches_pr1(monkeypatch):
    # REPRO_FUSE=0 must reproduce the original per-op engine bit for
    # bit — the pre-fusion digest is the proof that fusion is opt-out
    # without losing old published numbers.
    monkeypatch.setenv("REPRO_FUSE", "0")
    clear_compile_cache()
    assert run_digest(reference_run("bitplane")) == UNFUSED_BITPLANE_DIGEST


@pytest.mark.parametrize("backend", ["numpy", "fused"])
def test_backend_stream_digest_is_frozen(backend):
    # Execution backends apply programs and scatter pre-drawn faults;
    # they never touch the RNG.  Every backend therefore reproduces the
    # *same* frozen bitplane digest — swapping REPRO_BACKEND can never
    # change published numbers.
    result = reference_run("bitplane", backend=backend)
    assert run_digest(result) == EXPECTED_DIGESTS["bitplane"]


def test_backend_choice_is_bit_invariant_across_seeds():
    for seed in (2026, 7, 991):
        numpy_run = reference_run("bitplane", seed=seed, backend="numpy")
        fused_run = reference_run("bitplane", seed=seed, backend="fused")
        np.testing.assert_array_equal(
            numpy_run.fault_counts, fused_run.fault_counts
        )
        np.testing.assert_array_equal(
            numpy_run.states.planes, fused_run.states.planes
        )


def test_compile_cache_is_result_invariant(monkeypatch):
    # Uncached, cache-miss, and cache-hit runs must be digest-identical.
    monkeypatch.setenv("REPRO_COMPILE_CACHE", "0")
    uncached = run_digest(reference_run("bitplane"))
    monkeypatch.setenv("REPRO_COMPILE_CACHE", "1")
    clear_compile_cache()
    cold = run_digest(reference_run("bitplane"))
    assert compile_cache_stats()["misses"] >= 1
    warm = run_digest(reference_run("bitplane"))
    assert compile_cache_stats()["hits"] >= 1
    assert uncached == cold == warm == EXPECTED_DIGESTS["bitplane"]
