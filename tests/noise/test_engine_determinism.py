"""Determinism regression for both Monte-Carlo engines.

Two guarantees are pinned here:

1. ``NoisyRunner(seed=k)`` is bit-identical across runs for each
   engine — same ``fault_counts``, same final states.
2. The exact RNG streams are frozen by SHA-256 digests.  The two
   engines deliberately consume the generator differently (per-trial
   uniforms + uint8 bits vs geometric gaps + uint64 words), so any
   change to either stream — reordering draws, changing the fault
   sampler, resizing a batch draw — breaks the digest and must be
   called out as a breaking change to reproducibility, since published
   experiment numbers are seed-dependent.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.coding import recovery_circuit
from repro.noise import NoiseModel, NoisyRunner

#: Frozen stream digests for the reference run below.  If an
#: intentional RNG-stream change lands, re-record these and flag the
#: break in CHANGES.md.
EXPECTED_DIGESTS = {
    "batched": "976e2fba10fd010553ec05734b7f9459a65c50d6789b84ca90b5460156f04993",
    "bitplane": "668ca3903bc346718cdb2a19debacae88e1db63d386439a11fcb9809bd52bcc1",
}


def reference_run(engine: str, seed: int = 2026):
    runner = NoisyRunner(NoiseModel(gate_error=0.01), seed=seed, engine=engine)
    return runner.run_from_input(recovery_circuit(), (1, 1, 1) + (0,) * 6, 1000)


def run_digest(result) -> str:
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(result.fault_counts).tobytes())
    digest.update(np.ascontiguousarray(result.states.array).tobytes())
    return digest.hexdigest()


@pytest.mark.parametrize("engine", ["batched", "bitplane"])
class TestDeterminism:
    def test_reruns_are_bit_identical(self, engine):
        first = reference_run(engine)
        second = reference_run(engine)
        np.testing.assert_array_equal(first.fault_counts, second.fault_counts)
        np.testing.assert_array_equal(first.states.array, second.states.array)

    def test_different_seeds_differ(self, engine):
        assert run_digest(reference_run(engine)) != run_digest(
            reference_run(engine, seed=2027)
        )

    def test_stream_digest_is_frozen(self, engine):
        assert run_digest(reference_run(engine)) == EXPECTED_DIGESTS[engine]

    def test_shared_generator_advances(self, engine):
        # Passing one Generator through two runs must consume it, so
        # consecutive runs differ (no hidden reseeding).
        rng = np.random.default_rng(5)
        runner = NoisyRunner(NoiseModel(gate_error=0.05), seed=rng, engine=engine)
        circuit = recovery_circuit()
        first = runner.run_from_input(circuit, (1, 1, 1) + (0,) * 6, 2000)
        first_counts = first.fault_counts.copy()
        second = runner.run_from_input(circuit, (1, 1, 1) + (0,) * 6, 2000)
        assert not np.array_equal(first_counts, second.fault_counts)


def test_engine_streams_are_distinct():
    # Same seed, different engines: statistically identical, but the
    # realisations must not collide (documents the RNG-stream caveat).
    assert run_digest(reference_run("batched")) != run_digest(
        reference_run("bitplane")
    )
