"""Tests for the vectorised Monte-Carlo engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import library
from repro.core.bitplane import BitplaneState
from repro.core.circuit import Circuit
from repro.core.simulator import BatchedState
from repro.noise.model import NoiseModel
from repro.noise.monte_carlo import (
    AUTO_BITPLANE_MIN_TRIALS,
    NoisyRunner,
    any_wire_differs_predicate,
    estimate_failure_probability,
    repetition_failure_predicate,
    resolve_engine,
)
from repro.errors import SimulationError


class TestNoisyRunner:
    def test_zero_noise_is_deterministic(self):
        circuit = Circuit(3).maj(0, 1, 2)
        runner = NoisyRunner(NoiseModel.noiseless(), seed=0)
        result = runner.run_from_input(circuit, (1, 0, 1), trials=50)
        assert (result.states.array == np.array([1, 1, 0], dtype=np.uint8)).all()
        assert result.fraction_with_faults() == 0.0

    def test_full_noise_randomises(self):
        circuit = Circuit(2).cnot(0, 1)
        runner = NoisyRunner(NoiseModel(gate_error=1.0), seed=0)
        result = runner.run_from_input(circuit, (0, 0), trials=4000)
        assert result.fraction_with_faults() == 1.0
        # Uniform over 4 patterns: each wire is ~half ones.
        means = result.states.array.mean(axis=0)
        assert np.allclose(means, 0.5, atol=0.05)

    def test_fault_rate_matches_g(self):
        circuit = Circuit(3).maj(0, 1, 2).maj_inv(0, 1, 2)
        runner = NoisyRunner(NoiseModel(gate_error=0.25), seed=1)
        result = runner.run_from_input(circuit, (0, 0, 0), trials=20000)
        mean_faults = result.fault_counts.mean()
        assert mean_faults == pytest.approx(0.5, rel=0.1)

    def test_reset_error_separate(self):
        circuit = Circuit(3).append_reset(0, 1, 2)
        runner = NoisyRunner(
            NoiseModel(gate_error=1.0, reset_error=0.0), seed=2
        )
        result = runner.run_from_input(circuit, (1, 1, 1), trials=100)
        assert (result.states.array == 0).all()

    def test_reset_faults_randomise(self):
        circuit = Circuit(3).append_reset(0, 1, 2)
        runner = NoisyRunner(NoiseModel(gate_error=0.0, reset_error=1.0), seed=3)
        result = runner.run_from_input(circuit, (1, 1, 1), trials=4000)
        assert 0.4 < result.states.array.mean() < 0.6

    def test_seeded_reproducibility(self):
        circuit = Circuit(3).maj(0, 1, 2)
        first = NoisyRunner(NoiseModel(gate_error=0.3), seed=7).run_from_input(
            circuit, (1, 0, 1), 500
        )
        second = NoisyRunner(NoiseModel(gate_error=0.3), seed=7).run_from_input(
            circuit, (1, 0, 1), 500
        )
        assert (first.states.array == second.states.array).all()

    def test_width_mismatch_rejected(self):
        runner = NoisyRunner(NoiseModel.noiseless())
        with pytest.raises(SimulationError):
            runner.run(Circuit(3), BatchedState.zeros(2, 10))

    def test_generator_can_be_shared(self):
        rng = np.random.default_rng(0)
        runner = NoisyRunner(NoiseModel(gate_error=0.1), seed=rng)
        assert runner.rng is rng

    def test_zero_trial_batch_has_zero_fault_fraction(self):
        # Regression: an empty batch used to return NaN (NumPy's
        # mean-of-empty, with a RuntimeWarning) instead of 0.0.
        import warnings

        circuit = Circuit(3).maj(0, 1, 2)
        runner = NoisyRunner(NoiseModel(gate_error=0.5), seed=0)
        result = runner.run(circuit, BatchedState.zeros(3, 0))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert result.fraction_with_faults() == 0.0


class TestEngineSelection:
    def test_resolve_auto_by_batch_size(self):
        assert resolve_engine("auto", AUTO_BITPLANE_MIN_TRIALS) == "bitplane"
        assert resolve_engine("auto", AUTO_BITPLANE_MIN_TRIALS - 1) == "batched"
        assert resolve_engine("batched", 10**6) == "batched"
        assert resolve_engine("bitplane", 1) == "bitplane"

    def test_unknown_engine_rejected(self):
        with pytest.raises(SimulationError):
            resolve_engine("quantum", 100)
        with pytest.raises(SimulationError):
            NoisyRunner(NoiseModel.noiseless(), engine="quantum")

    def test_engine_controls_state_type(self):
        circuit = Circuit(3).maj(0, 1, 2)
        batched = NoisyRunner(
            NoiseModel.noiseless(), seed=0, engine="batched"
        ).run_from_input(circuit, (1, 0, 1), trials=5000)
        bitplane = NoisyRunner(
            NoiseModel.noiseless(), seed=0, engine="bitplane"
        ).run_from_input(circuit, (1, 0, 1), trials=5000)
        assert isinstance(batched.states, BatchedState)
        assert isinstance(bitplane.states, BitplaneState)
        assert (batched.states.array == bitplane.states.array).all()

    def test_run_dispatches_on_state_type(self):
        # An explicitly built BitplaneState takes the bit-parallel path
        # even on a runner configured for the batched engine.
        circuit = Circuit(3).maj(0, 1, 2)
        runner = NoisyRunner(NoiseModel.noiseless(), seed=0, engine="batched")
        result = runner.run(circuit, BitplaneState.broadcast((1, 0, 1), 100))
        assert isinstance(result.states, BitplaneState)
        assert (result.states.array == np.array([1, 1, 0], dtype=np.uint8)).all()

    def test_engines_agree_statistically(self):
        circuit = Circuit(3).maj(0, 1, 2).maj_inv(0, 1, 2)
        means = {}
        for engine in ("batched", "bitplane"):
            runner = NoisyRunner(NoiseModel(gate_error=0.25), seed=9, engine=engine)
            result = runner.run_from_input(circuit, (0, 0, 0), trials=20000)
            means[engine] = result.fault_counts.mean()
        assert means["batched"] == pytest.approx(0.5, rel=0.1)
        assert means["bitplane"] == pytest.approx(0.5, rel=0.1)


class TestEstimation:
    def test_estimate_counts_failures(self):
        circuit = Circuit(3).maj(0, 1, 2)
        rate, count = estimate_failure_probability(
            circuit,
            (1, 0, 1),
            any_wire_differs_predicate((0, 1, 2), library.MAJ.apply((1, 0, 1))),
            NoiseModel.noiseless(),
            trials=100,
            seed=0,
        )
        assert rate == 0.0 and count == 0

    def test_estimate_with_noise_is_positive(self):
        circuit = Circuit(3).maj(0, 1, 2)
        rate, count = estimate_failure_probability(
            circuit,
            (1, 0, 1),
            any_wire_differs_predicate((0, 1, 2), library.MAJ.apply((1, 0, 1))),
            NoiseModel(gate_error=0.5),
            trials=2000,
            seed=0,
        )
        # Half the trials fault; 7/8 of faults corrupt the state.
        assert rate == pytest.approx(0.5 * 7 / 8, rel=0.15)

    def test_predicate_shape_validated(self):
        circuit = Circuit(1).x(0)
        with pytest.raises(SimulationError):
            estimate_failure_probability(
                circuit,
                (0,),
                lambda states: np.zeros((2, 2), dtype=bool),
                NoiseModel.noiseless(),
                trials=10,
            )

    def test_repetition_predicate(self):
        predicate = repetition_failure_predicate((0, 1, 2), expected=1)
        states = BatchedState.from_rows([(1, 1, 0), (0, 0, 1), (1, 1, 1)])
        assert predicate(states).tolist() == [False, True, False]
