"""The two Bernoulli position samplers: contract and agreement.

``_bernoulli_positions`` has a sparse regime (geometric gap jumping)
and a dense regime (direct thresholded uniforms) behind one contract:
sorted, duplicate-free int64 indices in ``[0, trials)``.  Both regimes
are exercised explicitly via the ``dense`` override, and a two-sided
statistical test checks they draw from the same fault-count
distribution (mean AND variance — a z-test on the pooled success count
plus a variance-ratio bound across repetitions).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.noise.monte_carlo import DENSE_PROBABILITY, _bernoulli_positions


@pytest.mark.parametrize("dense", [False, True])
class TestContract:
    def test_sorted_unique_in_range(self, dense):
        rng = np.random.default_rng(3)
        for probability in (0.001, 0.01, 0.05, 0.3):
            positions = _bernoulli_positions(rng, probability, 5000, dense=dense)
            assert positions.dtype == np.int64
            assert (np.diff(positions) > 0).all()  # sorted, no duplicates
            if positions.size:
                assert 0 <= positions[0] and positions[-1] < 5000

    def test_edge_cases(self, dense):
        rng = np.random.default_rng(4)
        assert _bernoulli_positions(rng, 0.5, 0, dense=dense).size == 0
        assert _bernoulli_positions(rng, 0.0, 100, dense=dense).size == 0
        assert _bernoulli_positions(rng, -1.0, 100, dense=dense).size == 0
        np.testing.assert_array_equal(
            _bernoulli_positions(rng, 1.0, 5, dense=dense),
            np.arange(5, dtype=np.int64),
        )

    def test_rate_matches_probability(self, dense):
        rng = np.random.default_rng(5)
        positions = _bernoulli_positions(rng, 0.05, 200_000, dense=dense)
        assert positions.size == pytest.approx(0.05 * 200_000, rel=0.05)


class TestRegimeSelection:
    def test_threshold_switches_regime_stream(self):
        # At p >= DENSE_PROBABILITY the default draw must consume the
        # generator exactly like an explicit dense draw; below, like an
        # explicit sparse draw.
        for probability, dense in ((0.3, True), (0.05, False)):
            auto = _bernoulli_positions(
                np.random.default_rng(6), probability, 4000
            )
            forced = _bernoulli_positions(
                np.random.default_rng(6), probability, 4000, dense=dense
            )
            np.testing.assert_array_equal(auto, forced)

    def test_threshold_value(self):
        # The measured crossover on vectorised NumPy generators: one
        # geometric gap costs ~14 ns per *success*, one uniform ~3 ns
        # per *trial*, so gap jumping keeps winning until successes are
        # about a quarter of the axis.  Every frozen digest and
        # threshold experiment draws well below this.
        assert DENSE_PROBABILITY == 0.25


class TestDistributionAgreement:
    def test_two_sided_mean_and_variance(self):
        # 400 repetitions of 2000 draws per regime at p = 0.05.  The
        # pooled success counts are Binomial(n_total, p); a two-sided
        # two-proportion z-test must not separate the regimes, and the
        # per-repetition count variance must match Binomial variance
        # within generous (but two-sided) bounds for BOTH regimes.
        probability, trials, reps = 0.05, 2000, 400
        counts = {}
        for dense in (False, True):
            rng = np.random.default_rng(12345)
            counts[dense] = np.array(
                [
                    _bernoulli_positions(rng, probability, trials, dense=dense).size
                    for _ in range(reps)
                ]
            )
        n_total = trials * reps
        p_pool = (counts[False].sum() + counts[True].sum()) / (2 * n_total)
        z = (counts[True].sum() - counts[False].sum()) / np.sqrt(
            2 * n_total * p_pool * (1 - p_pool)
        )
        assert abs(z) < 4.0, f"regimes separated: z = {z:.2f}"
        expected_var = trials * probability * (1 - probability)
        for dense, sample in counts.items():
            ratio = sample.var(ddof=1) / expected_var
            assert 0.7 < ratio < 1.4, (
                f"dense={dense}: count variance off Binomial by {ratio:.2f}x"
            )

    def test_sparse_regime_still_default_below_threshold(self):
        # The frozen engine digests rely on the sparse stream at the
        # reference g = 0.01; the default regime there must stay sparse.
        sparse = _bernoulli_positions(np.random.default_rng(7), 0.01, 1000)
        dense = _bernoulli_positions(
            np.random.default_rng(7), 0.01, 1000, dense=True
        )
        assert not np.array_equal(sparse, dense)
