"""The noise layer's RNG front door (seed spawning, generators)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.noise.seeds import as_generator, spawn_seeds


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(1234, 5) == spawn_seeds(1234, 5)

    def test_matches_seed_sequence_directly(self):
        # The move from harness.sweep must not change a single derived
        # seed — resumed sweeps depend on the derivation bit for bit.
        children = np.random.SeedSequence(99).spawn(3)
        expected = [
            int(child.generate_state(1, dtype=np.uint64)[0])
            for child in children
        ]
        assert spawn_seeds(99, 3) == expected

    def test_independent_per_point(self):
        seeds = spawn_seeds(7, 8)
        assert len(set(seeds)) == 8

    def test_negative_points_refused(self):
        with pytest.raises(AnalysisError):
            spawn_seeds(0, -1)

    def test_harness_reexport_is_the_same_object(self):
        # importlib, because ``repro.harness`` re-exports the ``sweep``
        # *function* under the submodule's name.
        import importlib

        sweep_module = importlib.import_module("repro.harness.sweep")
        assert sweep_module.spawn_seeds is spawn_seeds


class TestAsGenerator:
    def test_seed_builds_deterministic_generator(self):
        a = as_generator(42).integers(0, 1 << 30, size=4)
        b = as_generator(42).integers(0, 1 << 30, size=4)
        assert (a == b).all()

    def test_existing_generator_passes_through(self):
        rng = np.random.default_rng(0)
        assert as_generator(rng) is rng

    def test_none_gives_a_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)
