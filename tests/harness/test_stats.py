"""Tests for the statistics helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.harness.stats import RateEstimate, required_trials, wilson_interval
from repro.errors import AnalysisError


class TestWilson:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.3 < high

    def test_zero_successes_lower_bound_zero(self):
        low, high = wilson_interval(0, 100)
        assert low == 0.0
        assert high > 0.0

    def test_all_successes_upper_bound_one(self):
        low, high = wilson_interval(100, 100)
        assert high == 1.0
        assert low < 1.0

    @given(st.integers(1, 10000), st.data())
    def test_interval_well_formed(self, trials, data):
        successes = data.draw(st.integers(0, trials))
        low, high = wilson_interval(successes, trials)
        assert 0.0 <= low <= high <= 1.0

    @given(st.integers(1, 50))
    def test_narrows_with_more_trials(self, successes):
        low_small, high_small = wilson_interval(successes, 100)
        low_big, high_big = wilson_interval(successes * 100, 10000)
        assert (high_big - low_big) < (high_small - low_small)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            wilson_interval(5, 0)
        with pytest.raises(AnalysisError):
            wilson_interval(11, 10)


class TestRateEstimate:
    def test_rate(self):
        estimate = RateEstimate(failures=25, trials=100)
        assert estimate.rate == 0.25

    def test_compatibility(self):
        estimate = RateEstimate(failures=25, trials=100)
        assert estimate.compatible_with(0.25)
        assert not estimate.compatible_with(0.9)

    @pytest.mark.parametrize("trials", [0, -5])
    def test_zero_or_negative_trials_rejected_at_construction(self, trials):
        # Regression: this used to construct fine and then raise a bare
        # ZeroDivisionError from .rate; now it fails loudly up front,
        # consistent with wilson_interval.
        with pytest.raises(AnalysisError):
            RateEstimate(failures=0, trials=trials)

    @pytest.mark.parametrize("failures", [-1, 11])
    def test_out_of_range_failures_rejected(self, failures):
        with pytest.raises(AnalysisError):
            RateEstimate(failures=failures, trials=10)


class TestRequiredTrials:
    def test_rarer_events_need_more_trials(self):
        assert required_trials(1e-4) > required_trials(1e-2)

    def test_tighter_precision_needs_more_trials(self):
        assert required_trials(0.01, 0.01) > required_trials(0.01, 0.1)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            required_trials(0.0)
        with pytest.raises(AnalysisError):
            required_trials(0.5, relative_error=0.0)
