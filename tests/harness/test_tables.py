"""Tests for the table renderer."""

from __future__ import annotations

from repro.harness.tables import format_table, paper_vs_measured


class TestFormatTable:
    def test_headers_and_rows_present(self):
        text = format_table(("a", "b"), [(1, 2), (3, 4)])
        assert "a" in text and "b" in text
        assert "3" in text

    def test_title(self):
        text = format_table(("x",), [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(("v",), [(0.123456789,)], float_format=".2f")
        assert "0.12" in text

    def test_bool_rendering(self):
        text = format_table(("ok",), [(True,), (False,)])
        assert "yes" in text and "no" in text

    def test_empty_rows(self):
        text = format_table(("only", "headers"), [])
        assert "only" in text

    def test_alignment_consistent(self):
        text = format_table(("col",), [("short",), ("a-much-longer-cell",)])
        lines = text.splitlines()
        assert len(lines[-1]) >= len("a-much-longer-cell")


class TestPaperVsMeasured:
    def test_standard_columns(self):
        text = paper_vs_measured([("rho", 108, 108, True)])
        assert "quantity" in text
        assert "paper" in text
        assert "measured" in text
        assert "yes" in text
