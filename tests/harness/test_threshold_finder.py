"""Tests for pseudo-threshold estimation."""

from __future__ import annotations

import pytest

from repro.analysis.threshold import threshold
from repro.harness.threshold_finder import (
    find_pseudo_threshold,
    logical_error_per_cycle,
)
from repro.errors import AnalysisError


class TestLogicalErrorPerCycle:
    def test_zero_noise_zero_error(self):
        rate, failures = logical_error_per_cycle(0.0, trials=200, seed=0)
        assert rate == 0.0 and failures == 0

    def test_below_threshold_improves_on_physical(self):
        g = 1e-3  # well below rho = 1/165
        rate, _ = logical_error_per_cycle(g, trials=30000, seed=1)
        assert rate < g

    def test_far_above_threshold_is_worse_than_physical(self):
        g = 0.08
        rate, _ = logical_error_per_cycle(g, trials=4000, seed=2)
        assert rate > g

    def test_cycles_validated(self):
        with pytest.raises(AnalysisError):
            logical_error_per_cycle(0.01, trials=10, cycles=0)


class TestBisection:
    def test_finds_analytic_crossing(self):
        # On the closed-form map the crossing is exactly rho.
        from repro.analysis.recursion import one_level

        result = find_pseudo_threshold(
            lambda g: one_level(g, 11), lower=1e-4, upper=0.5, iterations=30
        )
        assert result.estimate == pytest.approx(threshold(11), rel=1e-4)

    def test_bracket_validation(self):
        with pytest.raises(AnalysisError):
            find_pseudo_threshold(lambda g: g * 0.5, lower=0.1, upper=0.2)
        with pytest.raises(AnalysisError):
            find_pseudo_threshold(lambda g: g * 2.0, lower=0.1, upper=0.2)

    def test_bracket_ordering_validated(self):
        with pytest.raises(AnalysisError):
            find_pseudo_threshold(lambda g: g, lower=0.5, upper=0.1)
