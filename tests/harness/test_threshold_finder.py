"""Tests for pseudo-threshold estimation."""

from __future__ import annotations

import pytest

from repro.analysis.threshold import threshold
from repro.harness.threshold_finder import (
    _PROCESSOR_CACHE,
    _cycle_processor,
    find_pseudo_threshold,
    find_pseudo_threshold_adaptive,
    logical_error_per_cycle,
)
from repro.errors import AnalysisError


class TestLogicalErrorPerCycle:
    def test_zero_noise_zero_error(self):
        rate, failures = logical_error_per_cycle(0.0, trials=200, seed=0)
        assert rate == 0.0 and failures == 0

    def test_below_threshold_improves_on_physical(self):
        g = 1e-3  # well below rho = 1/165
        rate, _ = logical_error_per_cycle(g, trials=30000, seed=1)
        assert rate < g

    def test_far_above_threshold_is_worse_than_physical(self):
        g = 0.08
        rate, _ = logical_error_per_cycle(g, trials=4000, seed=2)
        assert rate > g

    def test_cycles_validated(self):
        with pytest.raises(AnalysisError):
            logical_error_per_cycle(0.01, trials=10, cycles=0)


class TestBisection:
    def test_finds_analytic_crossing(self):
        # On the closed-form map the crossing is exactly rho.
        from repro.analysis.recursion import one_level

        result = find_pseudo_threshold(
            lambda g: one_level(g, 11), lower=1e-4, upper=0.5, iterations=30
        )
        assert result.estimate == pytest.approx(threshold(11), rel=1e-4)

    def test_bracket_validation(self):
        with pytest.raises(AnalysisError):
            find_pseudo_threshold(lambda g: g * 0.5, lower=0.1, upper=0.2)
        with pytest.raises(AnalysisError):
            find_pseudo_threshold(lambda g: g * 2.0, lower=0.1, upper=0.2)

    def test_bracket_ordering_validated(self):
        with pytest.raises(AnalysisError):
            find_pseudo_threshold(lambda g: g, lower=0.5, upper=0.1)


class TestProcessorCache:
    def test_cycle_processor_is_memoised(self):
        _PROCESSOR_CACHE.clear()
        assert _cycle_processor(1) is _cycle_processor(1)
        assert _cycle_processor(2) is not _cycle_processor(1)

    def test_memoisation_honours_cache_knob(self, monkeypatch):
        _PROCESSOR_CACHE.clear()
        monkeypatch.setenv("REPRO_COMPILE_CACHE", "0")
        assert _cycle_processor(1) is not _cycle_processor(1)
        assert not _PROCESSOR_CACHE

    def test_repeated_calls_reuse_circuit(self):
        _PROCESSOR_CACHE.clear()
        first = logical_error_per_cycle(1e-3, trials=500, seed=3)
        second = logical_error_per_cycle(1e-3, trials=500, seed=3)
        assert first == second


def analytic_evaluator(gate_error, n_trials, seed):
    # Deterministic pseudo-Monte-Carlo: failures implied by the exact
    # one-level map, so Wilson intervals shrink with n like real data.
    from repro.analysis.recursion import one_level

    per_cycle = one_level(gate_error, 11)
    per_run = 1.0 - (1.0 - per_cycle) ** 2
    return per_cycle, round(per_run * n_trials)


class TestAdaptiveBisection:
    def test_matches_analytic_crossing(self):
        # Bisection either converges or stops at the Wilson resolution
        # of the budget — both land within a percent of the true rho.
        result = find_pseudo_threshold_adaptive(
            analytic_evaluator, lower=1e-4, upper=0.5, trials=10**7, iterations=30
        )
        assert result.estimate == pytest.approx(threshold(11), rel=1e-2)
        assert result.trials_spent > 0

    def test_cheap_points_use_reduced_budget(self):
        result = find_pseudo_threshold_adaptive(
            analytic_evaluator, lower=1e-4, upper=0.5, trials=10**7, iterations=4
        )
        # Every point of the analytic map separates decisively at the
        # first stage, so the spend is 1/16 of budget per evaluation.
        assert result.trials_spent == result.evaluations * (10**7 // 16)

    def test_resolution_stop(self):
        # An evaluator pinned to the identity line can never separate:
        # the very first midpoint must stop the search and flag it.
        def on_the_line(gate_error, n_trials, seed):
            per_run = 1.0 - (1.0 - gate_error) ** 2
            return gate_error, round(per_run * n_trials)

        def below_until_mid(gate_error, n_trials, seed):
            if gate_error < 0.05:
                return 0.0, 0
            if gate_error > 0.2:
                return 1.0, n_trials
            return on_the_line(gate_error, n_trials, seed)

        result = find_pseudo_threshold_adaptive(
            below_until_mid, lower=0.01, upper=0.4, trials=1000, iterations=8
        )
        assert result.resolution_limited
        # Brackets, a decided midpoint at 0.205, then the stuck one.
        assert result.evaluations == 4
        assert result.estimate == pytest.approx(0.1075)

    def test_bracket_validation(self):
        with pytest.raises(AnalysisError):
            find_pseudo_threshold_adaptive(
                lambda g, n, s: (g * 0.5, round(g * 0.5 * n)),
                lower=0.1,
                upper=0.2,
                trials=10**6,
            )
        with pytest.raises(AnalysisError):
            find_pseudo_threshold_adaptive(
                lambda g, n, s: (min(g * 2.0, 1.0), round(min(g * 2.0, 1.0) * n)),
                lower=0.1,
                upper=0.2,
                trials=10**6,
            )

    def test_deterministic_for_a_seed(self):
        kwargs = dict(lower=1e-4, upper=0.5, trials=10**6, iterations=6, seed=9)
        first = find_pseudo_threshold_adaptive(analytic_evaluator, **kwargs)
        second = find_pseudo_threshold_adaptive(analytic_evaluator, **kwargs)
        assert first == second
