"""Tests for pseudo-threshold estimation."""

from __future__ import annotations

import pytest

from repro.analysis.threshold import threshold
from repro.harness.threshold_finder import (
    _PROCESSOR_CACHE,
    _cycle_processor,
    cycle_stage_spec,
    find_pseudo_threshold,
    find_pseudo_threshold_adaptive,
    logical_error_per_cycle,
    measure_cycle_errors,
)
from repro.errors import AnalysisError
from repro.runtime import ExecutionPolicy, RunSpec


class TestLogicalErrorPerCycle:
    def test_zero_noise_zero_error(self):
        rate, failures = logical_error_per_cycle(0.0, trials=200, seed=0)
        assert rate == 0.0 and failures == 0

    def test_below_threshold_improves_on_physical(self):
        g = 1e-3  # well below rho = 1/165
        rate, _ = logical_error_per_cycle(g, trials=30000, seed=1)
        assert rate < g

    def test_far_above_threshold_is_worse_than_physical(self):
        g = 0.08
        rate, _ = logical_error_per_cycle(g, trials=4000, seed=2)
        assert rate > g

    def test_cycles_validated(self):
        with pytest.raises(AnalysisError):
            logical_error_per_cycle(0.01, trials=10, cycles=0)


class TestBisection:
    def test_finds_analytic_crossing(self):
        # On the closed-form map the crossing is exactly rho.
        from repro.analysis.recursion import one_level

        result = find_pseudo_threshold(
            lambda g: one_level(g, 11), lower=1e-4, upper=0.5, iterations=30
        )
        assert result.estimate == pytest.approx(threshold(11), rel=1e-4)

    def test_bracket_validation(self):
        with pytest.raises(AnalysisError):
            find_pseudo_threshold(lambda g: g * 0.5, lower=0.1, upper=0.2)
        with pytest.raises(AnalysisError):
            find_pseudo_threshold(lambda g: g * 2.0, lower=0.1, upper=0.2)

    def test_bracket_ordering_validated(self):
        with pytest.raises(AnalysisError):
            find_pseudo_threshold(lambda g: g, lower=0.5, upper=0.1)


class TestProcessorCache:
    def test_cycle_processor_is_memoised(self):
        _PROCESSOR_CACHE.clear()
        assert _cycle_processor(1) is _cycle_processor(1)
        assert _cycle_processor(2) is not _cycle_processor(1)

    def test_memoisation_honours_cache_knob(self, monkeypatch):
        _PROCESSOR_CACHE.clear()
        monkeypatch.setenv("REPRO_COMPILE_CACHE", "0")
        assert _cycle_processor(1) is not _cycle_processor(1)
        assert not _PROCESSOR_CACHE

    def test_repeated_calls_reuse_circuit(self):
        _PROCESSOR_CACHE.clear()
        first = logical_error_per_cycle(1e-3, trials=500, seed=3)
        second = logical_error_per_cycle(1e-3, trials=500, seed=3)
        assert first == second


def analytic_evaluator(gate_error, n_trials, seed):
    # Deterministic pseudo-Monte-Carlo: failures implied by the exact
    # one-level map, so Wilson intervals shrink with n like real data.
    from repro.analysis.recursion import one_level

    per_cycle = one_level(gate_error, 11)
    per_run = 1.0 - (1.0 - per_cycle) ** 2
    return per_cycle, round(per_run * n_trials)


class TestAdaptiveBisection:
    def test_matches_analytic_crossing(self):
        # Bisection either converges or stops at the Wilson resolution
        # of the budget — both land within a percent of the true rho.
        result = find_pseudo_threshold_adaptive(
            analytic_evaluator, lower=1e-4, upper=0.5, trials=10**7, iterations=30
        )
        assert result.estimate == pytest.approx(threshold(11), rel=1e-2)
        assert result.trials_spent > 0

    def test_cheap_points_use_reduced_budget(self):
        result = find_pseudo_threshold_adaptive(
            analytic_evaluator, lower=1e-4, upper=0.5, trials=10**7, iterations=4
        )
        # Every point of the analytic map separates decisively at the
        # first stage, so the spend is 1/16 of budget per evaluation.
        assert result.trials_spent == result.evaluations * (10**7 // 16)

    def test_resolution_stop(self):
        # An evaluator pinned to the identity line can never separate:
        # the very first midpoint must stop the search and flag it.
        def on_the_line(gate_error, n_trials, seed):
            per_run = 1.0 - (1.0 - gate_error) ** 2
            return gate_error, round(per_run * n_trials)

        def below_until_mid(gate_error, n_trials, seed):
            if gate_error < 0.05:
                return 0.0, 0
            if gate_error > 0.2:
                return 1.0, n_trials
            return on_the_line(gate_error, n_trials, seed)

        result = find_pseudo_threshold_adaptive(
            below_until_mid, lower=0.01, upper=0.4, trials=1000, iterations=8
        )
        assert result.resolution_limited
        # Brackets, a decided midpoint at 0.205, then the stuck one.
        assert result.evaluations == 4
        assert result.estimate == pytest.approx(0.1075)

    def test_bracket_validation(self):
        with pytest.raises(AnalysisError):
            find_pseudo_threshold_adaptive(
                lambda g, n, s: (g * 0.5, round(g * 0.5 * n)),
                lower=0.1,
                upper=0.2,
                trials=10**6,
            )
        with pytest.raises(AnalysisError):
            find_pseudo_threshold_adaptive(
                lambda g, n, s: (min(g * 2.0, 1.0), round(min(g * 2.0, 1.0) * n)),
                lower=0.1,
                upper=0.2,
                trials=10**6,
            )

    def test_deterministic_for_a_seed(self):
        kwargs = dict(lower=1e-4, upper=0.5, trials=10**6, iterations=6, seed=9)
        first = find_pseudo_threshold_adaptive(analytic_evaluator, **kwargs)
        second = find_pseudo_threshold_adaptive(analytic_evaluator, **kwargs)
        assert first == second


def cycle_stage_evaluator(gate_error, n_trials, seed):
    """The sequential form of the stacked search's cycle workload."""
    return measure_cycle_errors(((gate_error, seed),), n_trials)[0]


class TestStackedSearch:
    """The spec_builder path: stacked rounds == sequential evaluation."""

    @pytest.mark.parametrize("seed", [51, 7])
    def test_bit_identical_to_sequential(self, seed):
        # The tentpole guarantee: same bracket, same budget, same seed
        # -> the stacked round planner (speculative midpoints and all)
        # returns the IDENTICAL PseudoThreshold — estimate, bracket,
        # evaluations, trials_spent, resolution flag — as evaluating
        # the stages one solo run at a time.
        kwargs = dict(
            lower=2e-3, upper=8e-2, trials=4000, iterations=6, seed=seed
        )
        sequential = find_pseudo_threshold_adaptive(
            cycle_stage_evaluator, **kwargs
        )
        stacked = find_pseudo_threshold_adaptive(
            spec_builder=cycle_stage_spec, **kwargs
        )
        assert sequential == stacked

    def test_bit_identical_on_coarse_bracket(self):
        # A coarse localisation run that stops on iteration count (not
        # statistical resolution) exercises the no-escalation rounds.
        kwargs = dict(
            lower=1e-3, upper=0.256, trials=3000, iterations=3, seed=13
        )
        sequential = find_pseudo_threshold_adaptive(
            cycle_stage_evaluator, **kwargs
        )
        stacked = find_pseudo_threshold_adaptive(
            spec_builder=cycle_stage_spec, **kwargs
        )
        assert sequential == stacked

    def test_mixed_engine_stages(self):
        # A tiny budget puts the 1/16 stage below the bitplane auto
        # threshold: stage batches then span two engine groups.  The
        # result must still match the sequential path exactly.
        kwargs = dict(
            lower=2e-3, upper=8e-2, trials=2000, iterations=4, seed=3
        )
        sequential = find_pseudo_threshold_adaptive(
            cycle_stage_evaluator, **kwargs
        )
        stacked = find_pseudo_threshold_adaptive(
            spec_builder=cycle_stage_spec,
            policy=ExecutionPolicy(engine="auto"),
            **kwargs,
        )
        assert sequential == stacked

    def test_multi_cycle_workload_contract(self):
        # cycles != 1 must be bound into the builder as well (the
        # search normalises rates by it); with the matching partial the
        # stacked search stays bit-identical to the sequential form.
        from functools import partial

        kwargs = dict(
            lower=2e-3, upper=8e-2, trials=2000, iterations=3, seed=11,
            cycles=2,
        )
        sequential = find_pseudo_threshold_adaptive(
            lambda g, n, s: measure_cycle_errors(((g, s),), n, cycles=2)[0],
            **kwargs,
        )
        stacked = find_pseudo_threshold_adaptive(
            spec_builder=partial(cycle_stage_spec, cycles=2), **kwargs
        )
        assert sequential == stacked

    def test_deterministic(self):
        kwargs = dict(
            lower=2e-3, upper=8e-2, trials=3000, iterations=5, seed=21
        )
        first = find_pseudo_threshold_adaptive(
            spec_builder=cycle_stage_spec, **kwargs
        )
        second = find_pseudo_threshold_adaptive(
            spec_builder=cycle_stage_spec, **kwargs
        )
        assert first == second

    def test_bracket_validation(self):
        with pytest.raises(AnalysisError, match="not below identity"):
            find_pseudo_threshold_adaptive(
                spec_builder=cycle_stage_spec,
                lower=6e-2,
                upper=8e-2,
                trials=3000,
                seed=1,
            )

    def test_exactly_one_workload_form(self):
        with pytest.raises(AnalysisError, match="exactly one"):
            find_pseudo_threshold_adaptive(
                cycle_stage_evaluator,
                lower=1e-3,
                upper=0.1,
                trials=100,
                spec_builder=cycle_stage_spec,
            )
        with pytest.raises(AnalysisError, match="exactly one"):
            find_pseudo_threshold_adaptive(lower=1e-3, upper=0.1, trials=100)

    def test_required_arguments(self):
        with pytest.raises(AnalysisError, match="required"):
            find_pseudo_threshold_adaptive(spec_builder=cycle_stage_spec)

    def test_mismatched_form_knobs_rejected(self):
        # The other form's knob must fail loudly, not be silently
        # dropped (a PR 3 caller migrating to spec_builder= would
        # otherwise believe parallel= still took effect).
        with pytest.raises(AnalysisError, match="policy"):
            find_pseudo_threshold_adaptive(
                spec_builder=cycle_stage_spec,
                lower=1e-3,
                upper=0.1,
                trials=100,
                parallel=4,
            )
        with pytest.raises(AnalysisError, match="spec_builder"):
            find_pseudo_threshold_adaptive(
                cycle_stage_evaluator,
                lower=1e-3,
                upper=0.1,
                trials=100,
                policy=ExecutionPolicy(),
            )

    def test_spec_builder_budget_mismatch_fails_loudly(self):
        def wrong_budget(gate_error, n_trials, seed) -> RunSpec:
            return cycle_stage_spec(gate_error, max(n_trials // 2, 1), seed)

        with pytest.raises(AnalysisError, match="stage budget"):
            find_pseudo_threshold_adaptive(
                spec_builder=wrong_budget,
                lower=2e-3,
                upper=8e-2,
                trials=1000,
                seed=1,
            )
