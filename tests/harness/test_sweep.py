"""Tests for sweep utilities."""

from __future__ import annotations

import os

import pytest

from repro.harness.sweep import (
    crossing_index,
    geometric_grid,
    resolve_workers,
    spawn_seeds,
    sweep,
)
from repro.errors import AnalysisError


def square(x):
    return x * x


class TestSweep:
    def test_pairs(self):
        result = sweep(lambda x: x * x, [1, 2, 3], parameter="g")
        assert result.rows() == [(1, 1), (2, 4), (3, 9)]
        assert result.parameter == "g"
        assert len(result) == 3

    def test_empty(self):
        assert sweep(lambda x: x, []).rows() == []


class TestParallelSweep:
    def test_parallel_matches_serial(self):
        values = list(range(8))
        serial = sweep(square, values)
        parallel = sweep(square, values, parallel=2)
        assert serial.rows() == parallel.rows()

    def test_parallel_preserves_order(self):
        result = sweep(square, [5, 3, 1], parallel=2)
        assert result.xs == (5, 3, 1)
        assert result.ys == (25, 9, 1)

    def test_worker_resolution(self):
        assert resolve_workers(None, 10) == 0
        assert resolve_workers(False, 10) == 0
        assert resolve_workers(0, 10) == 0
        assert resolve_workers(1, 10) == 0
        assert resolve_workers(4, 10) == 4
        assert resolve_workers(4, 2) == 2  # never more workers than points
        assert resolve_workers(4, 1) == 0  # one point runs in-process
        cpus = os.cpu_count() or 1
        assert resolve_workers(True, 3) == (min(cpus, 3) if cpus >= 2 else 0)

    def test_negative_workers_rejected(self):
        with pytest.raises(AnalysisError):
            resolve_workers(-2, 10)

    def test_single_point_runs_in_process(self):
        # A lambda is not picklable; parallel must degrade to serial
        # for a single point instead of shipping it to a pool.
        result = sweep(lambda x: x + 1, [41], parallel=4)
        assert result.ys == (42,)


def explode_on_three(x):
    if x == 3:
        raise ValueError("point exploded")
    return x * x


def explode_fast_or_sleep(x):
    import time

    if x == 0:
        raise ValueError("first point exploded")
    time.sleep(0.4)
    return x


class TestFailureAttribution:
    def test_serial_failure_names_the_point(self):
        with pytest.raises(AnalysisError, match=r"g=3 failed.*point exploded"):
            sweep(explode_on_three, [1, 2, 3, 4], parameter="g")

    def test_serial_failure_chains_original(self):
        with pytest.raises(AnalysisError) as info:
            sweep(explode_on_three, [3], parameter="g")
        assert isinstance(info.value.__cause__, ValueError)

    def test_parallel_failure_names_the_point(self):
        # The offending grid value must survive the process boundary.
        with pytest.raises(AnalysisError, match=r"g=3 failed"):
            sweep(explode_on_three, [1, 2, 3, 4], parameter="g", parallel=2)

    def test_parallel_failure_chains_original(self):
        with pytest.raises(AnalysisError) as info:
            sweep(explode_on_three, [1, 3], parameter="g", parallel=2)
        assert isinstance(info.value.__cause__, ValueError)

    def test_parallel_failure_cancels_pending_points(self):
        # Regression: a failing point used to re-raise inside the pool's
        # ``with`` block, whose exit still WAITED for every remaining
        # future — a fast failure among expensive points paid for the
        # whole grid.  With cancel_futures the failing sweep costs
        # about one in-flight sleeper, like the 2-point baseline below
        # (which pays the same pool startup), NOT the ~4 extra sleeper
        # rounds the serialised remainder of a 9-point grid would take
        # on two workers.  Comparing against the measured baseline
        # keeps the assertion robust to pool-startup and machine speed.
        import time

        start = time.perf_counter()
        sweep(explode_fast_or_sleep, [1, 2], parallel=2)
        baseline = time.perf_counter() - start

        start = time.perf_counter()
        with pytest.raises(AnalysisError, match="first point exploded"):
            sweep(explode_fast_or_sleep, list(range(9)), parallel=2)
        elapsed = time.perf_counter() - start
        assert elapsed < baseline + 1.0, (
            f"failing sweep took {elapsed:.2f}s vs {baseline:.2f}s "
            "baseline; pending points were not cancelled"
        )


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(7, 5) == spawn_seeds(7, 5)

    def test_distinct_across_points_and_bases(self):
        seeds = spawn_seeds(7, 5)
        assert len(set(seeds)) == 5
        assert spawn_seeds(8, 5) != seeds

    def test_prefix_stability(self):
        # Growing a sweep must not reshuffle existing point seeds.
        assert spawn_seeds(7, 8)[:5] == spawn_seeds(7, 5)

    def test_count_validated(self):
        with pytest.raises(AnalysisError):
            spawn_seeds(7, -1)
        assert spawn_seeds(7, 0) == []


class TestGeometricGrid:
    def test_endpoints(self):
        grid = geometric_grid(1e-4, 1e-2, 5)
        assert grid[0] == pytest.approx(1e-4)
        assert grid[-1] == pytest.approx(1e-2)

    def test_constant_ratio(self):
        grid = geometric_grid(1.0, 16.0, 5)
        ratios = [b / a for a, b in zip(grid, grid[1:])]
        assert all(r == pytest.approx(2.0) for r in ratios)

    def test_single_point(self):
        assert geometric_grid(3.0, 9.0, 1) == [3.0]

    @pytest.mark.parametrize("points", [0, -3])
    def test_nonpositive_points_rejected(self, points):
        with pytest.raises(AnalysisError):
            geometric_grid(1.0, 2.0, points)

    @pytest.mark.parametrize("start,stop", [(0.0, 1.0), (1.0, 0.0), (-1.0, 2.0)])
    def test_nonpositive_endpoints_rejected(self, start, stop):
        with pytest.raises(AnalysisError):
            geometric_grid(start, stop, 3)


class TestCrossing:
    def test_finds_first_crossing(self):
        xs = [0.001, 0.01, 0.1]
        ys = [0.0001, 0.02, 0.5]
        assert crossing_index(xs, ys) == 1

    def test_none_when_always_below(self):
        assert crossing_index([0.1, 0.2], [0.01, 0.02]) is None

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_y_rejected(self, bad):
        # Regression: NaN >= x is False, so a NaN used to be silently
        # treated as "below identity" and walked past — a corrupted
        # sweep could fabricate a crossing at a later index.
        with pytest.raises(AnalysisError, match="finite"):
            crossing_index([0.1, 0.2, 0.3], [0.01, bad, 0.5])

    def test_non_finite_x_rejected(self):
        with pytest.raises(AnalysisError, match="finite"):
            crossing_index([0.1, float("nan")], [0.01, 0.02])

    def test_values_after_crossing_not_validated(self):
        # The scan stops at the first crossing; trailing garbage after
        # it cannot invalidate an already-found threshold.
        assert crossing_index([0.1, 0.2, 0.3], [0.15, float("nan"), 0.1]) == 0


def _compile_probe(circuit):
    """Compile ``circuit`` and report the cache traffic it caused."""
    from repro.core.compiled import compile_cache_stats, compile_circuit

    before = compile_cache_stats()
    compile_circuit(circuit)
    after = compile_cache_stats()
    return (
        after["hits"] - before["hits"],
        after["misses"] - before["misses"],
    )


class TestWarmCompileCache:
    def _circuit(self):
        from repro.core.circuit import Circuit

        return Circuit(3, name="warm").cnot(0, 1).toffoli(1, 2, 0)

    def test_serial_warm_makes_every_point_a_hit(self):
        from repro.core.compiled import clear_compile_cache

        circuit = self._circuit()
        clear_compile_cache()
        result = sweep(_compile_probe, [circuit] * 3, warm=[circuit])
        # Warming compiled once up front; each point then hit, never
        # compiled.
        assert result.ys == ((1, 0), (1, 0), (1, 0))

    def test_pooled_warm_makes_every_point_a_hit(self):
        from repro.core.compiled import clear_compile_cache

        circuit = self._circuit()
        # Clear the parent cache so forked workers cannot inherit a
        # warm one — only the pool initializer can produce the hits.
        clear_compile_cache()
        result = sweep(
            _compile_probe, [circuit] * 4, parallel=2, warm=[circuit]
        )
        # The pool initializer warmed each worker's cache before any
        # point ran, so no worker ever compiles — without warming, the
        # first point in each fresh worker would be a miss.
        assert result.ys == ((1, 0),) * 4

    def test_pooled_without_warm_pays_cold_compiles(self):
        from repro.core.compiled import clear_compile_cache

        circuit = self._circuit()
        # Forked workers inherit the parent's cache; clear it so they
        # genuinely start cold.
        clear_compile_cache()
        result = sweep(_compile_probe, [circuit] * 4, parallel=2)
        # Fresh workers, no warming: at least one point pays a cold
        # compile miss (how many depends on scheduling).
        assert any(misses == 1 for _, misses in result.ys)
