"""Tests for sweep utilities."""

from __future__ import annotations

import pytest

from repro.harness.sweep import SweepResult, crossing_index, geometric_grid, sweep


class TestSweep:
    def test_pairs(self):
        result = sweep(lambda x: x * x, [1, 2, 3], parameter="g")
        assert result.rows() == [(1, 1), (2, 4), (3, 9)]
        assert result.parameter == "g"
        assert len(result) == 3

    def test_empty(self):
        assert sweep(lambda x: x, []).rows() == []


class TestGeometricGrid:
    def test_endpoints(self):
        grid = geometric_grid(1e-4, 1e-2, 5)
        assert grid[0] == pytest.approx(1e-4)
        assert grid[-1] == pytest.approx(1e-2)

    def test_constant_ratio(self):
        grid = geometric_grid(1.0, 16.0, 5)
        ratios = [b / a for a, b in zip(grid, grid[1:])]
        assert all(r == pytest.approx(2.0) for r in ratios)

    def test_single_point(self):
        assert geometric_grid(3.0, 9.0, 1) == [3.0]


class TestCrossing:
    def test_finds_first_crossing(self):
        xs = [0.001, 0.01, 0.1]
        ys = [0.0001, 0.02, 0.5]
        assert crossing_index(xs, ys) == 1

    def test_none_when_always_below(self):
        assert crossing_index([0.1, 0.2], [0.01, 0.02]) is None
