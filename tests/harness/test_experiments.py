"""Every registered experiment must run and match the paper."""

from __future__ import annotations

import os

import pytest

from repro.harness.experiments import (
    REGISTRY,
    run_experiment,
    trial_budget,
)
from repro.harness.experiments_md import (
    RECORD_PATH,
    recorded_ids,
    render_record,
)

EXPECTED_IDS = {
    "table1",
    "table2",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "thresholds",
    "blowup",
    "entropy",
    "nand-cost",
    "baseline",
    "mc-threshold",
    "synth-peephole",
}


class TestRegistry:
    def test_every_table_and_figure_registered(self):
        assert set(REGISTRY) == EXPECTED_IDS

    def test_unknown_id_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            run_experiment("fig99")

    def test_trial_budget_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS", "123")
        assert trial_budget() == 123

    def test_metadata_complete(self):
        for experiment in REGISTRY.values():
            assert experiment.paper_ref
            assert experiment.description


class TestExperimentsRecord:
    def test_record_sections_match_registry(self):
        # EXPERIMENTS.md is generated; its sections must be exactly the
        # registry ids, in registry order (the CI docs-consistency step
        # re-runs the registry too — here we just guard the structure).
        assert RECORD_PATH.exists(), (
            "EXPERIMENTS.md is missing; regenerate with "
            "`python -m repro.harness.experiments_md`"
        )
        assert recorded_ids(RECORD_PATH.read_text()) == list(REGISTRY)

    def test_render_covers_registry(self):
        assert recorded_ids(render_record()) == list(REGISTRY)


@pytest.mark.parametrize("experiment_id", sorted(EXPECTED_IDS))
def test_experiment_matches_paper(experiment_id, monkeypatch):
    monkeypatch.setenv(
        "REPRO_TRIALS", os.environ.get("REPRO_TRIALS", "15000")
    )
    result = run_experiment(experiment_id)
    failing = [row for row in result.rows if not row[3]]
    assert result.all_match, f"{experiment_id}: mismatched rows {failing}"
    assert result.rows, "experiment produced no comparison rows"
