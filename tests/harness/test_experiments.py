"""Every registered experiment must run and match the paper."""

from __future__ import annotations

import os

import pytest

from repro.harness.experiments import REGISTRY, run_experiment, trial_budget

EXPECTED_IDS = {
    "table1",
    "table2",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "thresholds",
    "blowup",
    "entropy",
    "nand-cost",
    "baseline",
    "mc-threshold",
}


class TestRegistry:
    def test_every_table_and_figure_registered(self):
        assert set(REGISTRY) == EXPECTED_IDS

    def test_unknown_id_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            run_experiment("fig99")

    def test_trial_budget_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS", "123")
        assert trial_budget() == 123

    def test_metadata_complete(self):
        for experiment in REGISTRY.values():
            assert experiment.paper_ref
            assert experiment.description


@pytest.mark.parametrize("experiment_id", sorted(EXPECTED_IDS))
def test_experiment_matches_paper(experiment_id, monkeypatch):
    monkeypatch.setenv(
        "REPRO_TRIALS", os.environ.get("REPRO_TRIALS", "15000")
    )
    result = run_experiment(experiment_id)
    failing = [row for row in result.rows if not row[3]]
    assert result.all_match, f"{experiment_id}: mismatched rows {failing}"
    assert result.rows, "experiment produced no comparison rows"
