"""Integration: a Cuccaro ripple-carry adder built from MAJ gates.

The paper notes (footnote 2) that MAJ variants power reversible
addition [Cuccaro et al.].  Here the adder is built from this library's
own ``MAJ`` gate plus a UMA gate, run (a) on bare wires and (b)
transversally on repetition-coded logical bits with recovery cycles —
the full fault-tolerant computation stack end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding.logical import LogicalProcessor
from repro.core import library
from repro.core.circuit import Circuit
from repro.core.gate import Gate
from repro.core.simulator import run
from repro.noise.model import NoiseModel
from repro.noise.monte_carlo import NoisyRunner


def _uma_action(bits):
    """Cuccaro's UMA (2-CNOT form) on (carry, b, a)."""
    x, y, z = bits
    z ^= x & y
    x ^= z
    y ^= x
    return (x, y, z)


UMA = Gate.from_function("UMA", 3, _uma_action)


def adder_gates(n_bits: int):
    """(gate, operand-indices) list for an n-bit ripple-carry adder.

    Logical register layout: [c0, b0, a0, b1, a1, ..., z].
    After the circuit, b_i holds sum bit i and z the carry out.
    """
    def a(i):
        return 2 + 2 * i

    def b(i):
        return 1 + 2 * i

    carry_out = 1 + 2 * n_bits
    gates = []
    carry = 0  # c0 register index
    for i in range(n_bits):
        # Our MAJ(q0,q1,q2) = Cuccaro MAJ with (a, b, c) on (q0, q1, q2).
        gates.append((library.MAJ, (a(i), b(i), carry)))
        carry = a(i)
    gates.append((library.CNOT, (a(n_bits - 1), carry_out)))
    for i in reversed(range(n_bits)):
        prev_carry = 0 if i == 0 else a(i - 1)
        gates.append((UMA, (prev_carry, b(i), a(i))))
    return gates, carry_out


def encode_operands(n_bits: int, a_value: int, b_value: int):
    """Logical register contents for the adder inputs."""
    register = [0] * (2 + 2 * n_bits)
    for i in range(n_bits):
        register[1 + 2 * i] = (b_value >> i) & 1
        register[2 + 2 * i] = (a_value >> i) & 1
    return tuple(register)


def decode_sum(register, n_bits: int) -> int:
    """Read the sum out of the register after the adder ran."""
    total = 0
    for i in range(n_bits):
        total |= register[1 + 2 * i] << i
    total |= register[1 + 2 * n_bits] << n_bits
    return total


class TestBareAdder:
    @pytest.mark.parametrize("a_value", range(4))
    @pytest.mark.parametrize("b_value", range(4))
    def test_two_bit_addition_exhaustive(self, a_value, b_value):
        n_bits = 2
        gates, _ = adder_gates(n_bits)
        circuit = Circuit(2 + 2 * n_bits)
        for gate, wires in gates:
            circuit.append_gate(gate, *wires)
        output = run(circuit, encode_operands(n_bits, a_value, b_value))
        assert decode_sum(output, n_bits) == a_value + b_value

    def test_three_bit_addition_samples(self):
        n_bits = 3
        gates, _ = adder_gates(n_bits)
        circuit = Circuit(2 + 2 * n_bits)
        for gate, wires in gates:
            circuit.append_gate(gate, *wires)
        for a_value, b_value in ((5, 3), (7, 7), (0, 6), (4, 4)):
            output = run(circuit, encode_operands(n_bits, a_value, b_value))
            assert decode_sum(output, n_bits) == a_value + b_value

    def test_operands_restored(self):
        # Cuccaro's adder restores a and the carry-in.
        n_bits = 2
        gates, _ = adder_gates(n_bits)
        circuit = Circuit(6)
        for gate, wires in gates:
            circuit.append_gate(gate, *wires)
        output = run(circuit, encode_operands(n_bits, 2, 1))
        assert output[0] == 0  # carry-in restored
        assert output[2] == 0 and output[4] == 1  # a bits restored


class TestFaultTolerantAdder:
    @pytest.mark.parametrize("a_value,b_value", [(0, 0), (1, 2), (3, 3), (2, 3)])
    def test_coded_adder_computes_sums(self, a_value, b_value):
        n_bits = 2
        gates, _ = adder_gates(n_bits)
        processor = LogicalProcessor(2 + 2 * n_bits)
        for gate, operands in gates:
            processor.apply(gate, *operands)
        physical = processor.physical_input(encode_operands(n_bits, a_value, b_value))
        output = run(processor.circuit, physical)
        decoded = processor.decode_output(output)
        assert decode_sum(decoded, n_bits) == a_value + b_value

    def test_coded_adder_beats_bare_adder_under_noise(self):
        n_bits = 2
        gates, _ = adder_gates(n_bits)
        gate_error = 3e-3
        trials = 3000
        a_value, b_value = 3, 2

        processor = LogicalProcessor(2 + 2 * n_bits)
        for gate, operands in gates:
            processor.apply(gate, *operands)
        physical = processor.physical_input(encode_operands(n_bits, a_value, b_value))
        runner = NoisyRunner(NoiseModel(gate_error=gate_error), seed=71)
        result = runner.run_from_input(processor.circuit, physical, trials)
        decoded = processor.decode_batch(result.states)
        sums = np.zeros(trials, dtype=np.int64)
        for i in range(n_bits):
            sums |= decoded[:, 1 + 2 * i].astype(np.int64) << i
        sums |= decoded[:, 1 + 2 * n_bits].astype(np.int64) << n_bits
        ft_failures = float((sums != a_value + b_value).mean())

        bare = Circuit(2 + 2 * n_bits)
        for gate, wires in gates:
            bare.append_gate(gate, *wires)
        runner = NoisyRunner(NoiseModel(gate_error=gate_error), seed=72)
        bare_result = runner.run_from_input(
            bare, encode_operands(n_bits, a_value, b_value), trials
        )
        arrays = bare_result.states.array
        bare_sums = np.zeros(trials, dtype=np.int64)
        for i in range(n_bits):
            bare_sums |= arrays[:, 1 + 2 * i].astype(np.int64) << i
        bare_sums |= arrays[:, 1 + 2 * n_bits].astype(np.int64) << n_bits
        bare_failures = float((bare_sums != a_value + b_value).mean())

        assert ft_failures < bare_failures
