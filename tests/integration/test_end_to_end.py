"""End-to-end integration across subsystems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.recursion import error_at_level
from repro.analysis.threshold import logical_error_bound, threshold
from repro.coding.concatenation import ConcatenatedComputation
from repro.coding.logical import LogicalProcessor
from repro.core import library
from repro.core.simulator import run
from repro.harness.stats import RateEstimate
from repro.harness.threshold_finder import measure_cycle_errors
from repro.local import circuit_is_local, one_d_lattice, one_d_recovery_circuit
from repro.noise.model import NoiseModel
from repro.noise.monte_carlo import NoisyRunner


class TestMeasuredErrorRespectsAnalyticBound:
    def test_level_one_error_below_eq1_bound(self):
        """Eq. 1 upper-bounds the measured per-cycle logical error."""
        g = 4e-3
        trials = 60000
        rate, failures = measure_cycle_errors(((g, 81),), trials)[0]
        bound = logical_error_bound(g, 11)
        estimate = RateEstimate(failures=failures, trials=trials)
        # The Wilson interval's lower edge must not exceed the bound.
        assert estimate.interval[0] / (2 * 1) <= bound
        assert rate <= bound

    def test_suppression_consistent_with_recursion(self):
        """Measured level-1 rate is within the Eq. 2 envelope."""
        g = 5e-3
        rate, _ = measure_cycle_errors(((g, 82),), trials=60000)[0]
        assert rate <= error_at_level(g, 11, 1)
        assert rate < g  # below threshold, one level helps


class TestConcatenationEndToEnd:
    def test_level2_identity_storage_under_noise(self):
        """A level-2 coded bit survives a gate cycle at g near rho/2."""
        g = threshold(9) / 2
        computation = ConcatenatedComputation(3, level=2)
        physical = computation.physical_input((1, 1, 1))
        computation.apply(library.MAJ, 0, 1, 2)
        runner = NoisyRunner(NoiseModel(gate_error=g, reset_error=0.0), seed=83)
        result = runner.run_from_input(computation.circuit, physical, trials=4000)
        decoded = computation.decode_batch(result.states)
        expected = np.asarray(library.MAJ.apply((1, 1, 1)), dtype=np.uint8)
        failure = float((decoded != expected).any(axis=1).mean())
        assert failure < 0.05

    def test_noiseless_deep_circuit_is_exact(self):
        computation = ConcatenatedComputation(3, level=2)
        physical = computation.physical_input((0, 1, 1))
        for _ in range(2):
            computation.apply(library.MAJ, 0, 1, 2)
            computation.apply(library.MAJ_INV, 0, 1, 2)
        output = run(computation.circuit, physical)
        assert computation.decode_output(output) == (0, 1, 1)


class TestLocalPipelines:
    def test_one_d_recovery_composes_with_logical_storage(self):
        """Store a logical bit through many local 1D cycles under noise."""
        circuit = one_d_recovery_circuit(cycles=8)
        assert circuit_is_local(circuit, one_d_lattice())
        state = [0] * 9
        for position in (0, 3, 6):
            state[position] = 1
        runner = NoisyRunner(NoiseModel(gate_error=1e-3), seed=84)
        result = runner.run_from_input(circuit, tuple(state), trials=20000)
        survived = result.states.majority_of((0, 3, 6))
        assert survived.mean() > 0.995

    def test_storage_fails_above_threshold(self):
        circuit = one_d_recovery_circuit(cycles=40)
        state = [0] * 9
        for position in (0, 3, 6):
            state[position] = 1
        runner = NoisyRunner(NoiseModel(gate_error=0.15), seed=85)
        result = runner.run_from_input(circuit, tuple(state), trials=3000)
        survived = result.states.majority_of((0, 3, 6))
        # Far above threshold, after many cycles the logical value is
        # fully randomised.
        assert 0.35 < survived.mean() < 0.65


class TestMixedSchemesStory:
    def test_mixed_threshold_interpolates_measured_thresholds(self):
        """rho(k) sits between the 1D and 2D analytic thresholds."""
        from repro.analysis.recursion import mixed_threshold

        rho_1d, rho_2d = threshold(38), threshold(14)
        for k in range(6):
            rho_k = mixed_threshold(rho_1d, rho_2d, k)
            assert rho_1d <= rho_k <= rho_2d
