"""Tests for RunSpec / ExecutionPolicy / PointResult / observables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.circuit import Circuit
from repro.core.simulator import BatchedState
from repro.errors import SimulationError
from repro.noise.model import NoiseModel
from repro.runtime import (
    DecodeObservable,
    ExecutionPolicy,
    PointResult,
    PredicateObservable,
    RunSpec,
    as_observable,
)


def all_ones_predicate(states):
    return states.columns(range(states.n_wires)).all(axis=1)


def make_spec(**overrides):
    values = dict(
        circuit=Circuit(3).maj(0, 1, 2),
        input_bits=(1, 0, 1),
        observable=all_ones_predicate,
        noise=NoiseModel(gate_error=0.01),
        trials=100,
        seed=0,
    )
    values.update(overrides)
    return RunSpec(**values)


class TestRunSpec:
    def test_input_bits_coerced_to_tuple(self):
        spec = make_spec(input_bits=[1, 0, 1])
        assert spec.input_bits == (1, 0, 1)

    def test_wire_count_validated(self):
        with pytest.raises(SimulationError):
            make_spec(input_bits=(1, 0))

    def test_trials_validated(self):
        with pytest.raises(SimulationError):
            make_spec(trials=0)

    def test_observable_protocol_validated(self):
        with pytest.raises(SimulationError):
            make_spec(observable=42)

    def test_specs_are_hashable_values(self):
        # Frozen specs with equal content must compare equal.
        assert make_spec() == make_spec()


class TestObservables:
    def test_callable_is_wrapped(self):
        wrapped = as_observable(all_ones_predicate)
        assert isinstance(wrapped, PredicateObservable)
        states = BatchedState.from_rows([(1, 1, 1), (0, 1, 1)])
        assert wrapped.count_failures(states) == 1

    def test_count_failures_objects_pass_through(self):
        observable = PredicateObservable(all_ones_predicate)
        assert as_observable(observable) is observable

    def test_predicate_shape_validated(self):
        wrapped = as_observable(lambda states: np.zeros((2, 2), dtype=bool))
        with pytest.raises(SimulationError):
            wrapped.count_failures(BatchedState.from_rows([(1, 0)]))

    def test_decode_observable_delegates(self):
        class Decoder:
            def count_decode_failures(self, states, expected):
                return 7 if expected == (1,) else 0

        assert DecodeObservable(Decoder(), (1,)).count_failures(None) == 7


def stacked_decode_fixture(trials_per_window):
    """A stacked plane array of noisy copies of one logical codeword."""
    from repro.coding.logical import LogicalProcessor
    from repro.core.bitplane import BitplaneState, words_for

    processor = LogicalProcessor(1, include_resets=True)
    rng = np.random.default_rng(5)
    windows = []
    offset = 0
    rows = []
    for trials in trials_per_window:
        windows.append((offset, trials))
        offset += words_for(trials)
        word = processor.physical_input((1,))
        block = np.tile(np.asarray(word, dtype=np.uint8), (words_for(trials) * 64, 1))
        flips = rng.random(block.shape) < 0.2
        rows.append(block ^ flips)
    states = BitplaneState.from_rows(np.concatenate(rows))
    return processor, states, windows


class TestStackedDecode:
    def test_matches_per_window_counts(self):
        # One decode pass over the whole stacked array must equal a
        # solo decode of every window view, including non-word-aligned
        # windows whose padding carries other (noisy) data.
        from repro.core.bitplane import BitplaneState, words_for

        processor, states, windows = stacked_decode_fixture((130, 64, 77))
        observable = DecodeObservable(processor, (1,))
        stacked = observable.count_failures_stacked(states, windows)
        for (offset, trials), count in zip(windows, stacked):
            window = BitplaneState(
                states.planes[:, offset:offset + words_for(trials)], trials
            )
            assert observable.count_failures(window) == count

    def test_decoder_without_plane_path_falls_back(self):
        class RowDecoder:
            """A decoder with only the generic counting protocol."""

            def __init__(self, inner):
                self.inner = inner

            def count_decode_failures(self, states, expected):
                return self.inner.count_decode_failures(states, expected)

        processor, states, windows = stacked_decode_fixture((100, 60))
        plain = DecodeObservable(RowDecoder(processor), (1,))
        full = DecodeObservable(processor, (1,))
        assert plain.count_failures_stacked(states, windows) == (
            full.count_failures_stacked(states, windows)
        )


class TestExecutionPolicy:
    def test_defaults(self):
        policy = ExecutionPolicy()
        assert policy.engine == "auto"
        assert policy.parallel is None
        assert policy.fuse and policy.compile_cache
        assert policy.trials == 100_000

    def test_engine_validated(self):
        with pytest.raises(SimulationError):
            ExecutionPolicy(engine="quantum")

    def test_from_env_reads_every_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "batched")
        monkeypatch.setenv("REPRO_BACKEND", "fused")
        monkeypatch.setenv("REPRO_PARALLEL", "3")
        monkeypatch.setenv("REPRO_FUSE", "0")
        monkeypatch.setenv("REPRO_COMPILE_CACHE", "0")
        monkeypatch.setenv("REPRO_TRIALS", "1234")
        policy = ExecutionPolicy.from_env()
        assert policy == ExecutionPolicy(
            engine="batched",
            backend="fused",
            parallel=3,
            fuse=False,
            compile_cache=False,
            trials=1234,
        )

    def test_from_env_parallel_max(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "max")
        assert ExecutionPolicy.from_env().parallel is True

    def test_from_env_defaults_yield_to_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRIALS", raising=False)
        assert ExecutionPolicy.from_env(trials=555).trials == 555
        monkeypatch.setenv("REPRO_TRIALS", "777")
        assert ExecutionPolicy.from_env(trials=555).trials == 777

    def test_from_env_unset_environment_keeps_defaults(self, monkeypatch):
        for knob in (
            "REPRO_ENGINE",
            "REPRO_BACKEND",
            "REPRO_PARALLEL",
            "REPRO_FUSE",
            "REPRO_COMPILE_CACHE",
            "REPRO_TRIALS",
        ):
            monkeypatch.delenv(knob, raising=False)
        assert ExecutionPolicy.from_env() == ExecutionPolicy()


class TestPointResult:
    def test_fractions(self):
        result = PointResult(
            failures=25, trials=100, faulted_trials=40, engine="bitplane"
        )
        assert result.failure_fraction == 0.25
        assert result.fault_fraction == 0.40
