"""Tests for the RunSpec JSON wire form."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.coding.logical import LogicalProcessor
from repro.core import library
from repro.core.circuit import Circuit
from repro.errors import SerializationError
from repro.harness.threshold_finder import cycle_error_specs
from repro.noise.model import NoiseModel
from repro.runtime import (
    Executor,
    ExecutionPolicy,
    PredicateObservable,
    RunSpec,
    SPEC_FORMAT_VERSION,
    spec_from_json,
    spec_to_json,
)
from repro.runtime.executor import _group_key
from repro.runtime.serialization import (
    circuit_from_json,
    circuit_to_json,
    noise_from_json,
    noise_to_json,
)


def no_failures(states):
    """Module-level predicate, importable by name."""
    return np.zeros(states.trials, dtype=bool)


def _maj_circuit() -> Circuit:
    return Circuit(3, name="maj").cnot(0, 1).cnot(0, 2).toffoli(1, 2, 0)


def _roundtrip(spec: RunSpec) -> RunSpec:
    # Through actual JSON text, not just dicts: the wire form must
    # survive what a manifest file does to it.
    return spec_from_json(json.loads(json.dumps(spec_to_json(spec))))


class TestCircuitRoundTrip:
    def test_preserves_content_key_and_equality(self):
        circuit = _maj_circuit()
        rebuilt = circuit_from_json(circuit_to_json(circuit))
        assert rebuilt == circuit
        assert rebuilt.content_key() == circuit.content_key()

    def test_resets_round_trip(self):
        circuit = Circuit(4).cnot(0, 1)
        circuit.append_reset(1, 2, value=1)
        rebuilt = circuit_from_json(circuit_to_json(circuit))
        assert rebuilt == circuit

    def test_gate_tables_deduplicated(self):
        circuit = Circuit(3)
        for _ in range(5):
            circuit.cnot(0, 1)
        data = circuit_to_json(circuit)
        assert len(data["gates"]) == 1
        assert len(data["ops"]) == 5


class TestNoiseRoundTrip:
    @pytest.mark.parametrize("reset_error", [None, 0.0, 2e-4])
    def test_round_trip(self, reset_error):
        noise = NoiseModel(gate_error=1e-3, reset_error=reset_error)
        assert noise_from_json(noise_to_json(noise)) == noise


class TestSpecRoundTrip:
    def test_cycle_spec_round_trip_equality(self):
        # The real threshold-pipeline spec: circuit + DecodeObservable
        # wrapping a LogicalProcessor.  Round trip must preserve value
        # equality AND content-key grouping (the executor would batch
        # the rebuilt spec with the original).
        (spec,) = cycle_error_specs(((2e-3, 11),), 2000, cycles=1)
        rebuilt = _roundtrip(spec)
        assert rebuilt == spec
        assert rebuilt.circuit.content_key() == spec.circuit.content_key()
        policy = ExecutionPolicy()
        assert _group_key(rebuilt, policy) == _group_key(spec, policy)

    def test_rebuilt_spec_runs_bit_identical(self):
        specs = cycle_error_specs(((3e-3, 5), (6e-3, 6)), 2000, cycles=1)
        policy = ExecutionPolicy(engine="bitplane")
        original = Executor(policy).run(specs)
        rebuilt = Executor(policy).run([_roundtrip(s) for s in specs])
        assert original == rebuilt

    def test_predicate_observable_by_dotted_path(self):
        spec = RunSpec(
            circuit=_maj_circuit(),
            input_bits=(1, 0, 1),
            observable=PredicateObservable(no_failures),
            noise=NoiseModel(gate_error=1e-3),
            trials=64,
            seed=3,
        )
        rebuilt = _roundtrip(spec)
        assert rebuilt == spec
        assert rebuilt.observable.predicate is no_failures

    def test_none_seed_round_trips(self):
        spec = RunSpec(
            circuit=_maj_circuit(),
            input_bits=(0, 0, 0),
            observable=PredicateObservable(no_failures),
            noise=NoiseModel(gate_error=0.0),
            trials=10,
            seed=None,
        )
        assert _roundtrip(spec).seed is None

    def test_format_version_stamped(self):
        (spec,) = cycle_error_specs(((2e-3, 11),), 100, cycles=1)
        assert spec.to_json()["format"] == SPEC_FORMAT_VERSION


class TestRefusals:
    def _spec(self, **overrides) -> RunSpec:
        base = dict(
            circuit=_maj_circuit(),
            input_bits=(1, 0, 1),
            observable=PredicateObservable(no_failures),
            noise=NoiseModel(gate_error=1e-3),
            trials=64,
            seed=3,
        )
        base.update(overrides)
        return RunSpec(**base)

    def test_lambda_predicate_refused(self):
        spec = self._spec(
            observable=PredicateObservable(lambda s: np.zeros(s.trials, bool))
        )
        with pytest.raises(SerializationError):
            spec.to_json()

    def test_generator_seed_refused(self):
        spec = self._spec(seed=np.random.default_rng(0))
        with pytest.raises(SerializationError):
            spec.to_json()

    def test_unknown_format_version_refused(self):
        data = self._spec().to_json()
        data["format"] = SPEC_FORMAT_VERSION + 1
        with pytest.raises(SerializationError):
            spec_from_json(data)

    def test_unregistered_observable_refused(self):
        class Odd:
            def count_failures(self, states):
                return 0

        with pytest.raises(SerializationError):
            self._spec(observable=Odd()).to_json()


class TestLogicalProcessorEquality:
    def test_equal_builds_compare_equal(self):
        a = LogicalProcessor(1)
        b = LogicalProcessor(1)
        assert a == b and hash(a) == hash(b)
        a.apply(library.X, 0, recover=True)
        assert a != b
        b.apply(library.X, 0, recover=True)
        assert a == b
