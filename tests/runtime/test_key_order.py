"""Insertion-order independence of every hashed wire form.

Point keys, shard IDs, and content digests must be pure functions of
content: two payloads with the same keys and values in different
insertion order have to hash identically, and anything JSON cannot
canonicalise (sets) must be refused, not serialised in iteration order.
"""

from __future__ import annotations

import pytest

from repro.errors import SerializationError
from repro.harness.threshold_finder import cycle_error_specs
from repro.jobs import point_key
from repro.runtime import ExecutionPolicy
from repro.runtime.serialization import (
    canonical_json,
    circuit_to_json,
    compress_for_hashing,
    spec_from_json,
    spec_to_json,
)


def reordered(payload):
    """A deep copy with every dict's keys inserted in reverse order."""
    if isinstance(payload, dict):
        return {key: reordered(payload[key]) for key in reversed(payload)}
    if isinstance(payload, list):
        return [reordered(item) for item in payload]
    return payload


def one_spec():
    (spec,) = cycle_error_specs(((0.002, 100),), trials=50, cycles=1)
    return spec


class TestCanonicalJson:
    def test_key_order_does_not_change_the_text(self):
        payload = {"b": [1, {"y": 2, "x": 3}], "a": 0}
        assert canonical_json(payload) == canonical_json(reordered(payload))

    def test_set_payload_is_refused(self):
        with pytest.raises(SerializationError):
            canonical_json({"wires": {0, 1, 2}})

    def test_non_json_object_is_refused(self):
        with pytest.raises(SerializationError):
            canonical_json({"gate": object()})


class TestCompressForHashing:
    def test_insertion_order_independent(self):
        # Reorder the top-level dict while keeping the memoised circuit
        # fragments by reference (digest substitution is identity-keyed;
        # the contract forbids mixing raw and compressed fragments in
        # one key space).
        spec = one_spec()
        payload = spec_to_json(spec)
        shuffled = {key: payload[key] for key in reversed(payload)}
        a = canonical_json(compress_for_hashing(payload))
        b = canonical_json(compress_for_hashing(shuffled))
        assert a == b

    def test_deep_reorder_without_fragments(self):
        payload = {"b": {"y": [1, 2], "x": 3}, "a": {"q": 0}}
        a = canonical_json(compress_for_hashing(payload))
        b = canonical_json(compress_for_hashing(reordered(payload)))
        assert a == b

    def test_digest_substitution_still_happens(self):
        spec = one_spec()
        fragment = circuit_to_json(spec.circuit)
        compressed = compress_for_hashing({"circuit": fragment})
        assert set(compressed["circuit"]) == {"circuit_digest"}


class TestPointKeyStability:
    def test_round_tripped_spec_keeps_its_point_key(self):
        spec = one_spec()
        policy = ExecutionPolicy.from_env()
        rebuilt = spec_from_json(spec_to_json(spec))
        assert point_key(rebuilt, policy) == point_key(spec, policy)
