"""Executor equivalence properties.

The load-bearing guarantees of the execution layer are proved here:

1. a single-point ``Executor.run`` is bit-identical to the legacy
   entry points on BOTH engines (the deprecation shims therefore
   reproduce the PR 2 numbers);
2. a multi-point stacked run is bit-identical, point by point, to
   running each spec alone — batching is an execution detail, never a
   statistical one (including points with non-word-aligned trial
   counts, which exercise the padding masks);
3. pooled execution across groups returns exactly the serial results,
   in spec order.
"""

from __future__ import annotations

import pytest

from repro.coding import recovery_circuit
from repro.coding.logical import LogicalProcessor
from repro.core import library
from repro.core.circuit import Circuit
from repro.errors import SimulationError
from repro.noise import (
    NoiseModel,
    NoisyRunner,
    repetition_failure_predicate,
)
from repro.runtime import (
    DecodeObservable,
    ExecutionPolicy,
    Executor,
    PredicateObservable,
    RunSpec,
    run_specs,
)

REPETITION_PREDICATE = PredicateObservable(
    repetition_failure_predicate((0, 1, 2), 1)
)


def recovery_spec(gate_error, seed, trials):
    return RunSpec(
        circuit=recovery_circuit(),
        input_bits=(1, 1, 1) + (0,) * 6,
        observable=REPETITION_PREDICATE,
        noise=NoiseModel(gate_error=gate_error),
        trials=trials,
        seed=seed,
    )


def legacy_point(spec, engine):
    """Ground truth: the classic single-point runner on one spec."""
    runner = NoisyRunner(spec.noise, spec.seed, engine=engine)
    result = runner.run_from_input(spec.circuit, spec.input_bits, spec.trials)
    failures = REPETITION_PREDICATE.count_failures(result.states)
    return failures, int((result.fault_counts > 0).sum())


class TestSinglePointBitIdentity:
    @pytest.mark.parametrize("engine", ["batched", "bitplane"])
    def test_matches_legacy_runner(self, engine):
        spec = recovery_spec(0.01, seed=11, trials=1000)
        expected = legacy_point(spec, engine)
        result = Executor(ExecutionPolicy(engine=engine)).run_one(spec)
        assert (result.failures, result.faulted_trials) == expected
        assert result.engine == engine

    @pytest.mark.parametrize("engine", ["batched", "bitplane"])
    def test_shim_reproduces_legacy_estimate(self, engine):
        # The deprecated estimate_failure_probability shim must return
        # the classic implementation's numbers bit for bit.
        from repro.noise import estimate_failure_probability

        spec = recovery_spec(0.02, seed=5, trials=640)
        with pytest.warns(DeprecationWarning):
            rate, count = estimate_failure_probability(
                spec.circuit,
                spec.input_bits,
                repetition_failure_predicate((0, 1, 2), 1),
                spec.noise,
                trials=spec.trials,
                seed=5,
                engine=engine,
            )
        failures, _ = legacy_point(spec, engine)
        assert count == failures
        assert rate == failures / spec.trials

    def test_shim_reproduces_legacy_cycle_error(self):
        # Same guarantee for the logical_error_per_cycle shim: its
        # numbers equal the classic NoisyRunner pipeline exactly.
        from repro.harness.threshold_finder import (
            _CYCLE_INPUT,
            _cycle_processor,
            logical_error_per_cycle,
        )

        trials, seed, g = 20_000, 7, 4e-3
        processor = _cycle_processor(1)
        runner = NoisyRunner(NoiseModel(gate_error=g), seed, engine="bitplane")
        result = runner.run_from_input(
            processor.circuit, processor.physical_input(_CYCLE_INPUT), trials
        )
        failures = processor.count_decode_failures(result.states, _CYCLE_INPUT)
        expected_rate = 1.0 - (1.0 - failures / trials) ** 0.5
        with pytest.warns(DeprecationWarning):
            rate, count = logical_error_per_cycle(g, trials, seed=seed)
        assert count == failures
        assert rate == expected_rate


class TestStackedBatchingBitIdentity:
    def test_stacked_points_equal_solo_runs(self):
        # Five noise levels, one shared circuit: ONE stacked plane
        # array must reproduce five solo runs bit for bit.
        specs = [
            recovery_spec(g, seed, 2000)
            for seed, g in enumerate((0.002, 0.005, 0.01, 0.03, 0.08))
        ]
        results = Executor(ExecutionPolicy(engine="bitplane")).run(specs)
        for spec, result in zip(specs, results):
            assert (result.failures, result.faulted_trials) == legacy_point(
                spec, "bitplane"
            )

    def test_unaligned_trial_counts_are_window_exact(self):
        # Trials that are not multiples of 64 give each point a padded
        # window; the padding masks must keep every point solo-exact.
        specs = [
            recovery_spec(0.02, seed=31, trials=777),
            recovery_spec(0.04, seed=32, trials=1000),
            recovery_spec(0.01, seed=33, trials=65),
        ]
        results = Executor(ExecutionPolicy(engine="bitplane")).run(specs)
        for spec, result in zip(specs, results):
            assert (result.failures, result.faulted_trials) == legacy_point(
                spec, "bitplane"
            )
            assert result.trials == spec.trials

    def test_results_come_back_in_spec_order_across_groups(self):
        maj_circuit = Circuit(3, name="maj").maj(0, 1, 2)
        maj_spec = RunSpec(
            circuit=maj_circuit,
            input_bits=(1, 0, 1),
            observable=PredicateObservable(
                repetition_failure_predicate((0, 1, 2), 1)
            ),
            noise=NoiseModel(gate_error=0.05),
            trials=1500,
            seed=41,
        )
        interleaved = [
            recovery_spec(0.01, 42, 1500),
            maj_spec,
            recovery_spec(0.03, 43, 1500),
        ]
        results = Executor(ExecutionPolicy(engine="bitplane")).run(interleaved)
        for spec, result in zip(interleaved, results):
            runner = NoisyRunner(spec.noise, spec.seed, engine="bitplane")
            run = runner.run_from_input(spec.circuit, spec.input_bits, spec.trials)
            assert result.failures == REPETITION_PREDICATE.count_failures(
                run.states
            )

    def test_unfused_policy_keeps_prefusion_stream(self):
        # fuse=False must fall back to the per-op schedule and its
        # exact pre-fusion RNG stream (no stacking).
        spec = recovery_spec(0.01, seed=51, trials=1000)
        runner = NoisyRunner(
            spec.noise, spec.seed, engine="bitplane", fuse=False
        )
        run = runner.run_from_input(spec.circuit, spec.input_bits, spec.trials)
        expected = REPETITION_PREDICATE.count_failures(run.states)
        result = Executor(
            ExecutionPolicy(engine="bitplane", fuse=False)
        ).run_one(spec)
        assert result.failures == expected

    def test_clustered_decode_with_unaligned_windows(self):
        # Three specs share ONE DecodeObservable (decoded by a single
        # stacked failure-plane pass) while a fourth carries its own —
        # every count must still equal its solo run, including the
        # non-word-aligned windows.
        processor = LogicalProcessor(3, include_resets=True)
        processor.apply(library.MAJ, 0, 1, 2)
        physical = processor.physical_input((1, 0, 1))
        shared = DecodeObservable(processor, (1, 0, 1))
        lone = DecodeObservable(processor, (1, 0, 0))
        specs = [
            RunSpec(
                circuit=processor.circuit,
                input_bits=physical,
                observable=observable,
                noise=NoiseModel(gate_error=g),
                trials=trials,
                seed=seed,
            )
            for seed, (g, trials, observable) in enumerate(
                (
                    (0.01, 777, shared),
                    (0.03, 1000, lone),
                    (0.05, 65, shared),
                    (0.02, 2000, shared),
                ),
                start=71,
            )
        ]
        results = Executor(ExecutionPolicy(engine="bitplane")).run(specs)
        for spec, result in zip(specs, results):
            runner = NoisyRunner(spec.noise, spec.seed, engine="bitplane")
            run = runner.run_from_input(
                spec.circuit, spec.input_bits, spec.trials
            )
            assert result.failures == spec.observable.count_failures(
                run.states
            )

    def test_decode_observable_on_stacked_windows(self):
        # The packed decode path must read each point's plane window
        # correctly (views are non-contiguous slices of the big array).
        processor = LogicalProcessor(3, include_resets=True)
        processor.apply(library.MAJ, 0, 1, 2)
        processor.apply(library.MAJ_INV, 0, 1, 2)
        physical = processor.physical_input((1, 0, 1))
        observable = DecodeObservable(processor, (1, 0, 1))
        specs = [
            RunSpec(
                circuit=processor.circuit,
                input_bits=physical,
                observable=observable,
                noise=NoiseModel(gate_error=g),
                trials=3000,
                seed=seed,
            )
            for seed, g in enumerate((0.005, 0.02), start=61)
        ]
        results = Executor(ExecutionPolicy(engine="bitplane")).run(specs)
        for spec, result in zip(specs, results):
            runner = NoisyRunner(spec.noise, spec.seed, engine="bitplane")
            run = runner.run_from_input(spec.circuit, spec.input_bits, spec.trials)
            assert result.failures == processor.count_decode_failures(
                run.states, (1, 0, 1)
            )


class TestContentGrouping:
    """Grouping keys on circuit content, not object identity."""

    def test_content_equal_circuits_share_a_group(self):
        from repro.runtime.executor import _group_key

        policy = ExecutionPolicy(engine="bitplane")
        left = recovery_spec(0.01, 1, 1000)
        right = recovery_spec(0.02, 2, 1000)
        assert left.circuit is not right.circuit
        assert _group_key(left, policy) == _group_key(right, policy)

    def test_synthesised_twin_is_bit_identical_to_its_reference(self):
        # A circuit rebuilt op for op (the synthesis/peephole output
        # case) joins the reference's stacked group and, with the same
        # seed, must reproduce its numbers exactly.
        twin = recovery_circuit().copy(name="optimised-EL")
        specs = [
            recovery_spec(0.02, seed=5, trials=1234),
            RunSpec(
                circuit=twin,
                input_bits=(1, 1, 1) + (0,) * 6,
                observable=REPETITION_PREDICATE,
                noise=NoiseModel(gate_error=0.02),
                trials=1234,
                seed=5,
            ),
        ]
        reference, synthesised = Executor(
            ExecutionPolicy(engine="bitplane")
        ).run(specs)
        assert reference == synthesised

    def test_different_content_keeps_separate_groups(self):
        from repro.runtime.executor import _group_key

        policy = ExecutionPolicy(engine="bitplane")
        base = recovery_spec(0.01, 1, 1000)
        other = RunSpec(
            circuit=recovery_circuit(include_resets=False),
            input_bits=(1, 1, 1) + (0,) * 6,
            observable=REPETITION_PREDICATE,
            noise=NoiseModel(gate_error=0.01),
            trials=1000,
            seed=1,
        )
        assert _group_key(base, policy) != _group_key(other, policy)


class TestPoolAcrossGroups:
    def test_parallel_groups_equal_serial(self):
        specs = [
            recovery_spec(0.01, 71, 1024),
            RunSpec(
                circuit=Circuit(3, name="maj").maj(0, 1, 2),
                input_bits=(1, 0, 1),
                observable=REPETITION_PREDICATE,
                noise=NoiseModel(gate_error=0.05),
                trials=1024,
                seed=72,
            ),
        ]
        serial = Executor(ExecutionPolicy(engine="bitplane")).run(specs)
        pooled = Executor(
            ExecutionPolicy(engine="bitplane", parallel=2)
        ).run(specs)
        assert serial == pooled

    def test_worker_failure_names_the_group(self):
        class Boom:
            def count_failures(self, states):
                raise ValueError("observable exploded")

        specs = [
            RunSpec(
                circuit=Circuit(2, name="left").cnot(0, 1),
                input_bits=(1, 0),
                observable=Boom(),
                noise=NoiseModel(gate_error=0.0),
                trials=300,
                seed=1,
            ),
            RunSpec(
                circuit=Circuit(2, name="right").cnot(1, 0),
                input_bits=(1, 0),
                observable=Boom(),
                noise=NoiseModel(gate_error=0.0),
                trials=300,
                seed=2,
            ),
        ]
        with pytest.raises(SimulationError, match="left|right"):
            Executor(ExecutionPolicy(parallel=2)).run(specs)

    def test_failed_pooled_run_tears_the_pool_down(self):
        # Regression: the fail-fast error path used
        # shutdown(cancel_futures=True), which swaps the pool manager
        # thread's pending-work dict while the queue feeder still pops
        # from the old one; a task that fails to pickle mid-flight
        # (like the test-local observable above) then leaves the
        # manager thread waiting forever, and the orphan deadlocks
        # interpreter exit.  After the error surfaces, every pool
        # thread must be joined.
        import concurrent.futures.process as cfp

        class Boom:
            def count_failures(self, states):
                raise ValueError("observable exploded")

        specs = [
            RunSpec(
                circuit=Circuit(2, name="left").cnot(0, 1),
                input_bits=(1, 0),
                observable=Boom(),
                noise=NoiseModel(gate_error=0.0),
                trials=300,
                seed=1,
            ),
            RunSpec(
                circuit=Circuit(2, name="right").cnot(1, 0),
                input_bits=(1, 0),
                observable=Boom(),
                noise=NoiseModel(gate_error=0.0),
                trials=300,
                seed=2,
            ),
        ]
        with pytest.raises(SimulationError):
            Executor(ExecutionPolicy(parallel=2)).run(specs)
        lingering = [t for t in cfp._threads_wakeups if t.is_alive()]
        assert lingering == []


class TestExecutorSurface:
    def test_empty_run(self):
        assert Executor().run([]) == []

    def test_empty_run_fast_path_under_parallel_policy(self):
        # Regression: the empty batch returns before grouping and
        # worker resolution — the caching executor and the shard
        # runner routinely produce all-cached (empty) batches, which
        # must not pay pool startup.
        assert Executor(ExecutionPolicy(parallel=64)).run([]) == []

    def test_non_spec_rejected(self):
        with pytest.raises(SimulationError):
            Executor().run(["not a spec"])

    def test_run_specs_convenience(self):
        spec = recovery_spec(0.01, 81, 640)
        (result,) = run_specs([spec], ExecutionPolicy(engine="bitplane"))
        assert result == Executor(ExecutionPolicy(engine="bitplane")).run_one(
            spec
        )

    def test_auto_engine_resolution_recorded(self):
        small = recovery_spec(0.01, 91, 100)
        large = recovery_spec(0.01, 92, 1000)
        results = Executor(ExecutionPolicy(engine="auto")).run([small, large])
        assert [r.engine for r in results] == ["batched", "bitplane"]

    def test_measure_cycle_errors_batches_points(self):
        # The harness-level sweep API: many points, one stacked run,
        # each point equal to its deprecated single-point shim.
        from repro.harness.threshold_finder import measure_cycle_errors

        points = tuple((g, seed) for seed, g in enumerate((2e-3, 8e-3, 0.03)))
        batched = measure_cycle_errors(points, trials=4000)
        for (g, seed), (rate, failures) in zip(points, batched):
            solo = measure_cycle_errors(((g, seed),), trials=4000)[0]
            assert solo == (rate, failures)
