"""Regression tests: invalid ``REPRO_*`` configuration fails loudly.

Historically an unknown ``REPRO_ENGINE`` surfaced as a confusing
failure deep inside the executor; now :meth:`ExecutionPolicy.from_env`
(and direct construction) raise :class:`~repro.errors.ConfigError`
naming the offending environment variable and listing the valid
values.  ``ConfigError`` subclasses ``SimulationError`` so existing
broad handlers keep working.
"""

from __future__ import annotations

import pytest

from repro.backends import DEFAULT_BACKEND, available_backends
from repro.errors import ConfigError, SimulationError
from repro.runtime import ExecutionPolicy


class TestFromEnvValidation:
    def test_unknown_engine_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "quantum")
        with pytest.raises(ConfigError, match="REPRO_ENGINE"):
            ExecutionPolicy.from_env()

    def test_unknown_backend_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "cuda")
        with pytest.raises(ConfigError, match="REPRO_BACKEND"):
            ExecutionPolicy.from_env()

    def test_error_lists_valid_choices(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "cuda")
        with pytest.raises(ConfigError, match="fused"):
            ExecutionPolicy.from_env()

    def test_bad_trials_is_config_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS", "lots")
        with pytest.raises(ConfigError, match="REPRO_TRIALS"):
            ExecutionPolicy.from_env()

    def test_bad_parallel_is_config_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "some")
        with pytest.raises(ConfigError, match="REPRO_PARALLEL"):
            ExecutionPolicy.from_env()

    def test_valid_env_round_trips(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "bitplane")
        monkeypatch.setenv("REPRO_BACKEND", "fused")
        monkeypatch.setenv("REPRO_TRIALS", "4096")
        policy = ExecutionPolicy.from_env()
        assert policy.engine == "bitplane"
        assert policy.backend == "fused"
        assert policy.trials == 4096

    def test_defaults_survive_unset_environment(self, monkeypatch):
        for var in ("REPRO_ENGINE", "REPRO_BACKEND", "REPRO_TRIALS"):
            monkeypatch.delenv(var, raising=False)
        policy = ExecutionPolicy.from_env()
        assert policy.backend == DEFAULT_BACKEND
        assert policy.backend in available_backends()


class TestDirectConstructionValidation:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError, match="quantum"):
            ExecutionPolicy(engine="quantum")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="cuda"):
            ExecutionPolicy(backend="cuda")

    def test_config_error_is_a_simulation_error(self):
        # Broad `except SimulationError` handlers written before
        # ConfigError existed must keep catching config mistakes.
        assert issubclass(ConfigError, SimulationError)
        with pytest.raises(SimulationError):
            ExecutionPolicy(backend="cuda")
