"""The meet-in-the-middle searcher: minimality, pruning soundness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import library
from repro.core.circuit import Circuit
from repro.core.truth_table import circuit_gate, circuit_permutation
from repro.errors import SynthesisError
from repro.synth import (
    SynthesisTarget,
    CostModel,
    enumerate_canonical,
    find_optimal,
    op_permutation,
    placed_library,
    search_depth_budget,
)


class TestPlacedLibrary:
    def test_symmetric_placements_deduplicate(self):
        # SWAP(0,1) and SWAP(1,0) are one action; on 2 wires the SWAP
        # library is a single op.
        ops = placed_library((library.SWAP,), 2)
        assert len(ops) == 1
        assert ops[0].wires == (0, 1)

    def test_identity_actions_dropped(self):
        ops = placed_library((library.IDENTITY1, library.X), 2)
        assert {op.gate.name for op in ops} == {"X"}

    def test_inverse_indices(self):
        ops = placed_library((library.SWAP3_UP, library.SWAP3_DOWN), 3)
        assert len(ops) == 2
        assert ops[0].inverse_index == 1
        assert ops[1].inverse_index == 0

    def test_op_permutation_matches_simulator(self):
        for wires in ((0, 2, 1), (2, 0, 3)):
            mapping = op_permutation(library.MAJ, wires, 4)
            reference = circuit_permutation(
                Circuit(4).append_gate(library.MAJ, *wires)
            )
            assert mapping == reference.mapping

    def test_empty_library_rejected(self):
        with pytest.raises(SynthesisError, match="at least one gate"):
            placed_library((), 2)

    def test_too_narrow_library_rejected(self):
        with pytest.raises(SynthesisError, match="fits"):
            placed_library((library.TOFFOLI,), 2)


class TestPaperConstructions:
    def test_rediscovers_figure_1_maj(self):
        result = find_optimal(
            library.MAJ, (library.CNOT, library.TOFFOLI), max_gates=4
        )
        assert result.gate_count == 3
        assert result.circuit.count_ops() == {"CNOT": 2, "TOFFOLI": 1}
        assert circuit_gate(result.circuit, "check").same_action(library.MAJ)
        # The canonical minimum IS the paper's construction, op for op.
        assert [(op.label, op.wires) for op in result.circuit] == [
            ("CNOT", (0, 1)),
            ("CNOT", (0, 2)),
            ("TOFFOLI", (1, 2, 0)),
        ]

    def test_rediscovers_figure_5_swap3(self):
        for rotation in (library.SWAP3_UP, library.SWAP3_DOWN):
            result = find_optimal(rotation, (library.SWAP,), max_gates=4)
            assert result.gate_count == 2
            assert result.circuit.count_ops() == {"SWAP": 2}
            assert circuit_gate(result.circuit, "check").same_action(rotation)

    def test_swap_from_cnots_is_three(self):
        result = find_optimal(library.SWAP, (library.CNOT,), max_gates=4)
        assert result.gate_count == 3


class TestMinimality:
    def test_identity_needs_zero_gates(self):
        result = find_optimal(
            Circuit(2).cnot(0, 1).cnot(0, 1), (library.CNOT,), max_gates=3
        )
        assert result.gate_count == 0
        assert result.cost == 0.0

    def test_single_gate_target(self):
        result = find_optimal(library.CNOT, (library.CNOT,), max_gates=3)
        assert result.gate_count == 1

    def test_unreachable_target_raises(self):
        # CNOTs are linear over GF(2); Toffoli is not.
        with pytest.raises(SynthesisError, match="no circuit of <= 3 gates"):
            find_optimal(library.TOFFOLI, (library.CNOT,), max_gates=3)

    def test_negative_max_gates_rejected(self):
        with pytest.raises(SynthesisError, match="max_gates"):
            find_optimal(library.X, (library.X,), max_gates=-1)

    def test_pruned_search_matches_unpruned_bfs_depths(self):
        """Differential: canonical-order pruning loses no minimal depth."""
        gates = (library.X, library.CNOT, library.SWAP, library.TOFFOLI)
        ops = placed_library(gates, 3)
        rng = np.random.default_rng(20260726)
        for _ in range(12):
            sequence = rng.integers(0, len(ops), size=rng.integers(1, 5))
            circuit = Circuit(3)
            for index in sequence:
                circuit.append_gate(ops[index].gate, *ops[index].wires)
            target_mapping = circuit_permutation(circuit).mapping
            # Unpruned reference BFS over actions.
            frontier = {tuple(range(8))}
            reference_depth = 0
            while target_mapping not in frontier:
                frontier = {
                    tuple(op.mapping[image] for image in mapping)
                    for mapping in frontier
                    for op in ops
                }
                reference_depth += 1
            result = find_optimal(
                SynthesisTarget(3, target_mapping), gates, max_gates=5
            )
            assert result.gate_count == reference_depth
            assert circuit_permutation(result.circuit).mapping == target_mapping


class TestDontCareSearch:
    def test_partial_toffoli_spec(self):
        # Specify only the ancilla-clean inputs (wire 2 = 0): the AND
        # of wires 0,1 lands on wire 2.  Toffoli satisfies it in one.
        rows = {
            "000": "000",
            "010": "010",
            "100": "100",
            "110": "111",
        }
        target = SynthesisTarget.from_truth_table(rows, n_wires=3, name="and")
        result = find_optimal(
            target, (library.CNOT, library.TOFFOLI), max_gates=3
        )
        assert result.gate_count == 1
        assert result.circuit.ops[0].label == "TOFFOLI"
        assert target.matches_circuit(result.circuit)

    def test_forward_search_on_partial_spec(self):
        # Inputs with wire 0 set are don't cares; the forward search
        # still proves the empty circuit fails (wire 1 must flip) and
        # finds the single-X solution at depth 1.
        target = SynthesisTarget.from_truth_table(
            {"00": "01", "01": "00"}, n_wires=2
        )
        result = find_optimal(target, (library.X, library.CNOT), max_gates=2)
        assert result.gate_count == 1
        assert target.matches_circuit(result.circuit)


class TestCostModelSelection:
    def test_depth_weight_breaks_gate_count_ties(self):
        # Two X gates on distinct wires: any order has 2 gates, depth 1;
        # the cost model is exercised across the tied candidates.
        target = SynthesisTarget.from_circuit(Circuit(2).x(0).x(1))
        result = find_optimal(
            target,
            (library.X,),
            max_gates=3,
            cost_model=CostModel(depth_weight=0.25),
        )
        assert result.gate_count == 2
        assert result.cost == 2 + 0.25 * 1


class TestEnumerateCanonical:
    def test_inverse_pairs_pruned(self):
        ops = placed_library((library.SWAP,), 2)
        sequences = [seq for seq, _ in enumerate_canonical(ops, 2)]
        # SWAP is self-inverse: the doubled sequence is pruned.
        assert sequences == [(0,)]

    def test_commuting_order_pruned(self):
        ops = placed_library((library.X,), 2)  # X(0)=op0, X(1)=op1, disjoint
        sequences = [seq for seq, _ in enumerate_canonical(ops, 2)]
        assert (1, 0) not in sequences
        assert (0, 1) in sequences

    def test_actions_are_exact(self):
        ops = placed_library((library.CNOT, library.X), 2)
        for sequence, mapping in enumerate_canonical(ops, 3):
            circuit = Circuit(2)
            for index in sequence:
                circuit.append_gate(ops[index].gate, *ops[index].wires)
            assert circuit_permutation(circuit).mapping == mapping


class TestDepthBudget:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SYNTH_DEPTH", "3")
        assert search_depth_budget(8) == 3

    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SYNTH_DEPTH", raising=False)
        assert search_depth_budget(5) == 5

    def test_invalid_budget_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SYNTH_DEPTH", "0")
        with pytest.raises(SynthesisError, match="REPRO_SYNTH_DEPTH"):
            search_depth_budget()

    def test_non_numeric_budget_rejected(self, monkeypatch):
        # Regression: int('fast') used to leak a bare ValueError.
        monkeypatch.setenv("REPRO_SYNTH_DEPTH", "fast")
        with pytest.raises(SynthesisError, match="integer"):
            search_depth_budget()
