"""The static ANF fast path in the rewrite-verification contract."""

from __future__ import annotations

from repro.core import library
from repro.core.circuit import Circuit
from repro.core.truth_table import circuit_permutation
from repro.synth import IdentityDatabase, optimize_report
from repro.synth.peephole import _verify_rewrite


def database() -> IdentityDatabase:
    db = IdentityDatabase(3)
    db.mine(
        (library.CNOT, library.TOFFOLI, library.MAJ, library.MAJ_INV),
        max_gates=2,
    )
    return db


class TestVerifyRewrite:
    def test_static_proof_accepts_equal_circuits(self):
        window = Circuit(3).cnot(0, 1).cnot(0, 1).cnot(0, 2)
        replacement = Circuit(3).cnot(0, 2)
        mapping = circuit_permutation(window).mapping
        assert _verify_rewrite(window, replacement, mapping)

    def test_unequal_circuits_are_rejected(self):
        window = Circuit(3).cnot(0, 1)
        replacement = Circuit(3).cnot(0, 2)
        mapping = circuit_permutation(window).mapping
        assert not _verify_rewrite(window, replacement, mapping)

    def test_static_path_needs_no_exhaustion(self, monkeypatch):
        # When the ANF prover certifies equality, the exhaustive
        # recomputation must not run at all — that is the fast path.
        import repro.synth.peephole as peephole

        def boom(circuit):
            raise AssertionError("exhaustion ran despite a static proof")

        monkeypatch.setattr(peephole, "circuit_permutation", boom)
        window = Circuit(3).maj(0, 1, 2)
        replacement = Circuit(3).maj(0, 1, 2)
        assert _verify_rewrite(window, replacement, None)

    def test_exhaustion_remains_the_authority(self, monkeypatch):
        # If the static prover is broken and rejects a true equality,
        # the exhaustive check still accepts the rewrite — a prover
        # regression can cost time, never correctness.
        import repro.synth.peephole as peephole

        monkeypatch.setattr(
            peephole, "circuits_equivalent", lambda a, b: False
        )
        window = Circuit(3).cnot(0, 1)
        replacement = Circuit(3).cnot(0, 1)
        mapping = circuit_permutation(window).mapping
        assert _verify_rewrite(window, replacement, mapping)


class TestOptimizeStillSound:
    def test_database_rewrites_keep_their_action(self):
        # End-to-end through the real optimizer: a redundant pair plus
        # a rewritable window must come out equivalent and verified.
        circuit = Circuit(3).cnot(0, 1).cnot(0, 1).toffoli(0, 1, 2)
        report = optimize_report(circuit, database=database())
        assert (
            circuit_permutation(report.circuit).mapping
            == circuit_permutation(circuit).mapping
        )
        assert report.verified_rewrites == (
            report.cancellations
            + report.identity_removals
            + report.database_rewrites
        )
