"""The identity database: keying, mining, persistence, verification."""

from __future__ import annotations

import json

import pytest

from repro.core import library
from repro.core.circuit import Circuit
from repro.core.gate import Gate
from repro.core.permutation import Permutation
from repro.errors import SynthesisError
from repro.synth import (
    CostModel,
    IdentityDatabase,
    circuit_from_json,
    circuit_to_json,
    content_digest,
)


def fig1_circuit() -> Circuit:
    return Circuit(3).cnot(0, 1).cnot(0, 2).toffoli(1, 2, 0)


class TestContentDigest:
    def test_rebuilt_circuit_shares_digest(self):
        assert content_digest(fig1_circuit()) == content_digest(fig1_circuit())

    def test_mutation_changes_digest(self):
        mutated = fig1_circuit().x(0)
        assert content_digest(mutated) != content_digest(fig1_circuit())

    def test_name_is_not_content(self):
        named = fig1_circuit().copy(name="fig1")
        assert content_digest(named) == content_digest(fig1_circuit())

    def test_same_name_different_table_gates_do_not_collide(self):
        # Regression: Gate.__repr__ elides the permutation table, so a
        # repr-based digest would collide these two content-distinct
        # circuits (and the database would silently drop the second).
        impostor = library.SWAP.renamed("X2")
        honest = Gate.from_permutation("X2", Permutation((3, 2, 1, 0)))
        left = Circuit(2).append_gate(impostor, 0, 1)
        right = Circuit(2).append_gate(honest, 0, 1)
        assert left.content_key() != right.content_key()
        assert content_digest(left) != content_digest(right)
        database = IdentityDatabase(2)
        assert database.add(left)
        assert database.add(right)
        assert database.n_circuits == 2


class TestSerialisation:
    def test_round_trip_library_gates(self):
        circuit = fig1_circuit().append_reset(1, value=1)
        rebuilt = circuit_from_json(circuit_to_json(circuit))
        assert rebuilt.ops == circuit.ops
        assert rebuilt.n_wires == circuit.n_wires

    def test_round_trip_custom_gate_inlines_table(self):
        rotated = Gate.from_permutation(
            "ROT4", Permutation((1, 2, 3, 0))
        )
        circuit = Circuit(2).append_gate(rotated, 0, 1)
        record = circuit_to_json(circuit)
        assert record["ops"][0]["table"] == [1, 2, 3, 0]
        assert circuit_from_json(record).ops == circuit.ops

    def test_renamed_library_gate_keeps_its_action(self):
        # A gate that *shadows* a library name with a different action
        # must serialise its table, not just the name.
        impostor = library.SWAP.renamed("CNOT")
        record = circuit_to_json(Circuit(2).append_gate(impostor, 0, 1))
        assert "table" in record["ops"][0]

    def test_malformed_record_rejected(self):
        with pytest.raises(SynthesisError, match="malformed"):
            circuit_from_json({"n_wires": 2})


class TestAddAndQuery:
    def test_add_dedupes_by_digest(self):
        database = IdentityDatabase(3)
        assert database.add(fig1_circuit())
        assert not database.add(fig1_circuit())
        assert database.n_circuits == 1

    def test_add_rejects_wrong_width(self):
        database = IdentityDatabase(2)
        with pytest.raises(SynthesisError, match="2-wire"):
            database.add(fig1_circuit())

    def test_best_prefers_cheapest(self):
        database = IdentityDatabase(3)
        database.add(fig1_circuit())
        database.add(Circuit(3).maj(0, 1, 2))
        best = database.best(library.MAJ.permutation)
        assert best is not None and len(best) == 1

    def test_best_identity_is_empty_without_mining(self):
        database = IdentityDatabase(2)
        best = database.best(tuple(range(4)))
        assert best is not None and len(best) == 0

    def test_best_unknown_action_is_none(self):
        database = IdentityDatabase(2)
        assert database.best(library.SWAP.table) is None

    def test_best_validates_action_size(self):
        with pytest.raises(SynthesisError, match="does not fit"):
            IdentityDatabase(2).best((0, 1))

    def test_best_ranks_equivalent_members_by_cost(self):
        database = IdentityDatabase(2)
        lean = Circuit(2).x(0).cnot(0, 1).x(0)
        padded = Circuit(2).x(0).cnot(0, 1).x(0).x(1).x(1)
        from repro.core.truth_table import circuit_permutation

        assert circuit_permutation(padded) == circuit_permutation(lean)
        database.add(padded)
        database.add(lean)
        best = database.best(circuit_permutation(lean))
        assert best is not None and len(best) == 3
        # With gate locations free, the tie breaks deterministically by
        # digest rather than by insertion order.
        free = CostModel(gate_location_weight=0.0)
        tied = database.best(circuit_permutation(lean), cost_model=free)
        assert tied is not None
        assert content_digest(tied) == min(
            content_digest(lean), content_digest(padded)
        )


class TestMining:
    def test_mine_populates_figure_1_class(self):
        database = IdentityDatabase(3)
        added = database.mine(
            (library.CNOT, library.TOFFOLI, library.MAJ), max_gates=3
        )
        assert added == database.n_circuits > 100
        members = database.classes[library.MAJ.table]
        lengths = sorted(len(member) for member in members.values())
        # The class holds the 1-gate MAJ and 3-gate Figure-1 members.
        assert lengths[0] == 1 and 3 in lengths
        best = database.best(library.MAJ.permutation)
        assert best is not None and len(best) == 1

    def test_mine_caps_members_per_class(self):
        database = IdentityDatabase(2)
        database.mine((library.X, library.CNOT), max_gates=4, keep=2)
        assert all(
            len(members) <= 2 for members in database.classes.values()
        )

    def test_mine_keep_validated(self):
        with pytest.raises(SynthesisError, match="keep"):
            IdentityDatabase(2).mine((library.X,), max_gates=1, keep=0)

    def test_identities_lists_identity_class(self):
        database = IdentityDatabase(2)
        # X(0) X(0) is pruned as an adjacent inverse pair, but the
        # four-op X0 X1 X0 X1 ... canonical identities need depth 4;
        # CNOT conjugations appear at depth 3+.  Mine deep enough.
        database.mine((library.X, library.CNOT), max_gates=4)
        identities = database.identities()
        assert identities
        from repro.core.truth_table import circuit_permutation

        assert all(
            circuit_permutation(circuit).is_identity()
            for circuit in identities
        )


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        database = IdentityDatabase(3)
        database.mine((library.CNOT, library.MAJ), max_gates=2)
        path = database.save(tmp_path / "identities.json")
        loaded = IdentityDatabase.load(path)
        assert loaded.n_wires == 3
        assert set(loaded.classes) == set(database.classes)
        assert loaded.n_circuits == database.n_circuits

    def test_load_verifies_members_by_exhaustion(self, tmp_path):
        database = IdentityDatabase(2)
        database.add(Circuit(2).swap(0, 1))
        path = database.save(tmp_path / "identities.json")
        payload = json.loads(path.read_text())
        # Tamper: claim the SWAP member implements the identity.
        payload["classes"][0]["mapping"] = [0, 1, 2, 3]
        path.write_text(json.dumps(payload))
        with pytest.raises(SynthesisError, match="corrupt"):
            IdentityDatabase.load(path)

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "identities.json"
        path.write_text(json.dumps({"version": 99, "n_wires": 2}))
        with pytest.raises(SynthesisError, match="version"):
            IdentityDatabase.load(path)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "identities.json"
        path.write_text("not json")
        with pytest.raises(SynthesisError, match="cannot read"):
            IdentityDatabase.load(path)

    def test_load_or_mine_mines_once_then_loads(self, tmp_path):
        path = tmp_path / "identities.json"
        mined = IdentityDatabase.load_or_mine(
            path, 2, (library.X, library.CNOT), max_gates=2
        )
        assert path.exists()
        written = path.read_text()
        loaded = IdentityDatabase.load_or_mine(
            path, 2, (library.X, library.CNOT), max_gates=2
        )
        assert loaded.n_circuits == mined.n_circuits
        assert path.read_text() == written  # second call did not remine

    def test_load_or_mine_remines_when_parameters_change(self, tmp_path):
        path = tmp_path / "identities.json"
        shallow = IdentityDatabase.load_or_mine(
            path, 2, (library.X, library.CNOT), max_gates=1
        )
        deeper = IdentityDatabase.load_or_mine(
            path, 2, (library.X, library.CNOT), max_gates=2
        )
        assert deeper.n_circuits > shallow.n_circuits
        assert deeper.metadata["mined"]["max_gates"] == 2
        # The rewritten file now answers the deeper request directly.
        again = IdentityDatabase.load_or_mine(
            path, 2, (library.X, library.CNOT), max_gates=2
        )
        assert again.n_circuits == deeper.n_circuits

    def test_mine_skip_heuristic_sound_for_subunit_weights(self):
        # Regression: with gate locations cheap, a later shorter member
        # must not be skipped just because the kept member's *cost* is
        # below the candidate's gate count.
        cheap = CostModel(gate_location_weight=0.1)
        database = IdentityDatabase(2)
        padded = Circuit(2).cnot(0, 1).x(0).x(0).cnot(0, 1).cnot(0, 1)
        database.add(padded)  # 5 gates, cost 0.5, same action as CNOT(0,1)
        database.mine((library.CNOT,), max_gates=1, keep=1, cost_model=cheap)
        best = database.best(library.CNOT.table, cost_model=cheap)
        assert best is not None and len(best) == 1

    def test_load_or_mine_rejects_width_mismatch(self, tmp_path):
        path = tmp_path / "identities.json"
        IdentityDatabase.load_or_mine(path, 2, (library.X,), max_gates=1)
        with pytest.raises(SynthesisError, match="expected 3"):
            IdentityDatabase.load_or_mine(path, 3, (library.X,), max_gates=1)

    def test_committed_experiment_database_verifies(self):
        # The repository ships the synth-peephole rewrite database;
        # loading re-verifies every member by exhaustion, so this test
        # keeps the committed JSON honest.
        from repro.synth.database import DEFAULT_DATABASE_DIR

        path = DEFAULT_DATABASE_DIR / "synth_identities.json"
        if not path.exists():
            pytest.skip("persisted database not generated yet")
        database = IdentityDatabase.load(path)
        assert database.n_wires == 3
        assert database.best(library.MAJ.permutation) is not None
