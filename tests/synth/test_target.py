"""SynthesisTarget construction/matching and CostModel scoring."""

from __future__ import annotations

import pytest

from repro.coding import recovery_circuit
from repro.core import library
from repro.core.circuit import Circuit
from repro.core.permutation import Permutation
from repro.errors import SynthesisError
from repro.synth import CostModel, DEFAULT_COST_MODEL, SynthesisTarget


class TestConstruction:
    def test_from_gate(self):
        target = SynthesisTarget.from_gate(library.MAJ)
        assert target.n_wires == 3
        assert target.is_fully_specified
        assert target.permutation() == library.MAJ.permutation
        assert target.name == "MAJ"

    def test_from_circuit(self):
        circuit = Circuit(2).cnot(0, 1)
        target = SynthesisTarget.from_circuit(circuit)
        assert target.outputs == library.CNOT.table

    def test_from_permutation_requires_power_of_two(self):
        with pytest.raises(SynthesisError, match="power of two"):
            SynthesisTarget.from_permutation(Permutation((1, 2, 0)))

    def test_output_count_validated(self):
        with pytest.raises(SynthesisError, match="needs 8 outputs"):
            SynthesisTarget(n_wires=3, outputs=(0, 1, 2, 3))

    def test_duplicate_images_rejected(self):
        with pytest.raises(SynthesisError, match="repeats an output"):
            SynthesisTarget(n_wires=1, outputs=(1, 1))

    def test_out_of_range_image_rejected(self):
        with pytest.raises(SynthesisError, match="outside range"):
            SynthesisTarget(n_wires=1, outputs=(0, 7))

    def test_wire_bound(self):
        with pytest.raises(SynthesisError, match="wires"):
            SynthesisTarget(n_wires=7, outputs=tuple(range(128)))


class TestDontCares:
    def test_from_truth_table_marks_missing_rows(self):
        target = SynthesisTarget.from_truth_table(
            {"00": "00", "11": "10"}, n_wires=2
        )
        assert not target.is_fully_specified
        assert target.dont_care_inputs == (1, 2)
        with pytest.raises(SynthesisError, match="don't-care"):
            target.permutation()

    def test_matches_ignores_dont_cares(self):
        target = SynthesisTarget(n_wires=1, outputs=(1, None))
        assert target.matches((1, 0))
        assert not target.matches((0, 1))

    def test_duplicate_truth_table_row_rejected(self):
        with pytest.raises(SynthesisError, match="twice"):
            SynthesisTarget.from_truth_table(
                [("0", "0"), ("0", "1")], n_wires=1
            )

    def test_row_width_validated(self):
        with pytest.raises(SynthesisError, match="does not match"):
            SynthesisTarget.from_truth_table({"00": "0"}, n_wires=2)

    def test_matches_size_validated(self):
        target = SynthesisTarget.from_gate(library.X)
        with pytest.raises(SynthesisError, match="patterns"):
            target.matches((0, 1, 2, 3))


class TestMatchesCircuit:
    def test_exhaustive_match(self):
        fig1 = Circuit(3).cnot(0, 1).cnot(0, 2).toffoli(1, 2, 0)
        assert SynthesisTarget.from_gate(library.MAJ).matches_circuit(fig1)
        assert not SynthesisTarget.from_gate(library.FREDKIN).matches_circuit(fig1)

    def test_wire_count_mismatch_is_no_match(self):
        assert not SynthesisTarget.from_gate(library.CNOT).matches_circuit(
            Circuit(3).cnot(0, 1)
        )


class TestCostModel:
    def test_default_cost_is_op_count(self):
        circuit = recovery_circuit()
        assert DEFAULT_COST_MODEL.cost(circuit) == len(circuit) == 8

    def test_fault_locations_census_matches_threshold_accounting(self):
        census = DEFAULT_COST_MODEL.fault_locations(recovery_circuit())
        # Figure 2: two 3-bit resets + three MAJ⁻¹ + three MAJ = E = 8.
        assert census == {"gates": 6, "resets": 2, "total": 8}

    def test_class_weights_split_the_census(self):
        model = CostModel(gate_location_weight=2.0, reset_location_weight=0.5)
        assert model.cost(recovery_circuit()) == 2.0 * 6 + 0.5 * 2

    def test_depth_weight(self):
        circuit = Circuit(2).x(0).x(1)  # depth 1, 2 gates
        model = CostModel(depth_weight=10.0)
        assert model.cost(circuit) == 2 + 10.0

    def test_negative_weight_rejected(self):
        with pytest.raises(SynthesisError, match=">= 0"):
            CostModel(depth_weight=-1.0)
