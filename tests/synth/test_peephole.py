"""The peephole optimiser: cancellation, rewrites, invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding import recovery_circuit
from repro.coding.logical import LogicalProcessor
from repro.core import library, run
from repro.core.bits import index_to_bits
from repro.core.circuit import Circuit
from repro.core.decompositions import DECOMPOSITIONS
from repro.core.truth_table import circuit_permutation
from repro.synth import (
    IdentityDatabase,
    inflate,
    optimize,
    optimize_report,
)


def same_noiseless_action(left: Circuit, right: Circuit) -> bool:
    """Exhaustive equality of two (possibly reset-bearing) circuits."""
    assert left.n_wires == right.n_wires
    width = left.n_wires
    return all(
        run(left, index_to_bits(i, width)) == run(right, index_to_bits(i, width))
        for i in range(1 << width)
    )


def rewrite_database() -> IdentityDatabase:
    database = IdentityDatabase(3)
    database.mine(
        (library.CNOT, library.TOFFOLI, library.MAJ, library.MAJ_INV),
        max_gates=2,
    )
    return database


class TestCancellation:
    def test_adjacent_inverse_pair_cancels(self):
        circuit = Circuit(2).cnot(0, 1).cnot(0, 1)
        assert len(optimize(circuit)) == 0

    def test_cancellation_across_disjoint_ops(self):
        circuit = Circuit(3).x(2).cnot(0, 1).x(2)
        optimized = optimize(circuit)
        assert [op.label for op in optimized] == ["CNOT"]

    def test_overlapping_op_blocks_cancellation(self):
        # The Fredkin decomposition: the outer CNOTs are mutual
        # inverses but the Toffoli between them shares their wires.
        circuit = Circuit(3).cnot(2, 1).toffoli(0, 1, 2).cnot(2, 1)
        assert optimize(circuit).ops == circuit.ops

    def test_identity_gate_removed(self):
        circuit = Circuit(2).append_gate(library.IDENTITY1, 0).cnot(0, 1)
        assert [op.label for op in optimize(circuit)] == ["CNOT"]

    def test_non_self_inverse_pair_cancels(self):
        circuit = Circuit(3).maj(0, 1, 2).maj_inv(0, 1, 2)
        assert len(optimize(circuit)) == 0

    def test_same_gate_twice_does_not_cancel_unless_involution(self):
        circuit = Circuit(3).maj(0, 1, 2).maj(0, 1, 2)
        assert optimize(circuit).ops == circuit.ops

    def test_resets_are_never_touched(self):
        circuit = Circuit(3).append_reset(0, 1).x(2).append_reset(2)
        optimized = optimize(circuit)
        assert optimized.ops == circuit.ops


class TestDatabaseRewrites:
    def test_figure_1_window_rewrites_to_maj(self):
        database = rewrite_database()
        circuit = Circuit(3).cnot(0, 1).cnot(0, 2).toffoli(1, 2, 0)
        optimized = optimize(circuit, database=database)
        assert [op.label for op in optimized] == ["MAJ"]
        assert optimized.ops[0].wires == (0, 1, 2)

    def test_narrow_window_embeds_into_wider_database(self):
        # SWAP-from-CNOTs touches 2 wires; a 3-wire database still
        # rewrites it through the embedded action.
        database = IdentityDatabase(3)
        database.mine((library.CNOT, library.SWAP), max_gates=2)
        circuit = Circuit(3).cnot(0, 1).cnot(1, 0).cnot(0, 1).toffoli(0, 1, 2)
        optimized = optimize(circuit, database=database)
        assert [op.label for op in optimized] == ["SWAP", "TOFFOLI"]
        assert same_noiseless_action(circuit, optimized)

    def test_identity_window_deleted(self):
        database = rewrite_database()
        # CNOT(0,1)·CNOT(0,2)·CNOT(0,1)·CNOT(0,2) is the identity but
        # contains no adjacent inverse pair (the middle pair overlaps
        # on the control); only the window rewrite can remove it.
        circuit = Circuit(3).cnot(0, 1).cnot(0, 2).cnot(0, 1).cnot(0, 2)
        assert circuit_permutation(circuit).is_identity()
        assert len(optimize(circuit, database=database)) == 0

    def test_without_database_only_cancellation_runs(self):
        circuit = Circuit(3).cnot(0, 1).cnot(0, 2).toffoli(1, 2, 0)
        assert optimize(circuit).ops == circuit.ops


class TestPaperConstructionsAreFixedPoints:
    def test_figure_1_maj_construction_untouched(self):
        circuit = Circuit(3, name="fig1").cnot(0, 1).cnot(0, 2).toffoli(1, 2, 0)
        assert optimize(circuit).ops == circuit.ops

    def test_figure_5_swap3_construction_untouched(self):
        circuit = Circuit(3).swap(1, 2).swap(0, 1)
        assert optimize(circuit).ops == circuit.ops

    def test_every_decomposition_untouched(self):
        for key, (circuit, _, _) in DECOMPOSITIONS.items():
            assert optimize(circuit).ops == circuit.ops, key

    def test_recovery_circuit_untouched(self):
        circuit = recovery_circuit()
        assert optimize(circuit).ops == circuit.ops
        assert optimize(circuit, database=rewrite_database()).ops == circuit.ops


class TestInflate:
    def test_preserves_action_on_recovery_circuit(self):
        circuit = recovery_circuit()
        redundant = inflate(circuit)
        assert len(redundant) > len(circuit)
        assert same_noiseless_action(circuit, redundant)

    def test_components_are_independent(self):
        circuit = recovery_circuit()
        for flags in ((True, False, False), (False, True, False), (False, False, True)):
            expand, pad, pair = flags
            redundant = inflate(
                circuit, expand_maj=expand, pad_gates=pad, pair_resets=pair
            )
            assert same_noiseless_action(circuit, redundant), flags

    def test_round_trip_recovers_the_recovery_circuit_exactly(self):
        circuit = recovery_circuit()
        report = optimize_report(inflate(circuit), database=rewrite_database())
        assert report.circuit.ops == circuit.ops
        assert report.locations_removed_fraction > 0.2


class TestOptimizeInvariants:
    def random_circuits(self):
        gates = [
            library.X,
            library.CNOT,
            library.SWAP,
            library.TOFFOLI,
            library.MAJ,
            library.MAJ_INV,
        ]
        rng = np.random.default_rng(7)
        for _ in range(15):
            circuit = Circuit(4)
            for _ in range(rng.integers(0, 10)):
                gate = gates[rng.integers(0, len(gates))]
                wires = rng.permutation(4)[: gate.arity]
                circuit.append_gate(gate, *(int(w) for w in wires))
                if rng.integers(0, 4) == 0:
                    circuit.append_reset(int(rng.integers(0, 4)))
            yield circuit

    def test_optimize_preserves_action_and_is_idempotent(self):
        database = IdentityDatabase(3)
        database.mine(
            (library.CNOT, library.SWAP, library.MAJ, library.MAJ_INV),
            max_gates=2,
        )
        for circuit in self.random_circuits():
            optimized = optimize(circuit, database=database)
            assert same_noiseless_action(circuit, optimized)
            assert len(optimized) <= len(circuit)
            again = optimize(optimized, database=database)
            assert again.ops == optimized.ops

    def test_report_accounting(self):
        circuit = Circuit(3).x(2).cnot(0, 1).x(2).swap(0, 1).swap(0, 1)
        report = optimize_report(circuit)
        assert report.cancellations == 2
        assert report.database_rewrites == 0
        assert report.verified_rewrites == report.cancellations
        assert report.locations_before["total"] == 5
        assert report.locations_after["total"] == 1
        assert report.locations_removed_fraction == pytest.approx(0.8)

    def test_empty_circuit_report(self):
        report = optimize_report(Circuit(2))
        assert report.locations_removed_fraction == 0.0
        assert report.circuit.ops == ()


class TestCycleWorkload:
    def test_cycle_round_trip_matches_up_to_maj_symmetry(self):
        from repro.harness.experiments import _op_shape

        processor = LogicalProcessor(3)
        processor.apply(library.MAJ, 0, 1, 2)
        processor.apply(library.MAJ_INV, 0, 1, 2)
        canonical = processor.circuit
        redundant = inflate(canonical)
        report = optimize_report(redundant, database=rewrite_database())
        assert len(report.circuit) == len(canonical)
        assert [_op_shape(op) for op in report.circuit] == [
            _op_shape(op) for op in canonical
        ]
        assert report.locations_removed_fraction >= 0.2

    def test_op_shape_keeps_operand_roles(self):
        from repro.harness.experiments import _op_shape

        # The majority target (first operand) keeps its role...
        maj_a = Circuit(3).maj(0, 1, 2).ops[0]
        maj_b = Circuit(3).maj(0, 2, 1).ops[0]
        maj_c = Circuit(3).maj(1, 0, 2).ops[0]
        assert _op_shape(maj_a) == _op_shape(maj_b)
        assert _op_shape(maj_a) != _op_shape(maj_c)
        # ...and asymmetric gates compare by exact wires.
        cnot_a = Circuit(2).cnot(0, 1).ops[0]
        cnot_b = Circuit(2).cnot(1, 0).ops[0]
        assert _op_shape(cnot_a) != _op_shape(cnot_b)
