"""Tests for the overhead analysis (Section 2.3)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.blowup import (
    achievable_module_size,
    bit_blowup,
    bit_overhead_exponent,
    gate_blowup,
    gate_overhead_exponent,
    plan_module,
    required_level,
    required_level_exact,
    unprotected_module_limit,
)
from repro.analysis.threshold import threshold
from repro.errors import AnalysisError


class TestFactors:
    def test_gate_blowup_values(self):
        assert gate_blowup(9, 0) == 1
        assert gate_blowup(9, 1) == 21
        assert gate_blowup(9, 2) == 441
        assert gate_blowup(11, 2) == 729

    def test_bit_blowup_values(self):
        assert bit_blowup(0) == 1
        assert bit_blowup(2) == 81

    def test_exponents(self):
        assert gate_overhead_exponent(11) == pytest.approx(4.75, abs=0.01)
        assert bit_overhead_exponent() == pytest.approx(3.17, abs=0.01)

    @given(st.integers(3, 40), st.integers(0, 6))
    def test_gate_blowup_is_multiplicative(self, G, level):
        assert gate_blowup(G, level + 1) == gate_blowup(G, level) * gate_blowup(G, 1)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            gate_blowup(2, 1)
        with pytest.raises(AnalysisError):
            bit_blowup(-1)


class TestRequiredLevel:
    def test_paper_worked_example(self):
        rho = threshold(9)
        exact = required_level_exact(rho / 10, 9, 10**6)
        assert exact == pytest.approx(2.0, abs=0.02)
        assert required_level(rho / 10, 9, 10**6) == 2

    def test_plan_module_reproduces_example(self):
        rho = threshold(9)
        report = plan_module(rho / 10, 9, 10**6)
        assert (report.level, report.gate_factor, report.bit_factor) == (2, 441, 81)
        assert report.total_gates == 441 * 10**6

    def test_easy_targets_need_level_zero(self):
        rho = threshold(9)
        # A module small enough that bare gates suffice.
        assert required_level(rho / 100, 9, 10) == 0

    @given(st.integers(2, 12))
    def test_level_suffices(self, exponent):
        """The chosen level really does push g_L below 1/T."""
        g, G = threshold(9) / 10, 9
        module_gates = 10**exponent
        level = required_level(g, G, module_gates)
        from repro.analysis.recursion import error_at_level

        assert error_at_level(g, G, level) <= 1.0 / module_gates * (1 + 1e-9)

    def test_above_threshold_rejected(self):
        with pytest.raises(AnalysisError):
            required_level(0.5, 9, 100)

    def test_module_size_validated(self):
        with pytest.raises(AnalysisError):
            required_level(1e-4, 9, 0)


class TestAchievableSize:
    def test_inverse_of_error_at_level(self):
        g, G = threshold(9) / 10, 9
        from repro.analysis.recursion import error_at_level

        for level in range(3):
            size = achievable_module_size(g, G, level)
            assert size == pytest.approx(1.0 / error_at_level(g, G, level))

    def test_paper_narrative_numbers(self):
        """'Rather than 1,000 logical gates... 10^6 logical gates.'"""
        g, G = threshold(9) / 10, 9
        assert achievable_module_size(g, G, 0) == pytest.approx(1080.0, rel=1e-6)
        assert achievable_module_size(g, G, 2) >= 10**6


class TestUnprotected:
    def test_limit_is_about_one_over_g(self):
        assert unprotected_module_limit(1e-3) == pytest.approx(1000.0)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            unprotected_module_limit(0.0)
