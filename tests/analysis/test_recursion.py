"""Tests for the concatenation recursion and Table 2."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.recursion import (
    PAPER_TABLE_2,
    error_at_level,
    iterate_levels,
    mixed_error_at_level,
    mixed_threshold,
    one_level,
    strip_width,
    table2_rows,
)
from repro.analysis.threshold import threshold
from repro.errors import AnalysisError


class TestRecursion:
    def test_one_level_matches_formula(self):
        assert one_level(1e-3, 9) == pytest.approx(108 * 1e-6)

    def test_one_level_caps_at_one(self):
        assert one_level(0.9, 40) == 1.0

    @given(st.floats(1e-8, 1.0), st.integers(3, 40), st.integers(0, 6))
    def test_closed_form_bounds_iteration(self, g, G, levels):
        iterated = iterate_levels(g, G, levels)[-1]
        closed = error_at_level(g, G, levels)
        assert iterated <= closed + 1e-15

    def test_closed_form_exact_without_capping(self):
        g, G = 1e-4, 9
        for level in range(4):
            iterated = iterate_levels(g, G, level)[-1]
            assert iterated == pytest.approx(error_at_level(g, G, level))

    @given(st.integers(3, 40), st.integers(0, 8))
    def test_threshold_is_a_fixed_point(self, G, level):
        rho = threshold(G)
        assert error_at_level(rho, G, level) == pytest.approx(rho)

    def test_below_threshold_error_collapses(self):
        g = threshold(9) / 10
        rates = iterate_levels(g, 9, 4)
        assert all(b < a for a, b in zip(rates, rates[1:]))
        assert rates[-1] < 1e-12

    def test_above_threshold_error_grows(self):
        g = threshold(9) * 2
        assert error_at_level(g, 9, 3) > g

    def test_negative_level_rejected(self):
        with pytest.raises(AnalysisError):
            error_at_level(1e-3, 9, -1)
        with pytest.raises(AnalysisError):
            iterate_levels(1e-3, 9, -1)


class TestMixedThresholds:
    def test_k_zero_gives_weak_threshold(self):
        assert mixed_threshold(0.001, 0.01, 0) == pytest.approx(0.001)

    def test_large_k_approaches_strong_threshold(self):
        assert mixed_threshold(0.001, 0.01, 20) == pytest.approx(0.01, rel=1e-3)

    @given(st.integers(0, 10))
    def test_monotone_in_k(self, k):
        assert mixed_threshold(0.001, 0.01, k + 1) >= mixed_threshold(0.001, 0.01, k)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            mixed_threshold(0.01, 0.001, 1)  # low > high
        with pytest.raises(AnalysisError):
            mixed_threshold(0.001, 0.01, -1)

    def test_mixed_error_consistency(self):
        # With inner_levels = 0, the mixed scheme is pure weak scheme.
        g = 1e-4
        rho1, rho2 = 1 / 2109, 1 / 273
        pure = error_at_level(g, 38, 3)
        mixed = mixed_error_at_level(g, rho1, rho2, 0, 3)
        assert mixed == pytest.approx(pure, rel=1e-9)

    def test_mixed_error_validates_levels(self):
        with pytest.raises(AnalysisError):
            mixed_error_at_level(1e-4, 1 / 2109, 1 / 273, 3, 2)


class TestTable2:
    def test_widths_are_powers_of_three(self):
        for row, (k, width, _) in zip(table2_rows(), PAPER_TABLE_2):
            assert row.width == width == 3**k
            assert strip_width(k) == width

    def test_ratios_match_paper_to_two_decimals(self):
        for row, (_, _, paper_ratio) in zip(table2_rows(), PAPER_TABLE_2):
            assert row.threshold_ratio == pytest.approx(paper_ratio, abs=0.005)

    def test_default_thresholds_are_no_init_values(self):
        rows = table2_rows()
        assert rows[0].threshold_ratio == pytest.approx(273 / 2109, rel=1e-9)

    def test_abstract_claim_27_wide_within_23_percent(self):
        ratio = table2_rows()[3].threshold_ratio
        assert 1 - ratio == pytest.approx(0.23, abs=0.005)

    def test_strip_width_validation(self):
        with pytest.raises(AnalysisError):
            strip_width(-1)
