"""Tests for the threshold formulas (Eq. 1)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.threshold import (
    PAPER_SCHEMES,
    bit_error_bound,
    bit_error_quadratic_bound,
    improves,
    logical_error_bound,
    logical_error_bound_tight,
    threshold,
    threshold_denominator,
)
from repro.errors import AnalysisError


class TestPaperValues:
    @pytest.mark.parametrize(
        "operations,denominator",
        [(9, 108), (11, 165), (14, 273), (16, 360), (38, 2109), (40, 2340)],
    )
    def test_all_six_thresholds(self, operations, denominator):
        assert threshold_denominator(operations) == denominator
        assert threshold(operations) == pytest.approx(1.0 / denominator)

    def test_registry_consistent(self):
        for scheme in PAPER_SCHEMES.values():
            assert scheme.matches_paper()

    def test_registry_covers_all_variants(self):
        names = set(PAPER_SCHEMES)
        assert names == {
            "nonlocal_with_init",
            "nonlocal_no_init",
            "local_2d_with_init",
            "local_2d_no_init",
            "local_1d_with_init",
            "local_1d_no_init",
        }


class TestBounds:
    @given(st.floats(1e-6, 0.2), st.integers(3, 40))
    def test_quadratic_bound_dominates_exact_tail(self, g, G):
        assert bit_error_bound(g, G) <= bit_error_quadratic_bound(g, G) + 1e-12

    @given(st.floats(1e-6, 0.3), st.integers(3, 40))
    def test_logical_bound_is_three_times_quadratic(self, g, G):
        assert logical_error_bound(g, G) == pytest.approx(
            3 * bit_error_quadratic_bound(g, G)
        )

    @given(st.floats(1e-6, 0.2), st.integers(3, 40))
    def test_tight_bound_below_working_bound(self, g, G):
        assert logical_error_bound_tight(g, G) <= logical_error_bound(g, G) + 1e-12

    def test_improvement_exactly_below_threshold(self):
        rho = threshold(9)
        assert improves(rho * 0.99, 9)
        assert not improves(rho, 9)
        assert not improves(rho * 1.5, 9)

    @given(st.integers(2, 60))
    def test_threshold_is_fixed_point_scale(self, G):
        # At g = rho the bound gives exactly g back.
        rho = threshold(G)
        assert logical_error_bound(rho, G) == pytest.approx(rho)


class TestValidation:
    def test_small_operation_counts_rejected(self):
        with pytest.raises(AnalysisError):
            threshold(1)
        with pytest.raises(AnalysisError):
            threshold_denominator(0)

    def test_rates_validated(self):
        with pytest.raises(AnalysisError):
            logical_error_bound(1.5, 9)
        with pytest.raises(AnalysisError):
            bit_error_bound(-0.1, 9)
