"""Tests for the NAND entropy-cost search (Section 4, footnote 4)."""

from __future__ import annotations

import pytest

from repro.analysis.nand_cost import (
    OPTIMAL_NAND_ENTROPY,
    min_nand_cost,
    nand_realisations,
    search_all_gates,
)
from repro.core import library
from repro.core.gate import Gate
from repro.errors import AnalysisError


class TestKnownGates:
    def test_maj_inv_achieves_three_halves(self):
        assert min_nand_cost(library.MAJ_INV) == OPTIMAL_NAND_ENTROPY == 1.5

    def test_maj_inv_realisation_details(self):
        best = min(
            nand_realisations(library.MAJ_INV), key=lambda r: r.entropy_cost
        )
        # The constant-1 ancilla enters on wire 0 and NAND comes out on
        # wire 0 (the majority wire of MAJ, inverted construction).
        assert best.ancilla_value == 1
        assert best.entropy_cost == 1.5

    def test_toffoli_costs_two_bits(self):
        assert min_nand_cost(library.TOFFOLI) == 2.0

    def test_toffoli_realisation_is_the_textbook_one(self):
        costs = nand_realisations(library.TOFFOLI)
        textbook = [
            r
            for r in costs
            if r.ancilla_wire == 2 and r.ancilla_value == 1 and r.output_wire == 2
        ]
        assert len(textbook) == 1
        assert textbook[0].entropy_cost == 2.0

    def test_swap_cannot_compute_nand(self):
        assert min_nand_cost(library.SWAP3_UP) is None

    def test_maj_also_computes_nand(self):
        # MAJ(a, b, 0) computes AND into the majority wire; with the
        # right wiring NAND is also reachable via MAJ — at a higher
        # entropy price than MAJ⁻¹.
        cost = min_nand_cost(library.MAJ)
        assert cost is None or cost >= 1.5


class TestSearch:
    def test_global_optimum_is_three_halves(self):
        result = search_all_gates()
        assert result.minimum_entropy == pytest.approx(1.5)
        assert result.total_gates_searched == 40320
        assert result.achieving_gates > 0

    def test_information_theoretic_floor(self):
        """No realisation anywhere beats 1.5 bits.

        The floor argument: the three inputs with NAND output 1 need
        distinct discard pairs, so the best distribution is
        (1/2, 1/4, 1/4) with entropy 3/2.
        """
        result = search_all_gates()
        assert result.minimum_entropy >= 1.5 - 1e-12


class TestValidation:
    def test_arity_checked(self):
        with pytest.raises(AnalysisError):
            nand_realisations(library.CNOT)

    def test_costs_are_well_formed(self):
        for realisation in nand_realisations(library.MAJ_INV):
            assert 0.0 <= realisation.entropy_cost <= 2.0
            assert realisation.ancilla_wire in (0, 1, 2)
            assert realisation.output_wire in (0, 1, 2)

    def test_identity_gate_has_trivial_nand_none(self):
        identity = Gate(name="i", arity=3, table=tuple(range(8)))
        assert min_nand_cost(identity) is None
