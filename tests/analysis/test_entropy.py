"""Tests for the entropy dissipation analysis (Section 4)."""

from __future__ import annotations

from math import log2, sqrt

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.entropy import (
    BOLTZMANN_J_PER_K,
    KAPPA,
    binary_entropy,
    empirical_entropy,
    empirical_entropy_from_columns,
    entropy_lower_bound,
    entropy_upper_bound,
    landauer_heat_joules,
    max_level_for_constant_entropy,
    single_gate_entropy,
    single_gate_entropy_sqrt_bound,
)
from repro.errors import AnalysisError


class TestBinaryEntropy:
    def test_endpoints(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0

    def test_maximum_at_half(self):
        assert binary_entropy(0.5) == pytest.approx(1.0)

    @given(st.floats(0.0, 1.0))
    def test_symmetry(self, p):
        assert binary_entropy(p) == pytest.approx(binary_entropy(1 - p), abs=1e-12)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            binary_entropy(1.5)


class TestKappa:
    def test_definition(self):
        assert KAPPA == pytest.approx(2 * sqrt(7 / 8) + (7 / 8) * log2(7))
        assert KAPPA == pytest.approx(4.327, abs=5e-4)

    @given(st.floats(1e-9, 1.0))
    def test_sqrt_bound_dominates_exact_entropy(self, g):
        # H(7g/8) + (7g/8) log2 7 <= kappa sqrt(g).
        assert single_gate_entropy(g) <= single_gate_entropy_sqrt_bound(g) + 1e-12

    def test_single_gate_entropy_increasing_in_g(self):
        values = [single_gate_entropy(g) for g in (1e-4, 1e-3, 1e-2, 1e-1)]
        assert all(b > a for a, b in zip(values, values[1:]))


class TestLevelBounds:
    def test_upper_bound_formula(self):
        assert entropy_upper_bound(1e-2, 24, 2) == pytest.approx(
            24**2 * KAPPA * 0.1
        )

    def test_lower_bound_formula(self):
        assert entropy_lower_bound(1e-2, 11, 3) == pytest.approx(1e-2 * 33**2)

    @given(st.floats(1e-8, 1.0), st.integers(1, 5))
    def test_sandwich_orders_correctly(self, g, level):
        lower = entropy_lower_bound(g, 11, level)
        upper = entropy_upper_bound(g, 3 * 11, level)
        assert lower <= upper + 1e-12

    def test_lower_bound_needs_level_one(self):
        with pytest.raises(AnalysisError):
            entropy_lower_bound(1e-2, 11, 0)

    def test_paper_example_level_limit(self):
        assert max_level_for_constant_entropy(1e-2, 11) == pytest.approx(
            2.317, abs=2e-3
        )

    def test_level_limit_grows_as_noise_shrinks(self):
        # O(log 1/g) levels stay affordable.
        assert max_level_for_constant_entropy(1e-6, 11) > max_level_for_constant_entropy(
            1e-2, 11
        )

    def test_noiseless_rejected(self):
        with pytest.raises(AnalysisError):
            max_level_for_constant_entropy(0.0, 11)


class TestLandauer:
    def test_one_bit_at_room_temperature(self):
        joules = landauer_heat_joules(1.0, 300.0)
        assert joules == pytest.approx(BOLTZMANN_J_PER_K * 300.0 * np.log(2))

    def test_linear_in_bits(self):
        assert landauer_heat_joules(2.0, 300.0) == pytest.approx(
            2 * landauer_heat_joules(1.0, 300.0)
        )

    def test_validation(self):
        with pytest.raises(AnalysisError):
            landauer_heat_joules(-1.0, 300.0)
        with pytest.raises(AnalysisError):
            landauer_heat_joules(1.0, 0.0)


class TestEmpiricalEntropy:
    def test_deterministic_samples_have_zero_entropy(self):
        assert empirical_entropy([(0, 1)] * 10) == 0.0

    def test_uniform_two_outcomes(self):
        assert empirical_entropy([(0,), (1,)] * 50) == pytest.approx(1.0)

    def test_paper_discard_distribution(self):
        # The (1/2, 1/4, 1/4) distribution behind the 3/2-bit optimum.
        samples = [(1, 1)] * 2 + [(1, 0)] + [(0, 1)]
        assert empirical_entropy(samples) == pytest.approx(1.5)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            empirical_entropy([])

    def test_columns_variant_matches_tuple_variant(self, rng):
        array = rng.integers(0, 2, size=(200, 3)).astype(np.uint8)
        as_tuples = [tuple(row) for row in array]
        assert empirical_entropy_from_columns(array) == pytest.approx(
            empirical_entropy(as_tuples)
        )

    def test_columns_requires_2d(self):
        with pytest.raises(AnalysisError):
            empirical_entropy_from_columns(np.zeros(5))
