"""The span tracer: no-op default, span trees, flush, validation."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.tracing import NOOP_SPAN
from repro.obs import (
    clock_ns,
    disable_tracing,
    enable_tracing,
    flush_trace,
    stopwatch,
    trace,
    tracing_enabled,
    validate_trace,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(autouse=True)
def _no_tracer():
    disable_tracing()
    yield
    disable_tracing()


class TestDisabled:
    def test_trace_returns_shared_noop(self):
        assert trace("a.b") is NOOP_SPAN
        assert trace("c.d", attr=1) is NOOP_SPAN

    def test_noop_span_is_inert(self):
        with trace("a.b") as span:
            span.set(anything=1)
        assert not tracing_enabled()

    def test_flush_returns_none(self):
        assert flush_trace() is None


class TestEnabled:
    def test_span_tree_nests(self, tmp_path):
        sink = tmp_path / "trace.json"
        enable_tracing(str(sink))
        with trace("outer.span", width=4) as outer:
            with trace("inner.span"):
                pass
            outer.set(late=True)
        destination = flush_trace()
        assert destination == str(sink)
        document = json.loads(sink.read_text())
        assert validate_trace(document) == []
        (root,) = [s for s in document["spans"] if s["name"] == "outer.span"]
        assert root["attrs"] == {"width": 4, "late": True}
        assert [c["name"] for c in root["children"]] == ["inner.span"]
        assert root["duration_ns"] >= root["children"][0]["duration_ns"]

    def test_open_spans_serialise_with_running_duration(self, tmp_path):
        enable_tracing(str(tmp_path / "trace.json"))
        span = trace("left.open")
        span.__enter__()
        destination = flush_trace()
        document = json.loads(Path(destination).read_text())
        (open_span,) = [
            s for s in document["spans"] if s["name"] == "left.open"
        ]
        assert open_span["attrs"]["open"] is True
        assert open_span["duration_ns"] > 0
        span.__exit__(None, None, None)

    def test_reenable_repoints_sink_keeping_spans(self, tmp_path):
        enable_tracing(str(tmp_path / "first.json"))
        with trace("kept.span"):
            pass
        enable_tracing(str(tmp_path / "second.json"))
        destination = flush_trace()
        assert destination == str(tmp_path / "second.json")
        document = json.loads(Path(destination).read_text())
        assert [s["name"] for s in document["spans"]] == ["kept.span"]

    def test_non_scalar_attrs_coerced(self, tmp_path):
        enable_tracing(str(tmp_path / "trace.json"))
        with trace("attr.span", items=(1, 2), obj={"not": "scalar"}):
            pass
        document = json.loads(Path(flush_trace()).read_text())
        assert validate_trace(document) == []
        attrs = document["spans"][0]["attrs"]
        assert attrs["items"] == [1, 2]
        assert isinstance(attrs["obj"], str)


class TestClock:
    def test_clock_monotonic(self):
        assert clock_ns() <= clock_ns()

    def test_stopwatch_elapsed(self):
        watch = stopwatch()
        assert watch.elapsed_ns >= 0
        assert watch.elapsed_s >= 0.0


class TestValidate:
    def test_rejects_non_object(self):
        assert validate_trace([]) != []

    def test_rejects_bad_format(self):
        problems = validate_trace(
            {"format": 99, "pid": 1, "spans": [], "metrics": {}}
        )
        assert any("format" in p for p in problems)

    def test_rejects_bad_span(self):
        document = {
            "format": 1,
            "pid": 1,
            "spans": [{"name": "", "start_ns": -1}],
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        }
        assert len(validate_trace(document)) >= 2


def test_repro_trace_env_flushes_at_exit(tmp_path):
    # The whole contract end to end, as a user would hit it: set
    # REPRO_TRACE, run code, get a schema-valid trace file at exit
    # without calling anything in repro.obs explicitly.
    sink = tmp_path / "trace.json"
    env = dict(os.environ)
    env["REPRO_TRACE"] = str(sink)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    script = (
        "from repro.obs import trace\n"
        "with trace('smoke.span', n=3):\n"
        "    pass\n"
    )
    subprocess.run(
        [sys.executable, "-c", script], env=env, check=True, timeout=60
    )
    document = json.loads(sink.read_text())
    assert validate_trace(document) == []
    assert [s["name"] for s in document["spans"]] == ["smoke.span"]
