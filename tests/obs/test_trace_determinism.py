"""Observability must be invisible to every published number.

The tentpole invariant of ``repro.obs``: tracing, metrics, and kernel
sampling only *observe*.  Enabling any of them must leave the frozen
RNG-stream digests bit-identical, reproduce the same experiment
numbers, and still emit a schema-valid trace document.  The digest
constants are duplicated from ``tests/noise/test_engine_determinism.py``
(test modules cannot import each other) — if an intentional RNG-stream
change re-records them there, re-record them here too.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.coding import recovery_circuit
from repro.core.compiled import clear_compile_cache
from repro.harness.threshold_finder import (
    cycle_stage_spec,
    find_pseudo_threshold_adaptive,
    measure_cycle_errors,
)
from repro.noise import NoiseModel, NoisyRunner
from repro.obs import (
    configure_sampling,
    disable_tracing,
    enable_tracing,
    flush_trace,
    reset_metrics,
    validate_trace,
)

#: Duplicated from tests/noise/test_engine_determinism.py (same
#: reference run): any drift between the two files is itself a bug.
EXPECTED_DIGESTS = {
    "batched": "976e2fba10fd010553ec05734b7f9459a65c50d6789b84ca90b5460156f04993",
    "bitplane": "ce115c34cea8959e6de21dda74fe1cf4cb39830ac1803452e1367fb39de8e108",
}


@pytest.fixture(autouse=True)
def _pristine_obs():
    disable_tracing()
    configure_sampling(0)
    reset_metrics()
    clear_compile_cache()
    yield
    disable_tracing()
    configure_sampling(0)
    reset_metrics()
    clear_compile_cache()


def reference_run(engine: str, seed: int = 2026):
    runner = NoisyRunner(NoiseModel(gate_error=0.01), seed=seed, engine=engine)
    return runner.run_from_input(recovery_circuit(), (1, 1, 1) + (0,) * 6, 1000)


def run_digest(result) -> str:
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(result.fault_counts).tobytes())
    digest.update(np.ascontiguousarray(result.states.array).tobytes())
    return digest.hexdigest()


@pytest.mark.parametrize("engine", ["batched", "bitplane"])
def test_tracing_leaves_digests_frozen(engine, tmp_path):
    enable_tracing(str(tmp_path / "trace.json"))
    assert run_digest(reference_run(engine)) == EXPECTED_DIGESTS[engine]


def test_kernel_sampling_leaves_digest_frozen():
    configure_sampling(1)  # time EVERY kernel call — the worst case
    assert run_digest(reference_run("bitplane")) == EXPECTED_DIGESTS["bitplane"]


def test_traced_executor_run_matches_untraced(tmp_path):
    # The stacked executor path (the instrumented spans live there),
    # through the same front door EXPERIMENTS.md numbers use.
    points = ((0.004, 11), (0.01, 12), (0.02, 13))
    untraced = measure_cycle_errors(points, trials=2000)
    enable_tracing(str(tmp_path / "trace.json"))
    traced = measure_cycle_errors(points, trials=2000)
    assert traced == untraced

    destination = flush_trace()
    document = json.loads(Path(destination).read_text())
    assert validate_trace(document) == []
    names = set()

    def walk(spans):
        for span in spans:
            names.add(span["name"])
            walk(span["children"])

    walk(document["spans"])
    assert {"executor.run", "executor.group", "executor.group.draw"} <= names


def test_traced_threshold_search_matches_untraced(tmp_path):
    # The mc-threshold experiment's search, traced vs untraced — the
    # speculative round planner records spans and waste counters but
    # must return the identical PseudoThreshold.
    kwargs = dict(
        spec_builder=cycle_stage_spec,
        lower=0.001,
        upper=0.2,
        trials=2000,
        iterations=4,
        seed=7,
    )
    untraced = find_pseudo_threshold_adaptive(**kwargs)
    enable_tracing(str(tmp_path / "trace.json"))
    traced = find_pseudo_threshold_adaptive(**kwargs)
    assert traced == untraced

    document = json.loads(Path(flush_trace()).read_text())
    assert validate_trace(document) == []
    (search,) = [
        s for s in document["spans"] if s["name"] == "threshold.search"
    ]
    assert search["attrs"]["estimate"] == traced.estimate
    round_names = [c["name"] for c in search["children"]]
    assert "threshold.bracket" in round_names
    assert "threshold.round" in round_names
