"""The metrics registry: kinds, names, reset semantics, snapshots."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.obs import (
    counter,
    gauge,
    histogram,
    metrics_snapshot,
    reset_metrics,
)


@pytest.fixture(autouse=True)
def _clean_registry():
    reset_metrics()
    yield
    reset_metrics()


class TestCounter:
    def test_increments(self):
        c = counter("test.counter.basic")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_same_name_same_instrument(self):
        assert counter("test.counter.shared") is counter("test.counter.shared")

    def test_negative_increment_rejected(self):
        with pytest.raises(ConfigError):
            counter("test.counter.neg").inc(-1)


class TestGauge:
    def test_set(self):
        g = gauge("test.gauge.basic")
        g.set(7)
        assert g.value == 7
        g.set(3)
        assert g.value == 3

    def test_inc_and_dec(self):
        g = gauge("test.gauge.move")
        g.inc(2)
        g.inc(-3)
        assert g.value == -1


class TestHistogram:
    def test_observes(self):
        h = histogram("test.hist.basic")
        for value in (1, 2, 3):
            h.observe(value)
        assert h.count == 3
        assert h.total == 6
        assert h.min == 1
        assert h.max == 3

    def test_empty_snapshot_shape(self):
        histogram("test.hist.empty")
        stats = metrics_snapshot()["histograms"]["test.hist.empty"]
        assert stats["count"] == 0
        assert stats["mean"] is None


class TestNaming:
    @pytest.mark.parametrize(
        "bad", ["", "nodots", "Upper.case", "trailing.", ".leading", "a b.c"]
    )
    def test_bad_names_rejected(self, bad):
        with pytest.raises(ConfigError):
            counter(bad)

    def test_kind_collision_rejected(self):
        counter("test.kind.clash")
        with pytest.raises(ConfigError):
            gauge("test.kind.clash")


class TestResetAndSnapshot:
    def test_reset_zeroes_in_place(self):
        # Module-level instrument references must stay valid across
        # reset — reset zeroes, it never replaces.
        c = counter("test.reset.inplace")
        c.inc(9)
        reset_metrics()
        assert c.value == 0
        c.inc()
        assert counter("test.reset.inplace").value == 1

    def test_snapshot_sections_sorted(self):
        counter("test.snap.b").inc()
        counter("test.snap.a").inc()
        gauge("test.snap.g").set(1)
        snapshot = metrics_snapshot()
        names = [n for n in snapshot["counters"] if n.startswith("test.snap.")]
        assert names == sorted(names)
        assert snapshot["gauges"]["test.snap.g"] == 1
