"""The ``python -m tools.lint`` driver: exit codes, JSON, selection."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_lint(*args: str, cwd: Path = REPO_ROOT):
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "lint.py"), *args],
        capture_output=True,
        text=True,
        cwd=cwd,
    )


def test_repo_lints_clean_with_exit_zero():
    result = run_lint()
    assert result.returncode == 0, result.stdout + result.stderr
    assert "clean" in result.stdout


def test_json_output_parses():
    result = run_lint("--json")
    assert result.returncode == 0, result.stdout + result.stderr
    payload = json.loads(result.stdout)
    assert payload["ok"] is True
    assert payload["errors"] == 0


def test_list_codes_prints_registry():
    result = run_lint("--list-codes")
    assert result.returncode == 0
    assert "RL100" in result.stdout
    assert "RV300" in result.stdout


def test_select_runs_only_named_pass():
    result = run_lint("--select", "layering")
    assert result.returncode == 0
    assert "[layering]" in result.stdout


def test_unknown_pass_is_driver_error():
    result = run_lint("--select", "nonsense")
    assert result.returncode == 2
    assert "driver error" in result.stderr


def test_planted_offenders_fail_with_expected_codes(tmp_path):
    # One offender per headline lint family: an out-of-layer import, a
    # bare ValueError, and an unseeded RNG call.
    offender_root = tmp_path
    core = offender_root / "src" / "repro" / "core"
    core.mkdir(parents=True)
    (core / "planted.py").write_text(
        "import numpy as np\n"
        "from repro.jobs import store\n"
        "rng = np.random.default_rng()\n"
        "def f(x):\n"
        "    if x < 0:\n"
        "        raise ValueError('no')\n"
        "    return x\n"
    )
    result = run_lint("--root", str(offender_root), "--json")
    assert result.returncode == 1, result.stdout + result.stderr
    payload = json.loads(result.stdout)
    codes = {entry["code"] for entry in payload["diagnostics"]}
    assert {"RL200", "RL100", "RL300"} <= codes
