"""The symbolic compiled-program verifier on honest artifacts.

Every corpus circuit, compiled under both fusion modes, must verify
clean — this is the static half of the claim the conformance suite
samples dynamically, and it covers every library gate's lowering and
the recovery cycle's stacked fused slots.
"""

from __future__ import annotations

import pytest

from repro.core.circuit import Circuit
from repro.core.compiled import CompiledCircuit
from repro.verify import corpus, verify_compiled

CORPUS = corpus()


@pytest.mark.parametrize("fuse", [True, False], ids=["fused", "unfused"])
@pytest.mark.parametrize(
    "label", [label for label, _ in CORPUS]
)
def test_corpus_compiles_verify_clean(label, fuse):
    circuit = dict(CORPUS)[label]
    compiled = CompiledCircuit(circuit, fuse=fuse)
    report = verify_compiled(circuit, compiled)
    assert report.ok, report.render()


def test_reset_heavy_circuit_verifies():
    circuit = (
        Circuit(4)
        .append_reset(0)
        .append_reset(1, value=1)
        .cnot(2, 3)
        .append_reset(2, value=1)
    )
    report = verify_compiled(circuit, CompiledCircuit(circuit, fuse=True))
    assert report.ok, report.render()


def test_wire_count_mismatch_is_rv200():
    circuit = Circuit(2).cnot(0, 1)
    other = CompiledCircuit(Circuit(3).cnot(0, 1), fuse=True)
    report = verify_compiled(circuit, other)
    assert report.has("RV200")


def test_broken_circuit_short_circuits_program_checks():
    # An ill-formed circuit stops verification before the program
    # layers — the symbolic reference would be meaningless.
    circuit = Circuit(2).cnot(0, 1)
    circuit._ops.extend(Circuit(2).cnot(1, 0)._ops)
    forged = circuit._ops[0]
    object.__setattr__(forged, "wires", (0, 9))
    report = verify_compiled(circuit)
    assert report.has("RV010")
    assert not any(code.startswith("RV2") for code in report.codes())
