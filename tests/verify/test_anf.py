"""The GF(2)/ANF algebra that underwrites symbolic verification.

The verifier is only as trustworthy as its algebra, so the algebra is
pinned against an independent oracle: exhaustive truth tables (for
evaluation) and :func:`~repro.core.truth_table.circuit_permutation`
(for whole-circuit semantics).
"""

from __future__ import annotations

import itertools

import pytest

from repro.core import library
from repro.core.anf import (
    ONE,
    ZERO,
    circuits_equivalent,
    constant,
    evaluate,
    p_and,
    p_not,
    p_or,
    p_xor,
    substitute,
    symbolic_outputs,
    table_anf,
    variable,
)
from repro.core.circuit import Circuit
from repro.core.decompositions import DECOMPOSITIONS
from repro.core.truth_table import circuit_permutation
from repro.errors import VerificationError

x0, x1, x2 = variable(0), variable(1), variable(2)


class TestAlgebra:
    def test_constants(self):
        assert constant(0) == ZERO
        assert constant(1) == ONE

    def test_xor_self_cancels(self):
        assert p_xor(x0, x0) == ZERO
        assert p_xor(x0, x1, x0) == x1

    def test_and_idempotent_over_gf2(self):
        assert p_and(x0, x0) == x0

    def test_and_distributes_with_cancellation(self):
        # (x0 ^ x1)(x0 ^ x1) = x0 ^ x1, exercising the parity counter.
        s = p_xor(x0, x1)
        assert p_and(s, s) == s

    def test_not_is_xor_one(self):
        assert p_not(x0) == p_xor(x0, ONE)
        assert p_not(p_not(x0)) == x0

    def test_or_expansion(self):
        assert p_or(x0, x1) == p_xor(x0, x1, p_and(x0, x1))

    def test_absorbing_elements(self):
        assert p_and(x0, ZERO) == ZERO
        assert p_and(x0, ONE) == x0
        assert p_xor(x0, ZERO) == x0

    @pytest.mark.parametrize("bits", list(itertools.product((0, 1), repeat=3)))
    def test_evaluate_matches_semantics(self, bits):
        poly = p_xor(p_and(x0, x1), x2, ONE)
        expected = (bits[0] & bits[1]) ^ bits[2] ^ 1
        assert evaluate(poly, bits) == expected

    def test_substitute_composes(self):
        # Substituting x0 := x1^x2 into x0*x1 gives x1*x2 ^ x1.
        poly = p_and(x0, x1)
        result = substitute(poly, {0: p_xor(x1, x2), 1: x1})
        assert result == p_xor(p_and(x1, x2), x1)


class TestTableAnf:
    def test_known_cnot_anf(self):
        # MSB-first: wire 0 is the control.  Output wire 1 = x0 ^ x1.
        outputs = table_anf(library.CNOT.table, 2)
        assert outputs[0] == x0
        assert outputs[1] == p_xor(x0, x1)

    def test_known_toffoli_anf(self):
        outputs = table_anf(library.TOFFOLI.table, 3)
        assert outputs[0] == x0
        assert outputs[1] == x1
        assert outputs[2] == p_xor(p_and(x0, x1), x2)

    @pytest.mark.parametrize("name", sorted(library.REGISTRY))
    def test_anf_reproduces_every_library_table(self, name):
        gate = library.REGISTRY[name]
        outputs = table_anf(gate.table, gate.arity)
        for pattern in range(1 << gate.arity):
            bits = tuple(
                (pattern >> (gate.arity - 1 - i)) & 1
                for i in range(gate.arity)
            )
            image = gate.table[pattern]
            for position in range(gate.arity):
                expected = (image >> (gate.arity - 1 - position)) & 1
                assert evaluate(outputs[position], bits) == expected

    def test_size_mismatch_raises(self):
        with pytest.raises(VerificationError):
            table_anf((0, 1, 2), 2)


class TestCircuitEquivalence:
    @pytest.mark.parametrize("name", sorted(DECOMPOSITIONS))
    def test_decompositions_equal_their_gates(self, name):
        decomposition, gate, target_wires = DECOMPOSITIONS[name]
        reference = Circuit(decomposition.n_wires)
        reference.append_gate(gate, *target_wires)
        assert circuits_equivalent(decomposition, reference)

    def test_wire_count_mismatch_is_inequivalent(self):
        assert not circuits_equivalent(Circuit(2), Circuit(3))

    def test_detects_inequivalence(self):
        a = Circuit(2).cnot(0, 1)
        b = Circuit(2).cnot(1, 0)
        assert not circuits_equivalent(a, b)

    def test_resets_become_constants(self):
        circuit = Circuit(2).append_reset(1, value=1).cnot(1, 0)
        outputs = symbolic_outputs(circuit)
        assert outputs[0] == p_xor(x0, ONE)
        assert outputs[1] == ONE

    def test_random_circuits_match_permutation_oracle(self):
        # Deterministic pseudo-random gate soup, cross-checked against
        # the exhaustive permutation semantics wire by wire.
        n = 4
        circuit = Circuit(n)
        gates = [library.CNOT, library.TOFFOLI, library.X, library.SWAP]
        state = 0x2545F491
        for _ in range(24):
            state = (state * 6364136223846793005 + 1442695040888963407) % (
                1 << 64
            )
            gate = gates[state % len(gates)]
            wires = []
            pick = state >> 8
            while len(wires) < gate.arity:
                wire = pick % n
                pick //= n
                if wire not in wires:
                    wires.append(wire)
            circuit.append_gate(gate, *wires)
        outputs = symbolic_outputs(circuit)
        mapping = circuit_permutation(circuit).mapping
        for pattern in range(1 << n):
            bits = tuple((pattern >> (n - 1 - i)) & 1 for i in range(n))
            image = mapping[pattern]
            for position in range(n):
                expected = (image >> (n - 1 - position)) & 1
                assert evaluate(outputs[position], bits) == expected
