"""Symbolic verification of backend prepared programs.

The conformance suite samples each backend dynamically; this suite
proves the *artifact that executes* — the numpy slot walk, the fused
kernel chain (reset / generic / codegen / tape specs) — computes the
circuit's function for all inputs, and that tampering is detected.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import FusedBackend, available_backends, get_backend
from repro.backends.fused import _build_tape, _plan_group
from repro.core.circuit import Circuit
from repro.core.compiled import CompiledCircuit
from repro.verify import (
    PROGRAM_VERIFIERS,
    corpus,
    verifier_for,
    verify_prepared,
)
from repro.verify.backends import _interpret_tape_kernel
from repro.verify.program import apply_ops_symbolic
from repro.core.anf import variable

CORPUS = corpus()


def make_backends():
    backends = [(name, get_backend(name)) for name in available_backends()]
    backends.append(("fused-nojit", FusedBackend(jit=False)))
    return backends


@pytest.mark.parametrize(
    "backend_id,backend",
    make_backends(),
    ids=[name for name, _ in make_backends()],
)
@pytest.mark.parametrize("label", [label for label, _ in CORPUS])
def test_every_backend_prepares_verifiably(label, backend_id, backend):
    circuit = dict(CORPUS)[label]
    compiled = CompiledCircuit(circuit, fuse=True)
    report = verify_prepared(circuit, backend, compiled)
    assert report.ok, report.render()


def test_every_registered_backend_type_is_covered():
    # The conformance-style guard: preparing through every registered
    # backend must land on a prepared type with a verifier.  A backend
    # registered without one would silently escape static verification.
    circuit = Circuit(2).cnot(0, 1)
    for name in available_backends():
        compiled = CompiledCircuit(circuit, fuse=True)
        prepared = get_backend(name).prepare(compiled)
        assert verifier_for(prepared) is not None, (
            f"backend {name!r} prepares {type(prepared).__name__}, which "
            f"has no entry in repro.verify.backends.PROGRAM_VERIFIERS"
        )


def test_unregistered_prepared_type_is_rv400():
    class AlienBackend:
        name = "alien"

        def prepare(self, compiled):
            return object()

    circuit = Circuit(2).cnot(0, 1)
    report = verify_prepared(
        circuit, AlienBackend(), CompiledCircuit(circuit, fuse=True)
    )
    assert report.has("RV400")


def test_tampered_codegen_index_array_is_detected():
    # Non-arithmetic-progression wires force fancy-indexed (_idx array)
    # gathers in the generated kernel; corrupting one index array must
    # surface as a semantic mismatch (RV401) or, if it breaks shape
    # assumptions, as uninterpretable (RV402).
    circuit = Circuit(6).cnot(0, 5).cnot(1, 3).cnot(2, 4)
    compiled = CompiledCircuit(circuit, fuse=True)
    backend = FusedBackend(jit=False)
    prepared = backend.prepare(compiled)
    tampered = 0
    for specs in prepared._specs:
        for spec in specs:
            if spec.kind != "codegen":
                continue
            for name, value in spec.fn.__globals__.items():
                if name.startswith("_idx") and isinstance(value, np.ndarray):
                    value[[0, 1]] = value[[1, 0]]
                    tampered += 1
    assert tampered, "expected at least one fancy-index array to tamper"
    report = verify_prepared(circuit, backend, compiled)
    assert report.has("RV401") or report.has("RV402"), report.render()


def test_tape_interpreter_matches_reference_semantics():
    # Drive the tape interpreter directly on a tape built by the fused
    # backend's own builder, against the sequential ANF reference.
    circuit = Circuit(3).toffoli(0, 1, 2)
    compiled = CompiledCircuit(circuit, fuse=True)
    [slot] = compiled.slots
    [group] = slot.groups
    plan = _plan_group(group.program)
    assert plan is not None
    tape, out_pos, out_reg, _n_registers = _build_tape(plan, arity=3)
    polys = [variable(w) for w in range(3)]
    _interpret_tape_kernel(
        polys, (group.wire_matrix, tape, out_pos, out_reg)
    )
    reference = [variable(w) for w in range(3)]
    apply_ops_symbolic(reference, circuit.ops)
    assert polys == reference


def test_program_verifiers_table_is_nonempty():
    assert len(PROGRAM_VERIFIERS) >= 2
