"""Circuit well-formedness verification and the parity classifier.

Corruptions are forged with ``object.__new__``/``object.__setattr__``
to bypass the construction-time validation — exactly the artifacts
(tampered payloads, mutated ``_ops`` lists) the verifier exists for.
"""

from __future__ import annotations

import pytest

from repro.core import library
from repro.core.circuit import Circuit, OpKind, Operation
from repro.core.gate import Gate
from repro.verify import classify_parity, corpus, verify_circuit


def forge_gate(name: str, arity, table) -> Gate:
    gate = object.__new__(Gate)
    object.__setattr__(gate, "name", name)
    object.__setattr__(gate, "arity", arity)
    object.__setattr__(gate, "table", tuple(table))
    return gate


def forge_op(kind: OpKind, wires, gate=None, reset_value=None) -> Operation:
    op = object.__new__(Operation)
    object.__setattr__(op, "kind", kind)
    object.__setattr__(op, "wires", tuple(wires))
    object.__setattr__(op, "gate", gate)
    object.__setattr__(op, "reset_value", reset_value)
    return op


def forged_circuit(n_wires: int, *ops: Operation) -> Circuit:
    circuit = Circuit(n_wires)
    circuit._ops.extend(ops)
    return circuit


class TestCleanCorpus:
    @pytest.mark.parametrize(
        "label", [label for label, _ in corpus()]
    )
    def test_corpus_circuit_is_well_formed(self, label):
        circuit = dict(corpus())[label]
        report = verify_circuit(circuit)
        assert report.ok, report.render()

    def test_notes_inventory_parity_classes(self):
        circuit = Circuit(3).cnot(0, 1).swap(1, 2)
        report = verify_circuit(circuit)
        notes = [d for d in report.diagnostics if d.code == "RV020"]
        assert len(notes) == 2  # one per distinct gate


class TestCorruptions:
    def test_non_bijective_table(self):
        gate = forge_gate("BAD", 2, (0, 0, 2, 3))
        circuit = forged_circuit(2, forge_op(OpKind.GATE, (0, 1), gate=gate))
        report = verify_circuit(circuit)
        assert report.has("RV001")

    def test_wrong_table_size(self):
        gate = forge_gate("SHORT", 2, (0, 1, 2))
        circuit = forged_circuit(2, forge_op(OpKind.GATE, (0, 1), gate=gate))
        assert verify_circuit(circuit).has("RV002")

    def test_invalid_arity(self):
        gate = forge_gate("NOARITY", 0, ())
        circuit = forged_circuit(1, forge_op(OpKind.GATE, (), gate=gate))
        report = verify_circuit(circuit)
        assert report.has("RV003")

    def test_wire_out_of_range(self):
        op = forge_op(OpKind.GATE, (0, 7), gate=library.CNOT)
        assert verify_circuit(forged_circuit(2, op)).has("RV010")

    def test_duplicate_wires(self):
        op = forge_op(OpKind.GATE, (1, 1), gate=library.CNOT)
        assert verify_circuit(forged_circuit(2, op)).has("RV011")

    def test_arity_wire_mismatch(self):
        op = forge_op(OpKind.GATE, (0, 1, 2), gate=library.CNOT)
        assert verify_circuit(forged_circuit(3, op)).has("RV012")

    def test_reset_with_bad_value(self):
        op = forge_op(OpKind.RESET, (0,), reset_value=2)
        assert verify_circuit(forged_circuit(1, op)).has("RV013")

    def test_gate_op_without_gate(self):
        op = forge_op(OpKind.GATE, (0,))
        assert verify_circuit(forged_circuit(1, op)).has("RV013")


class TestParityClassifier:
    @pytest.mark.parametrize(
        "gate",
        [library.SWAP, library.FREDKIN, library.SWAP3_UP, library.SWAP3_DOWN],
        ids=lambda g: g.name,
    )
    def test_weight_conserving_gates(self, gate):
        assert classify_parity(gate) == "conserving"

    @pytest.mark.parametrize(
        "gate",
        [library.MAJ, library.MAJ_INV, library.CNOT, library.X],
        ids=lambda g: g.name,
    )
    def test_parity_mixing_gates(self, gate):
        assert classify_parity(gate) == "mixing"

    def test_identity_conserves(self):
        assert classify_parity(library.IDENTITY1) == "conserving"

    def test_preserving_class_exists(self):
        # The double-NOT on two wires flips both bits: weight changes
        # (00 -> 11) but the XOR of all bits is kept — the middle class.
        gate = Gate(name="XX", arity=2, table=(3, 2, 1, 0))
        assert classify_parity(gate) == "preserving"
