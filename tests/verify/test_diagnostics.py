"""The structured-diagnostics core shared by verifier and lints."""

from __future__ import annotations

import json

import pytest

from repro.errors import VerificationError
from repro.verify import CODES, Diagnostic, DiagnosticReport, Severity
from repro.verify.diagnostics import (
    EXIT_CLEAN,
    EXIT_DRIVER_ERROR,
    EXIT_FINDINGS,
)


class TestRegistry:
    def test_codes_are_registered_with_stable_prefixes(self):
        assert CODES
        for code in CODES:
            assert code[:2] in {"RV", "RL"} and code[2:].isdigit()

    def test_unknown_code_rejected(self):
        with pytest.raises(VerificationError):
            Diagnostic(
                code="RV999",
                severity=Severity.ERROR,
                location="x",
                message="nope",
            )


class TestReport:
    def test_empty_report_is_clean(self):
        report = DiagnosticReport()
        assert report.ok
        assert report.exit_code() == EXIT_CLEAN

    def test_error_sets_findings_exit(self):
        report = DiagnosticReport()
        report.error("RV001", "gate:X", "broken table")
        assert not report.ok
        assert report.exit_code() == EXIT_FINDINGS
        assert report.has("RV001")
        assert "RV001" in report.codes()

    def test_notes_do_not_fail(self):
        report = DiagnosticReport()
        report.note("RV020", "gate:SWAP", "parity conserving")
        assert report.ok
        assert report.exit_code() == EXIT_CLEAN
        assert report.errors == []

    def test_json_round_trips(self):
        report = DiagnosticReport()
        report.error("RL300", "src/x.py:3", "bare ValueError")
        payload = json.loads(report.render_json())
        assert payload["ok"] is False
        [entry] = payload["diagnostics"]
        assert entry["code"] == "RL300"
        assert entry["severity"] == "error"
        assert entry["location"] == "src/x.py:3"

    def test_render_mentions_code_and_location(self):
        report = DiagnosticReport()
        report.error("RV010", "circuit:c op 3", "bad wire")
        assert "RV010" in report.render()
        assert "circuit:c op 3" in report.render()

    def test_exit_codes_are_distinct(self):
        assert len({EXIT_CLEAN, EXIT_FINDINGS, EXIT_DRIVER_ERROR}) == 3
