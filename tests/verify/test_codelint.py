"""The codebase lint passes: self-test plus planted offenders.

The real ``src/repro`` tree must lint clean (that is the CI gate), and
each diagnostic code must actually fire on a minimal planted offender —
a lint that cannot detect its own violation guards nothing.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.errors import VerificationError
from repro.verify.codelint import PASSES, run_codebase_lints

REPO_ROOT = Path(__file__).resolve().parents[2]


def plant(tmp_path: Path, relpath: str, text: str) -> Path:
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


def lint(tmp_path: Path, *passes: str):
    return run_codebase_lints(tmp_path, passes=list(passes) or None)


class TestSelfClean:
    def test_repo_lints_clean(self):
        report = run_codebase_lints(REPO_ROOT)
        assert report.ok, report.render()

    def test_unknown_pass_is_a_driver_error(self):
        with pytest.raises(VerificationError):
            run_codebase_lints(REPO_ROOT, passes=["nonsense"])

    def test_unparseable_file_is_a_driver_error(self, tmp_path):
        plant(tmp_path, "src/repro/core/broken.py", "def f(:\n")
        with pytest.raises(VerificationError):
            lint(tmp_path)

    def test_pass_registry_covers_all_rl_codes(self):
        from repro.verify.diagnostics import CODES

        registered = {
            code for codes, _ in PASSES.values() for code in codes
        }
        rl_codes = {code for code in CODES if code.startswith("RL")}
        assert registered == rl_codes


class TestRngPurity:
    def test_unseeded_rng_call_outside_noise_is_rl100(self, tmp_path):
        plant(
            tmp_path,
            "src/repro/analysis/bad.py",
            "import numpy as np\nrng = np.random.default_rng()\n",
        )
        report = lint(tmp_path, "rng")
        assert report.has("RL100")

    def test_time_call_is_rl100(self, tmp_path):
        plant(
            tmp_path,
            "src/repro/core/clocky.py",
            "import time\nstamp = time.time()\n",
        )
        assert lint(tmp_path, "rng").has("RL100")

    def test_noise_layer_may_use_rng(self, tmp_path):
        plant(
            tmp_path,
            "src/repro/noise/fine.py",
            "import numpy as np\nrng = np.random.default_rng(7)\n",
        )
        assert lint(tmp_path, "rng").ok

    def test_set_iteration_in_key_function_is_rl110(self, tmp_path):
        plant(
            tmp_path,
            "src/repro/jobs/keys.py",
            "def point_key(parts):\n"
            "    out = []\n"
            "    for p in set(parts):\n"
            "        out.append(p)\n"
            "    return tuple(out)\n",
        )
        assert lint(tmp_path, "rng").has("RL110")

    def test_unsorted_items_in_key_function_is_rl111(self, tmp_path):
        plant(
            tmp_path,
            "src/repro/jobs/keys.py",
            "def content_key(payload):\n"
            "    return tuple(v for k, v in payload.items())\n",
        )
        assert lint(tmp_path, "rng").has("RL111")

    def test_sorted_items_is_fine(self, tmp_path):
        plant(
            tmp_path,
            "src/repro/jobs/keys.py",
            "def content_key(payload):\n"
            "    return tuple(v for k, v in sorted(payload.items()))\n",
        )
        assert lint(tmp_path, "rng").ok

    def test_unsorted_json_dumps_in_key_function_is_rl112(self, tmp_path):
        plant(
            tmp_path,
            "src/repro/jobs/keys.py",
            "import json\n"
            "def canonical_json(payload):\n"
            "    return json.dumps(payload)\n",
        )
        assert lint(tmp_path, "rng").has("RL112")


class TestLayering:
    def test_out_of_layer_import_is_rl200(self, tmp_path):
        plant(
            tmp_path,
            "src/repro/core/upward.py",
            "from repro.jobs import store\n",
        )
        report = lint(tmp_path, "layering")
        assert report.has("RL200")

    def test_unlisted_deferred_upward_import_is_rl201(self, tmp_path):
        plant(
            tmp_path,
            "src/repro/core/sneaky.py",
            "def helper():\n    from repro.jobs import store\n    return store\n",
        )
        assert lint(tmp_path, "layering").has("RL201")

    def test_unknown_package_is_rl202(self, tmp_path):
        plant(tmp_path, "src/repro/mystery/__init__.py", "")
        plant(tmp_path, "src/repro/mystery/mod.py", "x = 1\n")
        assert lint(tmp_path, "layering").has("RL202")

    def test_downward_import_is_fine(self, tmp_path):
        plant(
            tmp_path,
            "src/repro/jobs/fine.py",
            "from repro.core import circuit\n",
        )
        assert lint(tmp_path, "layering").ok

    def test_type_checking_import_is_exempt(self, tmp_path):
        plant(
            tmp_path,
            "src/repro/core/typed.py",
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from repro.jobs import store\n",
        )
        assert lint(tmp_path, "layering").ok


class TestErrorDiscipline:
    def test_bare_value_error_is_rl300(self, tmp_path):
        plant(
            tmp_path,
            "src/repro/core/raisy.py",
            "def f(x):\n"
            "    if x < 0:\n"
            "        raise ValueError('no')\n"
            "    return x\n",
        )
        assert lint(tmp_path, "errors").has("RL300")

    def test_typed_raise_is_fine(self, tmp_path):
        plant(
            tmp_path,
            "src/repro/core/raisy.py",
            "from repro.errors import CircuitError\n"
            "def f(x):\n"
            "    if x < 0:\n"
            "        raise CircuitError('no')\n"
            "    return x\n",
        )
        assert lint(tmp_path, "errors").ok

    def test_validation_assert_is_rl301(self, tmp_path):
        plant(
            tmp_path,
            "src/repro/core/asserty.py",
            "def f(x):\n    assert x > 0\n    return x\n",
        )
        assert lint(tmp_path, "errors").has("RL301")

    def test_narrowing_assert_is_fine(self, tmp_path):
        plant(
            tmp_path,
            "src/repro/core/narrow.py",
            "def f(op):\n    assert op.gate is not None\n    return op.gate\n",
        )
        assert lint(tmp_path, "errors").ok

    def test_not_implemented_error_is_exempt(self, tmp_path):
        plant(
            tmp_path,
            "src/repro/backends/abstractish.py",
            "def f():\n    raise NotImplementedError\n",
        )
        assert lint(tmp_path, "errors").ok


class TestDeprecation:
    def test_deprecated_reference_is_rl400(self, tmp_path):
        plant(tmp_path, "src/repro/core/__init__.py", "")
        plant(
            tmp_path,
            "examples/old_api.py",
            "rate, _ = logical_error_per_cycle(0.01, 100)\n",
        )
        report = lint(tmp_path, "deprecation")
        assert report.has("RL400")
        [finding] = report.errors
        assert finding.location == "examples/old_api.py:1"


class TestTimingFrontDoor:
    def test_raw_time_call_is_rl500(self, tmp_path):
        plant(
            tmp_path,
            "src/repro/core/slowpoke.py",
            "import time\nstarted = time.perf_counter()\n",
        )
        assert lint(tmp_path, "timing").has("RL500")

    def test_from_import_alias_is_rl500(self, tmp_path):
        # Losing the module prefix must not dodge the lint.
        plant(
            tmp_path,
            "src/repro/runtime/sneaky.py",
            "from time import perf_counter as pc\nstarted = pc()\n",
        )
        assert lint(tmp_path, "timing").has("RL500")

    def test_obs_owns_the_clock(self, tmp_path):
        # repro.obs is the clock front door: raw time calls are its
        # job, for both the routing rule (RL500) and purity (RL100).
        plant(
            tmp_path,
            "src/repro/obs/clocky.py",
            "import time\nstamp = time.perf_counter_ns()\n",
        )
        assert lint(tmp_path, "timing").ok
        assert lint(tmp_path, "rng").ok

    def test_obs_may_not_touch_rng(self, tmp_path):
        # The clock carve-out is clock-only: RNG use in the
        # observability layer is still an RL100 purity finding.
        plant(
            tmp_path,
            "src/repro/obs/dicey.py",
            "import numpy as np\nroll = np.random.default_rng()\n",
        )
        assert lint(tmp_path, "rng").has("RL100")
