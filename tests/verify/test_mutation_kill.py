"""Mutation-kill suite: every seeded corruption must be caught.

Each case clones a freshly compiled artifact, corrupts one structural
or semantic invariant, and asserts the verifier reports the *right*
diagnostic code — a verifier that fails loudly but with the wrong code
would break CI triage and the tests that pin it.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.circuit import Circuit
from repro.core.compiled import CompiledCircuit, CompiledOp, _build_slot
from repro.verify import verify_compiled


def transversal_circuit() -> Circuit:
    # One fused gate slot, one stacked group (k=3) with
    # arithmetic-progression columns.
    return Circuit(6, name="mut:cnot3").cnot(0, 3).cnot(1, 4).cnot(2, 5)


def scattered_circuit() -> Circuit:
    # Non-AP target column (5, 3, 4) so stacked gathers need fancy
    # indexing rather than slice views.
    return Circuit(6, name="mut:scatter").cnot(0, 5).cnot(1, 3).cnot(2, 4)


def reset_circuit() -> Circuit:
    return (
        Circuit(4, name="mut:resets")
        .append_reset(0)
        .append_reset(1, value=1)
        .append_reset(2)
    )


def replace_slot(compiled: CompiledCircuit, index: int, **changes):
    slots = list(compiled.slots)
    slots[index] = dataclasses.replace(slots[index], **changes)
    compiled.slots = tuple(slots)


def replace_group(compiled: CompiledCircuit, slot_index: int, group_index: int, **changes):
    slot = compiled.slots[slot_index]
    groups = list(slot.groups)
    groups[group_index] = dataclasses.replace(groups[group_index], **changes)
    replace_slot(compiled, slot_index, groups=tuple(groups))


def mutate_dropped_slot_op(compiled):
    slot = compiled.slots[0]
    replace_slot(compiled, 0, ops=slot.ops[:-1])


def mutate_class_flip(compiled):
    replace_slot(compiled, 0, is_reset=True)


def mutate_class_offset(compiled):
    replace_slot(compiled, 0, class_offset=compiled.slots[0].class_offset + 1)


def mutate_row_swap(compiled):
    # Point op 0 at op 1's group row and vice versa: the bookkeeping
    # stays a bijection, but the rows no longer hold the ops' wires.
    slot = compiled.slots[0]
    op_row = np.array(slot.op_row)
    op_row[[0, 1]] = op_row[[1, 0]]
    replace_slot(compiled, 0, op_row=op_row)


def mutate_missing_bookkeeping(compiled):
    replace_slot(compiled, 0, op_group=None)


def mutate_wire_matrix_bounds(compiled):
    group = compiled.slots[0].groups[0]
    matrix = np.array(group.wire_matrix)
    matrix[0, 0] = compiled.n_wires + 3
    replace_group(compiled, 0, 0, wire_matrix=matrix, row_slices=())


def mutate_row_slices(compiled):
    group = compiled.slots[0].groups[0]
    view = group.row_slices[0]
    assert view is not None
    shifted = slice(view.start + 1, view.stop + 1, view.step)
    replace_group(
        compiled, 0, 0, row_slices=(shifted,) + group.row_slices[1:]
    )


def mutate_reset_partition(compiled):
    slot = compiled.slots[0]
    resets = tuple(
        (1 - value, wires) for value, wires in slot.resets
    )
    replace_slot(compiled, 0, resets=resets)


def mutate_semantic_wire_swap(compiled):
    # Swap the control and target columns of the stacked group: every
    # row still holds in-bounds wires, but row 0 now computes
    # CNOT(3, 0) while op 0 promises CNOT(0, 3).
    group = compiled.slots[0].groups[0]
    matrix = np.array(group.wire_matrix)[:, ::-1].copy()
    replace_group(compiled, 0, 0, wire_matrix=matrix, row_slices=())


def tampered_program(op: CompiledOp) -> CompiledOp:
    # An identity-on-target program where the table says XOR: position
    # 1 copies itself instead of xoring in the control.
    return dataclasses.replace(op, program=(("copy", 0), ("copy", 1)))


def mutate_lowered_program(compiled):
    # Tamper the lowering *consistently* across schedule, slot ops, and
    # group program, so only the lowering check (not the structural
    # reconciliation) can catch it.
    compiled.schedule = tuple(tampered_program(op) for op in compiled.schedule)
    slot = compiled.slots[0]
    ops = tuple(tampered_program(op) for op in slot.ops)
    replace_slot(compiled, 0, ops=ops)
    replace_group(compiled, 0, 0, program=ops[0].program)


def uninterpretable_program(op: CompiledOp) -> CompiledOp:
    return dataclasses.replace(op, program=(("warp", 0), ("copy", 1)))


def mutate_uninterpretable_program(compiled):
    compiled.schedule = tuple(
        uninterpretable_program(op) for op in compiled.schedule
    )
    slot = compiled.slots[0]
    ops = tuple(uninterpretable_program(op) for op in slot.ops)
    replace_slot(compiled, 0, ops=ops)
    replace_group(compiled, 0, 0, program=ops[0].program)


MUTATIONS = [
    ("dropped-slot-op", transversal_circuit, mutate_dropped_slot_op, "RV200"),
    ("class-flip", transversal_circuit, mutate_class_flip, "RV201"),
    ("class-offset", transversal_circuit, mutate_class_offset, "RV203"),
    ("row-swap", transversal_circuit, mutate_row_swap, "RV205"),
    ("missing-bookkeeping", transversal_circuit, mutate_missing_bookkeeping, "RV204"),
    ("wire-matrix-bounds", transversal_circuit, mutate_wire_matrix_bounds, "RV206"),
    ("row-slices-shift", transversal_circuit, mutate_row_slices, "RV207"),
    ("reset-partition", reset_circuit, mutate_reset_partition, "RV208"),
    ("semantic-wire-swap", transversal_circuit, mutate_semantic_wire_swap, "RV300"),
    ("scattered-wire-swap", scattered_circuit, mutate_semantic_wire_swap, "RV300"),
    ("lowered-program", transversal_circuit, mutate_lowered_program, "RV100"),
    ("uninterpretable-program", transversal_circuit, mutate_uninterpretable_program, "RV101"),
]


@pytest.mark.parametrize(
    "build,mutate,expected",
    [case[1:] for case in MUTATIONS],
    ids=[case[0] for case in MUTATIONS],
)
def test_mutation_is_killed_with_the_right_code(build, mutate, expected):
    circuit = build()
    compiled = CompiledCircuit(circuit, fuse=True)
    assert verify_compiled(circuit, compiled).ok  # the artifact starts clean
    mutate(compiled)
    report = verify_compiled(circuit, compiled)
    assert not report.ok, f"mutation survived: {report.render()}"
    assert report.has(expected), (
        f"expected {expected}, got {sorted(set(report.codes()))}:\n"
        f"{report.render()}"
    )


def test_illegal_fusion_overlap_is_rv202():
    # Hand-fuse two overlapping ops into one slot: the ops still
    # concatenate to the schedule, but the fused block is illegal.
    circuit = Circuit(2, name="mut:overlap").cnot(0, 1).cnot(1, 0)
    compiled = CompiledCircuit(circuit, fuse=True)
    assert len(compiled.slots) == 2  # the compiler refuses to fuse these
    compiled.slots = (_build_slot(list(compiled.schedule)),)
    report = verify_compiled(circuit, compiled)
    assert report.has("RV202")


def test_mutation_suite_covers_ten_distinct_corruptions():
    assert len(MUTATIONS) >= 10
    assert len({case[0] for case in MUTATIONS}) == len(MUTATIONS)
