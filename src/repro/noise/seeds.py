"""Seed derivation and generator construction — the RNG front door.

The RNG-purity lint (``RL100``, see :mod:`repro.verify.codelint.rng`)
forbids ``np.random`` calls outside the noise layer: randomness that
enters through one module is auditable, randomness scattered across
the tree is not.  This module is where non-noise code comes for its
entropy:

* :func:`spawn_seeds` — independent per-point child seeds from one
  base seed (used by sweeps and the jobs planner), via
  :meth:`numpy.random.SeedSequence.spawn`;
* :func:`as_generator` — the one sanctioned way to turn a seed (or an
  existing generator) into a :class:`numpy.random.Generator`.

Both are deterministic functions of their inputs, so the frozen
engine digests are unaffected by which module calls them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AnalysisError

__all__ = ["as_generator", "spawn_seeds"]


def spawn_seeds(seed: int | None, points: int) -> list[int]:
    """``points`` independent child seeds derived from ``seed``.

    Uses :meth:`numpy.random.SeedSequence.spawn`, so the children are
    statistically independent and the derivation is deterministic: the
    same base seed always yields the same per-point seeds, regardless
    of whether the points later run serially or in a pool.
    """
    if points < 0:
        raise AnalysisError(f"points must be >= 0, got {points}")
    children = np.random.SeedSequence(seed).spawn(points)
    return [int(child.generate_state(1, dtype=np.uint64)[0]) for child in children]


def as_generator(
    seed: int | np.random.Generator | None,
) -> np.random.Generator:
    """A :class:`numpy.random.Generator` for ``seed``.

    An existing generator passes through unchanged (it owns its stream
    position); anything else is handed to
    :func:`numpy.random.default_rng`.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
