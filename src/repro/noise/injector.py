"""Deterministic fault injection for exhaustive fault-tolerance proofs.

The recovery circuits in this reproduction are small (9 wires, ~13
operations), which lets us replace sampling with *exhaustion*: enumerate
every fault location, every fault outcome at that location, and every
relevant input, then check the recovered logical value.  A fault at an
operation replaces that operation's effect with an arbitrary bit
pattern written onto its wires — the worst-case realisation of the
paper's "randomize all the bits it is applied to".
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass
from itertools import combinations

from repro.core.bits import Bits, all_bit_vectors, validate_bits
from repro.core.circuit import Circuit
from repro.core.simulator import apply_operation
from repro.errors import SimulationError


@dataclass(frozen=True)
class Fault:
    """A fault: operation ``op_index`` outputs ``pattern`` on its wires.

    The faulty operation's own action is discarded — the adversary
    chooses the wires' contents outright, which dominates the random
    fault of the noise model.
    """

    op_index: int
    pattern: Bits

    def __post_init__(self) -> None:
        validate_bits(self.pattern)


def run_with_faults(
    circuit: Circuit,
    input_bits: Sequence[int],
    faults: Sequence[Fault] | Mapping[int, Bits],
) -> Bits:
    """Run the circuit with specific operations replaced by faults.

    ``faults`` maps operation indices to the bit patterns forced onto
    those operations' wires (a sequence of :class:`Fault` works too).
    """
    if isinstance(faults, Mapping):
        fault_map = dict(faults)
    else:
        fault_map = {fault.op_index: fault.pattern for fault in faults}
        if len(fault_map) != len(faults):
            raise SimulationError("duplicate op_index in fault list")

    if len(input_bits) != circuit.n_wires:
        raise SimulationError(
            f"input has {len(input_bits)} bits but circuit has "
            f"{circuit.n_wires} wires"
        )
    for op_index in fault_map:
        if not 0 <= op_index < len(circuit):
            raise SimulationError(
                f"fault op_index {op_index} out of range for circuit with "
                f"{len(circuit)} operations"
            )

    state = list(input_bits)
    for index, op in enumerate(circuit):
        if index in fault_map:
            pattern = fault_map[index]
            if len(pattern) != len(op.wires):
                raise SimulationError(
                    f"fault pattern width {len(pattern)} does not match "
                    f"operation on {len(op.wires)} wires"
                )
            for wire, bit in zip(op.wires, pattern):
                state[wire] = bit
        else:
            apply_operation(state, op)
    return tuple(state)


def iter_single_faults(
    circuit: Circuit, include_resets: bool = True
) -> Iterator[Fault]:
    """Every (operation, outcome) single-fault in the circuit.

    Each operation contributes ``2**arity`` possible fault outcomes
    (including the pattern the operation would have produced anyway —
    harmless, but enumerating it keeps the iteration uniform).
    """
    for index, op in enumerate(circuit):
        if op.is_reset and not include_resets:
            continue
        for pattern in all_bit_vectors(len(op.wires)):
            yield Fault(op_index=index, pattern=pattern)


def iter_fault_pairs(
    circuit: Circuit, include_resets: bool = True
) -> Iterator[tuple[Fault, Fault]]:
    """Every unordered pair of faults at distinct operations."""
    indices = [
        i
        for i, op in enumerate(circuit)
        if include_resets or not op.is_reset
    ]
    for first, second in combinations(indices, 2):
        arity_first = len(circuit.ops[first].wires)
        arity_second = len(circuit.ops[second].wires)
        for pattern_first in all_bit_vectors(arity_first):
            for pattern_second in all_bit_vectors(arity_second):
                yield (
                    Fault(op_index=first, pattern=pattern_first),
                    Fault(op_index=second, pattern=pattern_second),
                )


def count_fault_sites(circuit: Circuit, include_resets: bool = True) -> int:
    """Number of operations that can fault (the paper's op count)."""
    return sum(
        1 for op in circuit if include_resets or not op.is_reset
    )
