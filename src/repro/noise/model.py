"""The paper's error model (Section 2).

"At each application, a gate will randomize all the bits it is applied
to with probability *g*."  We implement exactly that: a failed
operation's touched wires are replaced by uniform random bits, so with
probability ``1/2**arity`` the fault is silent (the entropy analysis in
Section 4 relies on this through its ``7g/8`` factors).

Reset operations (3-bit ancilla initialisations) may carry their own
error rate; the paper's two accounting conventions — initialisation
"counted like a gate" versus "far more accurate than our gates" — map
to ``reset_error=None`` (inherit ``g``) versus ``reset_error=0.0``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class NoiseModel:
    """Independent gate-failure model with rate ``gate_error``.

    Attributes:
        gate_error: probability ``g`` that an operation randomises the
            wires it touches.
        reset_error: failure probability of reset operations; ``None``
            means "same as gate_error" (the paper's G = 11/16/40
            counting), ``0.0`` means perfectly accurate initialisation
            (the paper's G = 9/14/38 counting).
    """

    gate_error: float
    reset_error: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.gate_error <= 1.0:
            raise SimulationError(
                f"gate_error must be in [0, 1], got {self.gate_error}"
            )
        if self.reset_error is not None and not 0.0 <= self.reset_error <= 1.0:
            raise SimulationError(
                f"reset_error must be in [0, 1] or None, got {self.reset_error}"
            )

    @property
    def effective_reset_error(self) -> float:
        """The reset failure probability actually used in simulation."""
        if self.reset_error is None:
            return self.gate_error
        return self.reset_error

    @property
    def counts_resets(self) -> bool:
        """True when resets are as noisy as gates (paper's "with init")."""
        return self.effective_reset_error > 0.0

    def scaled(self, factor: float) -> "NoiseModel":
        """A model with every rate multiplied by ``factor``."""
        reset = None if self.reset_error is None else self.reset_error * factor
        return NoiseModel(gate_error=self.gate_error * factor, reset_error=reset)

    @staticmethod
    def noiseless() -> "NoiseModel":
        """The zero-error model."""
        return NoiseModel(gate_error=0.0, reset_error=0.0)
