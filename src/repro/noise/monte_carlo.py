"""Vectorised Monte-Carlo simulation under the gate-failure model.

Two interchangeable engines evolve a batch of trials through a circuit;
each operation first acts noiselessly on every trial, then a
Bernoulli(``g``) mask selects the trials whose touched wires are
replaced with uniform random bits.  This is exactly the paper's error
model, vectorised across trials.

* ``engine="batched"`` — the :class:`~repro.core.simulator.BatchedState`
  uint8 engine: per-op column pack/unpack and a table lookup.
* ``engine="bitplane"`` — the :class:`~repro.core.bitplane.BitplaneState`
  engine: the circuit is lowered once by
  :class:`~repro.core.compiled.CompiledCircuit`, 64 trials ride in each
  uint64 word, and fault sites are sampled by geometric gap-jumping so
  the per-op cost scales with the *number of faults*, not the number of
  trials.  10-50x faster on 100k-trial batches.
* ``engine="auto"`` — bitplane for batches of at least
  :data:`AUTO_BITPLANE_MIN_TRIALS` trials, batched below that (tiny
  batches don't amortise packing).

RNG-stream caveat: all entry points take an explicit seed or
:class:`numpy.random.Generator` so every experiment is reproducible bit
for bit — but the two engines consume the generator differently (the
batched engine draws per-trial uniforms and uint8 bits; the bitplane
engine draws geometric gaps and whole uint64 words).  Equal seeds give
statistically identical results across engines, never bit-identical
realisations; digests of noisy runs are only comparable within one
engine.  ``tests/noise/test_engine_determinism`` pins both streams.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.bitplane import BitplaneState, mask_from_positions
from repro.core.circuit import Circuit
from repro.core.compiled import CompiledCircuit
from repro.core.simulator import BatchedState
from repro.errors import SimulationError
from repro.noise.model import NoiseModel

#: Valid values of the ``engine`` parameter.
ENGINES = ("auto", "batched", "bitplane")

#: Smallest batch for which ``engine="auto"`` picks the bitplane engine.
AUTO_BITPLANE_MIN_TRIALS = 256


def _validate_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise SimulationError(
            f"unknown engine {engine!r}; valid engines: {ENGINES}"
        )


def resolve_engine(engine: str, trials: int) -> str:
    """Resolve ``"auto"`` to a concrete engine for a batch size."""
    _validate_engine(engine)
    if engine == "auto":
        return "bitplane" if trials >= AUTO_BITPLANE_MIN_TRIALS else "batched"
    return engine


def _as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _bernoulli_positions(
    rng: np.random.Generator, probability: float, trials: int
) -> np.ndarray:
    """Indices of successes among ``trials`` Bernoulli draws.

    Samples geometric gaps between successes instead of one uniform per
    trial, so the cost is proportional to the expected ``trials * p``
    successes.  This is the bitplane engine's fault stream.
    """
    if trials == 0 or probability <= 0.0:
        return np.empty(0, dtype=np.int64)
    if probability >= 1.0:
        return np.arange(trials, dtype=np.int64)
    expected = trials * probability
    batch = int(expected + 4.0 * expected**0.5 + 16.0)
    chunks = []
    last = -1
    while True:
        gaps = rng.geometric(probability, size=batch)
        positions = last + np.cumsum(gaps)
        if positions[-1] >= trials:
            chunks.append(positions[positions < trials])
            break
        chunks.append(positions)
        last = int(positions[-1])
    return np.concatenate(chunks) if len(chunks) > 1 else chunks[0]


@dataclass
class NoisyResult:
    """Outcome of a noisy batched run."""

    states: BatchedState | BitplaneState
    fault_counts: np.ndarray  # faults injected per trial

    @property
    def trials(self) -> int:
        """Number of Monte-Carlo trials in the batch."""
        return self.states.trials

    def fraction_with_faults(self) -> float:
        """Fraction of trials that experienced at least one fault."""
        return float((self.fault_counts > 0).mean())


class NoisyRunner:
    """Runs circuits under a :class:`NoiseModel` on batched states.

    ``engine`` selects how :meth:`run_from_input` builds its batch; see
    the module docstring for the engines and the RNG-stream caveat.
    :meth:`run` dispatches on the state type it is handed, so an
    explicitly constructed :class:`BitplaneState` always takes the
    bit-parallel path regardless of ``engine``.
    """

    def __init__(
        self,
        model: NoiseModel,
        seed: int | np.random.Generator | None = None,
        engine: str = "auto",
    ):
        _validate_engine(engine)
        self.model = model
        self.rng = _as_generator(seed)
        self.engine = engine

    def run(
        self, circuit: Circuit, states: BatchedState | BitplaneState
    ) -> NoisyResult:
        """Evolve the batch through the circuit, mutating ``states``."""
        if states.n_wires != circuit.n_wires:
            raise SimulationError(
                f"batch has {states.n_wires} wires but circuit has "
                f"{circuit.n_wires}"
            )
        if isinstance(states, BitplaneState):
            return self._run_bitplane(circuit, states)
        return self._run_batched(circuit, states)

    def _run_batched(self, circuit: Circuit, states: BatchedState) -> NoisyResult:
        trials = states.trials
        fault_counts = np.zeros(trials, dtype=np.int64)
        for op in circuit:
            if op.is_reset:
                error = self.model.effective_reset_error
                states.reset(op.wires, op.reset_value)
            else:
                error = self.model.gate_error
                assert op.gate is not None
                states.apply_gate(op.gate, op.wires)
            if error > 0.0:
                mask = self.rng.random(trials) < error
                if mask.any():
                    states.randomize(op.wires, self.rng, mask)
                    fault_counts += mask
        return NoisyResult(states=states, fault_counts=fault_counts)

    def _run_bitplane(self, circuit: Circuit, states: BitplaneState) -> NoisyResult:
        compiled = CompiledCircuit(circuit)
        trials = states.trials
        fault_counts = np.zeros(trials, dtype=np.int64)
        for op in compiled.schedule:
            if op.is_reset:
                error = self.model.effective_reset_error
                states.reset(op.wires, op.reset_value)
            else:
                error = self.model.gate_error
                assert op.program is not None
                states.apply_program(op.program, op.wires)
            if error > 0.0:
                positions = _bernoulli_positions(self.rng, error, trials)
                if positions.size:
                    mask = mask_from_positions(positions, states.n_words)
                    states.randomize(op.wires, self.rng, mask=mask)
                    fault_counts[positions] += 1
        return NoisyResult(states=states, fault_counts=fault_counts)

    def run_from_input(
        self, circuit: Circuit, input_bits: Sequence[int], trials: int
    ) -> NoisyResult:
        """Broadcast one input over ``trials`` and run noisily."""
        if resolve_engine(self.engine, trials) == "bitplane":
            states: BatchedState | BitplaneState = BitplaneState.broadcast(
                input_bits, trials
            )
        else:
            states = BatchedState.broadcast(input_bits, trials)
        return self.run(circuit, states)


def estimate_failure_probability(
    circuit: Circuit,
    input_bits: Sequence[int],
    is_failure: Callable[[BatchedState | BitplaneState], np.ndarray],
    model: NoiseModel,
    trials: int,
    seed: int | np.random.Generator | None = None,
    engine: str = "auto",
) -> tuple[float, int]:
    """Monte-Carlo estimate of ``P[is_failure]`` after a noisy run.

    ``is_failure`` receives the final batch and returns a boolean array
    of per-trial failures; it must stick to the engine-agnostic
    observation API (``array``/``columns``/``majority_of``) since the
    batch type follows ``engine``.  Returns ``(failure_fraction,
    failures)``.
    """
    runner = NoisyRunner(model, seed, engine=engine)
    result = runner.run_from_input(circuit, input_bits, trials)
    failures = np.asarray(is_failure(result.states), dtype=bool)
    if failures.shape != (trials,):
        raise SimulationError(
            f"is_failure returned shape {failures.shape}, expected ({trials},)"
        )
    count = int(failures.sum())
    return count / trials, count


def repetition_failure_predicate(
    output_wires: Sequence[int], expected: int
) -> Callable[[BatchedState | BitplaneState], np.ndarray]:
    """Failure predicate: majority over ``output_wires`` != ``expected``."""

    def predicate(states: BatchedState | BitplaneState) -> np.ndarray:
        return states.majority_of(output_wires) != expected

    return predicate


def any_wire_differs_predicate(
    output_wires: Sequence[int], expected_bits: Sequence[int]
) -> Callable[[BatchedState | BitplaneState], np.ndarray]:
    """Failure predicate: any selected wire differs from expectation."""
    expected = np.asarray(expected_bits, dtype=np.uint8)

    def predicate(states: BatchedState | BitplaneState) -> np.ndarray:
        return (states.columns(output_wires) != expected).any(axis=1)

    return predicate
