"""Vectorised Monte-Carlo simulation under the gate-failure model.

Two interchangeable engines evolve a batch of trials through a circuit;
each operation first acts noiselessly on every trial, then a
Bernoulli(``g``) mask selects the trials whose touched wires are
replaced with uniform random bits.  This is exactly the paper's error
model, vectorised across trials.

* ``engine="batched"`` — the :class:`~repro.core.simulator.BatchedState`
  uint8 engine: per-op column pack/unpack and a table lookup.
* ``engine="bitplane"`` — the :class:`~repro.core.bitplane.BitplaneState`
  engine: the circuit is lowered once *per process* through the
  content-keyed cache of :func:`~repro.core.compiled.compile_circuit`,
  64 trials ride in each uint64 word, consecutive disjoint ops execute
  as fused slots (identical gates stacked into one vectorised apply),
  and each slot draws its fault sites in a single geometric gap-jumping
  pass over a ``slot_ops x trials`` virtual axis — so the per-slot cost
  scales with the *number of faults*, not the number of trials or ops.
  ``REPRO_FUSE=0`` restores the per-op schedule (and its original RNG
  stream); ``REPRO_COMPILE_CACHE=0`` disables compiled-circuit reuse.
* ``engine="auto"`` — bitplane for batches of at least
  :data:`AUTO_BITPLANE_MIN_TRIALS` trials, batched below that (tiny
  batches don't amortise packing).

RNG-stream caveat: all entry points take an explicit seed or
:class:`numpy.random.Generator` so every experiment is reproducible bit
for bit — but the two engines consume the generator differently (the
batched engine draws per-trial uniforms and uint8 bits; the bitplane
engine draws geometric gaps — or, at fault probabilities of at least
:data:`DENSE_PROBABILITY`, direct thresholded uniforms — and whole
uint64 words).  Equal seeds give statistically identical results across
engines, never bit-identical realisations; digests of noisy runs are
only comparable within one engine.
``tests/noise/test_engine_determinism`` pins both streams.

This module is the single-point *kernel*; multi-point workloads go
through :mod:`repro.runtime`, whose executor stacks all points sharing
a compiled circuit into one plane array while drawing each point's
faults from its own generator in exactly this module's order — every
stacked point is bit-identical to a solo run.
:func:`estimate_failure_probability` survives as a deprecated shim over
that layer.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.backends import get_backend
from repro.core.bitplane import BitplaneState, mask_from_positions
from repro.core.circuit import Circuit
from repro.core.compiled import compile_circuit
from repro.core.simulator import BatchedState
from repro.errors import SimulationError
from repro.noise.model import NoiseModel

#: Valid values of the ``engine`` parameter.
ENGINES = ("auto", "batched", "bitplane")

#: Smallest batch for which ``engine="auto"`` picks the bitplane engine.
AUTO_BITPLANE_MIN_TRIALS = 256

#: Success probability at which :func:`_bernoulli_positions` switches
#: from geometric gap-jumping to a direct thresholded draw.  Gap
#: jumping costs one geometric draw *per success* (~14 ns vectorised,
#: since NumPy evaluates ``log`` over the whole gap batch at once)
#: while the dense draw costs one uniform per *trial* (~3 ns), so the
#: measured crossover sits near ``p = 0.2``–``0.25`` — far above the
#: ``g ~ 1e-2`` point where the gap-jumper merely starts to dominate
#: the runtime *profile*.  The switch engages where it actually wins;
#: every engine digest and threshold experiment stays in the sparse
#: regime.
DENSE_PROBABILITY = 0.25


def _validate_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise SimulationError(
            f"unknown engine {engine!r}; valid engines: {ENGINES}"
        )


def resolve_engine(engine: str, trials: int) -> str:
    """Resolve ``"auto"`` to a concrete engine for a batch size."""
    _validate_engine(engine)
    if engine == "auto":
        return "bitplane" if trials >= AUTO_BITPLANE_MIN_TRIALS else "batched"
    return engine


def _as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _bernoulli_positions(
    rng: np.random.Generator,
    probability: float,
    trials: int,
    dense: bool | None = None,
) -> np.ndarray:
    """Sorted indices of successes among ``trials`` Bernoulli draws.

    Two regimes behind one contract (sorted, duplicate-free int64
    positions in ``[0, trials)``):

    * sparse (``p < DENSE_PROBABILITY``) — geometric gaps between
      successes, so the cost is proportional to the expected
      ``trials * p`` successes;
    * dense — one vectorised uniform per trial thresholded against
      ``p``; cheaper once successes are no longer rare.

    ``dense`` forces a regime (used by the distribution-agreement
    tests); ``None`` selects by ``probability``.  This is the bitplane
    engine's fault stream, so the regime switch changes the RNG stream
    at ``p >= DENSE_PROBABILITY`` — the frozen digests all sit in the
    sparse regime.
    """
    if trials == 0 or probability <= 0.0:
        return np.empty(0, dtype=np.int64)
    if probability >= 1.0:
        return np.arange(trials, dtype=np.int64)
    if dense is None:
        dense = probability >= DENSE_PROBABILITY
    if dense:
        return np.flatnonzero(rng.random(trials) < probability).astype(
            np.int64, copy=False
        )
    expected = trials * probability
    batch = int(expected + 4.0 * expected**0.5 + 16.0)
    chunks = []
    last = -1
    while True:
        gaps = rng.geometric(probability, size=batch)
        positions = last + np.cumsum(gaps)
        if positions[-1] >= trials:
            chunks.append(positions[positions < trials])
            break
        chunks.append(positions)
        last = int(positions[-1])
    return np.concatenate(chunks) if len(chunks) > 1 else chunks[0]


def inject_slot_faults(
    slot,
    states: BitplaneState,
    rng: np.random.Generator,
    virtual: np.ndarray,
    n_words: int,
    trials: int,
    backend=None,
) -> None:
    """Scatter one slot's slice of a batched fault draw into ``states``.

    ``virtual`` holds the slot's sorted fault positions on its local
    ``k * (n_words * 64)`` axis, so ``virtual >> 6`` is directly a flat
    (op, word) index.  Equal words form contiguous segments; one
    reduceat ORs each segment's trial bits into a packed select word,
    padding bits beyond ``trials`` are masked off, and the replacement
    bits for all faulted instances of a group come from a single
    random-word block.

    This is the single-point schedule's per-slot path.  The stacked
    multi-point executor (:mod:`repro.runtime.executor`) performs the
    same segmentation once per *error class* instead of per slot (see
    ``_point_class_sites`` there); the two must stay in step on the
    padding rule and the segment/select construction.

    ``backend`` routes the scatter through a
    :class:`~repro.backends.PlaneBackend` (``None`` uses the state's
    own method — identical for the in-tree backends, which share the
    plane store).
    """
    if backend is None:
        scatter = states.randomize_stacked
    else:
        def scatter(*args, **kwargs):
            backend.randomize_stacked(states, *args, **kwargs)
    words = virtual >> 6
    bits = np.uint64(1) << (virtual & 63).astype(np.uint64)
    segment_starts = np.concatenate(
        ([0], np.flatnonzero(words[1:] != words[:-1]) + 1)
    )
    select = np.bitwise_or.reduceat(bits, segment_starts)
    affected = words[segment_starts]
    op_of = affected // n_words
    word_of = affected - op_of * n_words
    if trials % 64:
        # Faults on padding bits of each op's last word are no-ops.
        select[word_of == n_words - 1] &= np.uint64((1 << (trials % 64)) - 1)
    if len(slot.groups) == 1:
        scatter(slot.groups[0].wire_matrix, rng, op_of, word_of, select)
        return
    for index, group in enumerate(slot.groups):
        here = np.flatnonzero(slot.op_group[op_of] == index)
        if here.size:
            scatter(
                group.wire_matrix,
                rng,
                slot.op_row[op_of[here]],
                word_of[here],
                select[here],
            )


@dataclass
class NoisyResult:
    """Outcome of a noisy batched run."""

    states: BatchedState | BitplaneState
    fault_counts: np.ndarray  # faults injected per trial

    @property
    def trials(self) -> int:
        """Number of Monte-Carlo trials in the batch."""
        return self.states.trials

    def fraction_with_faults(self) -> float:
        """Fraction of trials that experienced at least one fault.

        A zero-trial batch has no faulted trials, so the fraction is
        0.0 (a plain mean would be NumPy's NaN-with-warning
        mean-of-empty).
        """
        if self.fault_counts.size == 0:
            return 0.0
        return float((self.fault_counts > 0).mean())


class NoisyRunner:
    """Runs circuits under a :class:`NoiseModel` on batched states.

    ``engine`` selects how :meth:`run_from_input` builds its batch; see
    the module docstring for the engines and the RNG-stream caveat.
    :meth:`run` dispatches on the state type it is handed, so an
    explicitly constructed :class:`BitplaneState` always takes the
    bit-parallel path regardless of ``engine``.  ``backend`` selects
    which registered :mod:`repro.backends` implementation executes the
    fused bitplane slots — backends are bit-identical and never touch
    the generator, so the choice can never change a result or an RNG
    stream.
    """

    def __init__(
        self,
        model: NoiseModel,
        seed: int | np.random.Generator | None = None,
        engine: str = "auto",
        fuse: bool | None = None,
        compile_cache: bool | None = None,
        backend=None,
    ):
        _validate_engine(engine)
        self.model = model
        self.rng = _as_generator(seed)
        self.engine = engine
        # None defers to the REPRO_FUSE / REPRO_COMPILE_CACHE /
        # REPRO_BACKEND knobs at compile time; an
        # :class:`~repro.runtime.ExecutionPolicy` passes explicit
        # values so no environment read happens mid-run.
        self.fuse = fuse
        self.compile_cache = compile_cache
        self.backend = backend

    def run(
        self, circuit: Circuit, states: BatchedState | BitplaneState
    ) -> NoisyResult:
        """Evolve the batch through the circuit, mutating ``states``."""
        if states.n_wires != circuit.n_wires:
            raise SimulationError(
                f"batch has {states.n_wires} wires but circuit has "
                f"{circuit.n_wires}"
            )
        if isinstance(states, BitplaneState):
            return self._run_bitplane(circuit, states)
        return self._run_batched(circuit, states)

    def _run_batched(self, circuit: Circuit, states: BatchedState) -> NoisyResult:
        trials = states.trials
        fault_counts = np.zeros(trials, dtype=np.int64)
        for op in circuit:
            if op.is_reset:
                error = self.model.effective_reset_error
                states.reset(op.wires, op.reset_value)
            else:
                error = self.model.gate_error
                assert op.gate is not None
                states.apply_gate(op.gate, op.wires)
            if error > 0.0:
                mask = self.rng.random(trials) < error
                if mask.any():
                    states.randomize(op.wires, self.rng, mask)
                    fault_counts += mask
        return NoisyResult(states=states, fault_counts=fault_counts)

    def _run_bitplane(self, circuit: Circuit, states: BitplaneState) -> NoisyResult:
        """Execute the fused compiled schedule with per-slot fault draws.

        Each slot's ops touch pairwise disjoint wires, so running the
        whole slot and then injecting every op's faults is bit-identical
        to the sequential per-op schedule; the Bernoulli mask for all
        ``k`` ops of a slot comes from ONE gap-jumping pass over a
        ``k * trials`` virtual axis (position ``op * trials + trial``),
        which matches ``k`` independent per-op draws distributionally
        while costing a single RNG call.  With single-op slots
        (``REPRO_FUSE=0``) this reduces exactly to the original per-op
        stream.
        """
        compiled = compile_circuit(
            circuit, fuse=self.fuse, cache=self.compile_cache
        )
        if not compiled.fused:
            return self._run_bitplane_per_op(compiled, states)
        backend = get_backend(self.backend)
        prepared = backend.prepare(compiled)
        trials = states.trials
        padded = states.n_words * 64
        fault_counts = np.zeros(trials, dtype=np.int64)
        # Fault sites are data-independent, so the whole run's Bernoulli
        # masks come from ONE gap-jumping draw per error class over an
        # ``ops x padded`` virtual axis (``padded`` rounds the trial
        # range up to whole words; padding draws are discarded).  Each
        # slot then slices its contiguous run of virtual positions.
        class_draws: dict[bool, np.ndarray] = {}
        for is_reset, count in (
            (False, compiled.n_gate_ops),
            (True, compiled.n_reset_ops),
        ):
            error = (
                self.model.effective_reset_error
                if is_reset
                else self.model.gate_error
            )
            if error <= 0.0 or count == 0:
                continue
            virtual = _bernoulli_positions(self.rng, error, count * padded)
            trial_of = virtual % padded
            real = trial_of[trial_of < trials]
            if real.size:
                fault_counts += np.bincount(real, minlength=trials)
            class_draws[is_reset] = virtual
        for index, slot in enumerate(compiled.slots):
            prepared.apply_slot(states, index)
            virtual = class_draws.get(slot.is_reset)
            if virtual is None:
                continue
            base = slot.class_offset * padded
            low, high = np.searchsorted(
                virtual, (base, base + len(slot.ops) * padded)
            )
            if high > low:
                inject_slot_faults(
                    slot,
                    states,
                    self.rng,
                    virtual[low:high] - base,
                    n_words=states.n_words,
                    trials=trials,
                    backend=backend,
                )
        return NoisyResult(states=states, fault_counts=fault_counts)

    def _run_bitplane_per_op(self, compiled, states: BitplaneState) -> NoisyResult:
        """The pre-fusion per-op schedule (``REPRO_FUSE=0``).

        Kept as the reference executor: one Bernoulli draw per op over
        the exact trial axis, reproducing the original engine's RNG
        stream bit for bit — the perf gate's baseline and the frozen
        legacy digest both run through here.
        """
        trials = states.trials
        fault_counts = np.zeros(trials, dtype=np.int64)
        for op in compiled.schedule:
            if op.is_reset:
                error = self.model.effective_reset_error
                states.reset(op.wires, op.reset_value)
            else:
                error = self.model.gate_error
                assert op.program is not None
                states.apply_program(op.program, op.wires)
            if error > 0.0:
                positions = _bernoulli_positions(self.rng, error, trials)
                if positions.size:
                    mask = mask_from_positions(positions, states.n_words)
                    states.randomize(op.wires, self.rng, mask=mask)
                    fault_counts[positions] += 1
        return NoisyResult(states=states, fault_counts=fault_counts)

    def run_from_input(
        self, circuit: Circuit, input_bits: Sequence[int], trials: int
    ) -> NoisyResult:
        """Broadcast one input over ``trials`` and run noisily."""
        if resolve_engine(self.engine, trials) == "bitplane":
            states: BatchedState | BitplaneState = BitplaneState.broadcast(
                input_bits, trials
            )
        else:
            states = BatchedState.broadcast(input_bits, trials)
        return self.run(circuit, states)


def estimate_failure_probability(
    circuit: Circuit,
    input_bits: Sequence[int],
    is_failure: Callable[[BatchedState | BitplaneState], np.ndarray],
    model: NoiseModel,
    trials: int,
    seed: int | np.random.Generator | None = None,
    engine: str = "auto",
) -> tuple[float, int]:
    """Deprecated shim: one :class:`~repro.runtime.RunSpec`, executed.

    .. deprecated:: PR 3
        Build a :class:`~repro.runtime.RunSpec` and run it through
        :class:`~repro.runtime.Executor` — batches of specs sharing a
        circuit then evaluate in one stacked plane array.  The shim
        keeps the old signature and returns ``(failure_fraction,
        failures)`` with numbers bit-identical to the PR 2
        implementation (a single-point executor run consumes the RNG
        exactly like the classic runner); ``engine`` wins over
        ``REPRO_ENGINE``, the compiler knobs come from the environment
        as before.
    """
    import warnings

    warnings.warn(
        "estimate_failure_probability is deprecated; build a "
        "repro.runtime.RunSpec and run it through repro.runtime.Executor",
        DeprecationWarning,
        stacklevel=2,
    )
    from dataclasses import replace

    from repro.runtime import ExecutionPolicy, Executor, RunSpec

    policy = replace(ExecutionPolicy.from_env(), engine=engine, parallel=None)
    result = Executor(policy).run_one(
        RunSpec(
            circuit=circuit,
            input_bits=tuple(input_bits),
            observable=is_failure,
            noise=model,
            trials=trials,
            seed=seed,
        )
    )
    return result.failure_fraction, result.failures


@dataclass(frozen=True)
class RepetitionFailurePredicate:
    """Failure predicate: majority over ``output_wires`` != ``expected``.

    A frozen callable rather than a closure so specs carrying it can
    cross a process-pool boundary.
    """

    output_wires: tuple[int, ...]
    expected: int

    def __call__(self, states: BatchedState | BitplaneState) -> np.ndarray:
        return states.majority_of(self.output_wires) != self.expected


@dataclass(frozen=True)
class AnyWireDiffersPredicate:
    """Failure predicate: any selected wire differs from expectation."""

    output_wires: tuple[int, ...]
    expected_bits: tuple[int, ...]

    def __call__(self, states: BatchedState | BitplaneState) -> np.ndarray:
        expected = np.asarray(self.expected_bits, dtype=np.uint8)
        return (states.columns(self.output_wires) != expected).any(axis=1)


def repetition_failure_predicate(
    output_wires: Sequence[int], expected: int
) -> Callable[[BatchedState | BitplaneState], np.ndarray]:
    """Failure predicate: majority over ``output_wires`` != ``expected``."""
    return RepetitionFailurePredicate(tuple(output_wires), expected)


def any_wire_differs_predicate(
    output_wires: Sequence[int], expected_bits: Sequence[int]
) -> Callable[[BatchedState | BitplaneState], np.ndarray]:
    """Failure predicate: any selected wire differs from expectation."""
    return AnyWireDiffersPredicate(tuple(output_wires), tuple(expected_bits))
