"""Vectorised Monte-Carlo simulation under the gate-failure model.

The engine evolves a :class:`~repro.core.simulator.BatchedState` through
a circuit; each operation first acts noiselessly on every trial, then a
Bernoulli(``g``) mask selects the trials whose touched wires are
replaced with uniform random bits.  This is exactly the paper's error
model, vectorised across trials.

All entry points take an explicit seed or :class:`numpy.random.Generator`
so every experiment in the benches is reproducible bit for bit.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.circuit import Circuit
from repro.core.simulator import BatchedState
from repro.errors import SimulationError
from repro.noise.model import NoiseModel


def _as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


@dataclass
class NoisyResult:
    """Outcome of a noisy batched run."""

    states: BatchedState
    fault_counts: np.ndarray  # faults injected per trial

    @property
    def trials(self) -> int:
        """Number of Monte-Carlo trials in the batch."""
        return self.states.trials

    def fraction_with_faults(self) -> float:
        """Fraction of trials that experienced at least one fault."""
        return float((self.fault_counts > 0).mean())


class NoisyRunner:
    """Runs circuits under a :class:`NoiseModel` on batched states."""

    def __init__(self, model: NoiseModel, seed: int | np.random.Generator | None = None):
        self.model = model
        self.rng = _as_generator(seed)

    def run(self, circuit: Circuit, states: BatchedState) -> NoisyResult:
        """Evolve the batch through the circuit, mutating ``states``."""
        if states.n_wires != circuit.n_wires:
            raise SimulationError(
                f"batch has {states.n_wires} wires but circuit has "
                f"{circuit.n_wires}"
            )
        trials = states.trials
        fault_counts = np.zeros(trials, dtype=np.int64)
        for op in circuit:
            if op.is_reset:
                error = self.model.effective_reset_error
                states.reset(op.wires, op.reset_value)
            else:
                error = self.model.gate_error
                assert op.gate is not None
                states.apply_gate(op.gate, op.wires)
            if error > 0.0:
                mask = self.rng.random(trials) < error
                if mask.any():
                    states.randomize(op.wires, self.rng, mask)
                    fault_counts += mask
        return NoisyResult(states=states, fault_counts=fault_counts)

    def run_from_input(
        self, circuit: Circuit, input_bits: Sequence[int], trials: int
    ) -> NoisyResult:
        """Broadcast one input over ``trials`` and run noisily."""
        states = BatchedState.broadcast(input_bits, trials)
        return self.run(circuit, states)


def estimate_failure_probability(
    circuit: Circuit,
    input_bits: Sequence[int],
    is_failure: Callable[[BatchedState], np.ndarray],
    model: NoiseModel,
    trials: int,
    seed: int | np.random.Generator | None = None,
) -> tuple[float, int]:
    """Monte-Carlo estimate of ``P[is_failure]`` after a noisy run.

    ``is_failure`` receives the final batch and returns a boolean array
    of per-trial failures.  Returns ``(failure_fraction, failures)``.
    """
    runner = NoisyRunner(model, seed)
    result = runner.run_from_input(circuit, input_bits, trials)
    failures = np.asarray(is_failure(result.states), dtype=bool)
    if failures.shape != (trials,):
        raise SimulationError(
            f"is_failure returned shape {failures.shape}, expected ({trials},)"
        )
    count = int(failures.sum())
    return count / trials, count


def repetition_failure_predicate(
    output_wires: Sequence[int], expected: int
) -> Callable[[BatchedState], np.ndarray]:
    """Failure predicate: majority over ``output_wires`` != ``expected``."""

    def predicate(states: BatchedState) -> np.ndarray:
        return states.majority_of(output_wires) != expected

    return predicate


def any_wire_differs_predicate(
    output_wires: Sequence[int], expected_bits: Sequence[int]
) -> Callable[[BatchedState], np.ndarray]:
    """Failure predicate: any selected wire differs from expectation."""
    expected = np.asarray(expected_bits, dtype=np.uint8)

    def predicate(states: BatchedState) -> np.ndarray:
        return (states.columns(output_wires) != expected).any(axis=1)

    return predicate
