"""Exact second-order (fault-pair) analysis of recovery circuits.

The paper bounds the logical error of one gate-plus-recovery cycle by
counting *all* operation pairs: ``g_logical <= 3 C(G,2) g**2`` (Eq. 1),
and notes that "a tighter bound will result in an improved error
threshold".  Because this library's recovery circuits are small, the
exact quadratic coefficient is computable:

* every single fault is enumerated and shown harmless (the linear term
  vanishes — that is the fault-tolerance property);
* every unordered *pair* of faulting operations is enumerated; each
  faulting operation outputs one of its ``2**arity`` patterns uniformly,
  so a pair's failure probability is the fraction of joint patterns
  that flip the decoded logical value;
* the quadratic coefficient is the sum of those fractions over pairs,
  giving ``g_logical = c2 * g**2 + O(g**3)`` exactly.

The *exact threshold* of the cycle is then the crossing
``c2 * g**2 = g``, i.e. ``1/c2`` — always at or above the paper's
``1/(3 C(G,2))`` because many pairs are harmless.  The ablation bench
quantifies the gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.core.bits import all_bit_vectors
from repro.core.circuit import Circuit
from repro.coding.repetition import THREE_BIT_CODE
from repro.noise.injector import Fault, run_with_faults
from repro.errors import AnalysisError


@dataclass(frozen=True)
class PairAnalysis:
    """Exact second-order failure census of a protected circuit."""

    operations: int
    harmful_single_faults: int
    pair_count: int
    harmful_pair_weight: float

    @property
    def quadratic_coefficient(self) -> float:
        """``c2`` in ``g_logical = c2 g**2 + O(g**3)``."""
        return self.harmful_pair_weight

    @property
    def exact_threshold(self) -> float:
        """The crossing ``c2 g**2 = g``: ``1 / c2``."""
        if self.harmful_pair_weight == 0:
            raise AnalysisError("no harmful pairs; threshold is unbounded")
        return 1.0 / self.harmful_pair_weight

    def paper_bound_coefficient(self) -> int:
        """The Eq.-1 pair count ``3 C(G,2)`` for the same G."""
        from math import comb

        return 3 * comb(self.operations, 2)


def _decoded(circuit: Circuit, state, output_wires) -> int:
    final = run_with_faults(circuit, state, [])
    return THREE_BIT_CODE.decode(tuple(final[w] for w in output_wires))


def analyse_pairs(
    circuit: Circuit,
    input_state,
    output_wires,
    expected_logical: int,
) -> PairAnalysis:
    """Exhaustively weigh all single faults and fault pairs.

    ``input_state`` is the full physical input; a failure is a decoded
    logical value (majority over ``output_wires``) different from
    ``expected_logical``.  Each fault pattern at an operation carries
    probability ``2**-arity``; a pair's weight is the failing fraction
    of its joint pattern space.  For the logical-error interpretation
    to be exact at O(g^2), each faulting operation must contribute the
    same Bernoulli(g), which is the paper's error model.
    """
    operations = len(circuit)

    harmful_singles = 0
    for index, op in enumerate(circuit.ops):
        for pattern in all_bit_vectors(len(op.wires)):
            final = run_with_faults(circuit, input_state, [Fault(index, pattern)])
            decoded = THREE_BIT_CODE.decode(
                tuple(final[w] for w in output_wires)
            )
            if decoded != expected_logical:
                harmful_singles += 1
                break  # one failing pattern makes this op harmful

    pair_weight = 0.0
    pair_count = 0
    for first, second in combinations(range(operations), 2):
        pair_count += 1
        arity_first = len(circuit.ops[first].wires)
        arity_second = len(circuit.ops[second].wires)
        failing = 0
        total = 0
        for pattern_first in all_bit_vectors(arity_first):
            for pattern_second in all_bit_vectors(arity_second):
                total += 1
                final = run_with_faults(
                    circuit,
                    input_state,
                    [Fault(first, pattern_first), Fault(second, pattern_second)],
                )
                decoded = THREE_BIT_CODE.decode(
                    tuple(final[w] for w in output_wires)
                )
                if decoded != expected_logical:
                    failing += 1
        pair_weight += failing / total

    return PairAnalysis(
        operations=operations,
        harmful_single_faults=harmful_singles,
        pair_count=pair_count,
        harmful_pair_weight=pair_weight,
    )


def analyse_recovery_cycle(include_resets: bool = True) -> PairAnalysis:
    """Pair analysis of one Figure-2 recovery cycle storing logical 1."""
    from repro.coding.recovery import OUTPUT_WIRES, recovery_circuit

    circuit = recovery_circuit(include_resets=include_resets)
    input_state = (1, 1, 1) + (0,) * 6
    return analyse_pairs(circuit, input_state, OUTPUT_WIRES, expected_logical=1)


def analyse_one_d_cycle(include_resets: bool = True) -> PairAnalysis:
    """Pair analysis of one Figure-7 (1D local) recovery cycle."""
    from repro.local.local_recovery import (
        ONE_D_DATA_POSITIONS,
        one_d_recovery_circuit,
    )

    circuit = one_d_recovery_circuit(1, include_resets=include_resets)
    state = [0] * 9
    for position in ONE_D_DATA_POSITIONS:
        state[position] = 1
    return analyse_pairs(
        circuit, tuple(state), ONE_D_DATA_POSITIONS, expected_logical=1
    )
