"""Noise models, deterministic fault injection, and Monte Carlo."""

from repro.noise.injector import (
    Fault,
    count_fault_sites,
    iter_fault_pairs,
    iter_single_faults,
    run_with_faults,
)
from repro.noise.model import NoiseModel
from repro.noise.pair_analysis import (
    PairAnalysis,
    analyse_one_d_cycle,
    analyse_pairs,
    analyse_recovery_cycle,
)
from repro.noise.monte_carlo import (
    ENGINES,
    NoisyResult,
    NoisyRunner,
    any_wire_differs_predicate,
    estimate_failure_probability,
    repetition_failure_predicate,
    resolve_engine,
)
from repro.noise.seeds import as_generator, spawn_seeds

__all__ = [
    "Fault",
    "count_fault_sites",
    "iter_fault_pairs",
    "iter_single_faults",
    "run_with_faults",
    "NoiseModel",
    "PairAnalysis",
    "analyse_one_d_cycle",
    "analyse_pairs",
    "analyse_recovery_cycle",
    "ENGINES",
    "NoisyResult",
    "NoisyRunner",
    "any_wire_differs_predicate",
    "as_generator",
    "estimate_failure_probability",
    "repetition_failure_predicate",
    "resolve_engine",
    "spawn_seeds",
]
