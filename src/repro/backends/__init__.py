"""Pluggable execution backends for compiled plane programs.

The plane-program IR of :mod:`repro.core.compiled` is a hard seam: a
*backend* implements the :class:`~repro.backends.base.PlaneBackend`
contract (allocate planes, prepare a compiled circuit, stacked apply,
randomize/scatter, popcount/majority decode) and the noise layer and
stacked executor run against whichever one the registry hands them.

Two backends ship in-tree:

* ``numpy`` — the original :class:`~repro.core.bitplane.BitplaneState`
  slot loop, extracted verbatim; the reference every other backend is
  conformance- and digest-tested against.
* ``fused`` — each compiled program becomes a prebuilt chain of
  generated in-place kernels with shared scratch (optionally
  numba-JIT'd when importable); ~2x faster on the 100k-trial recovery
  workload, bit-identical by construction.

Selection: ``REPRO_BACKEND`` (default ``numpy``), wired through
:meth:`~repro.runtime.spec.ExecutionPolicy.from_env`; unknown names
raise :class:`~repro.errors.ConfigError`.  Every registered backend
must pass the parametrized conformance suite in
``tests/backends/conformance.py``.
"""

from __future__ import annotations

from repro.backends.base import PlaneBackend, PreparedProgram, TimedProgram
from repro.backends.fused import FusedBackend
from repro.backends.numpy_backend import NumpyBackend
from repro.backends.registry import (
    DEFAULT_BACKEND,
    available_backends,
    backend_from_env,
    get_backend,
    register_backend,
)

register_backend("numpy", NumpyBackend)
register_backend("fused", FusedBackend)

__all__ = [
    "DEFAULT_BACKEND",
    "FusedBackend",
    "NumpyBackend",
    "PlaneBackend",
    "PreparedProgram",
    "TimedProgram",
    "available_backends",
    "backend_from_env",
    "get_backend",
    "register_backend",
]
