"""The ``fused`` backend: whole slot schedules as prebuilt kernel chains.

The ``numpy`` backend pays one generic :func:`apply_plane_program` walk
per slot group: fresh output allocations, re-derived scratch, and a
gather/compute/scatter round trip on every call.  At 100k trials the
workload is memory-bound — the planes live in L2/L3 and every avoidable
allocation or copy is a real cache eviction — so this backend compiles
each :class:`~repro.core.compiled.CompiledCircuit` ONCE into a chain of
specialised kernels and then replays the chain per cycle:

* **Planning** (:func:`_plan_group`): each output position's plane
  expression is normalised to an XOR set over *terms* (input planes and
  AND monomials), and XOR pairs shared between outputs are extracted
  into common subexpressions — the MAJ/MAJ_INV programs that dominate
  the recovery constructions share most of their monomial work.
* **Code generation** (:func:`_codegen_spec`): per slot group, a small
  Python function is generated (via ``exec``) whose statements are
  nothing but ``np.bitwise_*(..., out=...)`` calls on precomputed plane
  views and scratch buffers.  Outputs are written *in place* into the
  gathered views whenever a dependency-aware ordering allows it (an
  output's view may be overwritten only once no remaining output still
  reads that plane; genuine cycles spill through scratch), so a slot
  moves no bytes beyond the arithmetic itself.
* **Shared scratch** (:meth:`FusedProgram._bind`): all kernels of a
  program share ONE scratch pool sized to the widest kernel.  Private
  per-kernel buffers measurably evict the planes from cache on the
  100k-trial workload; the shared pool is what turns the op-count
  savings into wall-clock savings.
* **Optional JIT** (:func:`_tape_apply`): when :mod:`numba` is
  importable (``REPRO_JIT=0`` opts out), gate groups instead run a
  register-tape interpreter compiled with ``@njit`` — same planned op
  sequence, executed word-serially without NumPy dispatch.  numba is
  never required: import or compilation failure silently falls back to
  the generated-kernel chain, so CI needs no new hard dependency.  The
  tape function itself is plain Python and is unit-tested unjitted.

Both paths evaluate exactly the boolean functions of the compiled
program — XOR/AND reassociation is exact on bits — so the backend is
bit-identical to ``numpy`` by construction and never touches the RNG;
the conformance suite and the frozen digest tests pin both properties.
Groups whose program contains a ``dnf`` expression (possible for exotic
user gates; no library gate lowers to one) fall back to the generic
stacked apply within an otherwise fused chain.
"""

from __future__ import annotations

import os
from collections import Counter
from itertools import combinations

import numpy as np

from repro.backends.base import PlaneBackend, PreparedProgram
from repro.core.compiled import ALL_ONES, apply_plane_program

__all__ = ["FusedBackend", "FusedProgram"]

#: Term tags: ``("x", i)`` input plane at gate position ``i``;
#: ``("m", j)`` the ``j``-th AND monomial; ``("t", j)`` the ``j``-th
#: extracted common XOR pair.
_Term = tuple[str, int]


class _GroupPlan:
    """One slot group's program normalised for kernel generation.

    ``outputs[p]`` is ``(terms, invert)``: position ``p``'s plane is the
    XOR of the term values, complemented when ``invert``.  ``monomials``
    holds the distinct AND monomials (input positions); ``pairs`` the
    extracted common XOR subexpressions, each a pair of earlier terms.
    """

    __slots__ = ("monomials", "pairs", "outputs")

    def __init__(self, monomials, pairs, outputs):
        self.monomials = monomials
        self.pairs = pairs
        self.outputs = outputs


def _plan_group(program) -> _GroupPlan | None:
    """Normalise a plane program to XOR-of-terms and extract shared pairs.

    Returns ``None`` when any expression falls outside the XOR/AND
    algebra (the ``dnf`` fallback form, or a degenerate constant) — the
    caller then uses the generic interpreter for that group.
    """
    mono_index: dict[tuple[int, ...], int] = {}
    outputs: list[tuple[set[_Term], bool]] = []
    for expression in program:
        tag = expression[0]
        if tag == "copy":
            outputs.append(({("x", expression[1])}, False))
        elif tag == "affine":
            invert, positions = expression[1], expression[2]
            if not positions:
                return None
            outputs.append(({("x", p) for p in positions}, invert))
        elif tag == "anf":
            invert, monomials = expression[1], expression[2]
            if not monomials:
                return None
            terms: set[_Term] = set()
            for monomial in monomials:
                if len(monomial) == 1:
                    terms.add(("x", monomial[0]))
                else:
                    terms.add(
                        ("m", mono_index.setdefault(monomial, len(mono_index)))
                    )
            outputs.append((terms, invert))
        else:  # "dnf" or unknown
            return None
    monomials = [None] * len(mono_index)
    for monomial, index in mono_index.items():
        monomials[index] = monomial
    # Greedy common-subexpression extraction: any XOR pair appearing in
    # two or more outputs is computed once.  Replacing a pair in n
    # outputs saves n XORs for the one the pair itself costs; extracted
    # pairs become terms themselves, so chains of shared structure
    # (MAJ's three two-input monomial sums) collapse iteratively.
    # Everything iterates in sorted order so generation is
    # deterministic; the result is the same boolean function in any
    # order — XOR reassociation is exact on bits.
    pairs: list[tuple[_Term, _Term]] = []
    while True:
        counts: Counter = Counter()
        for terms, _ in outputs:
            if len(terms) >= 2:
                counts.update(combinations(sorted(terms), 2))
        if not counts:
            break
        pair, count = counts.most_common(1)[0]
        if count < 2:
            break
        replacement: _Term = ("t", len(pairs))
        pairs.append(pair)
        first, second = pair
        for terms, _ in outputs:
            if first in terms and second in terms:
                terms.discard(first)
                terms.discard(second)
                terms.add(replacement)
    return _GroupPlan(monomials, pairs, outputs)


class _KernelSpec:
    """One chain entry: a kernel plus its scratch-buffer requirements.

    ``fn`` takes ``(planes, *buffers)`` where each buffer is a
    ``(k, n_words)`` uint64 scratch block from the program's shared
    pool (``nbuf == 0`` kernels take planes only); ``source`` keeps the
    generated code for introspection and tests.

    ``kind``/``meta`` describe the *built artifact* for static
    inspection (the symbolic verifier in :mod:`repro.verify.backends`
    interprets exactly what will execute, not the plan it came from):
    ``"reset"`` carries ``(wires, value)``, ``"generic"`` and
    ``"codegen"`` carry the source :class:`~repro.core.compiled.SlotGroup`
    (codegen kernels additionally expose their index arrays through
    ``fn.__globals__``), ``"tape"`` carries ``(wires, tape, out_pos,
    out_reg)`` — the arrays the interpreter will actually run.
    """

    __slots__ = ("fn", "nbuf", "k", "source", "kind", "meta")

    def __init__(
        self,
        fn,
        nbuf: int,
        k: int,
        source: str | None = None,
        kind: str = "opaque",
        meta: object = None,
    ):
        self.fn = fn
        self.nbuf = nbuf
        self.k = k
        self.source = source
        self.kind = kind
        self.meta = meta


def _reset_kernel(wires, value: int) -> _KernelSpec:
    rows = np.asarray(wires, dtype=np.intp)
    fill = ALL_ONES if value else np.uint64(0)

    def kernel(planes):
        planes[rows] = fill

    return _KernelSpec(
        kernel, 0, 1, kind="reset", meta=(tuple(int(w) for w in wires), value)
    )


def _generic_kernel(group) -> _KernelSpec:
    """Interpreter fallback for groups the planner declines (dnf forms).

    Mirrors :meth:`BitplaneState.apply_program_stacked` on raw planes —
    same gather, same program walk, same scatter — so the fallback is
    bit-identical to the ``numpy`` backend for these groups.
    """
    program = group.program
    wire_matrix = group.wire_matrix
    row_slices = group.row_slices
    arity = wire_matrix.shape[1]

    def kernel(planes):
        inputs = [
            planes[row_slices[i]]
            if row_slices and row_slices[i] is not None
            else planes[wire_matrix[:, i]]
            for i in range(arity)
        ]
        outputs = apply_plane_program(program, inputs)
        for i, block in enumerate(outputs):
            if row_slices and row_slices[i] is not None:
                planes[row_slices[i]] = block
            else:
                planes[wire_matrix[:, i]] = block

    return _KernelSpec(kernel, 0, wire_matrix.shape[0], kind="generic", meta=group)


def _codegen_spec(group, plan: _GroupPlan) -> _KernelSpec | None:
    """Generate the in-place NumPy kernel for one planned slot group.

    The generated function gathers each gate position once (a plane
    *view* for arithmetic-progression positions, a fancy-indexed copy
    otherwise), computes monomials and extracted pairs into scratch,
    then writes each output position — in place into its view when no
    remaining output still reads that plane, immediately for
    fancy-gathered positions (their gathered copy preserves the
    pre-gate value), and through a deferred scratch spill when outputs
    genuinely cycle (SWAP-like groups).  Returns ``None`` when every
    output is an identity copy.
    """
    k, arity = group.wire_matrix.shape
    env: dict = {"np": np}
    lines: list[str] = []
    is_view: list[bool] = []
    for i in range(arity):
        view = bool(group.row_slices) and group.row_slices[i] is not None
        is_view.append(view)
        if view:
            sl = group.row_slices[i]
            step = sl.step if sl.step is not None else 1
            lines.append(f"    x{i} = planes[{sl.start}:{sl.stop}:{step}]")
        else:
            env[f"_idx{i}"] = np.ascontiguousarray(group.wire_matrix[:, i])
            lines.append(f"    x{i} = planes[_idx{i}]")

    nbuf = 0

    def new_buffer() -> str:
        nonlocal nbuf
        nbuf += 1
        return f"b{nbuf - 1}"

    refs: dict[_Term, str] = {("x", i): f"x{i}" for i in range(arity)}
    for mid, monomial in enumerate(plan.monomials):
        buffer = new_buffer()
        refs[("m", mid)] = buffer
        lines.append(
            f"    np.bitwise_and(x{monomial[0]}, x{monomial[1]}, out={buffer})"
        )
        for position in monomial[2:]:
            lines.append(f"    np.bitwise_and({buffer}, x{position}, out={buffer})")
    for pid, (first, second) in enumerate(plan.pairs):
        buffer = new_buffer()
        refs[("t", pid)] = buffer
        lines.append(
            f"    np.bitwise_xor({refs[first]}, {refs[second]}, out={buffer})"
        )

    def emit(terms: set, invert: bool, dest: str, self_position: int | None):
        # When dest is position p's own view and x_p is a term, consume
        # it first — the first statement overwrites dest.
        ordered = sorted(terms)
        if self_position is not None and ("x", self_position) in terms:
            ordered.remove(("x", self_position))
            ordered.insert(0, ("x", self_position))
        operands = [refs[term] for term in ordered]
        if len(operands) == 1:
            if invert:
                lines.append(f"    np.bitwise_not({operands[0]}, out={dest})")
            elif operands[0] != dest:
                lines.append(f"    np.copyto({dest}, {operands[0]})")
            return
        lines.append(
            f"    np.bitwise_xor({operands[0]}, {operands[1]}, out={dest})"
        )
        for operand in operands[2:]:
            lines.append(f"    np.bitwise_xor({dest}, {operand}, out={dest})")
        if invert:
            lines.append(f"    np.bitwise_not({dest}, out={dest})")

    remaining: dict[int, tuple[set, bool]] = {}
    for position, (terms, invert) in enumerate(plan.outputs):
        if terms == {("x", position)} and not invert:
            continue  # identity output: plane untouched
        remaining[position] = (terms, invert)
    if not remaining:
        return None
    reads = {
        position: {i for tag, i in terms if tag == "x"}
        for position, (terms, _) in remaining.items()
    }
    deferred: list[tuple[int, str]] = []
    pending = set(remaining)
    while pending:
        pick = None
        for position in sorted(pending):
            if not is_view[position] or all(
                position not in reads[other]
                for other in pending
                if other != position
            ):
                pick = position
                break
        if pick is None:
            # Cycle (SWAP-like): compute the smallest pending output
            # now, into scratch, and write its view after the loop.
            pick = min(pending)
            buffer = new_buffer()
            terms, invert = remaining[pick]
            emit(terms, invert, buffer, None)
            deferred.append((pick, buffer))
        else:
            terms, invert = remaining[pick]
            if is_view[pick]:
                emit(terms, invert, f"x{pick}", pick)
            else:
                # Fancy-gathered: x_pick is already a copy, so the
                # scatter never clobbers any other output's read.
                buffer = new_buffer()
                emit(terms, invert, buffer, None)
                lines.append(f"    planes[_idx{pick}] = {buffer}")
        pending.discard(pick)
    for position, buffer in deferred:
        lines.append(f"    np.copyto(x{position}, {buffer})")

    parameters = ", ".join(["planes"] + [f"b{i}" for i in range(nbuf)])
    source = f"def kernel({parameters}):\n" + "\n".join(lines) + "\n"
    exec(source, env)  # noqa: S102 - generated from compiled programs only
    return _KernelSpec(env["kernel"], nbuf, k, source, kind="codegen", meta=group)


# ----------------------------------------------------------------------
# Register-tape interpreter (the numba-JIT path)
# ----------------------------------------------------------------------

#: Tape opcodes: dst = a & b / a ^ b / ~a / a.
_OP_AND, _OP_XOR, _OP_NOT, _OP_COPY = 0, 1, 2, 3


def _tape_apply(planes, wires, tape, out_pos, out_reg, regs, ones):
    """Evaluate one group's register tape word-serially, in place.

    ``wires`` is the ``(k, arity)`` instance layout; for every instance
    and plane word, the input words load into the low registers, the
    tape runs, and the output registers store back.  All loads happen
    before any store per (instance, word) site, so in-place evaluation
    needs no ordering analysis.  Plain Python (and unit-tested as
    such); compiled with ``numba.njit`` when available.
    """
    k, arity = wires.shape
    n_words = planes.shape[1]
    for j in range(k):
        for w in range(n_words):
            for i in range(arity):
                regs[i] = planes[wires[j, i], w]
            for t in range(tape.shape[0]):
                op = tape[t, 0]
                a = tape[t, 1]
                b = tape[t, 2]
                d = tape[t, 3]
                if op == 0:
                    regs[d] = regs[a] & regs[b]
                elif op == 1:
                    regs[d] = regs[a] ^ regs[b]
                elif op == 2:
                    regs[d] = regs[a] ^ ones
                else:
                    regs[d] = regs[a]
            for o in range(out_pos.shape[0]):
                planes[wires[j, out_pos[o]], w] = regs[out_reg[o]]


def _build_tape(plan: _GroupPlan, arity: int):
    """Lower a group plan to ``(tape, out_pos, out_reg, n_regs)`` arrays.

    Register layout: inputs ``0..arity-1``, then one register per
    monomial, per extracted pair, per non-identity output — the same
    planned op sequence the NumPy codegen emits, flattened to scalars.
    """
    register_of: dict[_Term, int] = {("x", i): i for i in range(arity)}
    next_register = arity
    tape: list[tuple[int, int, int, int]] = []
    for mid, monomial in enumerate(plan.monomials):
        register = next_register
        next_register += 1
        register_of[("m", mid)] = register
        tape.append((_OP_AND, monomial[0], monomial[1], register))
        for position in monomial[2:]:
            tape.append((_OP_AND, register, position, register))
    for pid, (first, second) in enumerate(plan.pairs):
        register = next_register
        next_register += 1
        register_of[("t", pid)] = register
        tape.append((_OP_XOR, register_of[first], register_of[second], register))
    out_pos: list[int] = []
    out_reg: list[int] = []
    for position, (terms, invert) in enumerate(plan.outputs):
        if terms == {("x", position)} and not invert:
            continue
        operands = [register_of[term] for term in sorted(terms)]
        register = next_register
        next_register += 1
        if len(operands) == 1:
            tape.append(
                (_OP_NOT if invert else _OP_COPY, operands[0], 0, register)
            )
        else:
            tape.append((_OP_XOR, operands[0], operands[1], register))
            for operand in operands[2:]:
                tape.append((_OP_XOR, register, operand, register))
            if invert:
                tape.append((_OP_NOT, register, 0, register))
        out_pos.append(position)
        out_reg.append(register)
    return (
        np.asarray(tape, dtype=np.int64).reshape(-1, 4),
        np.asarray(out_pos, dtype=np.int64),
        np.asarray(out_reg, dtype=np.int64),
        next_register,
    )


_JIT_KERNEL = None
_JIT_UNAVAILABLE = False


def _jit_tape_kernel():
    """The njit-compiled tape interpreter, or ``None`` without numba.

    Import or decoration failure marks JIT unavailable for the process
    — the silent-fallback contract: the fused backend then runs its
    generated NumPy chain, and nothing else changes.
    """
    global _JIT_KERNEL, _JIT_UNAVAILABLE
    if _JIT_KERNEL is None and not _JIT_UNAVAILABLE:
        try:
            import numba

            _JIT_KERNEL = numba.njit(cache=False, nogil=True)(_tape_apply)
        except Exception:
            _JIT_UNAVAILABLE = True
    return _JIT_KERNEL


def _tape_spec(group, plan: _GroupPlan, jit_kernel) -> _KernelSpec | None:
    tape, out_pos, out_reg, n_registers = _build_tape(
        plan, group.wire_matrix.shape[1]
    )
    if out_pos.size == 0:
        return None
    wires = np.ascontiguousarray(group.wire_matrix, dtype=np.int64)
    registers = np.empty(n_registers, dtype=np.uint64)

    def kernel(planes):
        jit_kernel(planes, wires, tape, out_pos, out_reg, registers, ALL_ONES)

    return _KernelSpec(
        kernel,
        0,
        wires.shape[0],
        kind="tape",
        meta=(wires, tape, out_pos, out_reg),
    )


# ----------------------------------------------------------------------
# The prepared program and the backend
# ----------------------------------------------------------------------

#: Bound-chain cache width: distinct ``n_words`` seen per program (solo
#: runs and a couple of stacked batch widths in practice).
_MAX_BOUND_WIDTHS = 8


class FusedProgram(PreparedProgram):
    """A compiled circuit lowered to a per-slot chain of built kernels.

    Kernel *structure* (generated code, index tables, tapes) is built
    once here; scratch is bound lazily per plane width in :meth:`_bind`,
    because the stacked executor runs the same program over differently
    sized word axes.
    """

    def __init__(self, compiled, jit: bool = False):
        super().__init__(compiled)
        jit_kernel = _jit_tape_kernel() if jit else None
        #: Whether gate groups run through the numba tape interpreter.
        self.jit = jit_kernel is not None
        self._max_nbuf = 0
        self._max_k = 1
        self._bound: dict[int, tuple] = {}
        slot_specs: list[tuple[_KernelSpec, ...]] = []
        for slot in compiled.slots:
            specs: list[_KernelSpec] = []
            if slot.is_reset:
                for value, wires in slot.resets:
                    specs.append(_reset_kernel(wires, value))
            else:
                for group in slot.groups:
                    plan = _plan_group(group.program)
                    if plan is None:
                        spec = _generic_kernel(group)
                    elif jit_kernel is not None:
                        spec = _tape_spec(group, plan, jit_kernel)
                    else:
                        spec = _codegen_spec(group, plan)
                    if spec is None:
                        continue  # identity group: nothing to execute
                    self._max_nbuf = max(self._max_nbuf, spec.nbuf)
                    self._max_k = max(self._max_k, spec.k)
                    specs.append(spec)
            slot_specs.append(tuple(specs))
        self._specs: tuple[tuple[_KernelSpec, ...], ...] = tuple(slot_specs)

    def _bind(self, n_words: int) -> tuple:
        """Close every kernel over shared scratch sized for ``n_words``.

        ONE pool serves all kernels (sliced to each kernel's ``(nbuf,
        k)`` footprint): the kernels run sequentially, so reuse is
        safe, and keeping the working set to planes-plus-one-pool is
        what keeps the chain resident in cache.
        """
        pool = (
            np.empty((self._max_nbuf, self._max_k, n_words), dtype=np.uint64)
            if self._max_nbuf
            else None
        )
        chain = []
        for specs in self._specs:
            bound = []
            for spec in specs:
                if spec.nbuf:
                    buffers = tuple(
                        pool[i, : spec.k] for i in range(spec.nbuf)
                    )
                    bound.append(_bind_buffers(spec.fn, buffers))
                else:
                    bound.append(spec.fn)
            chain.append(tuple(bound))
        return tuple(chain)

    def _chain(self, n_words: int) -> tuple:
        chain = self._bound.get(n_words)
        if chain is None:
            if len(self._bound) >= _MAX_BOUND_WIDTHS:
                self._bound.pop(next(iter(self._bound)))
            chain = self._bind(n_words)
            self._bound[n_words] = chain
        return chain

    def apply_slot(self, state, index: int) -> None:
        for kernel in self._chain(state.n_words)[index]:
            kernel(state.planes)

    def run(self, state):
        planes = state.planes
        for kernels in self._chain(state.n_words):
            for kernel in kernels:
                kernel(planes)
        return state


def _bind_buffers(fn, buffers):
    def bound(planes):
        fn(planes, *buffers)

    return bound


class FusedBackend(PlaneBackend):
    """Prebuilt-kernel-chain backend (optionally numba-JIT).

    ``jit=None`` follows ``REPRO_JIT`` (default on, meaning *use numba
    if importable*); ``False`` forces the generated NumPy chain,
    ``True`` requests the tape path — still falling back silently when
    numba is absent.  Both modes are bit-identical.
    """

    name = "fused"

    def __init__(self, jit: bool | None = None):
        if jit is None:
            jit = os.environ.get("REPRO_JIT", "1") != "0"
        self.jit = bool(jit)

    def prepare_key(self) -> str:
        if self.jit and _jit_tape_kernel() is not None:
            return "fused+jit"
        return "fused"

    def _prepare(self, compiled) -> FusedProgram:
        return FusedProgram(compiled, jit=self.jit)
