"""The backend contract: what it takes to execute plane programs.

The compiled schedule of :mod:`repro.core.compiled` is engine-agnostic
data — tagged plane expressions plus wire matrices.  A *backend* is one
way of executing that data against a plane store.  This module pins the
contract down as an abstract base class so the noise layer and the
stacked executor can be pointed at any implementation:

* :class:`PlaneBackend` — allocate plane states, prepare a compiled
  circuit into an executable :class:`PreparedProgram`, and perform the
  state-level primitives the noise layer needs (program application,
  stacked apply, randomize/scatter, majority/popcount decode).
* :class:`PreparedProgram` — the per-``CompiledCircuit`` executable: a
  slot-indexed ``apply_slot`` (the noisy engines interleave fault
  injection between slots) plus a noiseless ``run`` over the whole
  schedule.

Both registered backends (:mod:`repro.backends.numpy_backend` and
:mod:`repro.backends.fused`) operate on the shared
:class:`~repro.core.bitplane.BitplaneState` uint64 plane store, so the
allocation and randomize/decode primitives default to delegating
straight to the state; a future device backend would override them
alongside :meth:`PlaneBackend.prepare`.

Conformance is behavioural, not structural: every registered backend
must pass the parametrized suite in ``tests/backends/conformance.py``
(small-circuit equivalence against the reference simulator, stacked
vs solo bit-identity, fault-draw bit-identity against the ``numpy``
backend, decode correctness).  Backends never touch the RNG — faults
are drawn by the noise layer and scattered through the state — so
swapping backends can never change a published number.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.bitplane import (
    BitplaneState,
    count_trial_ones,
    popcount_words,
)
from repro.obs import clock_ns, histogram, sample_every

__all__ = ["PlaneBackend", "PreparedProgram", "TimedProgram"]


class PreparedProgram:
    """One compiled circuit made executable by one backend.

    Preparation happens once per (compiled circuit, backend) pair —
    backends cache the result on ``compiled.prepared`` — so anything
    expensive (index tables, generated kernels, scratch planning)
    belongs in the constructor, never in :meth:`apply_slot`.
    """

    def __init__(self, compiled):
        self.compiled = compiled

    def apply_slot(self, state: BitplaneState, index: int) -> None:
        """Apply fused slot ``index`` of the schedule to ``state``.

        Covers both slot kinds: reset slots assign their constant
        planes, gate slots evaluate every stacked program group.  The
        noisy engines call this once per slot and inject the slot's
        faults in between — the contract is that the state after
        ``apply_slot`` is bit-identical across backends.
        """
        raise NotImplementedError

    def run(self, state: BitplaneState) -> BitplaneState:
        """Run the whole schedule noiselessly, mutating ``state``."""
        for index in range(len(self.compiled.slots)):
            self.apply_slot(state, index)
        return state


class TimedProgram(PreparedProgram):
    """A prepared program with sampled per-slot kernel timing.

    Wraps another :class:`PreparedProgram`, timing every ``every``-th
    ``apply_slot`` call into the ``backend.<name>.kernel_ns``
    histogram (and counting all calls).  Only constructed when
    ``REPRO_OBS_SAMPLE`` is active — see :meth:`PlaneBackend.prepare` —
    so the disabled hot loop carries no wrapper at all.  Timing reads
    only the clock: results stay bit-identical at any sampling rate.
    """

    def __init__(self, inner: PreparedProgram, backend_name: str, every: int):
        super().__init__(inner.compiled)
        self.inner = inner
        self.every = every
        self.calls = 0
        self._hist = histogram(f"backend.{backend_name}.kernel_ns")

    def apply_slot(self, state: BitplaneState, index: int) -> None:
        self.calls += 1
        if self.calls % self.every:
            self.inner.apply_slot(state, index)
            return
        started = clock_ns()
        self.inner.apply_slot(state, index)
        self._hist.observe(clock_ns() - started)


class PlaneBackend:
    """Abstract executor of compiled plane programs.

    Subclasses set :attr:`name` (the registry key) and implement
    :meth:`_prepare`; the state-level primitives default to the
    :class:`BitplaneState` implementations shared by the in-tree
    backends.
    """

    #: Registry key; also what ``PointResult``-style reporting shows.
    name: str = ""

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def broadcast(self, input_bits: Sequence[int], trials: int) -> BitplaneState:
        """All trials start from the same bit vector."""
        return BitplaneState.broadcast(input_bits, trials)

    def zeros(self, n_wires: int, trials: int) -> BitplaneState:
        """All trials start from the all-zero state."""
        return BitplaneState.zeros(n_wires, trials)

    def from_rows(self, rows: Sequence[Sequence[int]]) -> BitplaneState:
        """One trial per row of explicit bit vectors."""
        return BitplaneState.from_rows(rows)

    # ------------------------------------------------------------------
    # Program preparation
    # ------------------------------------------------------------------

    def prepare_key(self) -> str:
        """The ``compiled.prepared`` cache key for this backend.

        Defaults to :attr:`name`; backends whose preparation depends on
        configuration (the fused backend's JIT mode) extend the key so
        differently configured instances never share an entry.
        """
        return self.name

    def prepare(self, compiled) -> PreparedProgram:
        """The executable form of ``compiled`` under this backend.

        Cached in ``compiled.prepared`` keyed on :meth:`prepare_key`,
        so a sweep or bisection re-running one circuit prepares it
        exactly once per process regardless of how many runs consume
        it.  When kernel-timing sampling is on (``REPRO_OBS_SAMPLE``)
        the *returned* program is a fresh :class:`TimedProgram` over
        the cached one — the cache itself never holds a wrapper, so
        toggling sampling between runs cannot leak timing into a
        sampling-off caller.
        """
        key = self.prepare_key()
        prepared = compiled.prepared.get(key)
        if prepared is None:
            prepared = self._prepare(compiled)
            compiled.prepared[key] = prepared
        every = sample_every()
        if every:
            return TimedProgram(prepared, self.name, every)
        return prepared

    def _prepare(self, compiled) -> PreparedProgram:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # State primitives (randomize/scatter, decode) — shared plane store
    # ------------------------------------------------------------------

    def apply_program(
        self,
        state: BitplaneState,
        program: tuple,
        wires: Sequence[int],
        mask: np.ndarray | None = None,
    ) -> None:
        """Apply one plane program outside the prepared schedule."""
        state.apply_program(program, wires, mask)

    def apply_program_stacked(
        self,
        state: BitplaneState,
        program: tuple,
        wire_matrix: np.ndarray,
        row_slices: tuple = (),
    ) -> None:
        """Apply one program to stacked instances outside the schedule."""
        state.apply_program_stacked(program, wire_matrix, row_slices)

    def reset(
        self,
        state: BitplaneState,
        wires: Sequence[int],
        value: int = 0,
        mask: np.ndarray | None = None,
    ) -> None:
        """Reset wires to a constant on all (or masked) trials."""
        state.reset(wires, value, mask)

    def randomize(
        self,
        state: BitplaneState,
        wires: Sequence[int],
        rng: np.random.Generator,
        mask: np.ndarray | None = None,
    ) -> None:
        """Replace wires with uniform random bits (the paper's fault)."""
        state.randomize(wires, rng, mask)

    def randomize_stacked(
        self,
        state: BitplaneState,
        wire_matrix: np.ndarray,
        rng: np.random.Generator | None,
        instance_of: np.ndarray,
        word_of: np.ndarray,
        select: np.ndarray,
        random_words: np.ndarray | None = None,
    ) -> None:
        """Scatter one batched fault draw onto stacked gate instances."""
        state.randomize_stacked(
            wire_matrix, rng, instance_of, word_of, select, random_words
        )

    def majority_plane(
        self, state: BitplaneState, wires: Sequence[int]
    ) -> np.ndarray:
        """Packed per-trial majority vote over the selected wires."""
        return state.majority_plane(wires)

    def popcount(self, words: np.ndarray) -> int:
        """Total set bits across packed uint64 words."""
        return popcount_words(words)

    def count_trial_ones(self, words: np.ndarray, trials: int) -> int:
        """Set bits among the first ``trials`` of a packed plane."""
        return count_trial_ones(words, trials)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
