"""The ``numpy`` backend: the original BitplaneState slot loop, extracted.

This is a pure extraction of the execution path that
:meth:`~repro.core.compiled.CompiledCircuit.run` and the noisy engines
used before the backend seam existed: reset slots assign constant
planes, gate slots evaluate each stacked program group through
:meth:`~repro.core.bitplane.BitplaneState.apply_program_stacked`.  It
is the reference implementation every other backend is conformance-
and digest-tested against, and it must stay bit-identical to the
pre-backend code — all frozen RNG digests run through it unchanged.
"""

from __future__ import annotations

from repro.backends.base import PlaneBackend, PreparedProgram

__all__ = ["NumpyBackend", "NumpyProgram"]


class NumpyProgram(PreparedProgram):
    """Slot-by-slot execution through the state's stacked apply."""

    def apply_slot(self, state, index: int) -> None:
        slot = self.compiled.slots[index]
        if slot.is_reset:
            for value, wires in slot.resets:
                state.reset(wires, value)
        else:
            for group in slot.groups:
                state.apply_program_stacked(
                    group.program, group.wire_matrix, group.row_slices
                )


class NumpyBackend(PlaneBackend):
    """The reference uint64 bit-plane backend (one dispatch per group)."""

    name = "numpy"

    def _prepare(self, compiled) -> NumpyProgram:
        return NumpyProgram(compiled)
