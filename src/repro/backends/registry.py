"""Name-keyed registry of plane-program execution backends.

Backends register a *factory* under a name; instances are created
lazily and shared process-wide (they are stateless apart from caches
keyed on the compiled circuits themselves).  ``REPRO_BACKEND`` selects
the default — wired through
:meth:`~repro.runtime.spec.ExecutionPolicy.from_env` like every other
execution knob — and unknown names raise
:class:`~repro.errors.ConfigError` instead of silently falling back.
"""

from __future__ import annotations

import os
from collections.abc import Callable

from repro.backends.base import PlaneBackend
from repro.errors import ConfigError

__all__ = [
    "DEFAULT_BACKEND",
    "available_backends",
    "backend_from_env",
    "get_backend",
    "register_backend",
]

#: The backend used when neither the caller nor ``REPRO_BACKEND`` says
#: otherwise — the extracted original :class:`BitplaneState` path.
DEFAULT_BACKEND = "numpy"

_FACTORIES: dict[str, Callable[[], PlaneBackend]] = {}
_INSTANCES: dict[str, PlaneBackend] = {}


def register_backend(
    name: str, factory: Callable[[], PlaneBackend], replace: bool = False
) -> None:
    """Register a backend factory under ``name``.

    ``replace=True`` allows re-registration (tests swapping in an
    instrumented backend); otherwise duplicate names are configuration
    errors — two implementations silently shadowing each other is
    exactly the failure mode the registry exists to prevent.
    """
    if not replace and name in _FACTORIES:
        raise ConfigError(f"backend {name!r} is already registered")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_FACTORIES))


def backend_from_env() -> str:
    """The backend name selected by ``REPRO_BACKEND`` (validated)."""
    name = os.environ.get("REPRO_BACKEND", DEFAULT_BACKEND)
    if name not in _FACTORIES:
        raise ConfigError(
            f"REPRO_BACKEND={name!r} is not a registered backend; "
            f"available backends: {available_backends()}"
        )
    return name


def get_backend(name: str | PlaneBackend | None = None) -> PlaneBackend:
    """The shared instance of a registered backend.

    ``None`` follows ``REPRO_BACKEND`` (default ``numpy``); an existing
    :class:`PlaneBackend` instance passes through unchanged, so callers
    can hand-construct configured backends (e.g. the fused backend with
    JIT forced off) and still use the same code paths.
    """
    if isinstance(name, PlaneBackend):
        return name
    if name is None:
        name = backend_from_env()
    instance = _INSTANCES.get(name)
    if instance is None:
        factory = _FACTORIES.get(name)
        if factory is None:
            raise ConfigError(
                f"unknown backend {name!r}; available backends: "
                f"{available_backends()}"
            )
        instance = factory()
        _INSTANCES[name] = instance
    return instance
