"""Process-wide metrics registry: counters, gauges, histograms.

Metrics are named with stable dotted paths following the convention
``<layer>.<noun>[.<unit>]`` — e.g. ``executor.stacked_points``,
``jobs.store.hit``, ``backend.fused.kernel_ns``.  Names are part of the
public observability contract: tools and tests match on them, so a
rename is an API change.

The registry is a plain process-global dictionary.  Hot paths hold a
direct reference to their metric object (module-level
``_POINTS = counter("executor.points")``) so recording is one attribute
increment, not a dict lookup.  :func:`reset_metrics` therefore zeroes
metrics *in place* — the objects survive so held references stay live.

Metrics are observational only.  Nothing result-affecting may ever read
a metric: content keys, RNG streams, and stored results are functions
of explicit inputs, and the codelint layer (RL110-RL112, RL500) holds
that boundary closed from the other side.
"""

from __future__ import annotations

import re

from repro.errors import ConfigError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "metrics_snapshot",
    "reset_metrics",
]

#: Legal metric names: lowercase dotted paths with at least two
#: segments, so every metric states the layer it belongs to.
_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")


class Counter:
    """A monotonically increasing count (events, points, cache hits)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigError(
                f"counter {self.name!r} is monotonic; cannot inc({amount})"
            )
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A point-in-time level (shards pending, pool width)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def snapshot(self):
        return self.value


class Histogram:
    """A streaming summary of observed values: count/total/min/max.

    Deliberately bucket-free — the trace file carries per-span timings
    for anyone who needs a distribution; the histogram answers "how
    many, how much, how extreme" at O(1) memory.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def observe(self, value) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def reset(self) -> None:
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def snapshot(self) -> dict:
        mean = self.total / self.count if self.count else None
        return {
            "count": self.count,
            "total": self.total,
            "mean": mean,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """A name -> metric map with kind checking and stable snapshots."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind):
        metric = self._metrics.get(name)
        if metric is None:
            if not _NAME_RE.match(name):
                raise ConfigError(
                    f"metric name {name!r} is not a dotted lowercase path "
                    f"(expected e.g. 'executor.stacked_points')"
                )
            metric = kind(name)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise ConfigError(
                f"metric {name!r} is already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> dict:
        """All metrics by kind, names sorted, as plain JSON-able data."""
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.snapshot()
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.snapshot()
            else:
                out["histograms"][name] = metric.snapshot()
        return out

    def reset(self) -> None:
        """Zero every metric in place (held references stay valid)."""
        for metric in self._metrics.values():
            metric.reset()


#: The process-wide registry.  One per process by design: pooled
#: workers accumulate their own and flush their own trace file.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    """The process-wide counter called ``name`` (created on first use)."""
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """The process-wide gauge called ``name`` (created on first use)."""
    return REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    """The process-wide histogram ``name`` (created on first use)."""
    return REGISTRY.histogram(name)


def metrics_snapshot() -> dict:
    """A stable-ordered snapshot of every registered metric."""
    return REGISTRY.snapshot()


def reset_metrics() -> None:
    """Zero all metrics in place (test isolation helper)."""
    REGISTRY.reset()
