"""The kernel-timing sampling knob (``REPRO_OBS_SAMPLE``).

Per-slot kernel timing would put two clock reads inside the hottest
loop in the repository, so it is off by default and *sampled* when on:
``REPRO_OBS_SAMPLE=N`` times every Nth ``apply_slot`` call (``1`` times
all of them, ``0``/unset times none).  Backends consult
:func:`sample_every` once at prepare time and wrap their program only
when sampling is active, so the disabled path costs nothing at all.

Sampling only reads the clock — it never touches the RNG stream or any
key, so any sampling rate produces bit-identical results.
"""

from __future__ import annotations

import os

from repro.errors import ConfigError

__all__ = ["configure_sampling", "sample_every"]

_SAMPLE_EVERY = 0


def configure_sampling(every: int) -> None:
    """Time every ``every``-th kernel call (0 disables sampling)."""
    global _SAMPLE_EVERY
    if not isinstance(every, int) or every < 0:
        raise ConfigError(
            f"sampling interval must be a non-negative int, got {every!r}"
        )
    _SAMPLE_EVERY = every


def sample_every() -> int:
    """The current sampling interval (0 = kernel timing off)."""
    return _SAMPLE_EVERY


def _init_from_env() -> None:
    raw = os.environ.get("REPRO_OBS_SAMPLE")
    if raw is None or raw == "":
        return
    try:
        every = int(raw)
    except ValueError as exc:
        raise ConfigError(
            f"REPRO_OBS_SAMPLE={raw!r} is not an integer"
        ) from exc
    configure_sampling(every)


_init_from_env()
