"""The span tracer: nested wall-time spans behind one cheap front door.

Usage at an instrumentation site::

    from repro.obs import trace

    with trace("executor.group", specs=len(specs)) as span:
        ...
        span.set(words=total_words)

When tracing is disabled (the default) ``trace`` returns a shared no-op
span — no allocation, no clock read, no branch beyond one global load —
so instrumentation may sit on hot paths.  Enabled via
``REPRO_TRACE=<path|stderr|stdout>`` (read once at import) or
programmatically through :func:`enable_tracing` /
``ExecutionPolicy.trace``.  The collected tree flushes at interpreter
exit; pool workers write ``<path>.<pid>`` so children never clobber
the parent's file — and because pool children exit via ``os._exit``
(skipping atexit), worker-side tasks flush explicitly through
:func:`flush_trace_if_forked` as they complete.

Trace documents are versioned JSON::

    {"format": 1, "pid": ..., "spans": [...], "metrics": {...}}

where each span is ``{"name", "start_ns", "duration_ns", "attrs",
"children"}`` with ``start_ns`` relative to the tracer's origin.
:func:`validate_trace` is the schema checker shared with
``tools/trace.py --check``.

Tracing is observational only: span attributes record counts, widths,
and timings — never content keys, seeds, or RNG state — and nothing on
a result path may read tracer state.  Enabling tracing must not move a
single frozen digest; ``tests/obs/test_trace_determinism.py`` pins
that.
"""

from __future__ import annotations

import atexit
import json
import os
import sys
import time

from repro.errors import ConfigError
from repro.obs.metrics import metrics_snapshot

__all__ = [
    "Span",
    "Stopwatch",
    "TRACE_FORMAT_VERSION",
    "clock_ns",
    "disable_tracing",
    "enable_tracing",
    "flush_trace",
    "flush_trace_if_forked",
    "stopwatch",
    "trace",
    "tracing_enabled",
    "validate_trace",
]

TRACE_FORMAT_VERSION = 1

_SCALAR_TYPES = (str, int, float, bool, type(None))


def clock_ns() -> int:
    """The monotonic clock, in nanoseconds — *the* clock front door.

    Everything in ``src/repro`` that needs elapsed time reads it here
    (or via :func:`stopwatch`/:func:`trace`); codelint RL500 bans raw
    ``time.*`` calls everywhere else so timing can never leak into a
    result or a key unnoticed.
    """
    return time.perf_counter_ns()


class Stopwatch:
    """Elapsed time since construction, for display-only timing."""

    __slots__ = ("start_ns",)

    def __init__(self) -> None:
        self.start_ns = clock_ns()

    @property
    def elapsed_ns(self) -> int:
        return clock_ns() - self.start_ns

    @property
    def elapsed_s(self) -> float:
        return self.elapsed_ns / 1e9


def stopwatch() -> Stopwatch:
    """A started :class:`Stopwatch`."""
    return Stopwatch()


class Span:
    """One timed node of the span tree (context manager)."""

    __slots__ = (
        "name",
        "attrs",
        "start_ns",
        "duration_ns",
        "children",
        "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self.start_ns = 0
        self.duration_ns = 0
        self.children: list[Span] = []
        self._tracer = tracer

    def set(self, **attrs) -> None:
        """Attach or update attributes after the span has opened."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._tracer.stack.append(self)
        self.start_ns = clock_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_ns = clock_ns() - self.start_ns
        self._tracer._close(self)
        return False

    def to_json(self, origin_ns: int) -> dict:
        return {
            "name": self.name,
            "start_ns": self.start_ns - origin_ns,
            "duration_ns": self.duration_ns,
            "attrs": {k: _coerce_attr(v) for k, v in self.attrs.items()},
            "children": [c.to_json(origin_ns) for c in self.children],
        }


def _coerce_attr(value):
    """Attribute values as JSON scalars (lists of scalars allowed)."""
    if isinstance(value, _SCALAR_TYPES):
        return value
    if isinstance(value, (list, tuple)) and all(
        isinstance(v, _SCALAR_TYPES) for v in value
    ):
        return list(value)
    return repr(value)


class _NoopSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects the span tree for one process."""

    def __init__(self, sink: str) -> None:
        self.sink = sink
        self.pid = os.getpid()
        self.origin_ns = clock_ns()
        self.roots: list[Span] = []
        self.stack: list[Span] = []

    def _close(self, span: Span) -> None:
        # Defensive against mismatched nesting (an abandoned span on an
        # exception path): closing a span pops it wherever it sits.
        if self.stack and self.stack[-1] is span:
            self.stack.pop()
        elif span in self.stack:
            self.stack.remove(span)
        if self.stack:
            self.stack[-1].children.append(span)
        else:
            self.roots.append(span)

    def document(self) -> dict:
        """The versioned trace document for everything collected so far.

        Spans still open are serialised with their running duration so
        an atexit flush during a crash still shows where time went.
        """
        now = clock_ns()
        open_spans = []
        for span in self.stack:
            copy = Span(self, span.name, dict(span.attrs, open=True))
            copy.start_ns = span.start_ns
            copy.duration_ns = now - span.start_ns
            copy.children = span.children
            open_spans.append(copy)
        return {
            "format": TRACE_FORMAT_VERSION,
            "pid": os.getpid(),
            "spans": [
                s.to_json(self.origin_ns) for s in self.roots + open_spans
            ],
            "metrics": metrics_snapshot(),
        }


_TRACER: Tracer | None = None


def tracing_enabled() -> bool:
    """Whether a tracer is active in this process."""
    return _TRACER is not None


def trace(name: str, **attrs):
    """A span context manager, or the shared no-op when disabled."""
    tracer = _TRACER
    if tracer is None:
        return NOOP_SPAN
    return Span(tracer, name, attrs)


def enable_tracing(sink: str = "stderr") -> None:
    """Start collecting spans, flushing to ``sink`` at exit.

    ``sink`` is a file path, ``"stderr"``, or ``"stdout"``.  If tracing
    is already enabled only the sink is re-pointed — the collected tree
    survives, so a late ``ExecutionPolicy.trace`` does not discard
    spans recorded since ``REPRO_TRACE`` enabled tracing at import.
    """
    global _TRACER
    if not sink:
        raise ConfigError("trace sink must be a path, 'stderr' or 'stdout'")
    if _TRACER is not None:
        _TRACER.sink = sink
        return
    _TRACER = Tracer(sink)


def disable_tracing() -> None:
    """Drop the tracer (and any unflushed spans) for this process."""
    global _TRACER
    _TRACER = None


def flush_trace() -> str | None:
    """Write the trace document to its sink; returns the destination.

    Returns ``None`` when tracing is disabled.  Writing to a path
    rewrites the whole document, so repeated flushes are safe; a forked
    worker (pid differs from the tracer's) writes ``<path>.<pid>``.
    """
    tracer = _TRACER
    if tracer is None:
        return None
    document = tracer.document()
    payload = json.dumps(document, sort_keys=True)
    sink = tracer.sink
    if sink in ("stderr", "stdout"):
        stream = sys.stderr if sink == "stderr" else sys.stdout
        stream.write(payload + "\n")
        return sink
    if os.getpid() != tracer.pid:
        sink = f"{sink}.{os.getpid()}"
    with open(sink, "w", encoding="utf-8") as handle:
        handle.write(payload + "\n")
    return sink


def flush_trace_if_forked() -> str | None:
    """Flush, but only inside a forked pool worker.

    Multiprocessing children exit through ``os._exit`` — atexit never
    runs there — so pool tasks call this as their last act.  In the
    parent (or with tracing off) it is a no-op; repeated calls just
    rewrite the worker's ``<path>.<pid>`` document, so every completed
    task leaves the file current.
    """
    tracer = _TRACER
    if tracer is None or os.getpid() == tracer.pid:
        return None
    return flush_trace()


def _atexit_flush() -> None:  # pragma: no cover - exercised via subprocess
    if _TRACER is not None:
        flush_trace()


atexit.register(_atexit_flush)


# ----------------------------------------------------------------------
# Schema validation (shared with tools/trace.py --check)
# ----------------------------------------------------------------------


def _validate_span(span, where: str, problems: list[str]) -> None:
    if not isinstance(span, dict):
        problems.append(f"{where}: span is not an object")
        return
    if not isinstance(span.get("name"), str) or not span.get("name"):
        problems.append(f"{where}: missing or empty span name")
    for field in ("start_ns", "duration_ns"):
        value = span.get(field)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            problems.append(f"{where}: {field} is not a non-negative int")
    attrs = span.get("attrs")
    if not isinstance(attrs, dict):
        problems.append(f"{where}: attrs is not an object")
    else:
        for key, value in attrs.items():
            ok = isinstance(value, _SCALAR_TYPES) or (
                isinstance(value, list)
                and all(isinstance(v, _SCALAR_TYPES) for v in value)
            )
            if not ok:
                problems.append(f"{where}: attr {key!r} is not a JSON scalar")
    children = span.get("children")
    if not isinstance(children, list):
        problems.append(f"{where}: children is not a list")
        return
    for index, child in enumerate(children):
        _validate_span(child, f"{where}.children[{index}]", problems)


def validate_trace(document) -> list[str]:
    """Schema problems of a parsed trace document (empty list = valid)."""
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["trace document is not a JSON object"]
    if document.get("format") != TRACE_FORMAT_VERSION:
        problems.append(
            f"format is {document.get('format')!r}, expected "
            f"{TRACE_FORMAT_VERSION}"
        )
    if not isinstance(document.get("pid"), int):
        problems.append("pid is not an int")
    spans = document.get("spans")
    if not isinstance(spans, list):
        problems.append("spans is not a list")
    else:
        for index, span in enumerate(spans):
            _validate_span(span, f"spans[{index}]", problems)
    metrics = document.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("metrics is not an object")
    else:
        for section in ("counters", "gauges", "histograms"):
            if not isinstance(metrics.get(section), dict):
                problems.append(f"metrics.{section} is not an object")
    return problems


def _init_from_env() -> None:
    sink = os.environ.get("REPRO_TRACE")
    if sink:
        enable_tracing(sink)


_init_from_env()
