"""``repro.obs`` — tracing, metrics, and profiling behind one front door.

The observability layer of the reproduction: a span tracer
(:func:`trace`), a process-wide metrics registry (:func:`counter` /
:func:`gauge` / :func:`histogram`), the sampled kernel-timing knob
(:mod:`~repro.obs.sampling`), and the clock front door
(:func:`clock_ns` / :func:`stopwatch`).  Zero dependencies beyond the
standard library; strictly no-op-cheap when disabled.

Knobs (read once at import):

* ``REPRO_TRACE=<path|stderr|stdout>`` — collect a span tree and flush
  it as versioned JSON at exit (render with ``tools/trace.py``).
* ``REPRO_OBS_SAMPLE=N`` — time every Nth backend kernel call into a
  ``backend.<name>.kernel_ns`` histogram.

Two invariants, both pinned by tests and codelint:

* **Observation never feeds results.**  No RNG draw, content key, or
  stored number may depend on tracer or metric state; enabling tracing
  leaves every frozen digest bit-identical.
* **One clock.**  Raw ``time.*`` calls are banned in ``src/repro``
  outside this package (codelint RL500); elapsed time flows through
  :func:`trace`, :func:`stopwatch`, or :func:`clock_ns`.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    counter,
    gauge,
    histogram,
    metrics_snapshot,
    reset_metrics,
)
from repro.obs.sampling import configure_sampling, sample_every
from repro.obs.tracing import (
    Span,
    Stopwatch,
    TRACE_FORMAT_VERSION,
    clock_ns,
    disable_tracing,
    enable_tracing,
    flush_trace,
    flush_trace_if_forked,
    stopwatch,
    trace,
    tracing_enabled,
    validate_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "Stopwatch",
    "TRACE_FORMAT_VERSION",
    "clock_ns",
    "configure_sampling",
    "counter",
    "disable_tracing",
    "enable_tracing",
    "flush_trace",
    "flush_trace_if_forked",
    "gauge",
    "histogram",
    "metrics_snapshot",
    "reset_metrics",
    "sample_every",
    "stopwatch",
    "trace",
    "tracing_enabled",
    "validate_trace",
]
