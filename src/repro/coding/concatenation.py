"""The concatenation scheme of Section 2.1 / Figure 3, as a compiler.

A level-``L`` bit is three level-``L−1`` bits; physically, a level-``L``
bit occupies ``9**L`` wires arranged as nine level-``L−1`` sub-blocks:
three *data* sub-blocks carrying the codeword and six *ancilla*
sub-blocks used (and re-initialised) by recovery at level ``L``.  The
bit blow-up ``S_L = 9**L`` of Section 2.3 is literally the size of this
layout.

The compiler lowers logical gates recursively, following the paper's
definition exactly:

* a gate at level 0 is a physical gate;
* a gate at level ``L`` applies the gate at level ``L−1`` transversally
  to the three data sub-block triples, then runs error recovery at
  level ``L`` on every operand block;
* recovery at level ``L`` re-initialises the six ancilla sub-blocks,
  then applies the Figure-2 pattern — three ``MAJ⁻¹`` then three
  ``MAJ`` — as *level-(L−1) gates* (each with its own recursive
  recovery).

With initialisation excluded from the census (the paper's ``E = 6``
convention) the compiled physical gate count of one level-``k`` gate is
exactly ``(3(1+E))**k = 21**k`` — the paper's ``Γ_k`` — which the test
suite checks by compiling and counting.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core import library
from repro.core.bits import Bits, majority
from repro.core.circuit import Circuit
from repro.core.gate import Gate
from repro.core.simulator import BatchedState
from repro.coding.repetition import THREE_BIT_CODE
from repro.errors import CodingError

#: Sub-block indices playing each role, mirroring Figure 2's wires.
_DATA_ROLES = (0, 1, 2)
_ANCILLA_ROLES = (3, 4, 5, 6, 7, 8)


@dataclass
class Block:
    """A level-``L`` coded bit on ``9**L`` contiguous physical wires.

    ``data_children`` / ``ancilla_children`` hold the indices of the
    nine sub-blocks currently playing each role; recovery rotates these
    roles (the footnote-3 rotation) without moving any physical bits.
    """

    level: int
    base: int
    children: tuple["Block", ...] = field(default_factory=tuple)
    data_children: list[int] = field(default_factory=lambda: list(_DATA_ROLES))
    ancilla_children: list[int] = field(default_factory=lambda: list(_ANCILLA_ROLES))

    def __post_init__(self) -> None:
        if self.level < 0:
            raise CodingError(f"block level must be >= 0, got {self.level}")
        if self.level > 0 and len(self.children) != 9:
            raise CodingError(
                f"level-{self.level} block needs 9 children, got "
                f"{len(self.children)}"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @staticmethod
    def allocate(level: int, base: int = 0) -> "Block":
        """Build a fresh block tree starting at physical wire ``base``."""
        if level == 0:
            return Block(level=0, base=base)
        child_size = 9 ** (level - 1)
        children = tuple(
            Block.allocate(level - 1, base + i * child_size) for i in range(9)
        )
        return Block(level=level, base=base, children=children)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of physical wires (``9**level``)."""
        return 9 ** self.level

    @property
    def wires(self) -> range:
        """The physical wire range occupied by this block."""
        return range(self.base, self.base + self.size)

    def data_blocks(self) -> list["Block"]:
        """Sub-blocks currently carrying the codeword."""
        if self.level == 0:
            raise CodingError("a level-0 block has no sub-blocks")
        return [self.children[i] for i in self.data_children]

    def ancilla_blocks(self) -> list["Block"]:
        """Sub-blocks currently serving as recovery ancillas."""
        if self.level == 0:
            raise CodingError("a level-0 block has no sub-blocks")
        return [self.children[i] for i in self.ancilla_children]

    def deep_data_wires(self) -> list[int]:
        """Physical wires carrying codeword bits, recursively."""
        if self.level == 0:
            return [self.base]
        wires: list[int] = []
        for child in self.data_blocks():
            wires.extend(child.deep_data_wires())
        return wires

    def advance_roles(self) -> None:
        """Rotate roles after a recovery at this block's level."""
        d0, d1, d2 = self.data_children
        a0, a1, a2, a3, a4, a5 = self.ancilla_children
        self.data_children = [d0, a0, a3]
        self.ancilla_children = [d1, d2, a1, a2, a4, a5]

    # ------------------------------------------------------------------
    # Logical value
    # ------------------------------------------------------------------

    def decode(self, state: Sequence[int]) -> int:
        """Recursive majority decoding of this block from a state."""
        if self.level == 0:
            return int(state[self.base])
        votes = tuple(child.decode(state) for child in self.data_blocks())
        return majority(votes)

    def decode_batch(self, states: BatchedState) -> np.ndarray:
        """Recursive majority decoding across a Monte-Carlo batch."""
        if self.level == 0:
            return states.column(self.base).astype(np.uint8)
        votes = np.stack(
            [child.decode_batch(states) for child in self.data_blocks()], axis=1
        )
        return (votes.sum(axis=1) * 2 > 3).astype(np.uint8)


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------


def _reset_block(circuit: Circuit, block: Block) -> None:
    """Re-initialise every wire of ``block`` using 3-bit reset ops."""
    wires = list(block.wires)
    if len(wires) % 3 == 0:
        for start in range(0, len(wires), 3):
            circuit.append_reset(*wires[start : start + 3])
    else:  # level-0 ancilla: a single wire
        circuit.append_reset(*wires)


def compile_recovery(circuit: Circuit, block: Block) -> None:
    """Emit one error-recovery cycle at ``block.level`` onto ``circuit``."""
    if block.level == 0:
        raise CodingError("recovery is defined for levels >= 1")
    ancillas = block.ancilla_blocks()
    if block.level == 1:
        # Figure 2 exactly: two 3-bit initialisation operations.
        anc_wires = [anc.base for anc in ancillas]
        circuit.append_reset(*anc_wires[0:3])
        circuit.append_reset(*anc_wires[3:6])
    else:
        for ancilla in ancillas:
            _reset_block(circuit, ancilla)
    data = block.data_blocks()
    # Encode: fan each data sub-block onto one ancilla from each group.
    for i in range(3):
        compile_gate(
            circuit, library.MAJ_INV, [data[i], ancillas[i], ancillas[i + 3]]
        )
    # Decode: block majorities into the first operand of each triple.
    decode_triples = (
        (data[0], data[1], data[2]),
        (ancillas[0], ancillas[1], ancillas[2]),
        (ancillas[3], ancillas[4], ancillas[5]),
    )
    for triple in decode_triples:
        compile_gate(circuit, library.MAJ, list(triple))
    block.advance_roles()


def compile_gate(
    circuit: Circuit,
    gate: Gate,
    operands: Sequence[Block],
    recover: bool = True,
) -> None:
    """Emit a logical ``gate`` on equal-level operand blocks.

    At level 0 this is a physical gate.  At level ``L`` the gate is
    applied transversally at level ``L−1`` and, when ``recover`` is
    true, each operand is recovered at level ``L`` — the paper's
    definition of a level-``L`` gate (Figure 3).
    """
    levels = {block.level for block in operands}
    if len(levels) != 1:
        raise CodingError(f"operand blocks must share a level, got {levels}")
    if gate.arity != len(operands):
        raise CodingError(
            f"gate {gate.name!r} has arity {gate.arity} but "
            f"{len(operands)} blocks were given"
        )
    level = levels.pop()
    if level == 0:
        circuit.append_gate(gate, *[block.base for block in operands])
        return
    data = [block.data_blocks() for block in operands]
    for i in range(3):
        compile_gate(circuit, gate, [d[i] for d in data])
    if recover:
        for block in operands:
            compile_recovery(circuit, block)


# ----------------------------------------------------------------------
# Whole computations
# ----------------------------------------------------------------------


class ConcatenatedComputation:
    """A fault-tolerant computation compiled at concatenation level L.

    Allocates ``n_logical`` level-``L`` blocks side by side and lowers
    each logical gate through :func:`compile_gate`.  The analogue of
    :class:`~repro.coding.logical.LogicalProcessor` for arbitrary level.
    """

    def __init__(self, n_logical: int, level: int, name: str = ""):
        if n_logical < 1:
            raise CodingError(f"need >= 1 logical bit, got {n_logical}")
        if level < 1:
            raise CodingError(f"concatenation level must be >= 1, got {level}")
        self.level = level
        block_size = 9 ** level
        self.blocks = [
            Block.allocate(level, base=i * block_size) for i in range(n_logical)
        ]
        self.circuit = Circuit(n_logical * block_size, name=name)

    @property
    def n_logical(self) -> int:
        """Number of logical bits."""
        return len(self.blocks)

    def apply(self, gate: Gate, *logical_bits: int, recover: bool = True) -> None:
        """Apply a logical gate (then recovery) at the top level."""
        if len(set(logical_bits)) != len(logical_bits):
            raise CodingError(f"logical operands must be distinct: {logical_bits}")
        operands = [self.blocks[bit] for bit in logical_bits]
        compile_gate(self.circuit, gate, operands, recover=recover)

    def recover(self, logical_bit: int) -> None:
        """Run top-level recovery on one logical bit."""
        compile_recovery(self.circuit, self.blocks[logical_bit])

    def physical_input(self, logical_bits: Sequence[int]) -> Bits:
        """Encode logical bits into a physical input vector.

        Deep data wires carry the bit; everything else starts at zero.
        Uses the blocks' *current* role maps, so call on a fresh
        computation (before any recovery has rotated roles).
        """
        if len(logical_bits) != self.n_logical:
            raise CodingError(
                f"expected {self.n_logical} logical bits, got {len(logical_bits)}"
            )
        state = [0] * self.circuit.n_wires
        for block, bit in zip(self.blocks, logical_bits):
            if bit not in (0, 1):
                raise CodingError(f"logical bit must be 0 or 1, got {bit!r}")
            for wire in block.deep_data_wires():
                state[wire] = bit
        return tuple(state)

    def decode_output(self, state: Sequence[int]) -> tuple[int, ...]:
        """Recursive majority decode of every logical bit."""
        return tuple(block.decode(state) for block in self.blocks)

    def decode_batch(self, states: BatchedState) -> np.ndarray:
        """Recursive majority decode across a Monte-Carlo batch."""
        return np.stack(
            [block.decode_batch(states) for block in self.blocks], axis=1
        )


def concatenated_gate_circuit(
    gate: Gate, level: int, recover: bool = True
) -> tuple[Circuit, list[Block]]:
    """One logical 3-bit gate at ``level``, fully compiled.

    Returns the circuit and the three operand blocks (whose role maps
    reflect the post-recovery state).
    """
    computation = ConcatenatedComputation(gate.arity, level)
    computation.apply(gate, *range(gate.arity), recover=recover)
    return computation.circuit, computation.blocks


def gamma_census(circuit: Circuit) -> dict[str, int]:
    """Physical op census of a compiled circuit: gates vs resets."""
    gates = circuit.gate_count(include_resets=False)
    resets = len(circuit) - gates
    return {"gates": gates, "resets": resets, "total": len(circuit)}
