"""The n-bit repetition code (the paper uses n = 3 throughout).

Logical zero is ``00...0`` and logical one is ``11...1``; decoding is a
majority vote.  The code is symmetric under bit permutations, which is
what lets the paper's recovery circuit rotate the logical bit line
without consequence (footnote 3).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.bits import Bits, hamming_distance, majority, validate_bits
from repro.errors import CodingError


@dataclass(frozen=True)
class RepetitionCode:
    """The length-``n`` repetition code for odd ``n``."""

    length: int = 3

    def __post_init__(self) -> None:
        if self.length < 1 or self.length % 2 == 0:
            raise CodingError(
                f"repetition length must be odd and >= 1, got {self.length}"
            )

    # ------------------------------------------------------------------
    # Code parameters
    # ------------------------------------------------------------------

    @property
    def distance(self) -> int:
        """Minimum distance between codewords (equals the length)."""
        return self.length

    @property
    def correctable_errors(self) -> int:
        """Largest number of bit flips guaranteed correctable."""
        return (self.length - 1) // 2

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------

    def encode(self, bit: int) -> Bits:
        """The codeword for a logical bit."""
        if bit not in (0, 1):
            raise CodingError(f"logical bit must be 0 or 1, got {bit!r}")
        return (bit,) * self.length

    def decode(self, word: Sequence[int]) -> int:
        """Majority-vote decoding of a (possibly corrupted) word."""
        self._check_length(word)
        return majority(tuple(word))

    def is_codeword(self, word: Sequence[int]) -> bool:
        """True when the word is an exact codeword."""
        self._check_length(word)
        return len(set(word)) == 1

    def errors_in(self, word: Sequence[int], logical: int) -> int:
        """Number of positions differing from the codeword for ``logical``."""
        self._check_length(word)
        return hamming_distance(word, self.encode(logical))

    def codewords(self) -> tuple[Bits, Bits]:
        """Both codewords (logical 0 first)."""
        return (self.encode(0), self.encode(1))

    def corrupt(self, word: Sequence[int], positions: Sequence[int]) -> Bits:
        """The word with the listed positions flipped."""
        self._check_length(word)
        validate_bits(word)
        position_set = set(positions)
        for position in position_set:
            if not 0 <= position < self.length:
                raise CodingError(f"corrupt position {position} out of range")
        return tuple(
            bit ^ 1 if index in position_set else bit
            for index, bit in enumerate(word)
        )

    def _check_length(self, word: Sequence[int]) -> None:
        if len(word) != self.length:
            raise CodingError(
                f"word length {len(word)} != code length {self.length}"
            )


#: The paper's code.
THREE_BIT_CODE = RepetitionCode(3)

#: Logical codewords of the 3-bit code, for convenience.
LOGICAL_ZERO: Bits = THREE_BIT_CODE.encode(0)
LOGICAL_ONE: Bits = THREE_BIT_CODE.encode(1)
