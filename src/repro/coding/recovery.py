"""The majority-multiplexing error-recovery circuit (Figure 2).

The circuit acts on nine wires: a 3-bit repetition codeword on the
*data* wires plus six freshly initialised *ancilla* wires.  It has two
phases:

* **encode** — three ``MAJ⁻¹`` gates fan each data bit out onto two
  zeroed ancillas (``MAJ⁻¹(b, 0, 0) = (b, b, b)``), arranged so each
  subsequent decode block holds one copy of every data bit;
* **decode** — three ``MAJ`` gates compute block majorities into the
  three *output* wires, which form the recovered codeword.

With the standard wire numbering (data ``0,1,2``, ancillas ``3..8``)
the encode triples are ``(0,3,6) (1,4,7) (2,5,8)``, the decode triples
are ``(0,1,2) (3,4,5) (6,7,8)``, and the outputs are ``0,3,6`` — the
recovered codeword lands on different wires than it entered, a uniform
rotation of the logical bit line the paper notes can be ignored
(footnote 3).  :class:`RecoveryLayout` tracks that rotation so recovery
cycles can be chained indefinitely.

Fault-tolerance, proved exhaustively in the test-suite:

* clean input, no faults → output equals input codeword;
* any single-bit input error, no faults → the error is corrected;
* clean input, any single internal fault (any operation replaced by an
  arbitrary pattern) → at most one bit of the output codeword is wrong.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.circuit import Circuit
from repro.errors import CodingError

#: Standard Figure-2 wire roles.
DATA_WIRES: tuple[int, int, int] = (0, 1, 2)
ANCILLA_WIRES: tuple[int, ...] = (3, 4, 5, 6, 7, 8)
OUTPUT_WIRES: tuple[int, int, int] = (0, 3, 6)
ENCODE_TRIPLES: tuple[tuple[int, int, int], ...] = ((0, 3, 6), (1, 4, 7), (2, 5, 8))
DECODE_TRIPLES: tuple[tuple[int, int, int], ...] = ((0, 1, 2), (3, 4, 5), (6, 7, 8))

#: Operation counts quoted in Section 2.2: E = 8 with initialisation
#: (two 3-bit resets + three MAJ⁻¹ + three MAJ) and E = 6 without.
RECOVERY_OPS_WITH_INIT = 8
RECOVERY_OPS_WITHOUT_INIT = 6


@dataclass(frozen=True)
class RecoveryLayout:
    """Wire roles for one codeword-plus-ancillas cell of nine wires.

    ``data`` holds the codeword; ``ancillas`` the six scratch wires.
    :meth:`advance` returns the roles after one recovery cycle.
    """

    data: tuple[int, int, int]
    ancillas: tuple[int, int, int, int, int, int]

    def __post_init__(self) -> None:
        wires = self.data + self.ancillas
        if len(set(wires)) != 9:
            raise CodingError(f"layout wires must be 9 distinct wires: {wires}")

    @staticmethod
    def standard(offset: int = 0) -> "RecoveryLayout":
        """The Figure-2 layout, optionally shifted by ``offset`` wires."""
        return RecoveryLayout(
            data=tuple(w + offset for w in DATA_WIRES),
            ancillas=tuple(w + offset for w in ANCILLA_WIRES),
        )

    @property
    def wires(self) -> tuple[int, ...]:
        """All nine wires of the cell, data first."""
        return self.data + self.ancillas

    def encode_triples(self) -> tuple[tuple[int, int, int], ...]:
        """MAJ⁻¹ operand triples: (data bit, one ancilla per group)."""
        d0, d1, d2 = self.data
        a0, a1, a2, a3, a4, a5 = self.ancillas
        return ((d0, a0, a3), (d1, a1, a4), (d2, a2, a5))

    def decode_triples(self) -> tuple[tuple[int, int, int], ...]:
        """MAJ operand triples: one copy of every data bit per block."""
        d0, d1, d2 = self.data
        a0, a1, a2, a3, a4, a5 = self.ancillas
        return ((d0, d1, d2), (a0, a1, a2), (a3, a4, a5))

    def reset_groups(self) -> tuple[tuple[int, int, int], ...]:
        """The two 3-bit initialisation groups."""
        a0, a1, a2, a3, a4, a5 = self.ancillas
        return ((a0, a1, a2), (a3, a4, a5))

    def output_wires(self) -> tuple[int, int, int]:
        """Wires holding the recovered codeword after the cycle."""
        d0, _, _ = self.data
        a0, _, _, a3, _, _ = self.ancillas
        return (d0, a0, a3)

    def advance(self) -> "RecoveryLayout":
        """Roles after one recovery cycle (the footnote-3 rotation)."""
        d0, d1, d2 = self.data
        a0, a1, a2, a3, a4, a5 = self.ancillas
        return RecoveryLayout(data=(d0, a0, a3), ancillas=(d1, d2, a1, a2, a4, a5))


def append_recovery(
    circuit: Circuit, layout: RecoveryLayout, include_resets: bool = True
) -> RecoveryLayout:
    """Append one recovery cycle for ``layout`` to ``circuit``.

    Returns the layout after the cycle.  ``include_resets=False`` omits
    the two initialisation operations (the paper's E = 6 accounting);
    callers are then responsible for the ancillas being clean.
    """
    if include_resets:
        for group in layout.reset_groups():
            circuit.append_reset(*group)
    for triple in layout.encode_triples():
        circuit.maj_inv(*triple)
    for triple in layout.decode_triples():
        circuit.maj(*triple)
    return layout.advance()


def recovery_circuit(include_resets: bool = True, name: str = "EL") -> Circuit:
    """The Figure-2 recovery circuit on the standard nine-wire layout.

    The recovered codeword lands on :data:`OUTPUT_WIRES`.
    """
    circuit = Circuit(9, name=name)
    append_recovery(circuit, RecoveryLayout.standard(), include_resets)
    return circuit


def repeated_recovery(
    cycles: int, include_resets: bool = True, name: str = "EL^n"
) -> tuple[Circuit, RecoveryLayout]:
    """``cycles`` chained recovery cycles on nine wires.

    Returns the circuit and the final layout (whose ``data`` wires hold
    the surviving codeword).
    """
    if cycles < 0:
        raise CodingError(f"cycle count must be >= 0, got {cycles}")
    circuit = Circuit(9, name=name)
    layout = RecoveryLayout.standard()
    for _ in range(cycles):
        layout = append_recovery(circuit, layout, include_resets)
    return circuit, layout


def recovery_op_count(include_resets: bool = True) -> int:
    """E, the number of operations in one recovery cycle (Section 2.2)."""
    return RECOVERY_OPS_WITH_INIT if include_resets else RECOVERY_OPS_WITHOUT_INIT


def operations_per_encoded_gate(include_resets: bool = True) -> int:
    """G = 3 + E, operations touching a codeword per logical gate cycle."""
    return 3 + recovery_op_count(include_resets)
