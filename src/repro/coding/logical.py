"""Level-1 fault-tolerant computation on repetition codewords.

Because the codewords of the repetition code are ``000`` and ``111``,
*any* reversible gate acts on logical values transversally: applying a
3-bit gate to the triple (bit i of codeword A, bit i of codeword B,
bit i of codeword C) for i = 0, 1, 2 applies the gate to the logical
values.  "After each gate operation, we apply our error-recovery
circuit" (Section 2) — :class:`LogicalProcessor` automates exactly
that schedule and is the building block of the fault-tolerant examples.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.bits import Bits
from repro.core.circuit import Circuit
from repro.core.gate import Gate
from repro.core.simulator import BatchedState
from repro.coding.recovery import RecoveryLayout, append_recovery
from repro.coding.repetition import THREE_BIT_CODE
from repro.errors import CodingError

import numpy as np

#: Wires occupied by one level-1 logical bit (codeword + ancillas).
WIRES_PER_LOGICAL_BIT = 9


def transversal_wire_triples(
    layouts: Sequence[RecoveryLayout],
) -> tuple[tuple[int, ...], ...]:
    """Wire tuples for a transversal gate across the given codewords.

    For operand codewords with data wires ``(a0,a1,a2)``, ``(b0,b1,b2)``,
    ... the i-th transversal application touches ``(ai, bi, ci, ...)``.
    """
    return tuple(
        tuple(layout.data[i] for layout in layouts) for i in range(3)
    )


def append_transversal_gate(
    circuit: Circuit, gate: Gate, layouts: Sequence[RecoveryLayout]
) -> None:
    """Append the three transversal applications of ``gate``."""
    if gate.arity != len(layouts):
        raise CodingError(
            f"gate {gate.name!r} has arity {gate.arity} but "
            f"{len(layouts)} codewords were given"
        )
    for wires in transversal_wire_triples(layouts):
        circuit.append_gate(gate, *wires)


class LogicalProcessor:
    """Builds a level-1 fault-tolerant circuit over ``n_logical`` bits.

    Each logical bit owns a nine-wire cell (3 data + 6 ancilla wires).
    :meth:`apply` emits a transversal logical gate followed by an
    error-recovery cycle on each operand codeword, per the paper's
    schedule.  The resulting :attr:`circuit` can be run noiselessly or
    handed to the Monte-Carlo engine.
    """

    def __init__(self, n_logical: int, include_resets: bool = True, name: str = ""):
        if n_logical < 1:
            raise CodingError(f"need >= 1 logical bit, got {n_logical}")
        self.n_logical = n_logical
        self.include_resets = include_resets
        self.circuit = Circuit(WIRES_PER_LOGICAL_BIT * n_logical, name=name)
        self.layouts: list[RecoveryLayout] = [
            RecoveryLayout.standard(offset=WIRES_PER_LOGICAL_BIT * index)
            for index in range(n_logical)
        ]
        self.logical_gates_applied = 0

    def __eq__(self, other: object) -> bool:
        """Value equality: same construction state, circuit, and layouts.

        Two processors compare equal when one could decode the other's
        output — the contract the JSON round-trip of
        :mod:`repro.runtime.serialization` relies on for
        ``RunSpec`` equality (specs embed a processor as their decode
        observable's decoder).
        """
        if not isinstance(other, LogicalProcessor):
            return NotImplemented
        return (
            self.n_logical == other.n_logical
            and self.include_resets == other.include_resets
            and self.logical_gates_applied == other.logical_gates_applied
            and self.layouts == other.layouts
            and self.circuit == other.circuit
        )

    def __hash__(self) -> int:
        # Only init-time immutable fields participate: layouts and the
        # circuit mutate as cycles append, and a hash that moved with
        # them would corrupt any set or frozen-dataclass hash (e.g.
        # DecodeObservable) holding the processor.  Collisions between
        # same-shape processors are fine; equality disambiguates.
        return hash((LogicalProcessor, self.n_logical, self.include_resets))

    # ------------------------------------------------------------------
    # Program construction
    # ------------------------------------------------------------------

    def apply(self, gate: Gate, *logical_bits: int, recover: bool = True) -> None:
        """Apply ``gate`` to logical bits transversally, then recover.

        ``recover=False`` skips the recovery cycles (useful for
        measuring the value of recovery in ablation experiments).
        """
        for bit in logical_bits:
            if not 0 <= bit < self.n_logical:
                raise CodingError(f"logical bit {bit} out of range")
        if len(set(logical_bits)) != len(logical_bits):
            raise CodingError(f"logical operands must be distinct: {logical_bits}")
        operands = [self.layouts[bit] for bit in logical_bits]
        append_transversal_gate(self.circuit, gate, operands)
        self.logical_gates_applied += 1
        if recover:
            for bit in logical_bits:
                self.recover(bit)

    def recover(self, logical_bit: int) -> None:
        """Append one recovery cycle on a single codeword."""
        self.layouts[logical_bit] = append_recovery(
            self.circuit, self.layouts[logical_bit], self.include_resets
        )

    def recover_all(self) -> None:
        """Append a recovery cycle on every codeword."""
        for bit in range(self.n_logical):
            self.recover(bit)

    # ------------------------------------------------------------------
    # Input/output helpers
    # ------------------------------------------------------------------

    def physical_input(self, logical_bits: Sequence[int]) -> Bits:
        """The physical input vector encoding the given logical bits.

        Data wires carry the codeword; ancillas start at zero.  Uses the
        *initial* layouts, so call before building or on a fresh
        processor's wire numbering.
        """
        if len(logical_bits) != self.n_logical:
            raise CodingError(
                f"expected {self.n_logical} logical bits, got {len(logical_bits)}"
            )
        state = [0] * self.circuit.n_wires
        for index, bit in enumerate(logical_bits):
            codeword = THREE_BIT_CODE.encode(bit)
            layout = RecoveryLayout.standard(offset=WIRES_PER_LOGICAL_BIT * index)
            for wire, value in zip(layout.data, codeword):
                state[wire] = value
        return tuple(state)

    def decode_output(self, state: Sequence[int]) -> tuple[int, ...]:
        """Majority-decode every codeword from a final physical state."""
        decoded = []
        for layout in self.layouts:
            word = tuple(state[w] for w in layout.data)
            decoded.append(THREE_BIT_CODE.decode(word))
        return tuple(decoded)

    def decode_batch(self, states: BatchedState) -> np.ndarray:
        """Majority-decode every codeword across a Monte-Carlo batch.

        Returns an array of shape ``(trials, n_logical)``.
        """
        columns = [states.majority_of(layout.data) for layout in self.layouts]
        return np.stack(columns, axis=1)

    def decode_failure_plane(
        self, states, expected_logical: Sequence[int]
    ) -> np.ndarray:
        """Packed per-trial decode-failure plane of a bit-plane batch.

        Bit ``t`` of the returned ``(n_words,)`` uint64 plane is set
        when trial ``t``'s majority-decoded logical word differs from
        ``expected_logical`` anywhere (padding bits beyond the batch's
        trial count are unspecified).  Each codeword's majority plane is
        XORed against its expected bit and ORed into the failure plane,
        so no per-trial array is ever unpacked.  This is the packed
        decode the runtime layer evaluates once across a whole stacked
        point batch.
        """
        if len(expected_logical) != self.n_logical:
            raise CodingError(
                f"expected {self.n_logical} logical bits, "
                f"got {len(expected_logical)}"
            )
        from repro.core.compiled import ALL_ONES

        failed = None
        for layout, bit in zip(self.layouts, expected_logical):
            plane = states.majority_plane(layout.data)
            if bit:
                plane = plane ^ ALL_ONES
            failed = plane if failed is None else failed | plane
        return failed

    def count_decode_failures(
        self, states, expected_logical: Sequence[int]
    ) -> int:
        """Trials whose decoded logical word differs from ``expected_logical``.

        Equivalent to decoding the batch and counting rows that
        mismatch, but a bit-plane batch goes through
        :meth:`decode_failure_plane`, so the comparison stays packed.
        This is the hot path of the threshold pipeline.
        """
        from repro.core.bitplane import BitplaneState

        if isinstance(states, BitplaneState):
            return states.count_ones(
                self.decode_failure_plane(states, expected_logical)
            )
        if len(expected_logical) != self.n_logical:
            raise CodingError(
                f"expected {self.n_logical} logical bits, "
                f"got {len(expected_logical)}"
            )
        decoded = self.decode_batch(states)
        expected = np.asarray(expected_logical, dtype=np.uint8)
        return int((decoded != expected).any(axis=1).sum())
