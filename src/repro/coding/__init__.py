"""Repetition coding, majority-multiplexing recovery, concatenation."""

from repro.coding.concatenation import (
    Block,
    ConcatenatedComputation,
    compile_gate,
    compile_recovery,
    concatenated_gate_circuit,
    gamma_census,
)
from repro.coding.logical import (
    LogicalProcessor,
    WIRES_PER_LOGICAL_BIT,
    append_transversal_gate,
    transversal_wire_triples,
)
from repro.coding.recovery import (
    ANCILLA_WIRES,
    DATA_WIRES,
    DECODE_TRIPLES,
    ENCODE_TRIPLES,
    OUTPUT_WIRES,
    RECOVERY_OPS_WITH_INIT,
    RECOVERY_OPS_WITHOUT_INIT,
    RecoveryLayout,
    append_recovery,
    operations_per_encoded_gate,
    recovery_circuit,
    recovery_op_count,
    repeated_recovery,
)
from repro.coding.repetition import (
    LOGICAL_ONE,
    LOGICAL_ZERO,
    RepetitionCode,
    THREE_BIT_CODE,
)

__all__ = [
    "Block",
    "ConcatenatedComputation",
    "compile_gate",
    "compile_recovery",
    "concatenated_gate_circuit",
    "gamma_census",
    "LogicalProcessor",
    "WIRES_PER_LOGICAL_BIT",
    "append_transversal_gate",
    "transversal_wire_triples",
    "ANCILLA_WIRES",
    "DATA_WIRES",
    "DECODE_TRIPLES",
    "ENCODE_TRIPLES",
    "OUTPUT_WIRES",
    "RECOVERY_OPS_WITH_INIT",
    "RECOVERY_OPS_WITHOUT_INIT",
    "RecoveryLayout",
    "append_recovery",
    "operations_per_encoded_gate",
    "recovery_circuit",
    "recovery_op_count",
    "repeated_recovery",
    "LOGICAL_ONE",
    "LOGICAL_ZERO",
    "RepetitionCode",
    "THREE_BIT_CODE",
]
