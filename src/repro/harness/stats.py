"""Statistics for Monte-Carlo failure-rate estimation."""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, sqrt

from repro.errors import AnalysisError


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion.

    Behaves sensibly at 0 and ``trials`` successes, unlike the normal
    approximation, which matters for the very low logical error rates
    this library estimates.
    """
    if trials <= 0:
        raise AnalysisError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise AnalysisError(
            f"successes ({successes}) must be within [0, trials={trials}]"
        )
    p_hat = successes / trials
    denominator = 1.0 + z**2 / trials
    centre = (p_hat + z**2 / (2 * trials)) / denominator
    margin = (
        z
        * sqrt(p_hat * (1.0 - p_hat) / trials + z**2 / (4.0 * trials**2))
        / denominator
    )
    # At the boundaries the analytic endpoints are exactly 0 and 1;
    # computing them through the general formula leaves float dust.
    lower = 0.0 if successes == 0 else max(0.0, centre - margin)
    upper = 1.0 if successes == trials else min(1.0, centre + margin)
    return (lower, upper)


@dataclass(frozen=True)
class RateEstimate:
    """A failure-rate estimate with its Wilson interval.

    Construction validates the counts (consistent with
    :func:`wilson_interval`), so a zero-trial or out-of-range estimate
    fails loudly as an :class:`~repro.errors.AnalysisError` instead of
    surfacing later as a bare ``ZeroDivisionError`` from :attr:`rate`.
    """

    failures: int
    trials: int
    z: float = 1.96

    def __post_init__(self) -> None:
        if self.trials <= 0:
            raise AnalysisError(f"trials must be positive, got {self.trials}")
        if not 0 <= self.failures <= self.trials:
            raise AnalysisError(
                f"failures ({self.failures}) must be within "
                f"[0, trials={self.trials}]"
            )

    @property
    def rate(self) -> float:
        """The point estimate."""
        return self.failures / self.trials

    @property
    def interval(self) -> tuple[float, float]:
        """The Wilson confidence interval."""
        return wilson_interval(self.failures, self.trials, self.z)

    def compatible_with(self, value: float) -> bool:
        """True when ``value`` lies inside the confidence interval."""
        low, high = self.interval
        return low <= value <= high

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        low, high = self.interval
        return f"{self.rate:.3g} [{low:.3g}, {high:.3g}] ({self.trials} trials)"


def required_trials(
    probability: float, relative_error: float = 0.1, z: float = 1.96
) -> int:
    """Trials needed to estimate ``probability`` to a relative error.

    Uses the binomial variance: ``n = z^2 (1-p) / (p rel^2)``.
    """
    if not 0.0 < probability < 1.0:
        raise AnalysisError(
            f"probability must be in (0, 1), got {probability}"
        )
    if relative_error <= 0:
        raise AnalysisError(
            f"relative error must be positive, got {relative_error}"
        )
    return ceil(z**2 * (1.0 - probability) / (probability * relative_error**2))
