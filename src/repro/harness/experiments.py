"""The experiment registry: every table, figure, and numeric claim.

Each experiment reproduces one artefact of the paper and returns
``(quantity, paper value, measured value, match)`` rows.  The bench
suite runs these functions and prints the comparisons; EXPERIMENTS.md
is the curated record of their output.

Monte-Carlo experiments hydrate one
:class:`~repro.runtime.ExecutionPolicy` from the environment
(:meth:`~repro.runtime.ExecutionPolicy.from_env` — ``REPRO_TRIALS``
for the budget, ``REPRO_ENGINE`` for the engine, ``REPRO_PARALLEL``
for the pool, ``REPRO_FUSE``/``REPRO_COMPILE_CACHE`` for the
compiler), so CI-speed and high-precision runs use the same code.  The
default budget (100000) assumes the bit-parallel engine.  One
exception to the budget: fig2's g^2-scaling row floors its trials at
30000 regardless of ``REPRO_TRIALS``, because it divides two small
failure counts and is meaningless below that.

Independent Monte-Carlo points (fig2's two error rates, fig3's two
concatenation levels, mc-threshold's bracket) are expressed as
:class:`~repro.runtime.RunSpec` batches through
:class:`~repro.runtime.Executor`: points sharing a circuit (fig2)
evaluate in one stacked plane array, and distinct circuits (fig3's two
levels) fan out to a process pool when ``REPRO_PARALLEL`` is set to a
worker count (or ``max``).  Every point carries its own frozen seed
and each point's numbers are independent of how it was batched or
scheduled, so parallel runs produce exactly the serial numbers.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from math import isclose, log2

import numpy as np

from repro.analysis import (
    KAPPA,
    PAPER_SCHEMES,
    PAPER_TABLE_2,
    entropy_lower_bound,
    entropy_upper_bound,
    gate_blowup,
    gate_overhead_exponent,
    bit_overhead_exponent,
    max_level_for_constant_entropy,
    min_nand_cost,
    plan_module,
    search_all_gates,
    single_gate_entropy,
    table2_rows,
    threshold,
    threshold_denominator,
)
from repro.analysis.entropy import empirical_entropy_from_columns
from repro.baselines import critical_epsilon, module_error, simulate_unprotected
from repro.coding import (
    OUTPUT_WIRES,
    RecoveryLayout,
    THREE_BIT_CODE,
    concatenated_gate_circuit,
    gamma_census,
    recovery_circuit,
)
from repro.coding.concatenation import ConcatenatedComputation
from repro.coding.logical import LogicalProcessor
from repro.core import (
    CNOT,
    MAJ,
    MAJ_INV,
    PAPER_TABLE_1,
    SWAP3_DOWN,
    SWAP3_UP,
    TOFFOLI,
    Circuit,
    circuit_gate,
    run,
)
from repro.core import library
from repro.core.bits import majority, parse_bits
from repro.local import (
    ONE_D_DATA_POSITIONS,
    circuit_is_local,
    interleave_1d_schedule,
    one_d_cycle_operation_count,
    one_d_lattice,
    one_d_recovery_circuit,
    one_d_routing_ops,
    packed_census,
    parallel_2d_schedule,
    perpendicular_2d_schedule,
    two_d_lattice,
    two_d_recovery_circuit,
)
from repro.noise import (
    NoiseModel,
    NoisyRunner,
    iter_single_faults,
    run_with_faults,
)
from repro.harness.stats import wilson_interval
from repro.harness.threshold_finder import (
    cycle_stage_spec,
    find_pseudo_threshold_adaptive,
    measure_cycle_errors,
)
from repro.runtime import (
    DecodeObservable,
    DecodedMismatchObservable,
    ExecutionPolicy,
    Executor,
    RunSpec,
)
from repro.synth import IdentityDatabase, inflate, optimize_report
from repro.errors import ReproError

Row = tuple[str, object, object, bool]


# Module-level spec builders and evaluators (process-pool workers must
# be able to pickle everything a spec carries).


def _concatenation_spec(level: int, trials: int, gate_error: float) -> RunSpec:
    """Spec for the decoded failure of one noisy level-``level`` MAJ gate."""
    computation = ConcatenatedComputation(3, level)
    physical = computation.physical_input((1, 0, 1))
    computation.apply(MAJ, 0, 1, 2)
    expected = tuple(MAJ.apply((1, 0, 1)))
    return RunSpec(
        circuit=computation.circuit,
        input_bits=physical,
        observable=DecodedMismatchObservable(computation, expected),
        noise=NoiseModel(gate_error=gate_error),
        trials=trials,
        seed=21 + level,
    )


def execution_policy() -> ExecutionPolicy:
    """The experiments' execution policy, hydrated from ``REPRO_*``."""
    return ExecutionPolicy.from_env()


def trial_budget(default: int = 100000) -> int:
    """Monte-Carlo trial count, overridable via ``REPRO_TRIALS``."""
    return ExecutionPolicy.from_env(trials=default).trials


def engine_choice(default: str = "auto") -> str:
    """Monte-Carlo engine, overridable via ``REPRO_ENGINE``."""
    return ExecutionPolicy.from_env(engine=default).engine


@dataclass
class ExperimentResult:
    """Outcome of one registered experiment."""

    experiment_id: str
    paper_ref: str
    rows: list[Row]
    notes: str = ""

    @property
    def all_match(self) -> bool:
        """True when every comparison row matched."""
        return all(row[3] for row in self.rows)


@dataclass(frozen=True)
class Experiment:
    """A registered reproduction target."""

    experiment_id: str
    paper_ref: str
    description: str
    function: Callable[[], ExperimentResult]


REGISTRY: dict[str, Experiment] = {}


def register(
    experiment_id: str, paper_ref: str, description: str
) -> Callable[[Callable[[], ExperimentResult]], Callable[[], ExperimentResult]]:
    """Decorator adding an experiment function to the registry."""

    def decorator(function: Callable[[], ExperimentResult]):
        if experiment_id in REGISTRY:
            raise ReproError(f"duplicate experiment id {experiment_id!r}")
        REGISTRY[experiment_id] = Experiment(
            experiment_id=experiment_id,
            paper_ref=paper_ref,
            description=description,
            function=function,
        )
        return function

    return decorator


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one registered experiment by id."""
    try:
        experiment = REGISTRY[experiment_id]
    except KeyError:
        raise ReproError(
            f"unknown experiment {experiment_id!r}; known: {sorted(REGISTRY)}"
        ) from None
    return experiment.function()


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------


@register("table1", "Table 1", "Truth table of the reversible MAJ gate")
def experiment_table1() -> ExperimentResult:
    rows: list[Row] = []
    for (paper_in, paper_out), (impl_in, impl_out) in zip(
        PAPER_TABLE_1, MAJ.truth_table_rows()
    ):
        rows.append(
            (
                f"MAJ({paper_in})",
                paper_out,
                impl_out,
                paper_in == impl_in and paper_out == impl_out,
            )
        )
    majority_ok = all(
        int(out[0]) == majority(parse_bits(inp)) for inp, out in MAJ.truth_table_rows()
    )
    rows.append(("first output bit is the majority", True, majority_ok, majority_ok))
    bijective = MAJ.permutation.inverse().compose(MAJ.permutation).is_identity()
    rows.append(("each input has a unique output", True, bijective, bijective))
    return ExperimentResult("table1", "Table 1", rows)


# ----------------------------------------------------------------------
# Table 2
# ----------------------------------------------------------------------


@register(
    "table2",
    "Table 2",
    "Mixed 2D/1D concatenation thresholds rho(k)/rho_2",
)
def experiment_table2() -> ExperimentResult:
    rows: list[Row] = []
    for computed, (k, width, paper_ratio) in zip(table2_rows(), PAPER_TABLE_2):
        width_ok = computed.width == width
        ratio_ok = abs(computed.threshold_ratio - paper_ratio) < 0.005
        rows.append((f"width(k={k})", width, computed.width, width_ok))
        rows.append(
            (
                f"rho(k={k})/rho_2",
                paper_ratio,
                round(computed.threshold_ratio, 4),
                ratio_ok,
            )
        )
    ratio_27 = table2_rows()[3].threshold_ratio
    claim = abs((1 - ratio_27) - 0.23) < 0.01
    rows.append(("27-bit strip is 23% below 2D", 0.23, round(1 - ratio_27, 4), claim))
    return ExperimentResult(
        "table2",
        "Table 2",
        rows,
        notes="Ratios follow from the no-initialisation thresholds 1/2109 and 1/273.",
    )


# ----------------------------------------------------------------------
# Figures
# ----------------------------------------------------------------------


@register("fig1", "Figure 1", "MAJ built from two CNOTs and a Toffoli")
def experiment_fig1() -> ExperimentResult:
    construction = Circuit(3, name="fig1").cnot(0, 1).cnot(0, 2).toffoli(1, 2, 0)
    built = circuit_gate(construction, "fig1")
    match = built.same_action(MAJ)
    rows: list[Row] = [
        ("CNOT·CNOT·Toffoli equals MAJ", True, match, match),
        ("construction gate count", 3, len(construction), len(construction) == 3),
    ]
    return ExperimentResult("fig1", "Figure 1", rows)


@register(
    "fig2",
    "Figure 2",
    "Nine-bit recovery circuit: exhaustive fault tolerance + g^2 scaling",
)
def experiment_fig2() -> ExperimentResult:
    circuit = recovery_circuit()
    rows: list[Row] = []

    corrected = True
    for logical in (0, 1):
        codeword = THREE_BIT_CODE.encode(logical)
        for error_position in (None, 0, 1, 2):
            word = list(codeword)
            if error_position is not None:
                word[error_position] ^= 1
            output = run(circuit, tuple(word) + (0,) * 6)
            recovered = tuple(output[w] for w in OUTPUT_WIRES)
            corrected &= recovered == codeword
    rows.append(("corrects every single-bit input error", True, corrected, corrected))

    worst = 0
    for logical in (0, 1):
        codeword = THREE_BIT_CODE.encode(logical)
        for fault in iter_single_faults(circuit):
            output = run_with_faults(circuit, codeword + (0,) * 6, [fault])
            recovered = tuple(output[w] for w in OUTPUT_WIRES)
            worst = max(worst, sum(a != b for a, b in zip(recovered, codeword)))
    rows.append(("worst output errors under any single fault", "<= 1", worst, worst <= 1))

    ops = len(circuit)
    rows.append(("operations incl. initialisation (E)", 8, ops, ops == 8))

    # The g^2-scaling row divides two small failure counts, so it needs
    # a floor on the trial budget to be statistically meaningful; the
    # bit-parallel engine makes 30k trials cheap enough to always afford.
    trials = max(trial_budget(), 30000)
    g_small, g_large = 2.5e-3, 5e-3
    # Both points share the cycle circuit, so the executor runs them as
    # one stacked plane array; each point keeps its frozen seed.
    scaling = measure_cycle_errors(
        ((g_small, 11), (g_large, 12)), trials, policy=execution_policy()
    )
    (error_small, _), (error_large, _) = scaling
    ratio = error_large / error_small if error_small > 0 else float("inf")
    quadratic = 2.0 <= ratio <= 8.0
    rows.append(
        (
            "logical error scales ~ g^2 (ratio for 2x g)",
            4.0,
            round(ratio, 2),
            quadratic,
        )
    )
    return ExperimentResult("fig2", "Figure 2", rows)


@register(
    "fig3",
    "Figure 3",
    "Concatenation: compiled gate census and error suppression by level",
)
def experiment_fig3() -> ExperimentResult:
    rows: list[Row] = []
    for level, expected in ((1, 21), (2, 441)):
        circuit, _ = concatenated_gate_circuit(MAJ, level)
        gates = gamma_census(circuit)["gates"]
        rows.append(
            (
                f"Gamma_{level} = (3(1+E))^{level}, E = 6",
                expected,
                gates,
                gates == expected,
            )
        )

    # Like fig2's scaling row, the strict level-2 < level-1 comparison
    # divides small failure counts and needs a trial floor to observe
    # any level-1 failures at all.
    trials = min(max(trial_budget(), 30000), 100000)
    gate_error = 4e-3
    # Two distinct circuits -> two executor groups; REPRO_PARALLEL fans
    # the groups out to a process pool.
    results = Executor(execution_policy()).run(
        [_concatenation_spec(level, trials, gate_error) for level in (1, 2)]
    )
    failures = {
        level: result.failure_fraction
        for level, result in zip((1, 2), results)
    }
    suppressed = failures[2] < failures[1]
    rows.append(
        (
            f"level-2 error < level-1 error at g={gate_error}",
            True,
            f"{failures[1]:.2e} -> {failures[2]:.2e}",
            suppressed,
        )
    )
    return ExperimentResult("fig3", "Figure 3", rows)


@register(
    "fig4",
    "Figure 4",
    "2D tile layout: recovery locality and interleave direction costs",
)
def experiment_fig4() -> ExperimentResult:
    rows: list[Row] = []
    circuit, _ = two_d_recovery_circuit(cycles=4)
    local = circuit_is_local(circuit, two_d_lattice())
    rows.append(("recovery local on the 3x3 tile (4 cycles)", True, local, local))
    ops_per_cycle = len(two_d_recovery_circuit(cycles=1)[0])
    rows.append(
        ("recovery ops per cycle (no routing needed)", 8, ops_per_cycle, ops_per_cycle == 8)
    )
    _, parallel = parallel_2d_schedule()
    rows.append(
        ("parallel interleave SWAPs", 9, parallel.total_swaps, parallel.total_swaps == 9)
    )
    _, perpendicular = perpendicular_2d_schedule()
    rows.append(
        (
            "perpendicular interleave SWAPs",
            12,
            perpendicular.total_swaps,
            perpendicular.total_swaps == 12,
        )
    )
    worst = max(parallel.max_swaps_per_codeword, perpendicular.max_swaps_per_codeword)
    rows.append(("max SWAPs on one logical bit", "<= 6", worst, worst <= 6))
    swap3 = max(parallel.max_swap3_per_codeword, perpendicular.max_swap3_per_codeword)
    rows.append(("SWAP3 per codeword after fusion", 3, swap3, swap3 == 3))
    return ExperimentResult("fig4", "Figure 4", rows)


@register("fig5", "Figure 5", "SWAP3 is two SWAPs on three adjacent bits")
def experiment_fig5() -> ExperimentResult:
    two_swaps = Circuit(3).swap(1, 2).swap(0, 1)
    as_gate = circuit_gate(two_swaps, "two-swaps")
    up_match = as_gate.same_action(SWAP3_UP)
    rows: list[Row] = [
        ("swap(1,2) then swap(0,1) = SWAP3_UP", True, up_match, up_match)
    ]
    other = Circuit(3).swap(0, 1).swap(1, 2)
    down_match = circuit_gate(other, "two-swaps-down").same_action(SWAP3_DOWN)
    rows.append(("swap(0,1) then swap(1,2) = SWAP3_DOWN", True, down_match, down_match))
    inverse = SWAP3_UP.inverse().same_action(SWAP3_DOWN)
    rows.append(("the two rotations are mutually inverse", True, inverse, inverse))
    return ExperimentResult("fig5", "Figure 5", rows)


@register(
    "fig6",
    "Figure 6",
    "1D interleaving of three linearly adjacent codewords",
)
def experiment_fig6() -> ExperimentResult:
    _, report = interleave_1d_schedule()
    rows: list[Row] = [
        ("total SWAPs", 45, report.total_swaps, report.total_swaps == 45),
        (
            "max SWAPs acting on a single codeword",
            24,
            report.max_swaps_per_codeword,
            report.max_swaps_per_codeword == 24,
        ),
        (
            "SWAP3 per codeword",
            12,
            report.max_swap3_per_codeword,
            report.max_swap3_per_codeword == 12,
        ),
    ]
    for include_init, expected in ((True, 40), (False, 38)):
        count = one_d_cycle_operation_count(include_init)
        label = "with" if include_init else "without"
        rows.append(
            (f"full 1D cycle ops per codeword ({label} init)", expected, count, count == expected)
        )
    return ExperimentResult("fig6", "Figure 6", rows)


@register(
    "fig7",
    "Figure 7",
    "Fully 1D recovery circuit: locality, fault tolerance, census",
)
def experiment_fig7() -> ExperimentResult:
    rows: list[Row] = []
    circuit = one_d_recovery_circuit(cycles=3)
    local = circuit_is_local(circuit, one_d_lattice())
    rows.append(("recovery local on the 9-site line (3 cycles)", True, local, local))

    routing = packed_census(one_d_routing_ops())
    swap3 = routing.get("SWAP3_UP", 0) + routing.get("SWAP3_DOWN", 0)
    rows.append(("routing SWAP3 gates", 4, swap3, swap3 == 4))
    rows.append(("routing plain SWAPs", 1, routing.get("SWAP", 0), routing.get("SWAP", 0) == 1))

    single = one_d_recovery_circuit(cycles=1)
    gate_ops = single.gate_count(include_resets=False)
    rows.append(("recovery gates excluding initialisation", 11, gate_ops, gate_ops == 11))

    def embed(word):
        state = [0] * 9
        for position, bit in zip(ONE_D_DATA_POSITIONS, word):
            state[position] = bit
        return tuple(state)

    corrected = True
    for logical in (0, 1):
        codeword = THREE_BIT_CODE.encode(logical)
        for error_position in (None, 0, 1, 2):
            word = list(codeword)
            if error_position is not None:
                word[error_position] ^= 1
            output = run(single, embed(word))
            corrected &= (
                tuple(output[p] for p in ONE_D_DATA_POSITIONS) == codeword
            )
    rows.append(("corrects every single-bit input error", True, corrected, corrected))

    worst = 0
    for logical in (0, 1):
        codeword = THREE_BIT_CODE.encode(logical)
        for fault in iter_single_faults(single):
            output = run_with_faults(single, embed(codeword), [fault])
            recovered = tuple(output[p] for p in ONE_D_DATA_POSITIONS)
            worst = max(worst, sum(a != b for a, b in zip(recovered, codeword)))
    rows.append(("worst output errors under any single fault", "<= 1", worst, worst <= 1))
    return ExperimentResult(
        "fig7",
        "Figure 7",
        rows,
        notes=(
            "The physically local circuit initialises the three ancilla "
            "pairs with three 2-bit resets; the paper books the same six "
            "bit-initialisations as two 3-bit operations."
        ),
    )


# ----------------------------------------------------------------------
# Text claims
# ----------------------------------------------------------------------


@register(
    "thresholds",
    "Sections 2.2, 3.1, 3.2",
    "All six reported thresholds rho = 1/(3 C(G,2))",
)
def experiment_thresholds() -> ExperimentResult:
    rows: list[Row] = []
    for scheme in PAPER_SCHEMES.values():
        denominator = threshold_denominator(scheme.operation_count)
        rows.append(
            (
                f"1/rho for {scheme.name} (G={scheme.operation_count})",
                scheme.paper_denominator,
                denominator,
                denominator == scheme.paper_denominator,
            )
        )
    ratio = threshold(38) / threshold(14)
    rows.append(
        (
            "1D threshold ~ order of magnitude below 2D",
            "~0.1",
            round(ratio, 3),
            0.05 < ratio < 0.2,
        )
    )
    return ExperimentResult("thresholds", "Sections 2.2/3.1/3.2", rows)


@register(
    "blowup",
    "Section 2.3",
    "Worked overhead example and poly-log exponents",
)
def experiment_blowup() -> ExperimentResult:
    rows: list[Row] = []
    rho = threshold(9)
    report = plan_module(rho / 10.0, 9, 10**6)
    rows.append(("required level L (g=rho/10, T=10^6)", 2, report.level, report.level == 2))
    rows.append(("gate replacement factor", 441, report.gate_factor, report.gate_factor == 441))
    rows.append(("bit replacement factor", 81, report.bit_factor, report.bit_factor == 81))

    exponent = gate_overhead_exponent(11)
    rows.append(
        (
            "gate overhead exponent log2(3(G-2)), G=11",
            4.75,
            round(exponent, 3),
            abs(exponent - 4.75) < 0.01,
        )
    )
    bits = bit_overhead_exponent()
    rows.append(
        ("bit overhead exponent log2 9", 3.17, round(bits, 3), abs(bits - 3.17) < 0.01)
    )

    # O(T log^4.75 T): the per-gate factor at the minimal level is
    # bounded by a constant times (log2(T rho)/log2(rho/g))^4.755.
    bounded = True
    g = threshold(11) / 10.0
    for module_gates in (10**4, 10**6, 10**9, 10**12):
        plan = plan_module(g, 11, module_gates)
        x = log2(module_gates * threshold(11)) / log2(threshold(11) / g)
        bounded &= plan.gate_factor <= (2 * x) ** 4.755
    rows.append(("Gamma_L = O((log T)^4.75) for G=11", True, bounded, bounded))
    return ExperimentResult("blowup", "Section 2.3", rows)


@register(
    "entropy",
    "Section 4",
    "Entropy dissipation bounds and the measured ancilla entropy",
)
def experiment_entropy() -> ExperimentResult:
    rows: list[Row] = []
    rows.append(("kappa", 4.327, round(KAPPA, 4), abs(KAPPA - 4.327) < 5e-4))
    level_limit = max_level_for_constant_entropy(1e-2, 11)
    rows.append(
        (
            "max level for O(1) entropy (g=1e-2, E=11)",
            2.3,
            round(level_limit, 2),
            abs(level_limit - 2.3) < 0.05,
        )
    )

    g = 1e-2
    ordered = True
    for level in (1, 2, 3):
        lower = entropy_lower_bound(g, 11, level)
        upper = entropy_upper_bound(g, 3 * 11, level)
        ordered &= lower <= upper
    rows.append(("lower bound <= upper bound (L=1..3)", True, ordered, ordered))

    # Measured: entropy of the six discarded wires after one recovery
    # cycle, which the next cycle's resets must erase.
    trials = trial_budget()
    layout = RecoveryLayout.standard()
    circuit = recovery_circuit()
    runner = NoisyRunner(NoiseModel(gate_error=g), seed=31, engine=engine_choice())
    result = runner.run_from_input(circuit, (1, 1, 1) + (0,) * 6, trials)
    discarded_wires = [w for w in range(9) if w not in layout.advance().data]
    measured = empirical_entropy_from_columns(result.states.columns(discarded_wires))
    lower = g  # H_1 >= H(g/2) >= g for one noisy operation
    upper = 8 * single_gate_entropy(g)  # G-tilde = E = 8 operations
    within = lower <= measured <= upper
    rows.append(
        (
            f"measured discarded entropy at g={g} within bounds",
            f"[{lower:.3g}, {upper:.3g}]",
            round(measured, 4),
            within,
        )
    )
    return ExperimentResult("entropy", "Section 4", rows)


@register(
    "nand-cost",
    "Section 4, footnote 4",
    "3/2 bits is the optimal NAND entropy cost; MAJ^-1 achieves it",
)
def experiment_nand_cost() -> ExperimentResult:
    rows: list[Row] = []
    maj_inv_cost = min_nand_cost(MAJ_INV)
    rows.append(("MAJ^-1 NAND cost (bits)", 1.5, maj_inv_cost, maj_inv_cost == 1.5))
    toffoli_cost = min_nand_cost(TOFFOLI)
    rows.append(("Toffoli NAND cost (bits)", 2.0, toffoli_cost, toffoli_cost == 2.0))
    result = search_all_gates()
    rows.append(
        (
            "optimum over all 40320 reversible 3-bit gates",
            1.5,
            result.minimum_entropy,
            isclose(result.minimum_entropy, 1.5),
        )
    )
    rows.append(
        (
            "gates searched",
            40320,
            result.total_gates_searched,
            result.total_gates_searched == 40320,
        )
    )
    return ExperimentResult(
        "nand-cost",
        "Section 4 footnote 4",
        rows,
        notes=(
            "The body text attributes <= 3/2 bits to 'a Toffoli gate'; the "
            "footnote's precise claim — 3/2 optimal, achieved by MAJ^-1 — "
            "is what holds (plain Toffoli costs 2 bits)."
        ),
    )


@register(
    "baseline",
    "Sections 1-2 (framing)",
    "Irreversible NAND multiplexing threshold vs the reversible schemes",
)
def experiment_baseline() -> ExperimentResult:
    rows: list[Row] = []
    epsilon = critical_epsilon()
    same_order = 0.05 <= epsilon <= 0.15
    rows.append(
        (
            "NAND multiplexing threshold (paper: 'about 11%')",
            0.11,
            round(epsilon, 4),
            same_order,
        )
    )
    advantage = epsilon / threshold(9)
    rows.append(
        (
            "irreversible threshold / reversible G=9 threshold",
            ">= 5x",
            round(advantage, 1),
            advantage >= 5,
        )
    )

    trials = trial_budget()
    g, module_gates = 1e-3, 500
    measured = simulate_unprotected(
        g, module_gates, trials, seed=41, engine=engine_choice()
    )
    predicted = module_error(g, module_gates)
    close = abs(measured - predicted) < 0.15 * predicted + 0.01
    rows.append(
        (
            f"unprotected module error (g={g}, T={module_gates})",
            round(predicted, 4),
            round(measured, 4),
            close,
        )
    )
    return ExperimentResult(
        "baseline",
        "Sections 1-2",
        rows,
        notes=(
            "The deterministic bundle-fraction limit of our multiplexing "
            "model degrades at ~0.14; the paper quotes 'about 11%'. Both "
            "sit 1-2 orders of magnitude above the reversible thresholds, "
            "which is the comparison the paper draws. The unprotected "
            "Monte-Carlo rate sits slightly below 1-(1-g)^T because a "
            "randomising fault can be silent or cancel."
        ),
    )


@register(
    "mc-threshold",
    "Section 2.2 (validation)",
    "Monte-Carlo pseudo-threshold is above the analytic bound 1/108",
)
def experiment_mc_threshold() -> ExperimentResult:
    trials = min(trial_budget(), 100000)
    # The search runs as stacked rounds on the runtime layer: bracket
    # endpoints plus the speculative first midpoint in one plane array,
    # then each bisection round's pending stage batched with the two
    # next possible midpoints.  Identical numbers to the sequential
    # per-stage evaluation (each candidate keeps its pre-spawned stage
    # seeds), in a handful of stacked executions instead of dozens of
    # solo runs.
    result = find_pseudo_threshold_adaptive(
        lower=2e-3,
        upper=8e-2,
        trials=trials,
        iterations=8,
        seed=51,
        spec_builder=cycle_stage_spec,
        policy=execution_policy(),
    )
    analytic = threshold(11)
    above = result.estimate >= analytic
    rows: list[Row] = [
        (
            "pseudo-threshold vs analytic bound 1/165",
            f">= {analytic:.4g}",
            round(result.estimate, 4),
            above,
        )
    ]
    budget_note = (
        f"Budget-aware bisection: {result.evaluations} evaluations, "
        f"{result.trials_spent} total trials"
        + (
            ", stopped at the budget's statistical resolution"
            if result.resolution_limited
            else ""
        )
        + "."
    )
    return ExperimentResult(
        "mc-threshold",
        "Section 2.2",
        rows,
        notes=(
            "Section 5: the quoted thresholds are lower bounds ('an "
            "existence proof'); the measured crossing is expected to be "
            "higher, and is.  " + budget_note
        ),
    )


def _op_shape(op) -> tuple:
    """An operation's structure up to legal operand symmetry.

    MAJ/MAJ⁻¹ are symmetric in their *last two* operands only, so the
    first (majority-target) wire keeps its role and just the tail
    collapses to a set; every other op compares by exact wires.  This
    is what "matches op for op" legitimately means for an optimiser
    output — collapsing all operands to a set would also equate
    circuits that write to different targets.
    """
    if op.label in library.MAJ_NAMES:
        return (op.label, op.wires[0], frozenset(op.wires[1:]))
    return (op.label, op.wires)


def _synth_cycle_processor(cycles: int = 2) -> LogicalProcessor:
    """The canonical ``cycles``-cycle workload the optimiser must match."""
    processor = LogicalProcessor(3, include_resets=True)
    for _ in range(cycles):
        processor.apply(MAJ, 0, 1, 2)
        processor.apply(MAJ_INV, 0, 1, 2)
    return processor


def _synth_rewrite_database() -> IdentityDatabase:
    """Rewrite material for the recovery workload, mined by the searcher.

    Persisted next to the experiment tables; loading re-verifies every
    member by exhaustion, so the committed JSON is itself under test.
    """
    from repro.synth.database import DEFAULT_DATABASE_DIR

    return IdentityDatabase.load_or_mine(
        DEFAULT_DATABASE_DIR / "synth_identities.json",
        n_wires=3,
        gate_library=(CNOT, TOFFOLI, MAJ, MAJ_INV),
        max_gates=2,
    )


@register(
    "synth-peephole",
    "Section 2.2 (synthesis)",
    "Peephole-optimised redundant recovery cycle: fewer fault locations, "
    "same logical accuracy",
)
def experiment_synth_peephole() -> ExperimentResult:
    processor = _synth_cycle_processor()
    canonical = processor.circuit
    redundant = inflate(canonical)
    report = optimize_report(redundant, database=_synth_rewrite_database())
    optimized = report.circuit
    rows: list[Row] = []

    removed = report.locations_removed_fraction
    rows.append(
        (
            "fault locations removed by optimize()",
            ">= 20%",
            f"{removed:.0%} ({report.locations_before['total']} -> "
            f"{report.locations_after['total']})",
            removed >= 0.20,
        )
    )
    applied = (
        report.identity_removals
        + report.cancellations
        + report.database_rewrites
    )
    verified = applied > 0 and report.verified_rewrites == applied
    rows.append(
        (
            "every applied rewrite verified by exhaustive equivalence",
            True,
            verified,
            verified,
        )
    )
    # MAJ is symmetric in its last two operands, so a rewrite may
    # legally emit (a, c, b) where the hand-written cycle says
    # (a, b, c); the target wire's role, and every other op's exact
    # wires, must still match.
    structural = [_op_shape(op) for op in optimized] == [
        _op_shape(op) for op in canonical
    ]
    rows.append(
        (
            "optimised cycle matches the canonical cycle op for op",
            True,
            structural,
            structural,
        )
    )

    # The executor round trip: the optimiser's outputs are ordinary
    # circuits, so the redundant, optimised, and canonical cycles run
    # as one stacked spec batch through the standard pipeline.
    trials = min(trial_budget(), 100000)
    gate_error = 5e-3
    physical = processor.physical_input((1, 0, 1))
    observable = DecodeObservable(processor, (1, 0, 1))
    specs = [
        RunSpec(
            circuit=circuit,
            input_bits=physical,
            observable=observable,
            noise=NoiseModel(gate_error=gate_error),
            trials=trials,
            seed=seed,
        )
        for circuit, seed in ((redundant, 71), (optimized, 72), (canonical, 73))
    ]
    noisy, optimum, reference = Executor(execution_policy()).run(specs)
    z = 3.0
    # The bound actually tested — and therefore printed — is the
    # redundant cycle's Wilson upper limit against the optimised
    # cycle's Wilson lower limit, not point estimate vs point estimate.
    noisy_upper = wilson_interval(noisy.failures, trials, z)[1]
    no_worse = wilson_interval(optimum.failures, trials, z)[0] <= noisy_upper
    rows.append(
        (
            f"logical error no worse after optimisation (g={gate_error})",
            f"<= {noisy_upper:.2e}",
            f"{optimum.failure_fraction:.2e}",
            no_worse,
        )
    )
    opt_low, opt_high = wilson_interval(optimum.failures, trials, z)
    ref_low, ref_high = wilson_interval(reference.failures, trials, z)
    consistent = opt_low <= ref_high and ref_low <= opt_high
    rows.append(
        (
            "optimised rate consistent with the canonical cycle",
            f"~ {reference.failure_fraction:.2e}",
            f"{optimum.failure_fraction:.2e}",
            consistent,
        )
    )
    return ExperimentResult(
        "synth-peephole",
        "Section 2.2 (synthesis)",
        rows,
        notes=(
            "The redundant cycle inflates every MAJ-family gate into its "
            "Figure-1 decomposition and pads it with commuting X pairs and "
            "doubled SWAPs; optimize() strips all of it back out via "
            "inverse-pair cancellation and identity-database rewrites, "
            "every splice re-verified by exhaustion.  Rates are "
            "Monte-Carlo estimates at the shared trial budget; the "
            "optimised and canonical cycles differ only in the wire order "
            "of symmetric MAJ operands, so their rates agree statistically "
            "but not bit for bit."
        ),
    )
