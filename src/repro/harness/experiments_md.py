"""Generate and check ``EXPERIMENTS.md``, the curated experiment record.

``EXPERIMENTS.md`` holds one section per registered experiment with its
latest paper-vs-measured table (read from ``benchmarks/results/``) and
the one-liner that regenerates it.  This module is the single source of
that file::

    python -m repro.harness.experiments_md            # rewrite EXPERIMENTS.md
    python -m repro.harness.experiments_md --run fig2 # re-run one experiment,
                                                      # refresh its results
                                                      # table and the record
    python -m repro.harness.experiments_md --check    # CI: re-run the whole
                                                      # registry and fail when
                                                      # EXPERIMENTS.md section
                                                      # names drift from it

``--check`` runs every experiment at the current ``REPRO_TRIALS`` (CI
uses a small budget — the goal is "still runs and still matches the
registry", not statistical precision) and then verifies that the
sections recorded in ``EXPERIMENTS.md`` are exactly the registry ids.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

from repro.harness.experiments import REGISTRY, ExperimentResult, run_experiment
from repro.harness.tables import paper_vs_measured

#: Repository root (this file lives at src/repro/harness/).
REPO_ROOT = Path(__file__).resolve().parents[3]
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"
RECORD_PATH = REPO_ROOT / "EXPERIMENTS.md"

_HEADING = re.compile(r"^## `(?P<experiment_id>[^`]+)`")

PREAMBLE = """\
# EXPERIMENTS — the curated paper-vs-measured record

One section per experiment registered in
`repro.harness.experiments.REGISTRY`; the tables are the latest output
of `benchmarks/results/` (written by `pytest benchmarks/`).  Regenerate
everything with:

```bash
PYTHONPATH=src python -m pytest -q --benchmark-disable benchmarks/
PYTHONPATH=src python -m repro.harness.experiments_md
```

Monte-Carlo rows depend on the trial budget (`REPRO_TRIALS`, default
100000), the engine (`REPRO_ENGINE`, default `auto`), and frozen seeds;
see README.md for the RNG-stream guarantees.  This file is generated —
edit `repro/harness/experiments_md.py`, not the text below.
"""


def _section(experiment_id: str) -> str:
    experiment = REGISTRY[experiment_id]
    lines = [
        f"## `{experiment_id}` — {experiment.paper_ref}",
        "",
        experiment.description + ".",
        "",
    ]
    results_file = RESULTS_DIR / f"{experiment_id}.txt"
    if results_file.exists():
        lines += ["```text", results_file.read_text().rstrip("\n"), "```", ""]
    else:  # pragma: no cover - requires a results dir out of sync
        lines += ["*(no results table recorded yet — run the bench below)*", ""]
    lines += [
        "Regenerate: "
        f"`PYTHONPATH=src python -m repro.harness.experiments_md --run {experiment_id}`",
        "",
    ]
    return "\n".join(lines)


def render_record() -> str:
    """The full EXPERIMENTS.md text from the registry + results dir."""
    sections = [_section(experiment_id) for experiment_id in REGISTRY]
    return PREAMBLE + "\n" + "\n".join(sections)


def recorded_ids(text: str) -> list[str]:
    """Experiment ids of the ``## `id` — ...`` sections in the record."""
    return [
        match.group("experiment_id")
        for line in text.splitlines()
        if (match := _HEADING.match(line))
    ]


def write_record() -> Path:
    """Rewrite EXPERIMENTS.md from the current registry and results."""
    RECORD_PATH.write_text(render_record())
    return RECORD_PATH


def format_result(result: ExperimentResult) -> str:
    """The canonical results-table text for one experiment run."""
    text = paper_vs_measured(
        result.rows, title=f"{result.experiment_id} — {result.paper_ref}"
    )
    if result.notes:
        text += f"\n\nNotes: {result.notes}"
    return text


def write_result(result: ExperimentResult) -> str:
    """Write the canonical results table under ``benchmarks/results/``.

    Single formatter for both the bench suite and ``--run``, so the
    two writers can never drift apart.
    """
    text = format_result(result)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
    return text


def run_and_record(experiment_id: str) -> bool:
    """Re-run one experiment, refresh its results table and the record.

    Returns True when every comparison row matched.
    """
    result = run_experiment(experiment_id)
    text = write_result(result)
    write_record()
    print(text)
    return result.all_match


def check_record() -> int:
    """CI docs-consistency gate; returns a process exit code.

    Re-runs the full registry (at whatever ``REPRO_TRIALS`` the caller
    set), then compares the section names in EXPERIMENTS.md against the
    registry ids.
    """
    for experiment_id in REGISTRY:
        result = run_experiment(experiment_id)
        status = "ok" if result.all_match else "MISMATCH"
        print(f"ran {experiment_id}: {len(result.rows)} rows, {status}")
    if not RECORD_PATH.exists():
        print("EXPERIMENTS.md is missing — regenerate it with "
              "`python -m repro.harness.experiments_md`")
        return 1
    recorded = recorded_ids(RECORD_PATH.read_text())
    expected = list(REGISTRY)
    if recorded != expected:
        missing = sorted(set(expected) - set(recorded))
        stale = sorted(set(recorded) - set(expected))
        print("EXPERIMENTS.md sections drifted from the experiment registry:")
        if missing:
            print(f"  missing sections: {missing}")
        if stale:
            print(f"  stale sections: {stale}")
        if not missing and not stale:
            print(f"  section order differs: {recorded} != {expected}")
        print("regenerate with `python -m repro.harness.experiments_md`")
        return 1
    print(f"EXPERIMENTS.md is in sync ({len(recorded)} sections)")
    return 0


def main(argv: list[str]) -> int:
    if argv and argv[0] == "--check":
        return check_record()
    if argv and argv[0] == "--run":
        if len(argv) != 2:
            print("usage: python -m repro.harness.experiments_md --run <id>")
            return 2
        return 0 if run_and_record(argv[1]) else 1
    if argv:
        print("usage: python -m repro.harness.experiments_md [--check | --run <id>]")
        return 2
    path = write_record()
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
