"""Fixed-width table rendering for benches and experiment reports."""

from __future__ import annotations

from collections.abc import Sequence


def _render_cell(value, float_format: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    float_format: str = ".4g",
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width text table."""
    rendered = [
        [_render_cell(value, float_format) for value in row] for row in rows
    ]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in rendered))
        if rendered
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(header).ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def paper_vs_measured(
    rows: Sequence[tuple[str, object, object, bool]],
    title: str | None = None,
) -> str:
    """Render (quantity, paper, measured, match) comparison rows."""
    return format_table(
        headers=("quantity", "paper", "measured", "match"),
        rows=rows,
        title=title,
    )
