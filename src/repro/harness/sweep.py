"""Parameter sweeps with tabular results."""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass


@dataclass(frozen=True)
class SweepResult:
    """Paired sweep inputs and outputs."""

    parameter: str
    xs: tuple
    ys: tuple

    def rows(self) -> list[tuple]:
        """``(x, y)`` rows in sweep order."""
        return list(zip(self.xs, self.ys))

    def __len__(self) -> int:
        return len(self.xs)


def sweep(
    function: Callable,
    values: Iterable,
    parameter: str = "x",
) -> SweepResult:
    """Evaluate ``function`` over ``values`` and collect the pairs."""
    xs = tuple(values)
    ys = tuple(function(x) for x in xs)
    return SweepResult(parameter=parameter, xs=xs, ys=ys)


def geometric_grid(start: float, stop: float, points: int) -> list[float]:
    """``points`` geometrically spaced values from start to stop."""
    if points < 2:
        return [start]
    ratio = (stop / start) ** (1.0 / (points - 1))
    return [start * ratio**i for i in range(points)]


def crossing_index(xs: Sequence[float], ys: Sequence[float]) -> int | None:
    """First index where ``ys`` crosses above ``xs`` (y >= x).

    Used to locate a pseudo-threshold on a sweep of logical error
    versus physical error: below threshold ``y < x``, above it
    ``y > x``.
    """
    for index, (x, y) in enumerate(zip(xs, ys)):
        if y >= x:
            return index
    return None
