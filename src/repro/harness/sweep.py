"""Parameter sweeps with tabular results, optionally over a process pool.

``sweep`` evaluates one function over a grid of values.  With
``parallel=`` it fans the points out to a :mod:`concurrent.futures`
process pool; the function (and its captured arguments) must then be
picklable — module-level functions and :func:`functools.partial` of
them qualify, lambdas and closures do not.  Results are returned in
grid order either way, so a parallel sweep is bit-identical to the
serial one whenever each point seeds its own RNG stream.

A failing point — serial or pooled — surfaces as an
:class:`~repro.errors.AnalysisError` naming the offending parameter
value, with the original exception chained as ``__cause__``, so a
failure among dozens of pool workers is attributable to its grid
point.

``spawn_seeds`` derives per-point child seeds from one base seed via
:class:`numpy.random.SeedSequence`, which is how a parallel sweep keeps
determinism: every point owns an independent, reproducible stream, and
the engine-level frozen digests (per-point, per-seed) are untouched by
how the points are scheduled.  It lives in :mod:`repro.noise.seeds`
(the RNG-owning layer) and is re-exported here for its historical
callers.

Monte-Carlo point functions that share a circuit are better expressed
as :class:`~repro.runtime.RunSpec` batches through
:class:`~repro.runtime.Executor`, which stacks the points into one
plane array instead of re-simulating per point; ``sweep`` remains the
generic grid evaluator for everything else.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from math import isfinite

from repro.core.compiled import warm_compile_cache
from repro.errors import AnalysisError
from repro.noise.seeds import spawn_seeds
from repro.runtime.executor import resolve_workers

__all__ = [
    "SweepResult",
    "crossing_index",
    "geometric_grid",
    "resolve_workers",
    "spawn_seeds",
    "sweep",
]


@dataclass(frozen=True)
class SweepResult:
    """Paired sweep inputs and outputs."""

    parameter: str
    xs: tuple
    ys: tuple

    def rows(self) -> list[tuple]:
        """``(x, y)`` rows in sweep order."""
        return list(zip(self.xs, self.ys))

    def __len__(self) -> int:
        return len(self.xs)


def _point_error(parameter: str, x, exc: Exception) -> AnalysisError:
    return AnalysisError(
        f"sweep point {parameter}={x!r} failed: {type(exc).__name__}: {exc}"
    )


def sweep(
    function: Callable,
    values: Iterable,
    parameter: str = "x",
    parallel: int | bool | None = None,
    warm: Sequence | None = None,
) -> SweepResult:
    """Evaluate ``function`` over ``values`` and collect the pairs.

    ``parallel=None`` (or ``0``/``1``) evaluates in-process;
    ``parallel=N`` uses an ``N``-worker process pool, ``parallel=True``
    one worker per CPU.  Parallel evaluation requires ``function`` to
    be picklable and returns points in grid order, so results are
    identical to a serial sweep.

    ``warm`` is a sequence of :class:`~repro.core.circuit.Circuit`\\ s
    to pre-compile before any point runs — in-process for a serial
    sweep, as the pool initializer for a parallel one, so every worker
    compiles each circuit at most once and every point's
    :func:`~repro.core.compiled.compile_circuit` call is a cache hit.
    Without it, a pooled Monte-Carlo sweep recompiles the circuit in
    whichever worker happens to run each point's *first* call.

    A point that raises is re-raised as an :class:`AnalysisError`
    carrying the offending parameter value (original exception
    chained), in both serial and pooled modes; a pooled failure
    cancels every not-yet-started point so the error surfaces promptly
    instead of paying for the rest of the grid.
    """
    xs = tuple(values)
    workers = resolve_workers(parallel, len(xs))
    warm = tuple(warm) if warm is not None else ()
    if workers == 0:
        if warm:
            warm_compile_cache(warm)
        ys = []
        for x in xs:
            try:
                ys.append(function(x))
            except Exception as exc:
                raise _point_error(parameter, x, exc) from exc
        ys = tuple(ys)
    else:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=partial(warm_compile_cache, warm) if warm else None,
        ) as pool:
            futures = [pool.submit(function, x) for x in xs]
            ys = []
            for x, future in zip(xs, futures):
                try:
                    ys.append(future.result())
                except Exception as exc:
                    # Without cancellation the ``with`` block's exit
                    # would still WAIT for every queued point — one
                    # failure among dozens of expensive points would
                    # pay for the whole grid.  Cancel everything not
                    # yet running so the error surfaces promptly (the
                    # points already in flight still finish; their
                    # results are discarded).  Per-future cancel, not
                    # shutdown(cancel_futures=True) — that path can
                    # deadlock the pool when a task fails to pickle
                    # mid-flight (see Executor.run).
                    for queued in futures:
                        queued.cancel()
                    raise _point_error(parameter, x, exc) from exc
            ys = tuple(ys)
    return SweepResult(parameter=parameter, xs=xs, ys=ys)


def geometric_grid(start: float, stop: float, points: int) -> list[float]:
    """``points`` geometrically spaced values from start to stop.

    Geometric spacing requires strictly positive endpoints, and a grid
    needs at least one point; violations raise :class:`AnalysisError`
    instead of silently collapsing to ``[start]``.
    """
    if points < 1:
        raise AnalysisError(f"grid needs >= 1 point, got {points}")
    if start <= 0 or stop <= 0:
        raise AnalysisError(
            f"geometric grid endpoints must be positive, got {start}, {stop}"
        )
    if points == 1:
        return [start]
    ratio = (stop / start) ** (1.0 / (points - 1))
    return [start * ratio**i for i in range(points)]


def crossing_index(xs: Sequence[float], ys: Sequence[float]) -> int | None:
    """First index where ``ys`` crosses above ``xs`` (y >= x).

    Used to locate a pseudo-threshold on a sweep of logical error
    versus physical error: below threshold ``y < x``, above it
    ``y > x``.  Non-finite values raise :class:`AnalysisError`: a NaN
    would silently compare as "below identity" (``NaN >= x`` is False)
    and be walked past, letting a corrupted sweep fabricate a
    threshold.
    """
    for index, (x, y) in enumerate(zip(xs, ys)):
        if not (isfinite(x) and isfinite(y)):
            raise AnalysisError(
                f"crossing_index needs finite values, got "
                f"(x={x!r}, y={y!r}) at index {index}"
            )
        if y >= x:
            return index
    return None
