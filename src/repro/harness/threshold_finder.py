"""Monte-Carlo pseudo-threshold estimation.

The paper's threshold ``rho = 1/(3 C(G,2))`` is a *bound*: "the circuits
and threshold values presented here represent a lower bound on the
threshold" (Section 5).  The empirical pseudo-threshold — the gate
error where the measured logical error of one recovery level equals
the physical error — is therefore expected at or above ``rho``.  This
module estimates it by bisection over Monte-Carlo estimates.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.coding.logical import LogicalProcessor
from repro.core import library
from repro.noise.model import NoiseModel
from repro.noise.monte_carlo import NoisyRunner
from repro.errors import AnalysisError


def logical_error_per_cycle(
    gate_error: float,
    trials: int,
    cycles: int = 1,
    include_resets: bool = True,
    seed: int | np.random.Generator | None = 0,
    engine: str = "auto",
) -> tuple[float, int]:
    """Measured logical error of ``cycles`` gate+recovery cycles.

    Builds a single logical bit that undergoes ``cycles`` logical
    identity-preserving gate cycles (a transversal self-inverse pair
    counts per the paper as a gate op on the codeword followed by
    recovery) and returns the per-cycle logical failure rate.

    ``engine`` selects the Monte-Carlo backend (see
    :mod:`repro.noise.monte_carlo`); estimates are engine-dependent at
    the statistical-fluctuation level only.
    """
    if cycles < 1:
        raise AnalysisError(f"cycles must be >= 1, got {cycles}")
    # The reset operations always run (the ancillas must be re-zeroed
    # between cycles); ``include_resets`` only selects whether they are
    # as noisy as gates (G = 11) or perfectly accurate (G = 9).
    processor = LogicalProcessor(3, include_resets=True)
    for _ in range(cycles):
        processor.apply(library.MAJ, 0, 1, 2)
        processor.apply(library.MAJ_INV, 0, 1, 2)
    logical_input = (1, 0, 1)
    physical = processor.physical_input(logical_input)
    model = NoiseModel(
        gate_error=gate_error,
        reset_error=None if include_resets else 0.0,
    )
    runner = NoisyRunner(model, seed, engine=engine)
    result = runner.run_from_input(processor.circuit, physical, trials)
    decoded = processor.decode_batch(result.states)
    expected = np.asarray(logical_input, dtype=np.uint8)
    failures = int((decoded != expected).any(axis=1).sum())
    # Two logical gates per loop iteration; failures accumulate per
    # gate cycle, so normalise to one cycle.
    per_run = failures / trials
    gate_cycles = 2 * cycles
    per_cycle = 1.0 - (1.0 - per_run) ** (1.0 / gate_cycles)
    return per_cycle, failures


@dataclass(frozen=True)
class PseudoThreshold:
    """Result of a bisection pseudo-threshold search."""

    estimate: float
    bracket: tuple[float, float]
    evaluations: int


def find_pseudo_threshold(
    error_function: Callable[[float], float],
    lower: float,
    upper: float,
    iterations: int = 12,
) -> PseudoThreshold:
    """Bisection for the crossing ``error_function(g) = g``.

    ``error_function`` must be (statistically) below the identity at
    ``lower`` and above it at ``upper``.
    """
    if not 0 <= lower < upper <= 1:
        raise AnalysisError(f"need 0 <= lower < upper <= 1, got {lower}, {upper}")
    evaluations = 0
    f_low = error_function(lower)
    f_high = error_function(upper)
    evaluations += 2
    if f_low >= lower:
        raise AnalysisError(
            f"error rate {f_low:.3g} at g={lower:.3g} is not below identity; "
            "lower the bracket"
        )
    if f_high < upper:
        raise AnalysisError(
            f"error rate {f_high:.3g} at g={upper:.3g} is not above identity; "
            "raise the bracket"
        )
    low, high = lower, upper
    for _ in range(iterations):
        middle = (low + high) / 2.0
        if error_function(middle) < middle:
            low = middle
        else:
            high = middle
        evaluations += 1
    return PseudoThreshold(
        estimate=(low + high) / 2.0, bracket=(low, high), evaluations=evaluations
    )
