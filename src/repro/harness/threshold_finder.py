"""Monte-Carlo pseudo-threshold estimation.

The paper's threshold ``rho = 1/(3 C(G,2))`` is a *bound*: "the circuits
and threshold values presented here represent a lower bound on the
threshold" (Section 5).  The empirical pseudo-threshold — the gate
error where the measured logical error of one recovery level equals
the physical error — is therefore expected at or above ``rho``.  This
module estimates it by bisection over Monte-Carlo estimates.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable, Sequence
from dataclasses import dataclass, replace
from functools import partial

import numpy as np

from repro.coding.logical import LogicalProcessor
from repro.core import library
from repro.core.compiled import compile_cache_enabled
from repro.harness.stats import wilson_interval
from repro.harness.sweep import spawn_seeds, sweep
from repro.noise.model import NoiseModel
from repro.obs import counter, trace
from repro.runtime import (
    DecodeObservable,
    ExecutionPolicy,
    Executor,
    RunSpec,
)
from repro.errors import AnalysisError

#: Built cycle processors keyed by cycle count.  A bisection or sweep
#: evaluates the *same* circuit at many noise levels; memoising the
#: processor (and therefore the circuit object feeding the compile
#: cache) makes each extra evaluation pure simulation.  Honors the
#: ``REPRO_COMPILE_CACHE`` knob alongside the compiled-program cache.
_PROCESSOR_CACHE: dict[int, LogicalProcessor] = {}

#: The logical word every cycle processor carries through its identity
#: cycles (MAJ then MAJ⁻¹ leave it unchanged).
_CYCLE_INPUT = (1, 0, 1)

# Search-shape metrics (repro.obs): how many rounds and stage
# evaluations the adaptive search spends, and how much of its
# speculative prefetching the bisection never consumed.  Observational
# only — the search's numbers are pinned bit-identical regardless.
_ROUNDS = counter("threshold.rounds")
_STAGE_EVALS = counter("threshold.stage_evaluations")
_SPECULATED = counter("threshold.speculated")
_SPECULATION_WASTED = counter("threshold.speculation_wasted")


def _cycle_processor(cycles: int) -> LogicalProcessor:
    """The 3-logical-bit processor running ``cycles`` identity cycles."""
    memoise = compile_cache_enabled()
    if memoise:
        cached = _PROCESSOR_CACHE.get(cycles)
        if cached is not None:
            return cached
    processor = LogicalProcessor(3, include_resets=True)
    for _ in range(cycles):
        processor.apply(library.MAJ, 0, 1, 2)
        processor.apply(library.MAJ_INV, 0, 1, 2)
    if memoise:
        _PROCESSOR_CACHE[cycles] = processor
    return processor


def cycle_error_specs(
    points: Sequence[tuple[float, int | np.random.Generator | None]],
    trials: int,
    cycles: int = 1,
    include_resets: bool = True,
) -> list[RunSpec]:
    """Declarative specs for the cycle-error measurement at ``points``.

    Each point is a ``(gate_error, seed)`` pair; every spec shares the
    memoised cycle circuit, so an :class:`~repro.runtime.Executor`
    evaluates the whole batch as ONE stacked bitplane array (the
    multi-point sweep workload pays one program execution, not one per
    point).
    """
    if cycles < 1:
        raise AnalysisError(f"cycles must be >= 1, got {cycles}")
    if trials < 1:
        raise AnalysisError(f"trials must be >= 1, got {trials}")
    # The reset operations always run (the ancillas must be re-zeroed
    # between cycles); ``include_resets`` only selects whether they are
    # as noisy as gates (G = 11) or perfectly accurate (G = 9).
    processor = _cycle_processor(cycles)
    physical = processor.physical_input(_CYCLE_INPUT)
    observable = DecodeObservable(processor, _CYCLE_INPUT)
    return [
        RunSpec(
            circuit=processor.circuit,
            input_bits=physical,
            observable=observable,
            noise=NoiseModel(
                gate_error=gate_error,
                reset_error=None if include_resets else 0.0,
            ),
            trials=trials,
            seed=seed,
        )
        for gate_error, seed in points
    ]


def per_cycle_rate(failures: int, trials: int, cycles: int) -> float:
    """Normalise a per-run failure count to a per-gate-cycle rate.

    Two logical gates per loop iteration; failures accumulate per gate
    cycle, so ``1 - (1 - f/n)**(1 / (2 * cycles))``.
    """
    return 1.0 - (1.0 - failures / trials) ** (1.0 / (2 * cycles))


def measure_cycle_errors(
    points: Sequence[tuple[float, int | np.random.Generator | None]],
    trials: int,
    cycles: int = 1,
    include_resets: bool = True,
    policy: ExecutionPolicy | None = None,
    store=None,
) -> list[tuple[float, int]]:
    """Measured logical error of ``cycles`` gate+recovery cycles.

    Builds a single logical bit that undergoes ``cycles`` logical
    identity-preserving gate cycles (a transversal self-inverse pair
    counts per the paper as a gate op on the codeword followed by
    recovery) and returns ``(per_cycle_rate, failures)`` for each
    ``(gate_error, seed)`` point, in point order.

    All points share one compiled circuit, so the executor evaluates
    them in a single stacked plane array; each point's numbers are
    bit-identical to measuring it alone.  ``policy`` defaults to
    :meth:`~repro.runtime.ExecutionPolicy.from_env`.

    ``store`` (a :class:`~repro.jobs.ResultStore`) makes the
    measurement durable: integer-seeded points already in the store
    are served without simulation, fresh points are written back, and
    — because a stored result is bit-identical to recomputation — the
    returned rates are the same either way.
    """
    specs = cycle_error_specs(points, trials, cycles, include_resets)
    if store is not None:
        from repro.jobs.caching import CachingExecutor

        results = CachingExecutor(store, policy=policy).run(specs)
    else:
        results = Executor(policy).run(specs)
    return [
        (per_cycle_rate(result.failures, trials, cycles), result.failures)
        for result in results
    ]


def logical_error_per_cycle(
    gate_error: float,
    trials: int,
    cycles: int = 1,
    include_resets: bool = True,
    seed: int | np.random.Generator | None = 0,
    engine: str = "auto",
) -> tuple[float, int]:
    """Deprecated single-point shim over :func:`measure_cycle_errors`.

    .. deprecated:: PR 3
        Use :func:`measure_cycle_errors` (which batches many noise
        points into one stacked run) or build a
        :class:`~repro.runtime.RunSpec` directly.  This shim keeps the
        PR 2 signature and, because a single-point executor run is
        bit-identical to the classic runner, reproduces the PR 2
        numbers bit for bit — ``engine`` wins over ``REPRO_ENGINE``,
        the remaining knobs come from the environment as before.
    """
    warnings.warn(
        "logical_error_per_cycle is deprecated; use "
        "repro.harness.measure_cycle_errors or a repro.runtime.RunSpec",
        DeprecationWarning,
        stacklevel=2,
    )
    policy = replace(
        ExecutionPolicy.from_env(), engine=engine, parallel=None
    )
    return measure_cycle_errors(
        ((gate_error, seed),), trials, cycles, include_resets, policy=policy
    )[0]


@dataclass(frozen=True)
class PseudoThreshold:
    """Result of a bisection pseudo-threshold search.

    ``trials_spent`` and ``resolution_limited`` are filled in by
    :func:`find_pseudo_threshold_adaptive`: the latter is true when the
    search stopped because the full trial budget could no longer
    statistically separate the measured error from the identity line —
    the bisection has reached the resolution of the Monte-Carlo budget
    and further steps would refine noise, not signal.
    """

    estimate: float
    bracket: tuple[float, float]
    evaluations: int
    trials_spent: int = 0
    resolution_limited: bool = False


def _interval_sign(
    gate_error: float, failures: int, n: int, z: float, gate_cycles: int
) -> int:
    """-1/+1 when the Wilson interval separates from identity, else 0."""
    low, high = wilson_interval(failures, n, z)
    # The interval bounds the per-run rate; push it through the same
    # (monotone) per-cycle normalisation the point estimate uses.
    if 1.0 - (1.0 - high) ** (1.0 / gate_cycles) < gate_error:
        return -1
    if 1.0 - (1.0 - low) ** (1.0 / gate_cycles) > gate_error:
        return 1
    return 0


def _measure_point(
    point: tuple[float, tuple[int, ...]],
    evaluate: Callable[[float, int, int], tuple[float, int]],
    stages: tuple[int, ...],
    z: float,
    gate_cycles: int,
) -> tuple[float, int, int]:
    """Escalate one ``(g, stage_seeds)`` point through the budget stages.

    Returns ``(rate, sign, trials_spent)`` where ``sign`` is the
    ``z``-sigma-separated side of the identity line, or 0 when even the
    final stage cannot tell — module-level so a parallel bracket sweep
    can pickle it.
    """
    gate_error, stage_seeds = point
    spent = 0
    for n, stage_seed in zip(stages, stage_seeds):
        rate, failures = evaluate(gate_error, n, stage_seed)
        spent += n
        sign = _interval_sign(gate_error, failures, n, z, gate_cycles)
        if sign:
            return rate, sign, spent
    return rate, 0, spent


def _validate_bracket(
    f_low: float,
    sign_low: int,
    f_high: float,
    sign_high: int,
    lower: float,
    upper: float,
) -> None:
    """Endpoint validation shared by both search forms.

    An endpoint the full budget cannot separate (sign 0) falls back to
    the point-estimate comparison — the fixed-budget behaviour — so
    tiny CI budgets still get a best-effort search; only an endpoint on
    the wrong side of the identity line is a caller error.  One shared
    implementation, so the stacked and sequential forms can never
    diverge on the inequalities or messages (the bit-identity
    contract).
    """
    if sign_low > 0 or (sign_low == 0 and f_low >= lower):
        raise AnalysisError(
            f"error rate {f_low:.3g} at g={lower:.3g} is not below identity; "
            "lower the bracket"
        )
    if sign_high < 0 or (sign_high == 0 and f_high < upper):
        raise AnalysisError(
            f"error rate {f_high:.3g} at g={upper:.3g} is not above identity; "
            "raise the bracket"
        )


def _bisect(
    measure_middle: Callable[[int, float, float, float], tuple[int, int]],
    lower: float,
    upper: float,
    iterations: int,
    trials_spent: int,
) -> PseudoThreshold:
    """The bisection driver shared by both search forms.

    ``measure_middle(iteration, low, middle, high) -> (sign, spent)``
    encapsulates how a form evaluates one midpoint; everything else —
    bracket updates, billing, the resolution-limited stop, the final
    estimate — lives here exactly once, so the two forms cannot drift
    apart.  ``trials_spent`` enters as the bracket spend and
    ``evaluations`` counts from the bracket's two.
    """
    evaluations = 2
    low, high = lower, upper
    for iteration in range(iterations):
        middle = (low + high) / 2.0
        sign, spent = measure_middle(iteration, low, middle, high)
        evaluations += 1
        trials_spent += spent
        if sign == 0:
            return PseudoThreshold(
                estimate=middle,
                bracket=(low, high),
                evaluations=evaluations,
                trials_spent=trials_spent,
                resolution_limited=True,
            )
        if sign < 0:
            low = middle
        else:
            high = middle
    return PseudoThreshold(
        estimate=(low + high) / 2.0,
        bracket=(low, high),
        evaluations=evaluations,
        trials_spent=trials_spent,
    )


def _search_stages(trials: int) -> tuple[int, ...]:
    """The escalation ladder: 1/16 of the budget, then the full budget."""
    return tuple(dict.fromkeys((max(trials // 16, 1), trials)))


def _spawn_stage_seeds(
    seed: int | None, stages: tuple[int, ...], iterations: int
) -> list[tuple[int, ...]]:
    """One seed tuple per potential evaluation, spawned up front.

    Index 0 is the lower bracket endpoint, 1 the upper, ``2 + i`` the
    midpoint of bisection iteration ``i`` — whichever point *becomes*
    that midpoint — so the whole search is a pure function of ``seed``
    and two searches that evaluate the same points consume identical
    per-stage seeds regardless of how the evaluations were batched.
    """
    all_seeds = spawn_seeds(seed, (2 + iterations) * len(stages))
    return [
        tuple(all_seeds[i * len(stages):(i + 1) * len(stages)])
        for i in range(2 + iterations)
    ]


def cycle_stage_spec(
    gate_error: float,
    n_trials: int,
    seed: int,
    cycles: int = 1,
    include_resets: bool = True,
) -> RunSpec:
    """One escalation stage of the cycle-error workload as a spec.

    The ``spec_builder`` the stacked threshold search feeds to its
    :class:`~repro.runtime.Executor` — module-level (and building on
    the memoised cycle processor) so specs are picklable and every
    stage of every candidate shares ONE compiled circuit.  A search
    with ``cycles != 1`` must bind the same value here
    (``functools.partial(cycle_stage_spec, cycles=...)``) so the
    circuit matches the search's rate normalisation.
    """
    return cycle_error_specs(((gate_error, seed),), n_trials, cycles, include_resets)[0]


class _StackedStageEvaluator:
    """Evaluates batches of search stages as one stacked Executor run.

    A *request* is ``(candidate, stage, gate_error)``; results are
    cached under the same key, so the round planner can speculatively
    request both children of a midpoint and the unused branch is simply
    never re-run.  Every request's spec carries the candidate's
    pre-spawned stage seed, which makes each evaluation bit-identical
    to the sequential search evaluating the same point — stacking is an
    execution detail, never a statistical one.
    """

    def __init__(
        self, spec_builder, stages, seed_tuples, cycles, policy, store=None
    ):
        self.spec_builder = spec_builder
        self.stages = stages
        self.seed_tuples = seed_tuples
        self.cycles = cycles
        if store is not None:
            from repro.jobs.caching import CachingExecutor

            self.executor = CachingExecutor(store, policy=policy)
        else:
            self.executor = Executor(policy)
        self.results: dict[tuple[int, int, float], tuple[float, int]] = {}
        #: Requests evaluated on speculation vs requests the search
        #: actually read — their difference is the wasted prefetch the
        #: ``threshold.speculation_wasted`` counter reports.
        self.speculative: set[tuple[int, int, float]] = set()
        self.consumed: set[tuple[int, int, float]] = set()

    def __contains__(self, request) -> bool:
        return request in self.results

    def __getitem__(self, request) -> tuple[float, int]:
        result = self.results[request]
        self.consumed.add(request)
        return result

    def run_batch(self, requests, speculative=()) -> None:
        """Evaluate all not-yet-cached requests in one stacked call.

        ``speculative`` names the subset requested on speculation (the
        round planner prefetching points the bisection may never
        consume) — bookkeeping only, execution is identical.
        """
        pending = [
            request
            for request in dict.fromkeys(requests)
            if request not in self.results
        ]
        if not pending:
            return
        _STAGE_EVALS.inc(len(pending))
        fresh_speculation = [r for r in speculative if r in pending]
        self.speculative.update(fresh_speculation)
        _SPECULATED.inc(len(fresh_speculation))
        specs = []
        for candidate, stage, gate_error in pending:
            n = self.stages[stage]
            spec = self.spec_builder(
                gate_error, n, self.seed_tuples[candidate][stage]
            )
            if spec.trials != n:
                raise AnalysisError(
                    f"spec_builder returned {spec.trials} trials for a "
                    f"{n}-trial stage at g={gate_error:.3g}; the stage "
                    "budget is not negotiable"
                )
            specs.append(spec)
        for request, result in zip(pending, self.executor.run(specs)):
            n = self.stages[request[1]]
            self.results[request] = (
                per_cycle_rate(result.failures, n, self.cycles),
                result.failures,
            )


def _find_pseudo_threshold_stacked(
    spec_builder,
    lower: float,
    upper: float,
    trials: int,
    iterations: int,
    cycles: int,
    z: float,
    seed: int | None,
    policy: ExecutionPolicy | None,
    store=None,
) -> PseudoThreshold:
    """The stacked round planner behind :func:`find_pseudo_threshold_adaptive`.

    Each search round becomes ONE stacked Executor call instead of a
    chain of solo runs:

    * the bracket round stacks both endpoints' first stages together
      with the first midpoint's (speculation: the bisection needs that
      midpoint whenever the bracket validates);
    * a bisection round whose midpoint still needs its first stage
      stacks it with the two *next possible* midpoints — the low-side
      and high-side children, whose circuits are identical — and the
      unused branch is discarded;
    * escalation stages (whose sign may stop the whole search at the
      budget's statistical resolution) run as their own stacked call,
      with that round's children typically already prefetched, so no
      full-budget stage is ever evaluated speculatively.

    Every candidate keeps the pre-spawned per-stage seeds of the
    evaluation slot it occupies, so the returned
    :class:`PseudoThreshold` — estimate, bracket, evaluations,
    trials_spent, resolution flag — is bit-identical to the sequential
    search whenever the same points get evaluated (``trials_spent``
    counts the decided evaluations' stages, exactly the sequential
    spend; speculative stages the bisection never consumed are not
    billed).
    """
    with trace(
        "threshold.search",
        lower=lower,
        upper=upper,
        trials=trials,
        iterations=iterations,
    ) as span:
        result, evaluator = _stacked_search(
            spec_builder, lower, upper, trials, iterations, cycles, z,
            seed, policy, store,
        )
        wasted = len(evaluator.speculative - evaluator.consumed)
        _SPECULATION_WASTED.inc(wasted)
        span.set(
            estimate=result.estimate,
            evaluations=result.evaluations,
            trials_spent=result.trials_spent,
            resolution_limited=result.resolution_limited,
            speculated=len(evaluator.speculative),
            speculation_wasted=wasted,
        )
    return result


def _stacked_search(
    spec_builder, lower, upper, trials, iterations, cycles, z, seed,
    policy, store,
) -> tuple[PseudoThreshold, _StackedStageEvaluator]:
    """The search itself; the caller owns the span and waste billing."""
    stages = _search_stages(trials)
    final_stage = len(stages) - 1
    gate_cycles = 2 * cycles
    seed_tuples = _spawn_stage_seeds(seed, stages, iterations)
    evaluator = _StackedStageEvaluator(
        spec_builder, stages, seed_tuples, cycles,
        policy if policy is not None else ExecutionPolicy.from_env(),
        store=store,
    )

    # Bracket round: both endpoints' first stages and — speculatively —
    # the first midpoint's, in one stacked call.  Undecided endpoints
    # escalate jointly.
    with trace("threshold.bracket", lower=lower, upper=upper) as bracket_span:
        first_middle = (lower + upper) / 2.0
        batch = [(0, 0, lower), (1, 0, upper)]
        speculated = []
        if iterations >= 1:
            speculated = [(2, 0, first_middle)]
            batch.append(speculated[0])
        evaluator.run_batch(batch, speculative=speculated)
        rates = {}
        signs = {0: 0, 1: 0}
        spent = {0: 0, 1: 0}
        undecided = [(0, lower), (1, upper)]
        for stage in range(len(stages)):
            evaluator.run_batch(
                [(candidate, stage, g) for candidate, g in undecided]
            )
            still = []
            for candidate, g in undecided:
                rate, failures = evaluator[(candidate, stage, g)]
                rates[candidate] = rate
                spent[candidate] += stages[stage]
                sign = _interval_sign(
                    g, failures, stages[stage], z, gate_cycles
                )
                signs[candidate] = sign
                if sign == 0 and stage < final_stage:
                    still.append((candidate, g))
            undecided = still
            if not undecided:
                break
        bracket_span.set(spent=spent[0] + spent[1])
        _validate_bracket(
            rates[0], signs[0], rates[1], signs[1], lower, upper
        )

    def measure_middle(iteration, low, middle, high):
        """One round: walk the midpoint's stages, batching each fetch
        with the two next possible midpoints' first stages."""
        candidate = 2 + iteration
        spent_here = 0
        sign = 0
        _ROUNDS.inc()
        with trace(
            "threshold.round", iteration=iteration, middle=middle
        ) as round_span:
            for stage in range(len(stages)):
                key = (candidate, stage, middle)
                if key not in evaluator:
                    batch = [key]
                    speculated = []
                    if stage < final_stage and iteration + 1 < iterations:
                        # Speculate the two next possible midpoints'
                        # first stages: unless this round's *final*
                        # stage stops the search, one of them is the
                        # next round's midpoint (their specs share this
                        # round's circuit, so they ride the same
                        # stacked array).
                        child = candidate + 1
                        speculated = [
                            (child, 0, (low + middle) / 2.0),
                            (child, 0, (middle + high) / 2.0),
                        ]
                        batch.extend(speculated)
                    evaluator.run_batch(batch, speculative=speculated)
                _, failures = evaluator[key]
                spent_here += stages[stage]
                sign = _interval_sign(
                    middle, failures, stages[stage], z, gate_cycles
                )
                if sign:
                    break
            round_span.set(sign=sign, spent=spent_here)
        return sign, spent_here

    return (
        _bisect(
            measure_middle, lower, upper, iterations, spent[0] + spent[1]
        ),
        evaluator,
    )


def find_pseudo_threshold_adaptive(
    evaluate: Callable[[float, int, int], tuple[float, int]] | None = None,
    lower: float | None = None,
    upper: float | None = None,
    trials: int | None = None,
    iterations: int = 12,
    cycles: int = 1,
    z: float = 3.0,
    seed: int | None = 0,
    parallel: int | bool | None = None,
    *,
    spec_builder: Callable[[float, int, int], RunSpec] | None = None,
    policy: ExecutionPolicy | None = None,
    store=None,
) -> PseudoThreshold:
    """Budget-aware bisection for the crossing ``f(g) = g``.

    A bisection step only consumes the *sign* of ``f(g) - g``, so each
    point first runs at 1/16 of ``trials`` and escalates to the full
    budget only when the ``z``-sigma Wilson interval of the small run
    straddles the identity line; points far from the crossing — most of
    them, early in the search — are decided at a fraction of the cost.
    When even the full budget cannot separate a midpoint from the
    identity, the crossing has been located to within the budget's
    statistical resolution and the search stops there
    (``resolution_limited``) instead of bisecting noise.

    The workload comes in one of two forms (exactly one):

    * ``evaluate(g, n_trials, seed) -> (per_cycle_rate, failures)`` —
      an opaque evaluator, run sequentially like
      :func:`logical_error_per_cycle`; the two bracket validations run
      through :func:`~repro.harness.sweep.sweep` (``parallel`` forwards
      there; ``evaluate`` must then be picklable).
    * ``spec_builder(g, n_trials, seed) -> RunSpec`` — a declarative
      stage builder (e.g. :func:`cycle_stage_spec`); the search then
      runs as STACKED rounds on :class:`~repro.runtime.Executor` under
      ``policy``: bracket endpoints share one stacked call with the
      speculatively evaluated first midpoint, and each bisection round
      batches the midpoint's pending escalation stage with the two next
      possible midpoints, discarding the unused branch.  The reported
      rates normalise the per-run failure fraction by ``cycles`` gate
      cycles (:func:`per_cycle_rate`), so the builder must bake the
      MATCHING cycle count into its circuit — for ``cycles != 1`` pass
      e.g. ``functools.partial(cycle_stage_spec, cycles=3)``, not the
      bare builder.

    Per-stage seeds are spawned deterministically from ``seed`` per
    evaluation *slot* (bracket endpoints, then one slot per bisection
    iteration), so both forms return bit-identical
    :class:`PseudoThreshold` values for the same workload — stacking
    and speculation are execution details, never statistical ones.

    ``store`` (a :class:`~repro.jobs.ResultStore`, spec_builder form
    only) makes the search durable: every stage evaluation is keyed by
    its spec's content, so repeating a search — or re-entering a
    region another search already explored with the same seeds — is
    served from the store instead of simulated, with identical output.
    """
    if (evaluate is None) == (spec_builder is None):
        raise AnalysisError(
            "provide exactly one of evaluate= (sequential) or "
            "spec_builder= (stacked runtime) to find_pseudo_threshold_adaptive"
        )
    # Reject the other form's knob instead of dropping it on the floor:
    # a caller migrating from the PR 3 signature should hear that
    # ``parallel`` became ``policy.parallel``, not silently run serial.
    if spec_builder is not None and parallel is not None:
        raise AnalysisError(
            "parallel= applies to the evaluate= form; for the stacked "
            "search set ExecutionPolicy(parallel=...) via policy="
        )
    if evaluate is not None and policy is not None:
        raise AnalysisError(
            "policy= applies to the spec_builder= form; an evaluate= "
            "callable controls its own execution"
        )
    if evaluate is not None and store is not None:
        raise AnalysisError(
            "store= applies to the spec_builder= form; an opaque "
            "evaluate= callable has no RunSpec for the store to key on"
        )
    if lower is None or upper is None or trials is None:
        raise AnalysisError("lower, upper, and trials are required")
    if not 0 <= lower < upper <= 1:
        raise AnalysisError(f"need 0 <= lower < upper <= 1, got {lower}, {upper}")
    if trials < 1:
        raise AnalysisError(f"trials must be >= 1, got {trials}")
    if spec_builder is not None:
        return _find_pseudo_threshold_stacked(
            spec_builder, lower, upper, trials, iterations, cycles, z, seed,
            policy, store=store,
        )
    stages = _search_stages(trials)
    gate_cycles = 2 * cycles
    seed_tuples = _spawn_stage_seeds(seed, stages, iterations)
    measure = partial(
        _measure_point,
        evaluate=evaluate,
        stages=stages,
        z=z,
        gate_cycles=gate_cycles,
    )
    bracket = sweep(
        measure,
        ((lower, seed_tuples[0]), (upper, seed_tuples[1])),
        parameter="g",
        parallel=parallel,
    )
    (f_low, sign_low, spent_low), (f_high, sign_high, spent_high) = bracket.ys
    _validate_bracket(f_low, sign_low, f_high, sign_high, lower, upper)

    def measure_middle(iteration, low, middle, high):
        _, sign, spent = measure((middle, seed_tuples[2 + iteration]))
        return sign, spent

    return _bisect(
        measure_middle, lower, upper, iterations, spent_low + spent_high
    )


def find_pseudo_threshold(
    error_function: Callable[[float], float],
    lower: float,
    upper: float,
    iterations: int = 12,
    parallel: int | bool | None = None,
) -> PseudoThreshold:
    """Bisection for the crossing ``error_function(g) = g``.

    ``error_function`` must be (statistically) below the identity at
    ``lower`` and above it at ``upper``.  The two bracket validations
    are independent and routed through :func:`~repro.harness.sweep.sweep`;
    ``parallel`` (same semantics as there — workers must be able to
    pickle ``error_function``) evaluates them in separate processes.
    The bisection steps themselves are inherently sequential: each
    midpoint depends on the previous comparison.
    """
    if not 0 <= lower < upper <= 1:
        raise AnalysisError(f"need 0 <= lower < upper <= 1, got {lower}, {upper}")
    bracket = sweep(
        error_function, (lower, upper), parameter="g", parallel=parallel
    )
    f_low, f_high = bracket.ys
    evaluations = 2
    if f_low >= lower:
        raise AnalysisError(
            f"error rate {f_low:.3g} at g={lower:.3g} is not below identity; "
            "lower the bracket"
        )
    if f_high < upper:
        raise AnalysisError(
            f"error rate {f_high:.3g} at g={upper:.3g} is not above identity; "
            "raise the bracket"
        )
    low, high = lower, upper
    for _ in range(iterations):
        middle = (low + high) / 2.0
        if error_function(middle) < middle:
            low = middle
        else:
            high = middle
        evaluations += 1
    return PseudoThreshold(
        estimate=(low + high) / 2.0, bracket=(low, high), evaluations=evaluations
    )
