"""Statistics, sweeps, threshold search, tables, experiment registry."""

from repro.harness.experiments import (
    REGISTRY,
    Experiment,
    ExperimentResult,
    execution_policy,
    run_experiment,
    trial_budget,
)
from repro.harness.stats import RateEstimate, required_trials, wilson_interval
from repro.harness.sweep import (
    SweepResult,
    crossing_index,
    geometric_grid,
    spawn_seeds,
    sweep,
)
from repro.harness.tables import format_table, paper_vs_measured
from repro.harness.threshold_finder import (
    PseudoThreshold,
    cycle_error_specs,
    cycle_stage_spec,
    find_pseudo_threshold,
    find_pseudo_threshold_adaptive,
    logical_error_per_cycle,
    measure_cycle_errors,
    per_cycle_rate,
)

__all__ = [
    "REGISTRY",
    "Experiment",
    "ExperimentResult",
    "execution_policy",
    "run_experiment",
    "trial_budget",
    "RateEstimate",
    "required_trials",
    "wilson_interval",
    "SweepResult",
    "crossing_index",
    "geometric_grid",
    "spawn_seeds",
    "sweep",
    "format_table",
    "paper_vs_measured",
    "PseudoThreshold",
    "cycle_error_specs",
    "cycle_stage_spec",
    "find_pseudo_threshold",
    "find_pseudo_threshold_adaptive",
    "logical_error_per_cycle",
    "measure_cycle_errors",
    "per_cycle_rate",
]
