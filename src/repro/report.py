"""Run every registered experiment and print the full comparison report.

Usage::

    python -m repro.report            # default trial budget
    REPRO_TRIALS=100000 python -m repro.report

This is the one-command regeneration of everything EXPERIMENTS.md
records.
"""

from __future__ import annotations

import sys

from repro.harness.experiments import REGISTRY, run_experiment
from repro.harness.tables import paper_vs_measured
from repro.obs import stopwatch


def main() -> int:
    failures = 0
    for experiment_id in REGISTRY:
        watch = stopwatch()
        result = run_experiment(experiment_id)
        status = "PASS" if result.all_match else "FAIL"
        print(f"[{status}] {experiment_id} ({watch.elapsed_s:.1f}s)")
        print(
            paper_vs_measured(
                result.rows, title=f"{result.experiment_id} — {result.paper_ref}"
            )
        )
        if result.notes:
            print(f"Notes: {result.notes}")
        print()
        if not result.all_match:
            failures += 1
    if failures:
        print(f"{failures} experiment(s) did not match the paper")
        return 1
    print(f"all {len(REGISTRY)} experiments match the paper")
    return 0


if __name__ == "__main__":
    sys.exit(main())
