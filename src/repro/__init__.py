"""repro — a reproduction of *Reversible Fault-Tolerant Logic*.

This package reimplements, from scratch, the system described in
P. O. Boykin and V. P. Roychowdhury, "Reversible Fault-Tolerant Logic"
(DSN 2005, arXiv:cs/0504010):

* :mod:`repro.core` — reversible gates, circuits, and simulators;
* :mod:`repro.noise` — the independent gate-failure model, exhaustive
  fault injection, and a vectorised Monte-Carlo engine;
* :mod:`repro.coding` — the 3-bit repetition code, the majority
  multiplexing error-recovery circuit (Figure 2), transversal logical
  gates, and the concatenation compiler (Figure 3);
* :mod:`repro.local` — near-neighbour variants: the 2D tile layout
  (Figure 4), SWAP routing, interleaving schedules (Figure 6), and the
  fully 1D recovery circuit (Figure 7);
* :mod:`repro.analysis` — closed-form thresholds, error-rate
  recursions, blow-up factors, and the entropy-dissipation bounds of
  Section 4;
* :mod:`repro.baselines` — the unprotected circuit model and a von
  Neumann NAND-multiplexing baseline;
* :mod:`repro.runtime` — the declarative execution layer: frozen
  :class:`~repro.runtime.RunSpec` points, the environment-hydrated
  :class:`~repro.runtime.ExecutionPolicy`, and an
  :class:`~repro.runtime.Executor` that batches points sharing a
  compiled circuit into one stacked bitplane array;
* :mod:`repro.harness` — statistics, sweeps, pseudo-threshold search,
  and the experiment registry that maps every table and figure of the
  paper to reproduction code.

Quickstart::

    from repro.core import run
    from repro.coding import recovery_circuit, OUTPUT_WIRES

    circuit = recovery_circuit()            # Figure 2, nine wires
    noisy_codeword = (1, 0, 1)              # logical 1 with one flip
    output = run(circuit, noisy_codeword + (0,) * 6)
    logical = tuple(output[w] for w in OUTPUT_WIRES)
    assert logical == (1, 1, 1)             # the error was corrected
"""

from repro._version import __version__

__all__ = ["__version__"]
