"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without also catching unrelated
built-in exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GateDefinitionError(ReproError):
    """A gate definition is malformed (not a permutation, bad arity...)."""


class CircuitError(ReproError):
    """A circuit is malformed or an operation is invalid on it."""


class SimulationError(ReproError):
    """A simulation was asked to do something unsupported or inconsistent."""


class ConfigError(SimulationError):
    """A configuration knob has an invalid value.

    Raised when a ``REPRO_*`` environment variable or an
    :class:`~repro.runtime.ExecutionPolicy` field names an unknown
    engine/backend or fails to parse — configuration mistakes must fail
    loudly instead of silently falling back to defaults.  Subclasses
    :class:`SimulationError` so existing handlers keep working.
    """


class CodingError(ReproError):
    """An encoding/decoding operation on a code is invalid."""


class LocalityError(ReproError):
    """A circuit violates the locality constraints of a lattice."""


class AnalysisError(ReproError):
    """An analytic computation received parameters outside its domain."""


class SynthesisError(ReproError):
    """A circuit-synthesis request is malformed or unsatisfiable."""
