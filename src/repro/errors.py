"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without also catching unrelated
built-in exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GateDefinitionError(ReproError):
    """A gate definition is malformed (not a permutation, bad arity...)."""


class CircuitError(ReproError):
    """A circuit is malformed or an operation is invalid on it."""


class SimulationError(ReproError):
    """A simulation was asked to do something unsupported or inconsistent."""


class ConfigError(SimulationError):
    """A configuration knob has an invalid value.

    Raised when a ``REPRO_*`` environment variable or an
    :class:`~repro.runtime.ExecutionPolicy` field names an unknown
    engine/backend or fails to parse — configuration mistakes must fail
    loudly instead of silently falling back to defaults.  Subclasses
    :class:`SimulationError` so existing handlers keep working.
    """


class CodingError(ReproError):
    """An encoding/decoding operation on a code is invalid."""


class LocalityError(ReproError):
    """A circuit violates the locality constraints of a lattice."""


class AnalysisError(ReproError):
    """An analytic computation received parameters outside its domain."""


class SynthesisError(ReproError):
    """A circuit-synthesis request is malformed or unsatisfiable."""


class SerializationError(ReproError):
    """A value cannot be converted to or from its JSON wire form.

    Raised when a :class:`~repro.runtime.RunSpec` (or one of its
    parts: circuit, observable, noise model, seed) is asked to
    round-trip through JSON but carries state with no registered wire
    form — an unpicklable-by-path predicate, a live RNG generator, an
    unregistered decoder type — or when stored JSON declares a format
    version this code does not understand.
    """


class VerificationError(ReproError):
    """A static-verification pass could not interpret its input.

    Raised by the symbolic IR verifier (:mod:`repro.verify`) and the
    GF(2) algebra underneath it (:mod:`repro.core.anf`) when an
    artifact is structurally uninterpretable — a malformed plane
    expression, a table of the wrong size, a kernel plan the symbolic
    interpreter has no model for.  Semantic *mismatches* are not
    exceptions: they are reported as diagnostics, so one broken slot
    cannot hide the others.
    """


class JobError(ReproError):
    """A sweep job or its result store is malformed or inconsistent.

    Covers manifest mismatches (resubmitting a *different* sweep into
    an existing job directory), corrupt or stale result-store entries
    (content digest no longer matching the stored payload), and shard
    checkpoints that fail verification on resume.
    """
