"""The reversible gate abstraction.

A :class:`Gate` is a named permutation of the ``2**arity`` bit patterns
on its wires.  Gates are immutable values: two gates with the same
action compare equal through :meth:`Gate.same_action` regardless of
their names, while ``==`` also requires matching names (so a circuit
census can distinguish ``SWAP3`` from an anonymous 3-bit permutation
with the same action).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.bits import Bits, bits_to_index, bitstring, index_to_bits
from repro.core.permutation import Permutation
from repro.errors import GateDefinitionError


@dataclass(frozen=True)
class Gate:
    """A reversible gate: a named permutation on ``arity`` wires.

    ``table[i]`` gives the output pattern (packed, wire 0 most
    significant) produced by input pattern ``i``.
    """

    name: str
    arity: int
    table: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.arity < 1:
            raise GateDefinitionError(f"gate arity must be >= 1, got {self.arity}")
        expected = 1 << self.arity
        if len(self.table) != expected:
            raise GateDefinitionError(
                f"gate {self.name!r}: table has {len(self.table)} entries, "
                f"expected {expected}"
            )
        # Permutation construction validates bijectivity.
        Permutation(self.table)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def from_permutation(name: str, permutation: Permutation) -> "Gate":
        """Wrap a permutation whose size is a power of two as a gate."""
        size = permutation.size
        arity = size.bit_length() - 1
        if 1 << arity != size:
            raise GateDefinitionError(
                f"permutation size {size} is not a power of two"
            )
        return Gate(name=name, arity=arity, table=permutation.mapping)

    @staticmethod
    def from_function(
        name: str, arity: int, function: Callable[[Bits], Sequence[int]]
    ) -> "Gate":
        """Build a gate from a bit-vector -> bit-vector function.

        The function must be a bijection on bit vectors of the given
        width; violations raise :class:`GateDefinitionError`.
        """
        table = []
        for index in range(1 << arity):
            output = tuple(function(index_to_bits(index, arity)))
            if len(output) != arity:
                raise GateDefinitionError(
                    f"gate {name!r}: function returned {len(output)} bits "
                    f"for arity {arity}"
                )
            table.append(bits_to_index(output))
        return Gate(name=name, arity=arity, table=tuple(table))

    # ------------------------------------------------------------------
    # Action
    # ------------------------------------------------------------------

    @property
    def permutation(self) -> Permutation:
        """The gate's action as an abstract permutation."""
        return Permutation(self.table)

    def apply_index(self, index: int) -> int:
        """Apply the gate to a packed input pattern."""
        return self.table[index]

    def apply(self, bits: Sequence[int]) -> Bits:
        """Apply the gate to a bit vector of length ``arity``."""
        if len(bits) != self.arity:
            raise GateDefinitionError(
                f"gate {self.name!r} expects {self.arity} bits, got {len(bits)}"
            )
        return index_to_bits(self.table[bits_to_index(bits)], self.arity)

    # ------------------------------------------------------------------
    # Derived gates
    # ------------------------------------------------------------------

    def inverse(self, name: str | None = None) -> "Gate":
        """The inverse gate.

        Self-inverse gates keep their name (inverting a SWAP is a
        SWAP); otherwise the default name appends ``⁻¹`` or strips an
        existing one.
        """
        if name is None:
            if self.is_self_inverse():
                return self
            if self.name.endswith("⁻¹"):
                name = self.name[: -len("⁻¹")]
            else:
                name = self.name + "⁻¹"
        return Gate.from_permutation(name, self.permutation.inverse())

    def renamed(self, name: str) -> "Gate":
        """The same action under a different name."""
        return Gate(name=name, arity=self.arity, table=self.table)

    # ------------------------------------------------------------------
    # Properties and comparisons
    # ------------------------------------------------------------------

    def is_self_inverse(self) -> bool:
        """True when applying the gate twice is the identity."""
        return all(self.table[self.table[i]] == i for i in range(len(self.table)))

    def is_identity(self) -> bool:
        """True when the gate does nothing."""
        return self.permutation.is_identity()

    def same_action(self, other: "Gate") -> bool:
        """Name-insensitive equality of gate behaviour."""
        return self.arity == other.arity and self.table == other.table

    def truth_table_rows(self) -> list[tuple[str, str]]:
        """``(input, output)`` bit-string pairs in input order.

        This regenerates Table 1 of the paper when called on ``MAJ``.
        """
        rows = []
        for index, image in enumerate(self.table):
            rows.append(
                (
                    bitstring(index_to_bits(index, self.arity)),
                    bitstring(index_to_bits(image, self.arity)),
                )
            )
        return rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gate({self.name!r}, arity={self.arity})"
