"""GF(2) polynomial algebra for symbolic circuit verification.

The bit-plane lowering of :mod:`repro.core.compiled` turns every gate
into boolean plane expressions; this module provides the *algebraic*
counterpart — multilinear polynomials over GF(2) in algebraic normal
form — so that circuits and their compiled programs can be compared
**symbolically**, with no simulation and no input sampling.

A polynomial is a ``frozenset`` of monomials and a monomial is a
``frozenset`` of variable indices: XOR is symmetric difference (equal
terms cancel in characteristic 2), AND distributes with the same
cancellation, and the empty monomial is the constant 1.  Because the
representation is a canonical form — multilinear, no coefficients, no
term order — two polynomials are semantically equal *iff* the frozensets
are equal, which is what makes equality a proof rather than a test.

The table-to-ANF conversion here is deliberately **independent** of the
Möbius butterfly in :mod:`repro.core.compiled`: it evaluates the
subset-lattice Möbius inversion directly (coefficient of monomial ``S``
is the XOR of the output column over all input patterns supported
inside ``S``).  The verifier in :mod:`repro.verify` compares lowered
programs against tables through *this* path, so a bug in the production
lowering cannot hide by being used on both sides of the comparison.

Bit conventions match the simulator: gate position 0 is the most
significant bit of a packed pattern (see ``_input_bit`` in
:mod:`repro.core.compiled`).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import VerificationError

__all__ = [
    "ONE",
    "Poly",
    "ZERO",
    "circuits_equivalent",
    "constant",
    "evaluate",
    "p_and",
    "p_not",
    "p_or",
    "p_xor",
    "plane_expr_poly",
    "substitute",
    "symbolic_outputs",
    "table_anf",
    "variable",
]

Monomial = frozenset
Poly = frozenset

#: The zero polynomial: an empty XOR.
ZERO: Poly = frozenset()
#: The one polynomial: the empty monomial (product of no variables).
ONE: Poly = frozenset({frozenset()})


def variable(index: int) -> Poly:
    """The polynomial ``x_index``."""
    return frozenset({frozenset({index})})


def constant(bit: int) -> Poly:
    """The constant polynomial 0 or 1."""
    return ONE if bit & 1 else ZERO


def p_xor(*polys: Poly) -> Poly:
    """XOR (sum over GF(2)): symmetric difference of monomial sets."""
    result: frozenset = frozenset()
    for poly in polys:
        result = result ^ poly
    return result


def p_and(a: Poly, b: Poly) -> Poly:
    """AND (product over GF(2)): distribute, cancelling equal terms."""
    counts: dict = {}
    for left in a:
        for right in b:
            merged = left | right
            counts[merged] = counts.get(merged, 0) ^ 1
    return frozenset(m for m, parity in counts.items() if parity)


def p_not(a: Poly) -> Poly:
    """Complement: XOR with the constant 1."""
    return a ^ ONE


def p_or(a: Poly, b: Poly) -> Poly:
    """OR via inclusion-exclusion over GF(2): ``a ^ b ^ ab``."""
    return p_xor(a, b, p_and(a, b))


def evaluate(poly: Poly, bits: Sequence[int]) -> int:
    """Evaluate ``poly`` at a concrete 0/1 assignment."""
    value = 0
    for monomial in poly:
        term = 1
        for index in monomial:
            term &= bits[index] & 1
        value ^= term
    return value


def substitute(poly: Poly, inputs: Sequence[Poly]) -> Poly:
    """Compose: replace variable ``i`` of ``poly`` with ``inputs[i]``."""
    result = ZERO
    for monomial in poly:
        term = ONE
        for index in monomial:
            term = p_and(term, inputs[index])
        result = p_xor(result, term)
    return result


def table_anf(table: Sequence[int], arity: int) -> tuple[Poly, ...]:
    """One ANF polynomial per output position of a permutation table.

    ``table[p]`` is the packed output pattern for packed input ``p``,
    position 0 most significant.  Implemented as the direct Möbius
    inversion over the subset lattice (no shared code with the
    production lowering): the coefficient of monomial ``S`` is the XOR
    of the output bit over every input pattern whose support lies
    inside ``S``.
    """
    size = 1 << arity
    if len(table) != size:
        raise VerificationError(
            f"table has {len(table)} entries, expected {size} for arity {arity}"
        )

    def output_bit(pattern: int, position: int) -> int:
        return (table[pattern] >> (arity - 1 - position)) & 1

    polys = []
    for position in range(arity):
        monomials = set()
        for subset in range(size):
            coefficient = 0
            # Iterate the sub-patterns of ``subset`` directly.
            sub = subset
            while True:
                coefficient ^= output_bit(sub, position)
                if sub == 0:
                    break
                sub = (sub - 1) & subset
            if coefficient:
                monomials.add(
                    frozenset(
                        i for i in range(arity)
                        if (subset >> (arity - 1 - i)) & 1
                    )
                )
        polys.append(frozenset(monomials))
    return tuple(polys)


def plane_expr_poly(expression: tuple, inputs: Sequence[Poly]) -> Poly:
    """Symbolically evaluate one tagged plane expression.

    Mirrors the runtime semantics of
    :func:`repro.core.compiled.apply_plane_program` for each expression
    form (``copy``/``affine``/``anf``/``dnf``) over polynomial inputs.
    Malformed expressions raise :class:`~repro.errors.VerificationError`.
    """
    arity = len(inputs)
    if not isinstance(expression, tuple) or not expression:
        raise VerificationError(f"malformed plane expression: {expression!r}")
    tag = expression[0]
    if tag == "copy":
        (position,) = expression[1:]
        _check_position(position, arity, expression)
        return inputs[position]
    if tag == "affine":
        invert, positions = expression[1], expression[2]
        accumulator = constant(invert)
        for position in positions:
            _check_position(position, arity, expression)
            accumulator = p_xor(accumulator, inputs[position])
        return accumulator
    if tag == "anf":
        invert, monomials = expression[1], expression[2]
        accumulator = constant(invert)
        for monomial in monomials:
            term = ONE
            for position in monomial:
                _check_position(position, arity, expression)
                term = p_and(term, inputs[position])
            accumulator = p_xor(accumulator, term)
        return accumulator
    if tag == "dnf":
        accumulator = ZERO
        for pattern in expression[1]:
            if not 0 <= pattern < (1 << arity):
                raise VerificationError(
                    f"dnf minterm {pattern} out of range in {expression!r}"
                )
            term = ONE
            for position in range(arity):
                literal = inputs[position]
                if not (pattern >> (arity - 1 - position)) & 1:
                    literal = p_not(literal)
                term = p_and(term, literal)
            accumulator = p_or(accumulator, term)
        return accumulator
    raise VerificationError(f"unknown plane expression tag: {expression!r}")


def _check_position(position: object, arity: int, expression: tuple) -> None:
    if not isinstance(position, int) or not 0 <= position < arity:
        raise VerificationError(
            f"position {position!r} out of range for arity {arity} in "
            f"plane expression {expression!r}"
        )


def symbolic_outputs(circuit) -> tuple[Poly, ...]:
    """The circuit's output wires as polynomials in its input wires.

    Runs the circuit gate by gate over a symbolic state whose wire ``w``
    starts as the variable ``x_w``; gates substitute their table ANF
    (via :func:`table_anf`, never the production lowering) and resets
    substitute constants.  Intended for *small* circuits — peephole
    windows, decompositions, single gates — where the composed ANF stays
    tiny; the slot-local verifier in :mod:`repro.verify` exists so that
    deep circuits never need this whole-circuit composition.
    """
    state = [variable(w) for w in range(circuit.n_wires)]
    for op in circuit:
        if op.is_reset:
            for wire in op.wires:
                state[wire] = constant(op.reset_value)
            continue
        gate = op.gate
        inputs = [state[wire] for wire in op.wires]
        outputs = [
            substitute(poly, inputs)
            for poly in table_anf(gate.table, gate.arity)
        ]
        for wire, poly in zip(op.wires, outputs):
            state[wire] = poly
    return tuple(state)


def circuits_equivalent(a, b) -> bool:
    """Whether two circuits compute identical wire functions.

    Compares the canonical ANF of every output wire; equality of the
    frozensets is an exact semantic proof over all ``2**n_wires``
    inputs, not a sampled check.  Circuits on different wire counts are
    never equivalent.
    """
    if a.n_wires != b.n_wires:
        return False
    return symbolic_outputs(a) == symbolic_outputs(b)
