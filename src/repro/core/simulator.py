"""Deterministic simulation of reversible circuits.

Three engines exist, in increasing order of speed:

* :func:`run` — a single-state reference simulator on Python tuples,
  used for exhaustive proofs and anywhere clarity beats speed;
* :class:`BatchedState` (this module) — a NumPy engine holding
  ``(trials, wires)`` uint8 states and applying each gate through a
  lookup table; simple, fully vectorised across trials, and the
  historical default of the Monte-Carlo noise layer;
* :class:`~repro.core.bitplane.BitplaneState` — a bit-parallel engine
  packing 64 trials into each uint64 word and executing gates as the
  boolean plane programs compiled by :mod:`repro.core.compiled`;
  10-50x faster than ``BatchedState`` on large batches and selected by
  the Monte-Carlo layer's ``engine`` flag (see
  :mod:`repro.noise.monte_carlo`, which also documents the per-engine
  RNG-stream caveat).

All engines share the same conventions: wire 0 is the most significant
bit of a packed pattern, and the observation API (``array``,
``column``/``columns``, ``majority_of``) is identical, so predicates
and decoders are engine-agnostic.  ``tests/core/test_engine_equivalence``
holds the differential suite proving the three engines bit-identical.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.bits import Bits, validate_bits
from repro.core.circuit import Circuit, Operation
from repro.core.gate import Gate
from repro.errors import SimulationError


def apply_gate(state: list[int], gate: Gate, wires: Sequence[int]) -> None:
    """Apply ``gate`` to ``state`` in place on the given wires."""
    packed = 0
    for wire in wires:
        packed = (packed << 1) | state[wire]
    packed = gate.table[packed]
    for position, wire in enumerate(wires):
        state[wire] = (packed >> (len(wires) - 1 - position)) & 1


def apply_operation(state: list[int], op: Operation) -> None:
    """Apply one circuit operation (gate or reset) in place."""
    if op.is_reset:
        for wire in op.wires:
            state[wire] = op.reset_value
    else:
        assert op.gate is not None
        apply_gate(state, op.gate, op.wires)


def run(circuit: Circuit, input_bits: Sequence[int]) -> Bits:
    """Run a circuit on one input and return the output bit vector."""
    if len(input_bits) != circuit.n_wires:
        raise SimulationError(
            f"input has {len(input_bits)} bits but circuit has "
            f"{circuit.n_wires} wires"
        )
    validate_bits(input_bits)
    state = list(input_bits)
    for op in circuit:
        apply_operation(state, op)
    return tuple(state)


class BatchedState:
    """A batch of circuit states stored as a ``(trials, wires)`` array.

    The array dtype is uint8 with entries in {0, 1}.  Gates are applied
    by packing the touched columns into an index, mapping through the
    gate's table, and unpacking — fully vectorised across trials.
    """

    def __init__(self, array: np.ndarray):
        if array.ndim != 2:
            raise SimulationError(
                f"batched state must be 2-D (trials, wires), got {array.ndim}-D"
            )
        if array.dtype != np.uint8:
            array = array.astype(np.uint8)
        if array.size and (array.max() > 1):
            raise SimulationError("batched state entries must be 0 or 1")
        self.array = array

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def broadcast(input_bits: Sequence[int], trials: int) -> "BatchedState":
        """All trials start from the same bit vector."""
        validate_bits(input_bits)
        row = np.asarray(input_bits, dtype=np.uint8)
        return BatchedState(np.tile(row, (trials, 1)))

    @staticmethod
    def zeros(n_wires: int, trials: int) -> "BatchedState":
        """All trials start from the all-zero state."""
        return BatchedState(np.zeros((trials, n_wires), dtype=np.uint8))

    @staticmethod
    def from_rows(rows: Sequence[Sequence[int]]) -> "BatchedState":
        """One trial per row of explicit bit vectors."""
        return BatchedState(np.asarray(rows, dtype=np.uint8))

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    @property
    def trials(self) -> int:
        """Number of independent states in the batch."""
        return self.array.shape[0]

    @property
    def n_wires(self) -> int:
        """Number of wires per state."""
        return self.array.shape[1]

    def copy(self) -> "BatchedState":
        """An independent copy of the batch."""
        return BatchedState(self.array.copy())

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------

    def apply_gate(
        self,
        gate: Gate,
        wires: Sequence[int],
        mask: np.ndarray | None = None,
    ) -> None:
        """Apply ``gate`` to every trial (or only trials where ``mask``)."""
        columns = list(wires)
        arity = len(columns)
        packed = np.zeros(self.trials, dtype=np.int64)
        for column in columns:
            packed = (packed << 1) | self.array[:, column]
        table = np.asarray(gate.table, dtype=np.int64)
        mapped = table[packed]
        if mask is not None:
            mapped = np.where(mask, mapped, packed)
        for position, column in enumerate(columns):
            self.array[:, column] = (mapped >> (arity - 1 - position)) & 1

    def reset(
        self,
        wires: Sequence[int],
        value: int = 0,
        mask: np.ndarray | None = None,
    ) -> None:
        """Reset wires to ``value`` on every trial (or only masked trials)."""
        if not len(wires):
            raise SimulationError("reset requires at least one wire")
        if mask is None:
            self.array[:, list(wires)] = value
        else:
            rows = np.nonzero(mask)[0]
            for wire in wires:
                self.array[rows, wire] = value

    def randomize(
        self,
        wires: Sequence[int],
        rng: np.random.Generator,
        mask: np.ndarray | None = None,
    ) -> None:
        """Replace wires with uniform random bits (the paper's fault).

        With ``mask`` given, only masked trials are randomised — this is
        the vectorised form of "the gate fails with probability g".
        """
        columns = list(wires)
        random_bits = rng.integers(0, 2, size=(self.trials, len(columns)), dtype=np.uint8)
        if mask is None:
            self.array[:, columns] = random_bits
        else:
            rows = np.nonzero(mask)[0]
            for offset, wire in enumerate(columns):
                self.array[rows, wire] = random_bits[rows, offset]

    def apply_operation(self, op: Operation) -> None:
        """Apply one noiseless circuit operation to every trial."""
        if op.is_reset:
            self.reset(op.wires, op.reset_value)
        else:
            assert op.gate is not None
            self.apply_gate(op.gate, op.wires)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def column(self, wire: int) -> np.ndarray:
        """The bit values of one wire across all trials."""
        return self.array[:, wire]

    def columns(self, wires: Sequence[int]) -> np.ndarray:
        """A ``(trials, len(wires))`` view of selected wires."""
        return self.array[:, list(wires)]

    def majority_of(self, wires: Sequence[int]) -> np.ndarray:
        """Per-trial majority vote over the selected wires."""
        if not len(wires):
            raise SimulationError("majority requires at least one wire")
        if len(wires) % 2 == 0:
            raise SimulationError("majority requires an odd number of wires")
        selected = self.columns(wires)
        return (selected.sum(axis=1) * 2 > len(wires)).astype(np.uint8)


def run_batched(circuit: Circuit, states: BatchedState) -> BatchedState:
    """Run a circuit noiselessly over a batch, mutating and returning it."""
    if states.n_wires != circuit.n_wires:
        raise SimulationError(
            f"batch has {states.n_wires} wires but circuit has "
            f"{circuit.n_wires}"
        )
    for op in circuit:
        states.apply_operation(op)
    return states
