"""Bit-parallel batched simulation: 64 Monte-Carlo trials per word.

:class:`BitplaneState` is the third simulation engine (after
:func:`~repro.core.simulator.run` and
:class:`~repro.core.simulator.BatchedState`).  It stores the batch
*transposed and packed*: one row of uint64 words per wire, where bit
``t`` of word ``j`` is the wire's value in trial ``64*j + t``.  A gate
application is then a handful of bitwise operations on whole planes —
for the Figure-2 recovery circuit this moves ~12 KB per wire per op
instead of the ~1 MB the uint8 engine touches, which is where the
10-50x Monte-Carlo speedup comes from.

Gates are executed through the plane programs produced by
:mod:`repro.core.compiled` (XOR-affine forms for linear gates, minterm
sums for the rest); :meth:`BitplaneState.majority_of` is likewise fully
bit-parallel via a carry-save binary counter.  The observation API
(``array``, ``column``, ``columns``, ``majority_of``) mirrors
``BatchedState`` exactly, so failure predicates and decoders written
against one engine run unmodified against the other.

Masks: every mutating method accepts either a boolean/uint8 per-trial
mask of shape ``(trials,)`` (the ``BatchedState`` convention) or an
already-packed ``(n_words,)`` uint64 plane; the noise layer passes
packed masks so the hot path never unpacks.

Word layout note: packing goes through ``np.packbits(bitorder="little")``
viewed as native uint64, so trial-to-bit assignment is
platform-consistent on little-endian hosts (x86-64, AArch64) — the only
place layout is observable is the packed planes themselves; all public
observations unpack through the same convention.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.bits import validate_bits
from repro.core.circuit import Circuit, Operation
from repro.core.compiled import (
    ALL_ONES,
    apply_plane_program,
    compile_circuit,
    gate_plane_program,
)
from repro.core.gate import Gate
from repro.errors import SimulationError

#: Trials carried per plane word.
WORD_BITS = 64


def words_for(trials: int) -> int:
    """Number of uint64 words needed to hold ``trials`` bits."""
    return (trials + WORD_BITS - 1) // WORD_BITS


def pack_bool(flags: np.ndarray | Sequence[int]) -> np.ndarray:
    """Pack a ``(trials,)`` 0/1 vector into ``(words_for(trials),)`` uint64."""
    flags = np.asarray(flags, dtype=np.uint8)
    packed_bytes = np.packbits(flags, bitorder="little")
    buffer = np.zeros(words_for(flags.size) * 8, dtype=np.uint8)
    buffer[: packed_bytes.size] = packed_bytes
    return buffer.view(np.uint64)


def unpack_words(words: np.ndarray, trials: int) -> np.ndarray:
    """Unpack uint64 words back into a ``(trials,)`` uint8 0/1 vector."""
    return np.unpackbits(
        np.ascontiguousarray(words).view(np.uint8), count=trials, bitorder="little"
    )


def popcount_words(words: np.ndarray) -> int:
    """Total number of set bits across packed uint64 words."""
    if hasattr(np, "bitwise_count"):
        return int(np.bitwise_count(words).sum(dtype=np.int64))
    # NumPy < 2.0 has no popcount ufunc; unpack instead.
    return int(
        np.unpackbits(np.ascontiguousarray(words).view(np.uint8))
        .sum(dtype=np.int64)
    )


def count_trial_ones(words: np.ndarray, trials: int) -> int:
    """Set bits among the first ``trials`` of a packed plane.

    Masks the padding bits of the final word before counting — the one
    place the padding invariant lives, shared by the per-state
    :meth:`BitplaneState.count_ones` and the stacked per-window decode.
    """
    if trials % WORD_BITS and words.size:
        words = words.copy()
        words[-1] &= np.uint64((1 << (trials % WORD_BITS)) - 1)
    return popcount_words(words)


def mask_from_positions(positions: np.ndarray, n_words: int) -> np.ndarray:
    """A packed mask with exactly the given trial indices set."""
    mask = np.zeros(n_words, dtype=np.uint64)
    positions = np.asarray(positions, dtype=np.int64)
    np.bitwise_or.at(
        mask,
        positions >> 6,
        np.uint64(1) << (positions & 63).astype(np.uint64),
    )
    return mask


class BitplaneState:
    """A batch of circuit states stored as ``(n_wires, n_words)`` planes.

    Mirrors the :class:`~repro.core.simulator.BatchedState` API
    (constructors, evolution, observation) on the packed layout.
    """

    def __init__(self, planes: np.ndarray, trials: int):
        if planes.ndim != 2:
            raise SimulationError(
                f"bit-plane state must be 2-D (wires, words), got {planes.ndim}-D"
            )
        if planes.dtype != np.uint64:
            raise SimulationError(
                f"bit-plane state must be uint64, got {planes.dtype}"
            )
        if trials < 0:
            raise SimulationError(f"trials must be >= 0, got {trials}")
        if planes.shape[1] != words_for(trials):
            raise SimulationError(
                f"{trials} trials need {words_for(trials)} words per plane, "
                f"got {planes.shape[1]}"
            )
        self.planes = planes
        self._trials = trials

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def broadcast(input_bits: Sequence[int], trials: int) -> "BitplaneState":
        """All trials start from the same bit vector."""
        validate_bits(input_bits)
        planes = np.zeros((len(input_bits), words_for(trials)), dtype=np.uint64)
        for wire, bit in enumerate(input_bits):
            if bit:
                planes[wire] = ALL_ONES
        return BitplaneState(planes, trials)

    @staticmethod
    def zeros(n_wires: int, trials: int) -> "BitplaneState":
        """All trials start from the all-zero state."""
        return BitplaneState(
            np.zeros((n_wires, words_for(trials)), dtype=np.uint64), trials
        )

    @staticmethod
    def from_rows(rows: Sequence[Sequence[int]]) -> "BitplaneState":
        """One trial per row of explicit bit vectors."""
        array = np.asarray(rows, dtype=np.uint8)
        if array.ndim != 2:
            raise SimulationError(
                f"rows must form a 2-D (trials, wires) array, got {array.ndim}-D"
            )
        if array.size and array.max() > 1:
            raise SimulationError("bit-plane state entries must be 0 or 1")
        trials, n_wires = array.shape
        planes = np.zeros((n_wires, words_for(trials)), dtype=np.uint64)
        for wire in range(n_wires):
            planes[wire] = pack_bool(array[:, wire])
        return BitplaneState(planes, trials)

    @staticmethod
    def from_batched(batched) -> "BitplaneState":
        """Pack an existing :class:`BatchedState` into planes."""
        return BitplaneState.from_rows(batched.array)

    def to_batched(self):
        """Unpack into a :class:`~repro.core.simulator.BatchedState`."""
        from repro.core.simulator import BatchedState

        return BatchedState(self.array)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    @property
    def trials(self) -> int:
        """Number of independent states in the batch."""
        return self._trials

    @property
    def n_wires(self) -> int:
        """Number of wires per state."""
        return self.planes.shape[0]

    @property
    def n_words(self) -> int:
        """Words per plane (``ceil(trials / 64)``)."""
        return self.planes.shape[1]

    @property
    def array(self) -> np.ndarray:
        """The batch unpacked to ``(trials, wires)`` uint8 — observation only."""
        return self.columns(range(self.n_wires))

    def copy(self) -> "BitplaneState":
        """An independent copy of the batch."""
        return BitplaneState(self.planes.copy(), self._trials)

    # ------------------------------------------------------------------
    # Masks
    # ------------------------------------------------------------------

    def _mask_words(self, mask) -> np.ndarray:
        """Normalise a per-trial or packed mask to packed uint64 words."""
        mask = np.asarray(mask)
        if mask.dtype == np.uint64 and mask.shape == (self.n_words,):
            return mask
        if mask.shape != (self._trials,):
            raise SimulationError(
                f"mask must have shape ({self._trials},) per-trial or "
                f"({self.n_words},) packed, got {mask.shape}"
            )
        return pack_bool(mask)

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------

    def apply_program(
        self,
        program: tuple,
        wires: Sequence[int],
        mask: np.ndarray | None = None,
    ) -> None:
        """Apply a compiled plane program to the given wires."""
        rows = list(wires)
        outputs = apply_plane_program(program, [self.planes[w] for w in rows])
        if mask is None:
            for wire, plane in zip(rows, outputs):
                self.planes[wire] = plane
        else:
            mask = self._mask_words(mask)
            keep = ~mask
            for wire, plane in zip(rows, outputs):
                self.planes[wire] = (plane & mask) | (self.planes[wire] & keep)

    def apply_program_stacked(
        self,
        program: tuple,
        wire_matrix: np.ndarray,
        row_slices: tuple = (),
    ) -> None:
        """Apply one plane program to ``k`` stacked gate instances.

        ``wire_matrix`` has shape ``(k, arity)``; column ``i`` selects
        the planes feeding gate position ``i`` of every instance, so the
        program is evaluated once on ``(k, n_words)`` blocks instead of
        ``k`` times on single planes.  Instances must touch pairwise
        disjoint wires (guaranteed by the fusion pass).

        ``row_slices`` (from :class:`~repro.core.compiled.SlotGroup`)
        replaces the fancy-indexed gather/scatter with plane *views*
        for positions whose wires form an arithmetic progression — the
        transversal and per-codeword patterns always do — so those
        positions move no bytes on input.  All outputs are computed
        before any write-back, so view inputs are safe.
        """
        if wire_matrix.shape[0] == 1:
            self.apply_program(program, wire_matrix[0])
            return
        arity = wire_matrix.shape[1]
        if row_slices:
            inputs = [
                self.planes[row_slices[i]]
                if row_slices[i] is not None
                else self.planes[wire_matrix[:, i]]
                for i in range(arity)
            ]
        else:
            inputs = [self.planes[wire_matrix[:, i]] for i in range(arity)]
        outputs = apply_plane_program(program, inputs)
        for i, block in enumerate(outputs):
            if row_slices and row_slices[i] is not None:
                self.planes[row_slices[i]] = block
            else:
                self.planes[wire_matrix[:, i]] = block

    def apply_gate(
        self,
        gate: Gate,
        wires: Sequence[int],
        mask: np.ndarray | None = None,
    ) -> None:
        """Apply ``gate`` to every trial (or only trials where ``mask``)."""
        self.apply_program(gate_plane_program(gate), wires, mask)

    def reset(
        self,
        wires: Sequence[int],
        value: int = 0,
        mask: np.ndarray | None = None,
    ) -> None:
        """Reset wires to ``value`` on every trial (or only masked trials)."""
        if not len(wires):
            raise SimulationError("reset requires at least one wire")
        rows = list(wires)
        if mask is None:
            self.planes[rows] = ALL_ONES if value else np.uint64(0)
        else:
            mask = self._mask_words(mask)
            if value:
                self.planes[rows] |= mask
            else:
                self.planes[rows] &= ~mask

    def randomize(
        self,
        wires: Sequence[int],
        rng: np.random.Generator,
        mask: np.ndarray | None = None,
    ) -> None:
        """Replace wires with uniform random bits (the paper's fault).

        Draws whole uint64 words from ``rng`` — a deliberately different
        stream layout from ``BatchedState.randomize`` (which draws uint8
        bits per trial), so equal seeds give equal *statistics* across
        engines but not equal realisations.

        With a mask, random words are drawn only for the words that
        actually contain masked trials, so the cost of a sparse fault
        (the Monte-Carlo common case) scales with the number of faulted
        words, not with the batch size.
        """
        rows = list(wires)
        if not rows:
            return
        if mask is None:
            self.planes[rows] = rng.integers(
                0, 2**64, size=(len(rows), self.n_words), dtype=np.uint64
            )
            return
        mask = self._mask_words(mask)
        affected = np.nonzero(mask)[0]
        if affected.size == 0:
            return
        words = rng.integers(
            0, 2**64, size=(len(rows), affected.size), dtype=np.uint64
        )
        select = mask[affected]
        target = np.ix_(rows, affected)
        self.planes[target] = (words & select) | (self.planes[target] & ~select)

    def randomize_stacked(
        self,
        wire_matrix: np.ndarray,
        rng: np.random.Generator | None,
        instance_of: np.ndarray,
        word_of: np.ndarray,
        select: np.ndarray,
        random_words: np.ndarray | None = None,
    ) -> None:
        """Randomize faulted sites of stacked gate instances in one draw.

        ``wire_matrix`` is the ``(k, arity)`` instance layout; the
        remaining arrays describe the ``m`` faulted (instance, word)
        sites: instance index, word index within the plane, and the
        packed bit-select of faulted trials in that word.  One
        ``(arity, m)`` block of random words replaces the selected bits
        on every wire of each faulted instance — the per-slot batched
        counterpart of :meth:`randomize`.

        ``random_words`` supplies a pre-drawn ``(arity, m)`` block
        instead of drawing from ``rng`` — the multi-point executor uses
        this to concatenate many points' sites into one scatter while
        every point's replacement bits still come from its own
        generator.
        """
        arity = wire_matrix.shape[1]
        if random_words is None:
            random_words = rng.integers(
                0, 2**64, size=(arity, instance_of.size), dtype=np.uint64
            )
        rows = wire_matrix.T[:, instance_of]
        if self.planes.flags.c_contiguous:
            flat = self.planes.reshape(-1)
            indices = rows * self.n_words + word_of
            current = flat.take(indices)
            flat.put(indices, (random_words & select) | (current & ~select))
        else:  # pragma: no cover - planes are constructed contiguous
            for position in range(arity):
                wires = rows[position]
                self.planes[wires, word_of] = (
                    random_words[position] & select
                ) | (self.planes[wires, word_of] & ~select)

    def apply_operation(self, op: Operation) -> None:
        """Apply one noiseless circuit operation to every trial."""
        if op.is_reset:
            self.reset(op.wires, op.reset_value)
        else:
            assert op.gate is not None
            self.apply_gate(op.gate, op.wires)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def column(self, wire: int) -> np.ndarray:
        """The bit values of one wire across all trials."""
        return unpack_words(self.planes[wire], self._trials)

    def columns(self, wires: Sequence[int]) -> np.ndarray:
        """A ``(trials, len(wires))`` uint8 array of selected wires."""
        rows = list(wires)
        out = np.empty((self._trials, len(rows)), dtype=np.uint8)
        for index, wire in enumerate(rows):
            out[:, index] = self.column(wire)
        return out

    def majority_plane(self, wires: Sequence[int]) -> np.ndarray:
        """Packed per-trial majority vote over the selected wires.

        Accumulates the selected planes into a carry-save binary counter
        and compares it against ``len(wires) // 2 + 1`` without ever
        unpacking a trial; returns the ``(n_words,)`` packed result
        (padding bits beyond ``trials`` are unspecified).
        """
        if not len(wires):
            raise SimulationError("majority requires at least one wire")
        if len(wires) % 2 == 0:
            raise SimulationError("majority requires an odd number of wires")
        counter: list[np.ndarray] = []  # little-endian sum planes
        for wire in wires:
            carry = self.planes[wire].copy()
            for index in range(len(counter)):
                counter[index], carry = (
                    counter[index] ^ carry,
                    counter[index] & carry,
                )
            counter.append(carry)
        threshold = len(wires) // 2 + 1
        greater = np.zeros(self.n_words, dtype=np.uint64)
        equal = np.full(self.n_words, ALL_ONES, dtype=np.uint64)
        for index in reversed(range(len(counter))):
            plane = counter[index]
            if (threshold >> index) & 1:
                equal = equal & plane
            else:
                greater |= equal & plane
                equal = equal & ~plane
        return greater | equal

    def majority_of(self, wires: Sequence[int]) -> np.ndarray:
        """Per-trial majority vote over the selected wires, bit-parallel."""
        return unpack_words(self.majority_plane(wires), self._trials)

    def count_ones(self, plane: np.ndarray) -> int:
        """Number of set *trial* bits in a packed plane (padding ignored)."""
        return count_trial_ones(plane, self._trials)


def run_bitplane(
    circuit: Circuit, states: BitplaneState, backend: str | None = None
) -> BitplaneState:
    """Run a circuit noiselessly over a bit-plane batch, mutating it.

    ``backend`` selects a registered execution backend (see
    :mod:`repro.backends`); ``None`` keeps the direct compiled-schedule
    path, which is the ``numpy`` backend's implementation.  All
    backends are bit-identical, so the choice is purely a speed knob.
    """
    if states.n_wires != circuit.n_wires:
        raise SimulationError(
            f"batch has {states.n_wires} wires but circuit has "
            f"{circuit.n_wires}"
        )
    compiled = compile_circuit(circuit)
    if backend is None:
        return compiled.run(states)
    # Local import: repro.backends sits above this module in the layer
    # order (it imports the state and the compiler, never vice versa).
    from repro.backends import get_backend

    return get_backend(backend).prepare(compiled).run(states)
