"""Exhaustive (truth-table) evaluation of gates and circuits.

For circuits small enough to enumerate (the guard is 2**20 states), the
whole action can be extracted as a :class:`~repro.core.permutation.Permutation`,
which is how the test-suite and benches prove statements like
"Figure 1's CNOT·CNOT·Toffoli construction *is* the MAJ gate" by
exhaustion rather than by sampling.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.bits import bits_to_index, bitstring, index_to_bits
from repro.core.circuit import Circuit
from repro.core.gate import Gate
from repro.core.permutation import Permutation
from repro.core.simulator import run
from repro.errors import SimulationError

#: Largest wire count we will exhaustively enumerate (2**20 states).
MAX_EXHAUSTIVE_WIRES = 20


def circuit_permutation(circuit: Circuit) -> Permutation:
    """The circuit's action on all ``2**n_wires`` states.

    Raises :class:`SimulationError` for circuits with resets (their
    action is not a permutation) or with too many wires to enumerate.
    """
    if circuit.has_resets:
        raise SimulationError(
            "circuit contains resets; its action is not a permutation"
        )
    if circuit.n_wires > MAX_EXHAUSTIVE_WIRES:
        raise SimulationError(
            f"refusing to enumerate 2**{circuit.n_wires} states "
            f"(limit is 2**{MAX_EXHAUSTIVE_WIRES})"
        )
    width = circuit.n_wires
    mapping = []
    for index in range(1 << width):
        output = run(circuit, index_to_bits(index, width))
        mapping.append(bits_to_index(output))
    return Permutation(tuple(mapping))


def circuit_gate(circuit: Circuit, name: str) -> Gate:
    """Package a reset-free circuit's full action as a single gate."""
    return Gate.from_permutation(name, circuit_permutation(circuit))


def is_reversible(circuit: Circuit) -> bool:
    """True when the circuit's action is a bijection.

    Reset-free circuits are bijections by construction; circuits with
    resets are checked by exhaustive evaluation.
    """
    if not circuit.has_resets:
        return True
    if circuit.n_wires > MAX_EXHAUSTIVE_WIRES:
        raise SimulationError(
            f"refusing to enumerate 2**{circuit.n_wires} states "
            f"(limit is 2**{MAX_EXHAUSTIVE_WIRES})"
        )
    width = circuit.n_wires
    images = set()
    for index in range(1 << width):
        images.add(run(circuit, index_to_bits(index, width)))
    return len(images) == (1 << width)


def truth_table_rows(source: Gate | Circuit) -> list[tuple[str, str]]:
    """``(input, output)`` bit-string rows for a gate or circuit."""
    if isinstance(source, Gate):
        return source.truth_table_rows()
    permutation = circuit_permutation(source)
    width = source.n_wires
    return [
        (
            bitstring(index_to_bits(index, width)),
            bitstring(index_to_bits(permutation.mapping[index], width)),
        )
        for index in range(1 << width)
    ]


def format_truth_table(
    source: Gate | Circuit, headers: Sequence[str] = ("Input", "Output")
) -> str:
    """Render a Table-1-style truth table as fixed-width text."""
    rows = truth_table_rows(source)
    width = max(len(headers[0]), len(headers[1]), len(rows[0][0]))
    lines = [f"{headers[0]:<{width}}  {headers[1]:<{width}}"]
    lines.append("-" * (2 * width + 2))
    for input_bits, output_bits in rows:
        lines.append(f"{input_bits:<{width}}  {output_bits:<{width}}")
    return "\n".join(lines)
