"""Lowering reversible circuits into bit-parallel boolean programs.

A :class:`~repro.core.gate.Gate` is a permutation table; a bit-plane
engine wants each *output wire* of the gate expressed as a boolean
function of the *input wires*, so one gate application becomes a
handful of vectorised AND/OR/XOR/NOT operations on whole 64-trial
words.  This module performs that lowering once per gate:

* :func:`gate_plane_program` converts a gate's truth table into one
  *plane expression* per output position — a wire copy, an XOR-affine
  form (``c ^ x_i ^ x_j ...``, which covers X/CNOT/SWAP exactly), or a
  sum-of-minterms fallback that handles any gate of small arity;
* :class:`CompiledCircuit` flattens a :class:`~repro.core.circuit.Circuit`
  into a schedule of :class:`CompiledOp` records with the plane program,
  reset constants, and fault-injection metadata (the touched wires and
  whether the op draws the gate or the reset error rate) precomputed, so
  the Monte-Carlo inner loop does no per-op Python analysis;
* on top of the flat schedule, the lowering pass *fuses* maximal runs
  of consecutive operations that touch pairwise-disjoint wires and
  share an error class (gate vs reset) into :class:`FusedSlot` records.
  Within a slot, ops with an identical plane program are stacked into
  one :class:`SlotGroup` whose ``(k, arity)`` wire matrix lets the
  engine evaluate the program once over ``k`` gate instances via fancy
  indexing — the transversal gates and per-codeword recovery cycles of
  the fault-tolerant constructions fuse three wide this way.  Because
  the fused ops commute (disjoint wires), executing the slot as a block
  and injecting each op's faults afterwards is bit-identical to the
  sequential schedule; only the *order of RNG draws* changes, which is
  why the noise layer draws one batched fault mask per slot.

Compiled programs are cached process-wide by :func:`compile_circuit`,
keyed on circuit *content* (wire count plus the exact operation
sequence; gates and operations are frozen dataclasses, so equal-content
circuits hash equal even when rebuilt from scratch).  Re-evaluating the
same circuit at different noise levels — every bisection step of the
threshold finder, every sweep point — therefore lowers it exactly once
per process.  Environment knobs: ``REPRO_COMPILE_CACHE=0`` disables the
cache (every call recompiles), ``REPRO_FUSE=0`` disables fusion (every
op becomes its own single-op slot, reproducing the pre-fusion RNG
stream exactly).

The compiled schedule is engine-agnostic data; it is executed by
:class:`~repro.core.bitplane.BitplaneState` (which stores 64 trials per
uint64 word), but the expressions themselves are plain tuples and could
drive any bitwise backend.

Plane-expression forms (tagged tuples):

``("copy", i)``
    output equals input position ``i`` unchanged;
``("affine", invert, positions)``
    output is the XOR of the input positions, complemented when
    ``invert`` is true;
``("anf", invert, monomials)``
    algebraic normal form: the XOR over ``monomials`` (tuples of input
    positions) of the AND of those positions, complemented when
    ``invert`` is true — e.g. the Toffoli target is ``x2 ^ x0·x1`` and
    3-bit majority is ``x0·x1 ^ x0·x2 ^ x1·x2``;
``("dnf", minterms)``
    output is the OR over ``minterms`` (packed input patterns, wire 0
    of the gate most significant) of the full AND of matched literals.

The lowering computes the ANF coefficients by a Möbius transform of
the output column and emits whichever of the nonlinear forms costs
fewer word operations (ANF wins for every gate in the library: it
needs no complemented literals).
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING

import numpy as np

from repro.core.circuit import Circuit
from repro.core.gate import Gate
from repro.errors import SimulationError
from repro.obs import counter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.bitplane import BitplaneState

#: A full uint64 word of ones — the bit-plane "True" constant.
ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

PlaneExpr = tuple


def _input_bit(pattern: int, arity: int, position: int) -> int:
    """Bit of ``pattern`` at wire ``position`` (position 0 = MSB)."""
    return (pattern >> (arity - 1 - position)) & 1


def _try_affine(outputs: list[int], arity: int) -> PlaneExpr | None:
    """An affine-over-GF(2) expression for the output column, if any."""
    constant = outputs[0]
    positions = [
        i for i in range(arity)
        if outputs[1 << (arity - 1 - i)] != constant
    ]
    for pattern in range(1 << arity):
        parity = constant
        for i in positions:
            parity ^= _input_bit(pattern, arity, i)
        if parity != outputs[pattern]:
            return None
    if constant == 0 and len(positions) == 1:
        return ("copy", positions[0])
    return ("affine", bool(constant), tuple(positions))


def _anf_monomials(outputs: list[int], arity: int) -> tuple[bool, tuple[tuple[int, ...], ...]]:
    """Möbius transform: ANF coefficients of the output column.

    Returns ``(invert, monomials)`` where each monomial is a tuple of
    input positions whose AND contributes to the XOR, and ``invert``
    absorbs the empty (constant-1) monomial.
    """
    coefficients = list(outputs)
    size = 1 << arity
    step = 1
    while step < size:
        for block in range(0, size, step * 2):
            for index in range(block, block + step):
                coefficients[index + step] ^= coefficients[index]
        step *= 2
    monomials = []
    invert = bool(coefficients[0])
    for pattern in range(1, size):
        if coefficients[pattern]:
            monomials.append(
                tuple(
                    position
                    for position in range(arity)
                    if _input_bit(pattern, arity, position)
                )
            )
    return invert, tuple(monomials)


def _nonlinear_expression(outputs: list[int], arity: int) -> PlaneExpr:
    """The cheaper of the ANF and minterm forms for a nonlinear column."""
    invert, monomials = _anf_monomials(outputs, arity)
    minterms = tuple(p for p, bit in enumerate(outputs) if bit)
    # Word-op estimates: ANF pays |m|-1 ANDs plus one XOR per monomial;
    # each minterm pays arity ANDs (literals, some complemented) plus
    # one OR.  Complement planes are shared, so they are not counted.
    anf_cost = sum(max(len(m) - 1, 0) + 1 for m in monomials) + int(invert)
    dnf_cost = len(minterms) * (arity + 1)
    if anf_cost <= dnf_cost:
        return ("anf", invert, monomials)
    return ("dnf", minterms)


@lru_cache(maxsize=None)
def gate_plane_program(gate: Gate) -> tuple[PlaneExpr, ...]:
    """One plane expression per output position of ``gate``.

    Cached per gate object (gates are frozen and hashable); the library
    gates therefore compile exactly once per process.
    """
    arity, table = gate.arity, gate.table
    program = []
    for position in range(arity):
        outputs = [
            _input_bit(table[pattern], arity, position)
            for pattern in range(1 << arity)
        ]
        expression = _try_affine(outputs, arity)
        if expression is None:
            expression = _nonlinear_expression(outputs, arity)
        program.append(expression)
    return tuple(program)


def apply_plane_program(
    program: tuple[PlaneExpr, ...], planes: list[np.ndarray]
) -> list[np.ndarray]:
    """Evaluate a gate's plane program on input planes.

    ``planes[i]`` holds the packed bits of the wire at gate position
    ``i``.  Returns freshly allocated output planes (never aliases the
    inputs, so callers may write them back over the input rows in any
    order).
    """
    arity = len(planes)
    negated: dict[int, np.ndarray] = {}

    def complement(position: int) -> np.ndarray:
        if position not in negated:
            negated[position] = ~planes[position]
        return negated[position]

    outputs = []
    for expression in program:
        tag = expression[0]
        if tag == "copy":
            outputs.append(planes[expression[1]].copy())
        elif tag == "affine":
            invert, positions = expression[1], expression[2]
            if positions:
                accumulator = planes[positions[0]].copy()
                for position in positions[1:]:
                    accumulator ^= planes[position]
            else:  # constant output: impossible for reversible gates
                accumulator = np.zeros_like(planes[0])
            if invert:
                np.invert(accumulator, out=accumulator)
            outputs.append(accumulator)
        elif tag == "anf":
            invert, monomials = expression[1], expression[2]
            accumulator = None
            scratch = None
            for monomial in monomials:
                if len(monomial) == 1:
                    term = planes[monomial[0]]
                    if accumulator is None:
                        accumulator = term.copy()
                    else:
                        accumulator ^= term
                    continue
                if accumulator is None:
                    # First AND monomial starts the accumulator fresh.
                    accumulator = planes[monomial[0]] & planes[monomial[1]]
                    for position in monomial[2:]:
                        accumulator &= planes[position]
                    continue
                # Later AND monomials reuse one scratch buffer instead
                # of allocating a temporary per monomial — this runs on
                # whole stacked batches, so allocations are the cost.
                if scratch is None:
                    scratch = np.bitwise_and(
                        planes[monomial[0]], planes[monomial[1]]
                    )
                else:
                    np.bitwise_and(
                        planes[monomial[0]], planes[monomial[1]], out=scratch
                    )
                for position in monomial[2:]:
                    scratch &= planes[position]
                accumulator ^= scratch
            if accumulator is None:  # constant: impossible for reversible gates
                accumulator = np.zeros_like(planes[0])
            if invert:
                np.invert(accumulator, out=accumulator)
            outputs.append(accumulator)
        else:  # "dnf"
            accumulator = np.zeros_like(planes[0])
            scratch = None
            for pattern in expression[1]:
                first = _input_bit(pattern, arity, 0)
                if scratch is None:
                    scratch = (planes[0] if first else complement(0)).copy()
                else:
                    scratch[...] = planes[0] if first else complement(0)
                for position in range(1, arity):
                    if _input_bit(pattern, arity, position):
                        scratch &= planes[position]
                    else:
                        scratch &= complement(position)
                accumulator |= scratch
            outputs.append(accumulator)
    return outputs


@dataclass(frozen=True)
class CompiledOp:
    """One schedule slot: a lowered gate or a reset, plus fault metadata.

    ``wires`` doubles as the fault-injection point — a failing op
    randomises exactly these wires — and ``is_reset`` selects which
    error rate of the noise model applies.
    """

    wires: tuple[int, ...]
    is_reset: bool
    reset_value: int = 0
    program: tuple[PlaneExpr, ...] | None = None


@dataclass(frozen=True, eq=False)
class SlotGroup:
    """Ops of one slot sharing a plane program, stacked for one apply.

    ``wire_matrix`` has shape ``(k, arity)``: row ``j`` holds the wires
    of the ``j``-th stacked gate instance.  Fancy-indexing the state's
    planes with a column of this matrix yields a ``(k, n_words)`` block,
    so the whole group costs one program evaluation regardless of ``k``.

    ``row_slices`` holds one ``slice`` per gate position whenever that
    position's wires form an arithmetic progression with positive step
    (the transversal and per-codeword patterns always do — stride 9),
    letting the engine gather and scatter plane *views* instead of
    fancy-indexed copies; positions that don't qualify carry ``None``.
    """

    program: tuple[PlaneExpr, ...]
    wire_matrix: np.ndarray
    row_slices: tuple[slice | None, ...] = ()


def _column_slices(wire_matrix: np.ndarray) -> tuple[slice | None, ...]:
    """A basic-slice view per wire-matrix column, where one exists."""
    k = wire_matrix.shape[0]
    slices: list[slice | None] = []
    for column in wire_matrix.T:
        if k == 1:
            slices.append(slice(int(column[0]), int(column[0]) + 1))
            continue
        step = int(column[1]) - int(column[0])
        if step > 0 and all(
            int(column[j + 1]) - int(column[j]) == step for j in range(k - 1)
        ):
            start = int(column[0])
            slices.append(slice(start, start + k * step, step))
        else:
            slices.append(None)
    return tuple(slices)


@dataclass(frozen=True, eq=False)
class FusedSlot:
    """A maximal run of consecutive, wire-disjoint, same-class ops.

    ``ops`` keeps the original order (it is the fault-injection
    metadata: each op still fails independently on its own wires);
    ``groups`` partitions gate ops by identical program for stacked
    execution; ``resets`` partitions reset ops by reset value so each
    value costs a single plane assignment.  ``op_group``/``op_row`` map
    a slot-op index to its group and its row in that group's wire
    matrix, so the noise layer can scatter one batched fault draw back
    onto the right gate instances.
    """

    is_reset: bool
    ops: tuple[CompiledOp, ...]
    groups: tuple[SlotGroup, ...] = ()
    resets: tuple[tuple[int, tuple[int, ...]], ...] = ()
    op_group: np.ndarray | None = None
    op_row: np.ndarray | None = None
    #: Ops of the same error class (gate vs reset) in slots before this
    #: one — the slot's offset into the circuit-level batched fault draw.
    class_offset: int = 0


def _build_slot(ops: list[CompiledOp], class_offset: int = 0) -> FusedSlot:
    # Group ops for stacked execution and stacked fault injection: gate
    # ops by identical plane program, reset ops by wire count (their
    # "program" key is the empty tuple — fault injection only needs the
    # uniform wire matrix).
    by_key: dict[tuple, list[tuple[int, ...]]] = {}
    op_group = np.empty(len(ops), dtype=np.intp)
    op_row = np.empty(len(ops), dtype=np.intp)
    order: list[tuple] = []
    for index, op in enumerate(ops):
        key: tuple = ((), len(op.wires)) if op.is_reset else op.program  # type: ignore[assignment]
        rows = by_key.setdefault(key, [])
        if not rows:
            order.append(key)
        op_group[index] = order.index(key)
        op_row[index] = len(rows)
        rows.append(op.wires)
    groups = tuple(
        SlotGroup(
            program=key if not ops[0].is_reset else (),
            wire_matrix=(matrix := np.asarray(by_key[key], dtype=np.intp)),
            row_slices=_column_slices(matrix),
        )
        for key in order
    )
    resets: tuple[tuple[int, tuple[int, ...]], ...] = ()
    if ops[0].is_reset:
        by_value: dict[int, list[int]] = {}
        for op in ops:
            by_value.setdefault(op.reset_value, []).extend(op.wires)
        resets = tuple((value, tuple(wires)) for value, wires in by_value.items())
    return FusedSlot(
        is_reset=ops[0].is_reset,
        ops=tuple(ops),
        groups=groups,
        resets=resets,
        op_group=op_group,
        op_row=op_row,
        class_offset=class_offset,
    )


def fuse_schedule(
    schedule: tuple[CompiledOp, ...], fuse: bool = True
) -> tuple[FusedSlot, ...]:
    """Greedily fuse consecutive disjoint same-class ops into slots.

    An op joins the open slot only when its wires are disjoint from
    every wire the slot already touches (so the fused block is
    order-independent) and it draws the same error rate class; anything
    else flushes the slot.  ``fuse=False`` flushes after every op —
    single-op slots through the same path, so the ``class_offset``
    bookkeeping has exactly one implementation.
    """
    slots: list[FusedSlot] = []
    pending: list[CompiledOp] = []
    touched: set[int] = set()
    class_counts = {False: 0, True: 0}

    def flush() -> None:
        slot = _build_slot(pending, class_offset=class_counts[pending[0].is_reset])
        class_counts[slot.is_reset] += len(slot.ops)
        slots.append(slot)

    for op in schedule:
        fits = (
            fuse
            and pending
            and op.is_reset == pending[0].is_reset
            and touched.isdisjoint(op.wires)
        )
        if not fits and pending:
            flush()
            pending, touched = [], set()
        pending.append(op)
        touched.update(op.wires)
    if pending:
        flush()
    return tuple(slots)


class CompiledCircuit:
    """A circuit flattened into a bit-parallel execution schedule.

    ``schedule`` is the flat per-op lowering; ``slots`` is the fused
    view executed by the engines (with ``fuse=False`` every op becomes
    its own single-op slot).
    """

    def __init__(self, circuit: Circuit, fuse: bool = True):
        self.n_wires = circuit.n_wires
        self.name = circuit.name
        self.fused = fuse
        schedule = []
        for op in circuit:
            if op.is_reset:
                schedule.append(
                    CompiledOp(op.wires, is_reset=True, reset_value=op.reset_value)
                )
            else:
                assert op.gate is not None
                schedule.append(
                    CompiledOp(
                        op.wires,
                        is_reset=False,
                        program=gate_plane_program(op.gate),
                    )
                )
        self.schedule: tuple[CompiledOp, ...] = tuple(schedule)
        self.n_gate_ops = sum(1 for op in schedule if not op.is_reset)
        self.n_reset_ops = len(schedule) - self.n_gate_ops
        self.slots: tuple[FusedSlot, ...] = fuse_schedule(self.schedule, fuse=fuse)
        #: Per-backend prepared executables, keyed on
        #: :meth:`repro.backends.PlaneBackend.prepare_key` and filled
        #: lazily by :meth:`~repro.backends.PlaneBackend.prepare` — the
        #: compiled circuit is the natural cache scope, so a circuit
        #: lowered once is also prepared at most once per backend.
        self.prepared: dict[str, object] = {}

    def __len__(self) -> int:
        return len(self.schedule)

    def run(self, state: "BitplaneState") -> "BitplaneState":
        """Run the schedule noiselessly, mutating and returning ``state``."""
        if state.n_wires != self.n_wires:
            raise SimulationError(
                f"bit-plane state has {state.n_wires} wires but compiled "
                f"circuit has {self.n_wires}"
            )
        for slot in self.slots:
            if slot.is_reset:
                for value, wires in slot.resets:
                    state.reset(wires, value)
            else:
                for group in slot.groups:
                    state.apply_program_stacked(
                        group.program, group.wire_matrix, group.row_slices
                    )
        return state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"CompiledCircuit({self.n_wires} wires,{label} "
            f"{len(self)} ops in {len(self.slots)} slots)"
        )


# ----------------------------------------------------------------------
# Process-wide compile cache
# ----------------------------------------------------------------------


def compile_cache_enabled() -> bool:
    """Whether compiled circuits are cached (``REPRO_COMPILE_CACHE``)."""
    return os.environ.get("REPRO_COMPILE_CACHE", "1") != "0"


def fusion_enabled() -> bool:
    """Whether the lowering pass fuses disjoint ops (``REPRO_FUSE``)."""
    return os.environ.get("REPRO_FUSE", "1") != "0"


#: Default entry bound of the process-wide compile cache.  Sweeps and
#: bisections reuse a handful of circuits; the bound only matters for
#: long-lived processes streaming many *distinct* circuits (e.g. the
#: random-circuit differential suites), where it caps memory at a few
#: hundred compiled programs via least-recently-used eviction.
COMPILE_CACHE_MAX_ENTRIES = 256


# Process-wide compile-cache metrics (repro.obs).  Dual-accounted:
# each CompileCache instance keeps its own ints (the stats()/clear()
# contract existing callers and tests rely on) while the registry
# counters aggregate monotonically across every instance and never
# reset with the cache.
_CACHE_HITS = counter("compile.cache.hit")
_CACHE_MISSES = counter("compile.cache.miss")


class CompileCache:
    """Content-keyed LRU cache of :class:`CompiledCircuit` with counters."""

    def __init__(self, max_entries: int = COMPILE_CACHE_MAX_ENTRIES) -> None:
        self._entries: dict[tuple, CompiledCircuit] = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def get(self, circuit: Circuit, fuse: bool) -> CompiledCircuit:
        # The public content key plus the fusion flag: two circuits
        # built independently but op-for-op identical share one cache
        # entry, while any mutation misses; fused and unfused programs
        # are distinct entries.
        key = (circuit.content_key(), fuse)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            _CACHE_HITS.inc()
            # dicts iterate in insertion order; re-inserting keeps the
            # eviction order least-recently-used.
            self._entries[key] = self._entries.pop(key)
            return cached
        self.misses += 1
        _CACHE_MISSES.inc()
        compiled = CompiledCircuit(circuit, fuse=fuse)
        self._entries[key] = compiled
        while len(self._entries) > self.max_entries:
            self._entries.pop(next(iter(self._entries)))
        return compiled

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._entries),
        }


#: The process-wide cache used by :func:`compile_circuit`.
_COMPILE_CACHE = CompileCache()


def compile_circuit(
    circuit: Circuit, fuse: bool | None = None, cache: bool | None = None
) -> CompiledCircuit:
    """Compile ``circuit``, reusing the process-wide cache when enabled.

    ``fuse=None`` follows ``REPRO_FUSE`` and ``cache=None`` follows
    ``REPRO_COMPILE_CACHE`` (both default on); explicit booleans — the
    way :class:`~repro.runtime.ExecutionPolicy` calls — bypass the
    environment reads entirely.  With caching off every call
    recompiles; results are bit-identical either way — the cache only
    skips redundant lowering.
    """
    if fuse is None:
        fuse = fusion_enabled()
    if cache is None:
        cache = compile_cache_enabled()
    if not cache:
        return CompiledCircuit(circuit, fuse=fuse)
    return _COMPILE_CACHE.get(circuit, fuse)


def warm_compile_cache(
    circuits: Sequence[Circuit], fuse: bool | None = None
) -> None:
    """Pre-compile ``circuits`` into the process-wide cache.

    The worker warm path for pooled execution: passed (via
    :func:`functools.partial`, which pickles cleanly) as a process-pool
    ``initializer``, every worker compiles each distinct circuit
    exactly once up front, and every point it subsequently evaluates is
    a compile-cache *hit* — the pool never recompiles per point.  With
    the cache disabled by ``REPRO_COMPILE_CACHE=0`` this is a no-op:
    warming a cache that will not be consulted would hide the knob's
    cost signal.
    """
    if not compile_cache_enabled():
        return
    for circuit in circuits:
        compile_circuit(circuit, fuse=fuse)


def compile_cache_stats() -> dict[str, int]:
    """Hit/miss/size counters of the process-wide compile cache."""
    return _COMPILE_CACHE.stats()


def clear_compile_cache() -> None:
    """Empty the process-wide compile cache and zero its counters."""
    _COMPILE_CACHE.clear()
