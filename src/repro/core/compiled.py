"""Lowering reversible circuits into bit-parallel boolean programs.

A :class:`~repro.core.gate.Gate` is a permutation table; a bit-plane
engine wants each *output wire* of the gate expressed as a boolean
function of the *input wires*, so one gate application becomes a
handful of vectorised AND/OR/XOR/NOT operations on whole 64-trial
words.  This module performs that lowering once per gate:

* :func:`gate_plane_program` converts a gate's truth table into one
  *plane expression* per output position — a wire copy, an XOR-affine
  form (``c ^ x_i ^ x_j ...``, which covers X/CNOT/SWAP exactly), or a
  sum-of-minterms fallback that handles any gate of small arity;
* :class:`CompiledCircuit` flattens a :class:`~repro.core.circuit.Circuit`
  into a schedule of :class:`CompiledOp` records with the plane program,
  reset constants, and fault-injection metadata (the touched wires and
  whether the op draws the gate or the reset error rate) precomputed, so
  the Monte-Carlo inner loop does no per-op Python analysis.

The compiled schedule is engine-agnostic data; it is executed by
:class:`~repro.core.bitplane.BitplaneState` (which stores 64 trials per
uint64 word), but the expressions themselves are plain tuples and could
drive any bitwise backend.

Plane-expression forms (tagged tuples):

``("copy", i)``
    output equals input position ``i`` unchanged;
``("affine", invert, positions)``
    output is the XOR of the input positions, complemented when
    ``invert`` is true;
``("dnf", minterms)``
    output is the OR over ``minterms`` (packed input patterns, wire 0
    of the gate most significant) of the full AND of matched literals.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING

import numpy as np

from repro.core.circuit import Circuit
from repro.core.gate import Gate
from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.bitplane import BitplaneState

#: A full uint64 word of ones — the bit-plane "True" constant.
ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

PlaneExpr = tuple


def _input_bit(pattern: int, arity: int, position: int) -> int:
    """Bit of ``pattern`` at wire ``position`` (position 0 = MSB)."""
    return (pattern >> (arity - 1 - position)) & 1


def _try_affine(outputs: list[int], arity: int) -> PlaneExpr | None:
    """An affine-over-GF(2) expression for the output column, if any."""
    constant = outputs[0]
    positions = [
        i for i in range(arity)
        if outputs[1 << (arity - 1 - i)] != constant
    ]
    for pattern in range(1 << arity):
        parity = constant
        for i in positions:
            parity ^= _input_bit(pattern, arity, i)
        if parity != outputs[pattern]:
            return None
    if constant == 0 and len(positions) == 1:
        return ("copy", positions[0])
    return ("affine", bool(constant), tuple(positions))


@lru_cache(maxsize=None)
def gate_plane_program(gate: Gate) -> tuple[PlaneExpr, ...]:
    """One plane expression per output position of ``gate``.

    Cached per gate object (gates are frozen and hashable); the library
    gates therefore compile exactly once per process.
    """
    arity, table = gate.arity, gate.table
    program = []
    for position in range(arity):
        outputs = [
            _input_bit(table[pattern], arity, position)
            for pattern in range(1 << arity)
        ]
        expression = _try_affine(outputs, arity)
        if expression is None:
            expression = (
                "dnf",
                tuple(p for p, bit in enumerate(outputs) if bit),
            )
        program.append(expression)
    return tuple(program)


def apply_plane_program(
    program: tuple[PlaneExpr, ...], planes: list[np.ndarray]
) -> list[np.ndarray]:
    """Evaluate a gate's plane program on input planes.

    ``planes[i]`` holds the packed bits of the wire at gate position
    ``i``.  Returns freshly allocated output planes (never aliases the
    inputs, so callers may write them back over the input rows in any
    order).
    """
    arity = len(planes)
    negated: dict[int, np.ndarray] = {}

    def complement(position: int) -> np.ndarray:
        if position not in negated:
            negated[position] = ~planes[position]
        return negated[position]

    outputs = []
    for expression in program:
        tag = expression[0]
        if tag == "copy":
            outputs.append(planes[expression[1]].copy())
        elif tag == "affine":
            invert, positions = expression[1], expression[2]
            if positions:
                accumulator = planes[positions[0]].copy()
                for position in positions[1:]:
                    accumulator ^= planes[position]
            else:  # constant output: impossible for reversible gates
                accumulator = np.zeros_like(planes[0])
            if invert:
                np.invert(accumulator, out=accumulator)
            outputs.append(accumulator)
        else:  # "dnf"
            accumulator = np.zeros_like(planes[0])
            for pattern in expression[1]:
                term = np.full_like(planes[0], ALL_ONES)
                for position in range(arity):
                    if _input_bit(pattern, arity, position):
                        term &= planes[position]
                    else:
                        term &= complement(position)
                accumulator |= term
            outputs.append(accumulator)
    return outputs


@dataclass(frozen=True)
class CompiledOp:
    """One schedule slot: a lowered gate or a reset, plus fault metadata.

    ``wires`` doubles as the fault-injection point — a failing op
    randomises exactly these wires — and ``is_reset`` selects which
    error rate of the noise model applies.
    """

    wires: tuple[int, ...]
    is_reset: bool
    reset_value: int = 0
    program: tuple[PlaneExpr, ...] | None = None


class CompiledCircuit:
    """A circuit flattened into a bit-parallel execution schedule."""

    def __init__(self, circuit: Circuit):
        self.n_wires = circuit.n_wires
        self.name = circuit.name
        schedule = []
        for op in circuit:
            if op.is_reset:
                schedule.append(
                    CompiledOp(op.wires, is_reset=True, reset_value=op.reset_value)
                )
            else:
                assert op.gate is not None
                schedule.append(
                    CompiledOp(
                        op.wires,
                        is_reset=False,
                        program=gate_plane_program(op.gate),
                    )
                )
        self.schedule: tuple[CompiledOp, ...] = tuple(schedule)

    def __len__(self) -> int:
        return len(self.schedule)

    def run(self, state: "BitplaneState") -> "BitplaneState":
        """Run the schedule noiselessly, mutating and returning ``state``."""
        if state.n_wires != self.n_wires:
            raise SimulationError(
                f"bit-plane state has {state.n_wires} wires but compiled "
                f"circuit has {self.n_wires}"
            )
        for op in self.schedule:
            if op.is_reset:
                state.reset(op.wires, op.reset_value)
            else:
                assert op.program is not None
                state.apply_program(op.program, op.wires)
        return state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return f"CompiledCircuit({self.n_wires} wires,{label} {len(self)} ops)"
