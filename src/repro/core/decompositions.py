"""Standard decompositions between the library's gates.

The paper builds ``MAJ`` from two CNOTs and a Toffoli (Figure 1) and
``SWAP3`` from two SWAPs (Figure 5).  This module collects those and
the other classic inter-gate constructions, each as a concrete
:class:`~repro.core.circuit.Circuit` whose action is *verified by
exhaustion* in the test-suite.  They are useful when a target
technology offers only part of the gate set.
"""

from __future__ import annotations

from repro.core.circuit import Circuit
from repro.core import library
from repro.core.gate import Gate


def maj_circuit() -> Circuit:
    """Figure 1: ``MAJ`` from two CNOTs and one Toffoli."""
    return Circuit(3, name="MAJ-from-CNOT-Toffoli").cnot(0, 1).cnot(0, 2).toffoli(1, 2, 0)


def maj_inv_circuit() -> Circuit:
    """``MAJ⁻¹`` as the reversed Figure-1 construction."""
    return maj_circuit().inverse(name="MAJ⁻¹-from-CNOT-Toffoli")


def toffoli_from_maj_circuit() -> Circuit:
    """Toffoli (controls wires 1,2; target wire 0) from MAJ and CNOTs.

    Inverting Figure 1: ``TOFFOLI = MAJ ∘ CNOT(0,2)⁻¹ ∘ CNOT(0,1)⁻¹``.
    """
    return (
        Circuit(3, name="Toffoli-from-MAJ").cnot(0, 2).cnot(0, 1).maj(0, 1, 2)
    )


def swap_from_cnots_circuit() -> Circuit:
    """SWAP from three alternating CNOTs."""
    return Circuit(2, name="SWAP-from-CNOTs").cnot(0, 1).cnot(1, 0).cnot(0, 1)


def swap3_up_circuit() -> Circuit:
    """Figure 5: the upward rotation from two adjacent SWAPs."""
    return Circuit(3, name="SWAP3-up-from-SWAPs").swap(1, 2).swap(0, 1)


def swap3_down_circuit() -> Circuit:
    """The downward rotation from two adjacent SWAPs."""
    return Circuit(3, name="SWAP3-down-from-SWAPs").swap(0, 1).swap(1, 2)


def fredkin_from_toffoli_circuit() -> Circuit:
    """Controlled-SWAP from a Toffoli conjugated by CNOTs."""
    return (
        Circuit(3, name="Fredkin-from-Toffoli")
        .cnot(2, 1)
        .toffoli(0, 1, 2)
        .cnot(2, 1)
    )


def nand_via_maj_inv_circuit() -> Circuit:
    """The 3/2-bit-optimal NAND of Section 4, footnote 4.

    Feed ``(1, a, b)``; after the circuit wire 0 holds ``NAND(a, b)``
    and wires 1, 2 carry the 1.5 bits of entropy to be discarded.
    """
    return Circuit(3, name="NAND-via-MAJ⁻¹").maj_inv(0, 1, 2)


#: Every decomposition, mapped to the gate it must reproduce (the
#: Toffoli entry targets wires (1, 2, 0), noted in its builder).
DECOMPOSITIONS: dict[str, tuple[Circuit, Gate, tuple[int, ...]]] = {
    "maj": (maj_circuit(), library.MAJ, (0, 1, 2)),
    "maj_inv": (maj_inv_circuit(), library.MAJ_INV, (0, 1, 2)),
    "toffoli": (toffoli_from_maj_circuit(), library.TOFFOLI, (1, 2, 0)),
    "swap": (swap_from_cnots_circuit(), library.SWAP, (0, 1)),
    "swap3_up": (swap3_up_circuit(), library.SWAP3_UP, (0, 1, 2)),
    "swap3_down": (swap3_down_circuit(), library.SWAP3_DOWN, (0, 1, 2)),
    "fredkin": (fredkin_from_toffoli_circuit(), library.FREDKIN, (0, 1, 2)),
}
