"""Reversible circuits as ordered sequences of operations on wires.

The paper's gate-array picture (space on the y-axis, time on the
x-axis) maps directly onto :class:`Circuit`: wires are fixed bit
locations and operations are applied left to right.  Two kinds of
operation exist:

* **gate** operations — a :class:`~repro.core.gate.Gate` applied to a
  tuple of distinct wires;
* **reset** operations — re-initialisation of a tuple of wires to a
  constant, modelling the paper's 3-bit ancilla initialisations (the
  only irreversible primitive, and the mechanism by which entropy
  leaves the computer).

Circuits compose (``+``), invert (when reset-free), remap onto other
wire sets, and tensor side by side; they also provide the op census
used by the threshold accounting.
"""

from __future__ import annotations

import enum
from collections import Counter
from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass, field

from repro.core import library
from repro.core.gate import Gate
from repro.errors import CircuitError


class OpKind(enum.Enum):
    """The two kinds of circuit operation."""

    GATE = "gate"
    RESET = "reset"


@dataclass(frozen=True)
class Operation:
    """One column of the gate array: a gate or a reset on some wires."""

    kind: OpKind
    wires: tuple[int, ...]
    gate: Gate | None = None
    reset_value: int = 0

    def __post_init__(self) -> None:
        if len(set(self.wires)) != len(self.wires):
            raise CircuitError(f"operation wires must be distinct: {self.wires}")
        if not self.wires:
            raise CircuitError("operation must touch at least one wire")
        if self.kind is OpKind.GATE:
            if self.gate is None:
                raise CircuitError("gate operation requires a gate")
            if self.gate.arity != len(self.wires):
                raise CircuitError(
                    f"gate {self.gate.name!r} has arity {self.gate.arity} but "
                    f"was applied to {len(self.wires)} wires"
                )
        else:
            if self.gate is not None:
                raise CircuitError("reset operation must not carry a gate")
            if self.reset_value not in (0, 1):
                raise CircuitError(
                    f"reset value must be 0 or 1, got {self.reset_value!r}"
                )

    @property
    def is_gate(self) -> bool:
        """True for gate operations."""
        return self.kind is OpKind.GATE

    @property
    def is_reset(self) -> bool:
        """True for reset operations."""
        return self.kind is OpKind.RESET

    @property
    def label(self) -> str:
        """Display/census name: the gate name, or ``RESET``."""
        if self.is_gate:
            assert self.gate is not None
            return self.gate.name
        return "RESET"

    def remapped(self, mapping: Mapping[int, int]) -> "Operation":
        """The same operation on relabelled wires."""
        try:
            wires = tuple(mapping[w] for w in self.wires)
        except KeyError as exc:
            raise CircuitError(f"wire {exc.args[0]} missing from remapping") from exc
        return Operation(
            kind=self.kind, wires=wires, gate=self.gate, reset_value=self.reset_value
        )


@dataclass
class Circuit:
    """An ordered list of operations on ``n_wires`` wires.

    The mutating ``append_*`` helpers return ``self`` so circuits can be
    built fluently::

        circuit = Circuit(3).cnot(0, 1).cnot(0, 2).toffoli(1, 2, 0)
    """

    n_wires: int
    name: str = ""
    _ops: list[Operation] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_wires < 1:
            raise CircuitError(f"circuit needs >= 1 wire, got {self.n_wires}")
        for op in self._ops:
            self._validate(op)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _validate(self, op: Operation) -> None:
        for wire in op.wires:
            if not 0 <= wire < self.n_wires:
                raise CircuitError(
                    f"wire {wire} out of range for circuit with "
                    f"{self.n_wires} wires"
                )

    def append(self, op: Operation) -> "Circuit":
        """Append a pre-built operation."""
        self._validate(op)
        self._ops.append(op)
        return self

    def append_gate(self, gate: Gate, *wires: int) -> "Circuit":
        """Append ``gate`` applied to ``wires`` (in gate-wire order)."""
        return self.append(Operation(kind=OpKind.GATE, wires=tuple(wires), gate=gate))

    def append_reset(self, *wires: int, value: int = 0) -> "Circuit":
        """Append a reset of ``wires`` to ``value``."""
        return self.append(
            Operation(kind=OpKind.RESET, wires=tuple(wires), reset_value=value)
        )

    # Named conveniences for the standard library ----------------------

    def x(self, wire: int) -> "Circuit":
        """NOT on one wire."""
        return self.append_gate(library.X, wire)

    def cnot(self, control: int, target: int) -> "Circuit":
        """Controlled NOT."""
        return self.append_gate(library.CNOT, control, target)

    def swap(self, a: int, b: int) -> "Circuit":
        """Exchange two wires."""
        return self.append_gate(library.SWAP, a, b)

    def toffoli(self, control_a: int, control_b: int, target: int) -> "Circuit":
        """Doubly-controlled NOT."""
        return self.append_gate(library.TOFFOLI, control_a, control_b, target)

    def fredkin(self, control: int, a: int, b: int) -> "Circuit":
        """Controlled SWAP."""
        return self.append_gate(library.FREDKIN, control, a, b)

    def swap3_down(self, a: int, b: int, c: int) -> "Circuit":
        """Two-SWAP rotation ``(a,b,c) -> (b,c,a)`` (Figure 5)."""
        return self.append_gate(library.SWAP3_DOWN, a, b, c)

    def swap3_up(self, a: int, b: int, c: int) -> "Circuit":
        """Two-SWAP rotation ``(a,b,c) -> (c,a,b)`` (Figure 5, reversed)."""
        return self.append_gate(library.SWAP3_UP, a, b, c)

    def maj(self, q0: int, q1: int, q2: int) -> "Circuit":
        """The reversible majority gate of Table 1."""
        return self.append_gate(library.MAJ, q0, q1, q2)

    def maj_inv(self, q0: int, q1: int, q2: int) -> "Circuit":
        """The inverse majority gate (encoder/fan-out)."""
        return self.append_gate(library.MAJ_INV, q0, q1, q2)

    # ------------------------------------------------------------------
    # Sequence behaviour
    # ------------------------------------------------------------------

    @property
    def ops(self) -> tuple[Operation, ...]:
        """The operations, in time order."""
        return tuple(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops)

    def __getitem__(self, item: int | slice) -> "Operation | Circuit":
        if isinstance(item, slice):
            return Circuit(self.n_wires, name=self.name, _ops=list(self._ops[item]))
        return self._ops[item]

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def copy(self, name: str | None = None) -> "Circuit":
        """A shallow copy (operations are immutable)."""
        return Circuit(
            self.n_wires,
            name=self.name if name is None else name,
            _ops=list(self._ops),
        )

    def __add__(self, other: "Circuit") -> "Circuit":
        if other.n_wires != self.n_wires:
            raise CircuitError(
                f"cannot concatenate circuits on {self.n_wires} and "
                f"{other.n_wires} wires"
            )
        return Circuit(
            self.n_wires,
            name=self.name or other.name,
            _ops=list(self._ops) + list(other._ops),
        )

    def inverse(self, name: str | None = None) -> "Circuit":
        """Reverse the circuit, inverting each gate.

        Resets are irreversible, so inverting a circuit containing them
        raises :class:`CircuitError`.
        """
        inverted = Circuit(
            self.n_wires,
            name=(self.name + "⁻¹") if name is None and self.name else (name or ""),
        )
        for op in reversed(self._ops):
            if op.is_reset:
                raise CircuitError("cannot invert a circuit containing resets")
            assert op.gate is not None
            inverted.append_gate(op.gate.inverse(), *op.wires)
        return inverted

    def remap(self, mapping: Mapping[int, int] | Sequence[int], n_wires: int) -> "Circuit":
        """Relabel wires via ``mapping`` onto a circuit with ``n_wires``.

        ``mapping`` may be a dict or a sequence where position ``i``
        holds the new index of old wire ``i``.
        """
        if not isinstance(mapping, Mapping):
            mapping = {old: new for old, new in enumerate(mapping)}
        remapped = Circuit(n_wires, name=self.name)
        for op in self._ops:
            remapped.append(op.remapped(mapping))
        return remapped

    def tensor(self, other: "Circuit", name: str = "") -> "Circuit":
        """Place ``other`` below ``self`` on fresh wires, side by side."""
        combined = Circuit(self.n_wires + other.n_wires, name=name)
        for op in self._ops:
            combined.append(op)
        offset = {w: w + self.n_wires for w in range(other.n_wires)}
        for op in other._ops:
            combined.append(op.remapped(offset))
        return combined

    def repeated(self, times: int) -> "Circuit":
        """The circuit concatenated with itself ``times`` times."""
        if times < 0:
            raise CircuitError(f"repetition count must be >= 0, got {times}")
        result = Circuit(self.n_wires, name=self.name)
        for _ in range(times):
            for op in self._ops:
                result.append(op)
        return result

    # ------------------------------------------------------------------
    # Census and structure
    # ------------------------------------------------------------------

    def content_key(self) -> tuple:
        """The circuit's content identity: wire count + exact op sequence.

        :class:`Operation` and :class:`~repro.core.gate.Gate` are frozen
        dataclasses, so the key hashes the full gate tables — two
        circuits built independently but op-for-op identical share one
        key, while any mutation (appending, remapping, a different
        reset value) produces a different one.  The name is *not* part
        of the key: content identity is about behaviour-bearing
        structure.  This single key drives both the compile cache
        (:mod:`repro.core.compiled`) and the synthesis identity
        database (:mod:`repro.synth.database`); there is deliberately
        no second hashing scheme.
        """
        return (self.n_wires, self.ops)

    def count_ops(self) -> Counter:
        """Histogram of operation labels (gate names and ``RESET``)."""
        return Counter(op.label for op in self._ops)

    def gate_count(self, include_resets: bool = True) -> int:
        """Number of operations, optionally excluding resets."""
        if include_resets:
            return len(self._ops)
        return sum(1 for op in self._ops if op.is_gate)

    @property
    def has_resets(self) -> bool:
        """True when the circuit contains a reset operation."""
        return any(op.is_reset for op in self._ops)

    def wires_touched(self) -> frozenset[int]:
        """Wires used by at least one operation."""
        touched: set[int] = set()
        for op in self._ops:
            touched.update(op.wires)
        return frozenset(touched)

    def ops_touching(self, wire: int) -> tuple[int, ...]:
        """Indices of operations acting on ``wire``."""
        return tuple(i for i, op in enumerate(self._ops) if wire in op.wires)

    def depth(self) -> int:
        """Greedy ASAP layering depth (ops on disjoint wires overlap)."""
        frontier = [0] * self.n_wires
        depth = 0
        for op in self._ops:
            layer = 1 + max(frontier[w] for w in op.wires)
            for w in op.wires:
                frontier[w] = layer
            depth = max(depth, layer)
        return depth

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return f"Circuit({self.n_wires} wires,{label} {len(self._ops)} ops)"
