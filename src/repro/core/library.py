"""The standard gate library.

Defines every named gate used by the paper:

* ``X`` (NOT), ``CNOT``, ``TOFFOLI`` — the universal reversible basis
  used in Figure 1.
* ``SWAP``, ``FREDKIN`` — classic reversible primitives.
* ``SWAP3_DOWN`` / ``SWAP3_UP`` — the two rotations realisable as two
  SWAPs on three adjacent bits (Figure 5).
* ``MAJ`` — the reversible majority gate of Table 1: flip the second
  two bits if the first bit is 1, then flip the first bit if the second
  two bits are both 1.  Its first output bit is the majority of the
  three input bits.
* ``MAJ_INV`` — the inverse gate; on ``(b, 0, 0)`` it fans ``b`` out to
  all three wires, which is how Figure 2 spreads codeword bits across
  decode blocks.

All gates here are module-level constants; :func:`get` looks them up by
name and :data:`REGISTRY` exposes the full catalogue.
"""

from __future__ import annotations

from repro.core.bits import Bits
from repro.core.gate import Gate
from repro.errors import GateDefinitionError


def _not_action(bits: Bits) -> Bits:
    return (bits[0] ^ 1,)


def _cnot_action(bits: Bits) -> Bits:
    control, target = bits
    return (control, target ^ control)


def _toffoli_action(bits: Bits) -> Bits:
    control_a, control_b, target = bits
    return (control_a, control_b, target ^ (control_a & control_b))


def _swap_action(bits: Bits) -> Bits:
    return (bits[1], bits[0])


def _fredkin_action(bits: Bits) -> Bits:
    control, first, second = bits
    if control:
        return (control, second, first)
    return bits


def _swap3_down_action(bits: Bits) -> Bits:
    """Two SWAPs: swap wires 1,2 then wires 0,1 — a downward rotation.

    The bit on wire 0 ends on wire 2's former... concretely the pattern
    ``(a, b, c)`` becomes ``(b, c, a)``: every bit moves one wire *up*
    while wire contents rotate downward through the gate.
    """
    a, b, c = bits
    return (b, c, a)


def _swap3_up_action(bits: Bits) -> Bits:
    """The inverse rotation: ``(a, b, c)`` becomes ``(c, a, b)``."""
    a, b, c = bits
    return (c, a, b)


def _maj_action(bits: Bits) -> Bits:
    """The paper's two-step definition of MAJ (caption of Table 1)."""
    q0, q1, q2 = bits
    if q0 == 1:
        q1 ^= 1
        q2 ^= 1
    if q1 == 1 and q2 == 1:
        q0 ^= 1
    return (q0, q1, q2)


IDENTITY1 = Gate.from_function("I", 1, lambda bits: bits)
X = Gate.from_function("X", 1, _not_action)
CNOT = Gate.from_function("CNOT", 2, _cnot_action)
SWAP = Gate.from_function("SWAP", 2, _swap_action)
TOFFOLI = Gate.from_function("TOFFOLI", 3, _toffoli_action)
FREDKIN = Gate.from_function("FREDKIN", 3, _fredkin_action)
SWAP3_DOWN = Gate.from_function("SWAP3_DOWN", 3, _swap3_down_action)
SWAP3_UP = Gate.from_function("SWAP3_UP", 3, _swap3_up_action)
MAJ = Gate.from_function("MAJ", 3, _maj_action)
MAJ_INV = MAJ.inverse("MAJ⁻¹")

#: Gate names that the threshold accounting treats as SWAP3 gates.
SWAP3_NAMES = frozenset({"SWAP3_DOWN", "SWAP3_UP"})

#: Gate names counted as MAJ-family operations in recovery circuits.
MAJ_NAMES = frozenset({"MAJ", "MAJ⁻¹"})

REGISTRY: dict[str, Gate] = {
    gate.name: gate
    for gate in (
        IDENTITY1,
        X,
        CNOT,
        SWAP,
        TOFFOLI,
        FREDKIN,
        SWAP3_DOWN,
        SWAP3_UP,
        MAJ,
        MAJ_INV,
    )
}


def get(name: str) -> Gate:
    """Look a gate up by name, raising for unknown names."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise GateDefinitionError(
            f"unknown gate {name!r}; known gates: {sorted(REGISTRY)}"
        ) from None


def identity(arity: int) -> Gate:
    """The identity gate on ``arity`` wires."""
    return Gate(
        name=f"I{arity}" if arity > 1 else "I",
        arity=arity,
        table=tuple(range(1 << arity)),
    )


#: Table 1 of the paper, as (input, output) bit strings.  Kept as a
#: literal so tests can check the *implementation* against the *paper*
#: rather than against itself.
PAPER_TABLE_1: tuple[tuple[str, str], ...] = (
    ("000", "000"),
    ("001", "001"),
    ("010", "010"),
    ("011", "111"),
    ("100", "011"),
    ("101", "110"),
    ("110", "101"),
    ("111", "100"),
)
