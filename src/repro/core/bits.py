"""Bit-vector utilities shared by the whole library.

Conventions
-----------
A *bit vector* is a tuple (or list) of ``0``/``1`` integers.  When a bit
vector is packed into an integer index, **wire 0 is the most significant
bit**, so the string ``"100"`` reads ``q0 = 1, q1 = 0, q2 = 0`` and packs
to the index ``4``.  This matches the row ordering of Table 1 in the
paper, where the input ``100`` maps to the output ``011``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.errors import GateDefinitionError

Bits = tuple[int, ...]


def validate_bits(bits: Sequence[int]) -> None:
    """Raise :class:`GateDefinitionError` unless every entry is 0 or 1."""
    for value in bits:
        if value not in (0, 1):
            raise GateDefinitionError(f"bit values must be 0 or 1, got {value!r}")


def bits_to_index(bits: Sequence[int]) -> int:
    """Pack a bit vector into an integer, wire 0 most significant.

    >>> bits_to_index((1, 0, 0))
    4
    """
    validate_bits(bits)
    index = 0
    for bit in bits:
        index = (index << 1) | bit
    return index


def index_to_bits(index: int, width: int) -> Bits:
    """Unpack an integer into a bit vector of ``width`` bits.

    >>> index_to_bits(4, 3)
    (1, 0, 0)
    """
    if index < 0 or index >= (1 << width):
        raise GateDefinitionError(
            f"index {index} out of range for width {width}"
        )
    return tuple((index >> (width - 1 - position)) & 1 for position in range(width))


def bitstring(bits: Sequence[int]) -> str:
    """Render a bit vector as a string, e.g. ``(1, 0, 0)`` -> ``"100"``."""
    validate_bits(bits)
    return "".join(str(bit) for bit in bits)


def parse_bits(text: str) -> Bits:
    """Parse a string of ``0``/``1`` characters into a bit vector."""
    try:
        bits = tuple(int(char) for char in text)
    except ValueError as exc:
        raise GateDefinitionError(f"cannot parse bit string {text!r}") from exc
    validate_bits(bits)
    return bits


def all_bit_vectors(width: int) -> Iterator[Bits]:
    """Yield every bit vector of the given width in lexicographic order."""
    for index in range(1 << width):
        yield index_to_bits(index, width)


def hamming_distance(left: Sequence[int], right: Sequence[int]) -> int:
    """Number of positions where two equal-length bit vectors differ."""
    if len(left) != len(right):
        raise GateDefinitionError(
            f"length mismatch: {len(left)} vs {len(right)}"
        )
    return sum(1 for a, b in zip(left, right) if a != b)


def hamming_weight(bits: Sequence[int]) -> int:
    """Number of 1 bits in a bit vector."""
    validate_bits(bits)
    return sum(bits)


def majority(bits: Sequence[int]) -> int:
    """Majority value of an odd-length bit vector.

    >>> majority((1, 0, 1))
    1
    """
    if len(bits) % 2 == 0:
        raise GateDefinitionError("majority requires an odd number of bits")
    validate_bits(bits)
    return 1 if sum(bits) * 2 > len(bits) else 0


def flip(bits: Sequence[int], position: int) -> Bits:
    """Return a copy of ``bits`` with one position flipped."""
    validate_bits(bits)
    if not 0 <= position < len(bits):
        raise GateDefinitionError(f"flip position {position} out of range")
    return tuple(
        bit ^ 1 if index == position else bit for index, bit in enumerate(bits)
    )


def xor(left: Sequence[int], right: Sequence[int]) -> Bits:
    """Bitwise XOR of two equal-length bit vectors."""
    if len(left) != len(right):
        raise GateDefinitionError(
            f"length mismatch: {len(left)} vs {len(right)}"
        )
    validate_bits(left)
    validate_bits(right)
    return tuple(a ^ b for a, b in zip(left, right))


def concat(*chunks: Iterable[int]) -> Bits:
    """Concatenate several bit vectors into one."""
    joined: list[int] = []
    for chunk in chunks:
        joined.extend(chunk)
    validate_bits(joined)
    return tuple(joined)
