"""ASCII rendering of circuits in the paper's gate-array style.

Wires run left to right; each operation occupies one column.  Gate
cells follow the paper's figures: ``●`` for controls, ``⊕`` for CNOT /
Toffoli targets, ``×`` for SWAP legs, bracketed labels like ``[MAJ]``
for named multi-bit gates, and ``|0>`` for resets.  The renderer is
deliberately simple — one column per operation, no compaction — so a
drawing is a faithful, unambiguous transcript of the circuit.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.circuit import Circuit, Operation
from repro.errors import CircuitError

_WIRE = "─"
_GAP = " "


def _gate_cells(op: Operation) -> dict[int, str]:
    """Cell text for each wire touched by the operation."""
    assert op.gate is not None
    name = op.gate.name
    cells: dict[int, str] = {}
    if name == "CNOT":
        control, target = op.wires
        cells[control] = "●"
        cells[target] = "⊕"
    elif name == "TOFFOLI":
        a, b, target = op.wires
        cells[a] = "●"
        cells[b] = "●"
        cells[target] = "⊕"
    elif name == "SWAP":
        for wire in op.wires:
            cells[wire] = "×"
    elif name == "FREDKIN":
        control, a, b = op.wires
        cells[control] = "●"
        cells[a] = "×"
        cells[b] = "×"
    elif name in ("SWAP3_DOWN", "SWAP3_UP"):
        for wire in op.wires:
            cells[wire] = "×"
    elif name == "X":
        cells[op.wires[0]] = "⊕"
    else:
        label = f"[{name}]"
        for position, wire in enumerate(op.wires):
            cells[wire] = label if position == 0 else f"[{'·' * len(name)}]"
    return cells


def _reset_cells(op: Operation) -> dict[int, str]:
    return {wire: f"|{op.reset_value}>" for wire in op.wires}


def draw(circuit: Circuit, labels: Sequence[str] | None = None) -> str:
    """Render the circuit as multi-line ASCII art.

    ``labels`` optionally names the wires (defaults to ``q0``, ``q1``…).
    """
    if labels is None:
        labels = [f"q{i}" for i in range(circuit.n_wires)]
    if len(labels) != circuit.n_wires:
        raise CircuitError(
            f"got {len(labels)} labels for {circuit.n_wires} wires"
        )

    columns: list[dict[int, str]] = []
    spans: list[tuple[int, int]] = []
    for op in circuit:
        cells = _reset_cells(op) if op.is_reset else _gate_cells(op)
        columns.append(cells)
        spans.append((min(op.wires), max(op.wires)))

    widths = [
        max((len(text) for text in cells.values()), default=1) for cells in columns
    ]
    label_width = max(len(label) for label in labels)

    lines: list[str] = []
    for wire in range(circuit.n_wires):
        parts = [f"{labels[wire]:>{label_width}} "]
        for cells, width, (low, high) in zip(columns, widths, spans):
            if wire in cells:
                cell = cells[wire].center(width)
                if cells[wire] in ("●", "⊕", "×"):
                    # Single-character symbols sit on the wire itself.
                    cell = cell.replace(" ", _WIRE)
                parts.append(_WIRE + cell + _WIRE)
            elif low < wire < high:
                # A vertical connector passes through this wire.
                parts.append(_WIRE + "│".center(width) + _WIRE)
            else:
                parts.append(_WIRE * (width + 2))
        lines.append("".join(parts))
    return "\n".join(lines)
