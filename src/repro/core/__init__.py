"""Core reversible-circuit substrate: bits, gates, circuits, simulators."""

from repro.core.bits import (
    all_bit_vectors,
    bits_to_index,
    bitstring,
    hamming_distance,
    hamming_weight,
    index_to_bits,
    majority,
    parse_bits,
)
from repro.core.circuit import Circuit, Operation, OpKind
from repro.core.draw import draw
from repro.core.gate import Gate
from repro.core.library import (
    CNOT,
    FREDKIN,
    MAJ,
    MAJ_INV,
    PAPER_TABLE_1,
    REGISTRY,
    SWAP,
    SWAP3_DOWN,
    SWAP3_UP,
    TOFFOLI,
    X,
)
from repro.core.bitplane import BitplaneState, run_bitplane
from repro.core.compiled import (
    CompiledCircuit,
    FusedSlot,
    clear_compile_cache,
    compile_cache_stats,
    compile_circuit,
    gate_plane_program,
)
from repro.core.permutation import Permutation
from repro.core.simulator import BatchedState, apply_gate, run, run_batched
from repro.core.truth_table import (
    circuit_gate,
    circuit_permutation,
    format_truth_table,
    is_reversible,
    truth_table_rows,
)

__all__ = [
    "all_bit_vectors",
    "bits_to_index",
    "bitstring",
    "hamming_distance",
    "hamming_weight",
    "index_to_bits",
    "majority",
    "parse_bits",
    "Circuit",
    "Operation",
    "OpKind",
    "draw",
    "Gate",
    "CNOT",
    "FREDKIN",
    "MAJ",
    "MAJ_INV",
    "PAPER_TABLE_1",
    "REGISTRY",
    "SWAP",
    "SWAP3_DOWN",
    "SWAP3_UP",
    "TOFFOLI",
    "X",
    "Permutation",
    "BatchedState",
    "BitplaneState",
    "CompiledCircuit",
    "FusedSlot",
    "clear_compile_cache",
    "compile_cache_stats",
    "compile_circuit",
    "gate_plane_program",
    "apply_gate",
    "run",
    "run_batched",
    "run_bitplane",
    "circuit_gate",
    "circuit_permutation",
    "format_truth_table",
    "is_reversible",
    "truth_table_rows",
]
