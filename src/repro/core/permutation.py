"""Permutations on finite index sets.

A :class:`Permutation` is the mathematical backbone of a reversible
gate: a reversible gate on ``k`` wires *is* a permutation of the
``2**k`` input patterns.  This module keeps permutations abstract
(indices, not bits) so it can also serve the routing layer, where
permutations act on wire positions rather than on states.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.errors import GateDefinitionError


@dataclass(frozen=True)
class Permutation:
    """An immutable permutation of ``range(size)``.

    ``mapping[i]`` is the image of ``i``.  Construction validates that
    the mapping is a bijection.
    """

    mapping: tuple[int, ...]

    def __post_init__(self) -> None:
        size = len(self.mapping)
        seen = [False] * size
        for image in self.mapping:
            if not isinstance(image, int) or not 0 <= image < size:
                raise GateDefinitionError(
                    f"permutation entry {image!r} outside range({size})"
                )
            if seen[image]:
                raise GateDefinitionError(
                    f"permutation repeats image {image}; not a bijection"
                )
            seen[image] = True

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def identity(size: int) -> "Permutation":
        """The identity permutation on ``range(size)``."""
        return Permutation(tuple(range(size)))

    @staticmethod
    def from_cycles(size: int, cycles: Iterable[Sequence[int]]) -> "Permutation":
        """Build a permutation from disjoint cycles.

        >>> Permutation.from_cycles(3, [(0, 1)]).mapping
        (1, 0, 2)
        """
        mapping = list(range(size))
        touched: set[int] = set()
        for cycle in cycles:
            for element in cycle:
                if element in touched:
                    raise GateDefinitionError(
                        f"element {element} appears in more than one cycle"
                    )
                touched.add(element)
            for position, element in enumerate(cycle):
                image = cycle[(position + 1) % len(cycle)]
                mapping[element] = image
        return Permutation(tuple(mapping))

    # ------------------------------------------------------------------
    # Group operations
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of elements the permutation acts on."""
        return len(self.mapping)

    def apply(self, index: int) -> int:
        """Image of a single index."""
        return self.mapping[index]

    def __call__(self, index: int) -> int:
        return self.mapping[index]

    def compose(self, first: "Permutation") -> "Permutation":
        """The permutation *self after first* (apply ``first``, then ``self``)."""
        if first.size != self.size:
            raise GateDefinitionError(
                f"size mismatch composing permutations: {first.size} vs {self.size}"
            )
        return Permutation(tuple(self.mapping[first.mapping[i]] for i in range(self.size)))

    def then(self, second: "Permutation") -> "Permutation":
        """The permutation *second after self* (apply ``self``, then ``second``)."""
        return second.compose(self)

    def inverse(self) -> "Permutation":
        """The inverse permutation."""
        inverse = [0] * self.size
        for index, image in enumerate(self.mapping):
            inverse[image] = index
        return Permutation(tuple(inverse))

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def is_identity(self) -> bool:
        """True when every element is a fixed point."""
        return all(image == index for index, image in enumerate(self.mapping))

    def fixed_points(self) -> tuple[int, ...]:
        """Indices mapped to themselves."""
        return tuple(i for i, image in enumerate(self.mapping) if image == i)

    def cycles(self, include_fixed_points: bool = False) -> list[tuple[int, ...]]:
        """Disjoint cycle decomposition, each cycle led by its minimum."""
        seen = [False] * self.size
        cycles: list[tuple[int, ...]] = []
        for start in range(self.size):
            if seen[start]:
                continue
            cycle = [start]
            seen[start] = True
            current = self.mapping[start]
            while current != start:
                cycle.append(current)
                seen[current] = True
                current = self.mapping[current]
            if len(cycle) > 1 or include_fixed_points:
                cycles.append(tuple(cycle))
        return cycles

    def order(self) -> int:
        """Smallest positive ``n`` with ``self**n`` the identity."""
        result = 1
        for cycle in self.cycles():
            result = _lcm(result, len(cycle))
        return result

    def parity(self) -> int:
        """0 for even permutations, 1 for odd ones."""
        transpositions = sum(len(cycle) - 1 for cycle in self.cycles())
        return transpositions % 2

    def inversions(self) -> int:
        """Number of out-of-order pairs; the minimal adjacent-swap count.

        Sorting the sequence ``mapping`` with adjacent transpositions
        takes exactly this many swaps, which is why the routing layer
        uses it to prove its swap schedules optimal.
        """
        count = 0
        for i in range(self.size):
            for j in range(i + 1, self.size):
                if self.mapping[i] > self.mapping[j]:
                    count += 1
        return count

    def __pow__(self, exponent: int) -> "Permutation":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        result = Permutation.identity(self.size)
        base = self
        power = exponent
        while power:
            if power & 1:
                result = base.compose(result)
            base = base.compose(base)
            power >>= 1
        return result


def _lcm(a: int, b: int) -> int:
    from math import gcd

    return a * b // gcd(a, b)


def permutation_distance(left: Permutation, right: Permutation) -> int:
    """Number of points on which two permutations disagree."""
    if left.size != right.size:
        raise GateDefinitionError("cannot compare permutations of different sizes")
    return sum(1 for i in range(left.size) if left.mapping[i] != right.mapping[i])
