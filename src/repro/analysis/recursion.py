"""Concatenation error recursion (Section 2.2, Eq. 2) and mixed
thresholds (Section 3.3, Table 2).

One recovery level maps ``g`` to ``3 C(G,2) g**2``; ``k`` levels give
the closed form

    g_k <= rho * (g / rho) ** (2 ** k),         rho = 1 / (3 C(G, 2))

Concatenating ``k`` levels of a scheme with threshold ``rho_2`` under
``L − k`` levels of a scheme with threshold ``rho_1`` behaves like a
single scheme with effective threshold

    rho(k) = rho_2 * (rho_1 / rho_2) ** (1 / 2**k)

which is Table 2 when ``rho_2`` is the 2D threshold (1/273) and
``rho_1`` the 1D threshold (1/2109) — both in the paper's
no-initialisation accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

from repro.analysis.threshold import threshold
from repro.errors import AnalysisError


def one_level(gate_error: float, operation_count: int) -> float:
    """Error rate after one level: ``3 C(G,2) g**2`` (capped at 1)."""
    value = 3 * comb(operation_count, 2) * gate_error**2
    return min(1.0, value)


def error_at_level(gate_error: float, operation_count: int, level: int) -> float:
    """Closed form of Eq. 2: ``rho (g/rho)^(2^level)``."""
    if level < 0:
        raise AnalysisError(f"level must be >= 0, got {level}")
    rho = threshold(operation_count)
    return min(1.0, rho * (gate_error / rho) ** (2**level))


def iterate_levels(
    gate_error: float, operation_count: int, levels: int
) -> list[float]:
    """Error rate at every level 0..levels by direct iteration.

    The iterated values satisfy the closed form as an upper bound; the
    test-suite checks both directions of that inequality.
    """
    if levels < 0:
        raise AnalysisError(f"levels must be >= 0, got {levels}")
    rates = [gate_error]
    for _ in range(levels):
        rates.append(one_level(rates[-1], operation_count))
    return rates


def mixed_threshold(rho_low: float, rho_high: float, inner_levels: int) -> float:
    """Effective threshold ``rho(k)`` of Section 3.3.

    ``rho_high`` (the paper's rho_2) is the better scheme used for the
    innermost ``inner_levels`` levels; ``rho_low`` (rho_1) is the
    weaker scheme used above them.
    """
    if inner_levels < 0:
        raise AnalysisError(f"inner_levels must be >= 0, got {inner_levels}")
    if not (0 < rho_low <= rho_high <= 1):
        raise AnalysisError(
            f"need 0 < rho_low <= rho_high <= 1, got {rho_low}, {rho_high}"
        )
    return rho_high * (rho_low / rho_high) ** (1.0 / 2**inner_levels)


def mixed_error_at_level(
    gate_error: float,
    rho_low: float,
    rho_high: float,
    inner_levels: int,
    total_levels: int,
) -> float:
    """Error after ``total_levels`` of the mixed scheme (Section 3.3)."""
    if total_levels < inner_levels:
        raise AnalysisError(
            f"total_levels ({total_levels}) must be >= inner_levels "
            f"({inner_levels})"
        )
    g_inner = min(1.0, rho_high * (gate_error / rho_high) ** (2**inner_levels))
    remaining = total_levels - inner_levels
    return min(1.0, rho_low * (g_inner / rho_low) ** (2**remaining))


@dataclass(frozen=True)
class Table2Row:
    """One row of Table 2."""

    inner_levels: int
    width: int
    threshold_ratio: float


#: Lattice width after k levels of 2D structure: the strip is 3**k bits
#: wide (1, 3, 9, 27, 81, 243 in the paper's Width column).
def strip_width(inner_levels: int) -> int:
    """Width (in bits) of the 1D strip for ``k`` inner 2D levels."""
    if inner_levels < 0:
        raise AnalysisError(f"inner_levels must be >= 0, got {inner_levels}")
    return 3**inner_levels


def table2_rows(
    rho_1d: float | None = None,
    rho_2d: float | None = None,
    max_inner_levels: int = 5,
) -> list[Table2Row]:
    """Regenerate Table 2: ``rho(k)/rho_2`` for k = 0..max_inner_levels.

    Defaults use the paper's no-initialisation thresholds
    ``rho_1 = 1/2109`` (1D) and ``rho_2 = 1/273`` (2D), which are the
    values that reproduce the printed column 0.13, 0.36, 0.60, 0.77,
    0.88, 0.94.
    """
    if rho_1d is None:
        rho_1d = 1.0 / 2109.0
    if rho_2d is None:
        rho_2d = 1.0 / 273.0
    rows = []
    for k in range(max_inner_levels + 1):
        ratio = mixed_threshold(rho_1d, rho_2d, k) / rho_2d
        rows.append(
            Table2Row(inner_levels=k, width=strip_width(k), threshold_ratio=ratio)
        )
    return rows


#: Table 2 exactly as printed (k, width, rho(k)/rho_2).
PAPER_TABLE_2: tuple[tuple[int, int, float], ...] = (
    (0, 1, 0.13),
    (1, 3, 0.36),
    (2, 9, 0.60),
    (3, 27, 0.77),
    (4, 81, 0.88),
    (5, 243, 0.94),
)
