"""Entropy cost of simulating NAND with reversible gates (Section 4).

Footnote 4 of the paper claims that 3/2 bits of dissipated entropy per
NAND evaluation is *optimal* over reversible 3-bit realisations with
equally-likely inputs, and that ``MAJ⁻¹`` achieves it.  This module
verifies the claim constructively:

* a *realisation* feeds the NAND inputs ``(x, y)`` into two wires of a
  3-bit reversible gate, a constant into the third, and reads
  ``NAND(x, y)`` off a chosen output wire for all four inputs;
* its *entropy cost* is the Shannon entropy of the two discarded output
  wires under uniform inputs — the number of bits that must be reset
  (and hence dissipated, via Landauer) per evaluation;
* :func:`search_all_gates` scans **all 8! = 40320 reversible 3-bit
  gates** and every wiring, finding the global minimum.

The information-theoretic floor is 1.5 bits: the four input patterns
map injectively to (output, discarded) triples, the three inputs with
output 1 need distinct discard pairs, and the best case piles the
fourth input onto one of them, giving the distribution
(1/2, 1/4, 1/4) with entropy 3/2.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from math import log2

import numpy as np

from repro.core.gate import Gate
from repro.errors import AnalysisError

#: NAND truth values for inputs (0,0), (0,1), (1,0), (1,1).
_NAND_OUTPUTS = (1, 1, 1, 0)

#: Entropy of the distribution (1/2, 1/4, 1/4): the provable floor.
OPTIMAL_NAND_ENTROPY = 1.5


@dataclass(frozen=True)
class NandRealisation:
    """A wiring of a 3-bit gate that computes NAND.

    ``ancilla_wire`` carries the constant ``ancilla_value``; the two
    remaining wires carry ``x`` then ``y`` in wire order;
    ``output_wire`` carries NAND(x, y) after the gate.
    """

    ancilla_wire: int
    ancilla_value: int
    output_wire: int
    entropy_cost: float


def _input_index(x: int, y: int, ancilla_wire: int, ancilla_value: int) -> int:
    """Pack (x, y, constant) into a 3-bit pattern, wire 0 MSB."""
    bits = [0, 0, 0]
    data_wires = [w for w in range(3) if w != ancilla_wire]
    bits[data_wires[0]] = x
    bits[data_wires[1]] = y
    bits[ancilla_wire] = ancilla_value
    return (bits[0] << 2) | (bits[1] << 1) | bits[2]


def _discard_entropy(discard_patterns: list[int]) -> float:
    """Entropy (bits) of the empirical discard distribution."""
    counts: dict[int, int] = {}
    for pattern in discard_patterns:
        counts[pattern] = counts.get(pattern, 0) + 1
    total = len(discard_patterns)
    return -sum(
        (count / total) * log2(count / total) for count in counts.values()
    )


def nand_realisations(gate: Gate) -> list[NandRealisation]:
    """Every wiring of ``gate`` that computes NAND, with entropy costs."""
    if gate.arity != 3:
        raise AnalysisError(
            f"NAND realisation search needs a 3-bit gate, got arity {gate.arity}"
        )
    realisations = []
    for ancilla_wire in range(3):
        for ancilla_value in (0, 1):
            for output_wire in range(3):
                outputs = []
                discards = []
                for (x, y), want in zip(
                    ((0, 0), (0, 1), (1, 0), (1, 1)), _NAND_OUTPUTS
                ):
                    index = _input_index(x, y, ancilla_wire, ancilla_value)
                    image = gate.table[index]
                    out_bit = (image >> (2 - output_wire)) & 1
                    outputs.append(out_bit)
                    discard_wires = [w for w in range(3) if w != output_wire]
                    discard = 0
                    for wire in discard_wires:
                        discard = (discard << 1) | ((image >> (2 - wire)) & 1)
                    discards.append(discard)
                if tuple(outputs) == _NAND_OUTPUTS:
                    realisations.append(
                        NandRealisation(
                            ancilla_wire=ancilla_wire,
                            ancilla_value=ancilla_value,
                            output_wire=output_wire,
                            entropy_cost=_discard_entropy(discards),
                        )
                    )
    return realisations


def min_nand_cost(gate: Gate) -> float | None:
    """The gate's cheapest NAND realisation, or None if it has none."""
    costs = [r.entropy_cost for r in nand_realisations(gate)]
    return min(costs) if costs else None


@dataclass(frozen=True)
class SearchResult:
    """Outcome of the exhaustive search over all 3-bit reversible gates."""

    minimum_entropy: float
    achieving_gates: int
    total_gates_searched: int
    total_realisations: int


def search_all_gates() -> SearchResult:
    """Scan all 40320 reversible 3-bit gates for the cheapest NAND.

    Vectorised over gates: for each of the 18 wirings, every
    permutation table is evaluated on the four NAND inputs at once.
    """
    tables = np.array(list(permutations(range(8))), dtype=np.int64)
    n_gates = tables.shape[0]
    best = np.full(n_gates, np.inf)
    total_realisations = 0

    for ancilla_wire in range(3):
        for ancilla_value in (0, 1):
            indices = np.array(
                [
                    _input_index(x, y, ancilla_wire, ancilla_value)
                    for (x, y) in ((0, 0), (0, 1), (1, 0), (1, 1))
                ],
                dtype=np.int64,
            )
            images = tables[:, indices]  # (n_gates, 4)
            for output_wire in range(3):
                out_bits = (images >> (2 - output_wire)) & 1
                valid = (out_bits == np.array(_NAND_OUTPUTS)).all(axis=1)
                total_realisations += int(valid.sum())
                if not valid.any():
                    continue
                discard_wires = [w for w in range(3) if w != output_wire]
                discards = ((images >> (2 - discard_wires[0])) & 1) * 2 + (
                    (images >> (2 - discard_wires[1])) & 1
                )
                # Entropy of each row's multiset of four discard values.
                entropy = _rowwise_entropy(discards)
                entropy = np.where(valid, entropy, np.inf)
                best = np.minimum(best, entropy)

    finite = best[np.isfinite(best)]
    minimum = float(finite.min())
    achieving = int(np.isclose(best, minimum).sum())
    return SearchResult(
        minimum_entropy=minimum,
        achieving_gates=achieving,
        total_gates_searched=n_gates,
        total_realisations=total_realisations,
    )


def _rowwise_entropy(values: np.ndarray) -> np.ndarray:
    """Entropy (bits) of each row's empirical distribution of 4 values."""
    rows, columns = values.shape
    if columns != 4:
        raise AnalysisError(f"expected 4 columns of samples, got {columns}")
    # Count multiplicity of each entry within its row.
    counts = np.zeros_like(values, dtype=np.float64)
    for j in range(columns):
        matches = (values == values[:, j : j + 1]).sum(axis=1)
        counts[:, j] = matches
    p = counts / columns
    # Each sample contributes -(1/4) log2(p of its value).
    return (-(np.log2(p)) / columns).sum(axis=1)
