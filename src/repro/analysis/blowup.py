"""Circuit blow-up analysis (Section 2.3, Eq. 3).

Replacing each perfect gate of a ``T``-gate module by its level-``L``
fault-tolerant implementation multiplies the gate count by

    Gamma_L = (3 (1 + E)) ** L  =  (3 (G - 2)) ** L

and the bit count by ``S_L = 9 ** L``.  The recursion bottoms out when
``g_L <= 1/T``, which needs

    L >= log2( log(T rho) / log(rho / g) )

For ``G = 11`` the blow-ups are poly-logarithmic in ``T``:
``O((log T)^4.75)`` gates and ``O((log T)^3.17)`` bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2

from repro.analysis.threshold import threshold
from repro.errors import AnalysisError


def gate_blowup(operation_count: int, level: int) -> int:
    """``Gamma_L = (3(G-2))**L``: gates per logical gate at level L."""
    _check_level(level)
    if operation_count < 3:
        raise AnalysisError(f"operation count must be >= 3, got {operation_count}")
    return (3 * (operation_count - 2)) ** level


def bit_blowup(level: int) -> int:
    """``S_L = 9**L``: physical bits per logical bit at level L."""
    _check_level(level)
    return 9**level


def gate_overhead_exponent(operation_count: int) -> float:
    """``log2(3(G-2))`` — the poly-log exponent of the gate blow-up."""
    if operation_count < 3:
        raise AnalysisError(f"operation count must be >= 3, got {operation_count}")
    return log2(3 * (operation_count - 2))


def bit_overhead_exponent() -> float:
    """``log2 9 ~ 3.17`` — the poly-log exponent of the bit blow-up."""
    return log2(9)


def required_level_exact(
    gate_error: float, operation_count: int, module_gates: int
) -> float:
    """The real-valued bound of Eq. 3: ``log2(log(T rho)/log(rho/g))``.

    Any logarithm base works since only ratios appear; we use log2 like
    the paper's worked example.
    """
    rho = threshold(operation_count)
    if not 0 < gate_error < rho:
        raise AnalysisError(
            f"gate error {gate_error} must be in (0, rho={rho:.3g}) for "
            "concatenation to converge"
        )
    if module_gates < 1:
        raise AnalysisError(f"module gate count must be >= 1, got {module_gates}")
    numerator = log2(module_gates * rho)
    denominator = log2(rho / gate_error)
    if numerator <= 0:
        return 0.0
    return log2(numerator / denominator)


def required_level(
    gate_error: float, operation_count: int, module_gates: int
) -> int:
    """The smallest integer concatenation depth satisfying Eq. 3."""
    return max(0, ceil(required_level_exact(gate_error, operation_count, module_gates)))


def achievable_module_size(
    gate_error: float, operation_count: int, level: int
) -> float:
    """Largest ``T`` with expected errors <= 1 at concatenation level L.

    Inverts Eq. 2: ``T = 1 / g_L``.
    """
    rho = threshold(operation_count)
    if not 0 < gate_error < rho:
        raise AnalysisError(
            f"gate error {gate_error} must be in (0, rho={rho:.3g})"
        )
    _check_level(level)
    g_level = rho * (gate_error / rho) ** (2**level)
    return 1.0 / g_level


@dataclass(frozen=True)
class BlowupReport:
    """Overheads for building one module fault-tolerantly."""

    module_gates: int
    gate_error: float
    operation_count: int
    level: int
    gate_factor: int
    bit_factor: int

    @property
    def total_gates(self) -> int:
        """Physical gates in the fault-tolerant module."""
        return self.module_gates * self.gate_factor

    @property
    def total_bits_per_logical_bit(self) -> int:
        """Physical bits per logical bit."""
        return self.bit_factor


def plan_module(
    gate_error: float, operation_count: int, module_gates: int
) -> BlowupReport:
    """Choose the minimum valid level and report the blow-ups.

    ``plan_module(rho/10, 9, 10**6)`` reproduces the worked example of
    Section 2.3: level 2, 441 gates per gate, 81 bits per bit.
    """
    level = required_level(gate_error, operation_count, module_gates)
    return BlowupReport(
        module_gates=module_gates,
        gate_error=gate_error,
        operation_count=operation_count,
        level=level,
        gate_factor=gate_blowup(operation_count, level),
        bit_factor=bit_blowup(level),
    )


def unprotected_module_limit(gate_error: float) -> float:
    """Module size where an unprotected circuit averages one error.

    "Without any error correction, modules larger than 1,000 gates will
    almost certainly be faulty" (for g = 10**-3): this is ``1/g``.
    """
    if not 0 < gate_error <= 1:
        raise AnalysisError(f"gate error must be in (0, 1], got {gate_error}")
    return 1.0 / gate_error


def _check_level(level: int) -> None:
    if level < 0:
        raise AnalysisError(f"level must be >= 0, got {level}")
