"""Entropy dissipation bounds (Section 4).

A failed gate outputs one of 8 patterns uniformly, so its output
differs from the correct pattern with probability ``7g/8``; one noisy
gate therefore generates at most

    H(7g/8) + (7g/8) log2(7)  <=  kappa * sqrt(g),
    kappa = 2 sqrt(7/8) + (7/8) log2(7) ~ 4.327

bits of entropy.  Per level-``L`` gate the paper sandwiches the
dissipated entropy as

    g (3E)^(L-1)  <=  H_L  <=  G_tilde^L kappa sqrt(g)

and O(1) entropy per gate forces ``L <= log(1/g)/log(3E) + 1``.
Landauer's principle converts entropy to heat: ``dE >= k_B T ln2`` per
bit erased.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence
from math import log, log2, sqrt

import numpy as np

from repro.errors import AnalysisError

#: Boltzmann's constant in joules per kelvin.
BOLTZMANN_J_PER_K = 1.380649e-23

#: The paper's kappa constant: 2 sqrt(7/8) + (7/8) log2 7.
KAPPA = 2.0 * sqrt(7.0 / 8.0) + (7.0 / 8.0) * log2(7.0)


def binary_entropy(p: float) -> float:
    """The binary entropy function H(p) in bits."""
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"probability must be in [0, 1], got {p}")
    if p in (0.0, 1.0):
        return 0.0
    return -p * log2(p) - (1.0 - p) * log2(1.0 - p)


def single_gate_entropy(gate_error: float) -> float:
    """Entropy of one noisy 3-bit gate: ``H(7g/8) + (7g/8) log2 7``."""
    _check_rate(gate_error)
    q = 7.0 * gate_error / 8.0
    return binary_entropy(q) + q * log2(7.0)


def single_gate_entropy_sqrt_bound(gate_error: float) -> float:
    """The paper's relaxation ``kappa * sqrt(g)``, an upper bound."""
    _check_rate(gate_error)
    return KAPPA * sqrt(gate_error)


def entropy_upper_bound(
    gate_error: float, gates_per_level: float, level: int
) -> float:
    """``H_L <= G_tilde**L * kappa * sqrt(g)`` (Section 4).

    ``gates_per_level`` is the paper's G-tilde: how many level-(L-1)
    gates simulate one level-L gate in the model at hand.
    """
    _check_level(level)
    _check_rate(gate_error)
    if gates_per_level < 1:
        raise AnalysisError(
            f"gates_per_level must be >= 1, got {gates_per_level}"
        )
    return gates_per_level**level * KAPPA * sqrt(gate_error)


def entropy_lower_bound(
    gate_error: float, recovery_ops: int, level: int
) -> float:
    """``H_L >= g * (3E)**(L-1)`` for level >= 1 (Section 4)."""
    if level < 1:
        raise AnalysisError(f"lower bound is stated for level >= 1, got {level}")
    _check_rate(gate_error)
    if recovery_ops < 1:
        raise AnalysisError(f"recovery_ops must be >= 1, got {recovery_ops}")
    return gate_error * (3.0 * recovery_ops) ** (level - 1)


def max_level_for_constant_entropy(gate_error: float, recovery_ops: int) -> float:
    """``L <= log(1/g)/log(3E) + 1`` for O(1) bits of entropy per gate.

    The paper's example: g = 10**-2, E = 11 gives L <= 2.3.
    """
    _check_rate(gate_error)
    if gate_error == 0.0:
        raise AnalysisError("noiseless gates dissipate nothing; L is unbounded")
    if recovery_ops < 1:
        raise AnalysisError(f"recovery_ops must be >= 1, got {recovery_ops}")
    return log(1.0 / gate_error) / log(3.0 * recovery_ops) + 1.0


def landauer_heat_joules(entropy_bits: float, temperature_kelvin: float) -> float:
    """Minimum heat for erasing ``entropy_bits`` at a given temperature.

    Landauer: ``dE >= k_B T ln 2`` joules per bit.
    """
    if entropy_bits < 0:
        raise AnalysisError(f"entropy must be >= 0 bits, got {entropy_bits}")
    if temperature_kelvin <= 0:
        raise AnalysisError(
            f"temperature must be positive kelvin, got {temperature_kelvin}"
        )
    return BOLTZMANN_J_PER_K * temperature_kelvin * log(2.0) * entropy_bits


# ----------------------------------------------------------------------
# Empirical entropy estimation (for the Monte-Carlo validation)
# ----------------------------------------------------------------------


def empirical_entropy(samples: Iterable[tuple]) -> float:
    """Plug-in entropy (bits) of the empirical distribution of samples."""
    counts = Counter(samples)
    total = sum(counts.values())
    if total == 0:
        raise AnalysisError("cannot estimate entropy from zero samples")
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * log2(p)
    return entropy


def empirical_entropy_from_columns(bit_columns: np.ndarray) -> float:
    """Entropy of the joint distribution of rows of a 0/1 array.

    ``bit_columns`` has shape ``(samples, bits)``; rows are packed into
    integers and the plug-in entropy of their histogram is returned.
    """
    array = np.asarray(bit_columns)
    if array.ndim != 2:
        raise AnalysisError(f"expected a 2-D array, got {array.ndim}-D")
    packed = np.zeros(array.shape[0], dtype=np.int64)
    for column in range(array.shape[1]):
        packed = (packed << 1) | array[:, column].astype(np.int64)
    _, counts = np.unique(packed, return_counts=True)
    p = counts / counts.sum()
    return float(-(p * np.log2(p)).sum())


def _check_rate(gate_error: float) -> None:
    if not 0.0 <= gate_error <= 1.0:
        raise AnalysisError(f"error rate must be in [0, 1], got {gate_error}")


def _check_level(level: int) -> None:
    if level < 0:
        raise AnalysisError(f"level must be >= 0, got {level}")
