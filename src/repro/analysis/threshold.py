"""Threshold analysis (Section 2.2, Eq. 1).

With ``G`` noisy operations acting on an encoded bit per logical gate
cycle, the encoded bit fails only when two or more operations fail:

    P_bit   <= C(G, 2) * g**2
    g_logical <= 3 * P_bit  =  3 * C(G, 2) * g**2

so the error rate improves whenever ``g < rho = 1 / (3 * C(G, 2))``.
The paper evaluates this for six operation counts; all six are exposed
here as :data:`PAPER_SCHEMES`.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

from repro.errors import AnalysisError


def threshold(operation_count: int) -> float:
    """The threshold ``rho = 1 / (3 * C(G, 2))`` for ``G`` operations."""
    if operation_count < 2:
        raise AnalysisError(
            f"threshold needs G >= 2 operations, got {operation_count}"
        )
    return 1.0 / (3 * comb(operation_count, 2))


def threshold_denominator(operation_count: int) -> int:
    """The integer ``3 * C(G, 2)`` (the paper quotes 1/108, 1/165...)."""
    if operation_count < 2:
        raise AnalysisError(
            f"threshold needs G >= 2 operations, got {operation_count}"
        )
    return 3 * comb(operation_count, 2)


def bit_error_bound(gate_error: float, operation_count: int) -> float:
    """Exact binomial tail bound on P_bit: P[>= 2 of G operations fail]."""
    _check_rate(gate_error)
    g, G = gate_error, operation_count
    none_fail = (1 - g) ** G
    one_fails = G * g * (1 - g) ** (G - 1)
    return 1.0 - none_fail - one_fails


def bit_error_quadratic_bound(gate_error: float, operation_count: int) -> float:
    """The paper's working bound ``P_bit <= C(G, 2) g**2``."""
    _check_rate(gate_error)
    return comb(operation_count, 2) * gate_error**2


def logical_error_bound(gate_error: float, operation_count: int) -> float:
    """Eq. 1: ``g_logical <= 3 C(G, 2) g**2``."""
    _check_rate(gate_error)
    return 3 * comb(operation_count, 2) * gate_error**2


def logical_error_bound_tight(gate_error: float, operation_count: int) -> float:
    """The intermediate bound ``1 - (1 - P_bit)**3`` with exact P_bit."""
    p_bit = bit_error_bound(gate_error, operation_count)
    return 1.0 - (1.0 - p_bit) ** 3


def improves(gate_error: float, operation_count: int) -> bool:
    """True when one level of recovery lowers the error (``g < rho``)."""
    _check_rate(gate_error)
    return gate_error < threshold(operation_count)


def _check_rate(gate_error: float) -> None:
    if not 0.0 <= gate_error <= 1.0:
        raise AnalysisError(f"error rate must be in [0, 1], got {gate_error}")


@dataclass(frozen=True)
class SchemeAccounting:
    """Operation counts for one fault-tolerance scheme variant.

    ``operation_count`` is the paper's ``G``: the number of noisy
    operations acting on an encoded bit in one gate-plus-recovery
    cycle.  ``paper_denominator`` is the quoted ``1/rho``.
    """

    name: str
    description: str
    operation_count: int
    paper_denominator: int
    includes_initialisation: bool

    @property
    def threshold(self) -> float:
        """``rho`` for this scheme."""
        return threshold(self.operation_count)

    def matches_paper(self) -> bool:
        """True when ``3 C(G, 2)`` equals the denominator the paper quotes."""
        return threshold_denominator(self.operation_count) == self.paper_denominator


#: Every threshold the paper reports, keyed by scheme variant.
PAPER_SCHEMES: dict[str, SchemeAccounting] = {
    "nonlocal_with_init": SchemeAccounting(
        name="nonlocal_with_init",
        description="Any-to-any connectivity, initialisation as noisy as gates",
        operation_count=11,
        paper_denominator=165,
        includes_initialisation=True,
    ),
    "nonlocal_no_init": SchemeAccounting(
        name="nonlocal_no_init",
        description="Any-to-any connectivity, initialisation assumed accurate",
        operation_count=9,
        paper_denominator=108,
        includes_initialisation=False,
    ),
    "local_2d_with_init": SchemeAccounting(
        name="local_2d_with_init",
        description="2D near-neighbour lattice, counting initialisation",
        operation_count=16,
        paper_denominator=360,
        includes_initialisation=True,
    ),
    "local_2d_no_init": SchemeAccounting(
        name="local_2d_no_init",
        description="2D near-neighbour lattice, initialisation assumed accurate",
        operation_count=14,
        paper_denominator=273,
        includes_initialisation=False,
    ),
    "local_1d_with_init": SchemeAccounting(
        name="local_1d_with_init",
        description="1D near-neighbour line, counting initialisation",
        operation_count=40,
        paper_denominator=2340,
        includes_initialisation=True,
    ),
    "local_1d_no_init": SchemeAccounting(
        name="local_1d_no_init",
        description="1D near-neighbour line, initialisation assumed accurate",
        operation_count=38,
        paper_denominator=2109,
        includes_initialisation=False,
    ),
}
