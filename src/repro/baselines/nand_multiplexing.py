"""Von Neumann NAND multiplexing — the irreversible baseline.

The paper motivates its reversible scheme against "the best gate-level,
fault-tolerant schemes for classical computing... based on Von-Neumann
multiplexing", which tolerate gate error rates "less than about 11%".
This module implements that scheme so the two can be compared:

* each logical signal is a *bundle* of ``N`` wires;
* a multiplexed NAND unit is an **executive stage** (pair the two input
  bundles under a random permutation, NAND each pair) followed by a
  **restorative stage** (duplicate the output bundle, randomly permute,
  and apply two more NAND stages to push the bundle back toward its
  nominal value);
* every NAND gate independently *flips its output* with probability
  ``epsilon`` (von Neumann's error model for two-input organs).

Both the deterministic bundle-fraction recursion (the ``N -> infinity``
limit) and a finite-``N`` Monte-Carlo simulation are provided, plus a
bisection search for the critical ``epsilon`` — which lands at ~0.09,
the same order as the paper's quoted ~11% and one to two orders of
magnitude above the reversible thresholds (1/108 ... 1/2340).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.noise.seeds import as_generator


def _check_epsilon(epsilon: float) -> None:
    if not 0.0 <= epsilon <= 1.0:
        raise AnalysisError(f"epsilon must be in [0, 1], got {epsilon}")


def nand_stage_fraction(xi_a: float, xi_b: float, epsilon: float) -> float:
    """Stimulated-output fraction of one NAND stage (infinite bundle).

    With independent pairing, a NAND output is stimulated when its
    inputs are not both stimulated, XOR a gate flip:
    ``(1-eps)(1 - a b) + eps a b``.
    """
    _check_epsilon(epsilon)
    product = xi_a * xi_b
    return (1.0 - epsilon) * (1.0 - product) + epsilon * product


def multiplexed_unit_fraction(xi_a: float, xi_b: float, epsilon: float) -> float:
    """Output stimulated fraction of a full executive+restorative unit."""
    executive = nand_stage_fraction(xi_a, xi_b, epsilon)
    first_restore = nand_stage_fraction(executive, executive, epsilon)
    return nand_stage_fraction(first_restore, first_restore, epsilon)


def iterate_units(
    xi: float, epsilon: float, units: int
) -> list[float]:
    """Iterate the unit map, tracking the worst-case logical signal.

    Feeding a unit two copies of a bundle at stimulated fraction ``xi``
    models a chain of NANDs computing NOT-AND of identical signals; the
    nominal trajectory alternates polarity, so the *error* is the
    distance to the alternating nominal value.
    """
    trajectory = [xi]
    for _ in range(units):
        trajectory.append(multiplexed_unit_fraction(trajectory[-1], trajectory[-1], epsilon))
    return trajectory


def degrades(epsilon: float, units: int = 60, start_error: float = 0.01) -> bool:
    """True when iterated units lose the logical signal at this noise.

    Starts from stimulated fraction ``1 - start_error`` (a nearly clean
    "1" bundle) and checks whether, after ``units`` iterations, the
    bundle still decides its nominal value by a 10% margin.  Below the
    threshold the map's stable fixed points stay near 0/1; above it
    they merge toward 1/2 and the margin collapses.
    """
    trajectory = iterate_units(1.0 - start_error, epsilon, units)
    final = trajectory[-1]
    nominal_is_one = units % 2 == 0
    margin = final - 0.5 if nominal_is_one else 0.5 - final
    return margin < 0.1


def critical_epsilon(
    lower: float = 0.0, upper: float = 0.25, iterations: int = 40
) -> float:
    """Bisection estimate of the multiplexing threshold (~0.09)."""
    if not degrades(upper):
        raise AnalysisError(f"no degradation even at epsilon={upper}")
    if degrades(lower):
        raise AnalysisError(f"degradation already at epsilon={lower}")
    low, high = lower, upper
    for _ in range(iterations):
        middle = (low + high) / 2.0
        if degrades(middle):
            high = middle
        else:
            low = middle
    return (low + high) / 2.0


# ----------------------------------------------------------------------
# Finite-bundle Monte Carlo
# ----------------------------------------------------------------------


@dataclass
class BundleSimulator:
    """Finite-``N`` NAND multiplexing with real random permutations."""

    bundle_size: int
    epsilon: float
    rng: np.random.Generator

    @staticmethod
    def create(
        bundle_size: int, epsilon: float, seed: int | None = None
    ) -> "BundleSimulator":
        """Build a simulator with a fresh seeded generator."""
        if bundle_size < 1:
            raise AnalysisError(f"bundle size must be >= 1, got {bundle_size}")
        _check_epsilon(epsilon)
        return BundleSimulator(
            bundle_size=bundle_size,
            epsilon=epsilon,
            rng=as_generator(seed),
        )

    def bundle(self, value: int, error_fraction: float = 0.0) -> np.ndarray:
        """A bundle carrying ``value`` with a corrupted fraction."""
        if value not in (0, 1):
            raise AnalysisError(f"bundle value must be 0 or 1, got {value!r}")
        lines = np.full(self.bundle_size, value, dtype=np.uint8)
        n_bad = int(round(error_fraction * self.bundle_size))
        if n_bad:
            bad = self.rng.choice(self.bundle_size, size=n_bad, replace=False)
            lines[bad] ^= 1
        return lines

    def nand_stage(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """One NAND stage: permute ``b``, NAND pairwise, flip w.p. eps."""
        paired = b[self.rng.permutation(self.bundle_size)]
        output = 1 - (a & paired)
        flips = (self.rng.random(self.bundle_size) < self.epsilon).astype(np.uint8)
        return output ^ flips

    def unit(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Executive stage plus two-restorative-stage restoration."""
        executive = self.nand_stage(a, b)
        restored = self.nand_stage(executive, executive.copy())
        return self.nand_stage(restored, restored.copy())

    def run_chain(self, units: int, start_error: float = 0.01) -> float:
        """Iterate units on a nominal-1 bundle; return the final margin.

        The returned value is the decision margin toward the nominal
        value (positive = still decodable).
        """
        bundle = self.bundle(1, start_error)
        for _ in range(units):
            bundle = self.unit(bundle, bundle.copy())
        fraction = float(bundle.mean())
        nominal_is_one = units % 2 == 0
        return fraction - 0.5 if nominal_is_one else 0.5 - fraction


def monte_carlo_degrades(
    epsilon: float,
    bundle_size: int = 2000,
    units: int = 40,
    seed: int | None = 0,
) -> bool:
    """Finite-``N`` counterpart of :func:`degrades`."""
    simulator = BundleSimulator.create(bundle_size, epsilon, seed)
    return simulator.run_chain(units) < 0.1
