"""Baselines: the unprotected model and von Neumann NAND multiplexing."""

from repro.baselines.nand_multiplexing import (
    BundleSimulator,
    critical_epsilon,
    degrades,
    iterate_units,
    monte_carlo_degrades,
    multiplexed_unit_fraction,
    nand_stage_fraction,
)
from repro.baselines.unprotected import (
    identity_module,
    largest_reliable_module,
    module_error,
    module_error_linear,
    simulate_unprotected,
)

__all__ = [
    "BundleSimulator",
    "critical_epsilon",
    "degrades",
    "iterate_units",
    "monte_carlo_degrades",
    "multiplexed_unit_fraction",
    "nand_stage_fraction",
    "identity_module",
    "largest_reliable_module",
    "module_error",
    "module_error_linear",
    "simulate_unprotected",
]
