"""The unprotected baseline: no fault tolerance at all.

A module of ``T`` gates with per-gate failure probability ``g``
survives only when *no* gate fails: the module error is
``1 - (1 - g)**T ~ gT``.  Section 2.3's framing — "without any error
correction, modules larger than 1,000 gates will almost certainly be
faulty" at ``g ~ 10**-3`` — is this curve.

:func:`simulate_unprotected` validates the formula by running an
actual reversible circuit (whose noiseless action is the identity)
through the Monte-Carlo engine and counting corrupted outputs.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.circuit import Circuit
from repro.noise.model import NoiseModel
from repro.noise.monte_carlo import any_wire_differs_predicate
from repro.runtime import ExecutionPolicy, Executor, RunSpec
from repro.errors import AnalysisError


def module_error(gate_error: float, module_gates: int) -> float:
    """``1 - (1 - g)**T``: probability an unprotected module fails."""
    if not 0.0 <= gate_error <= 1.0:
        raise AnalysisError(f"gate error must be in [0, 1], got {gate_error}")
    if module_gates < 0:
        raise AnalysisError(f"module size must be >= 0, got {module_gates}")
    return 1.0 - (1.0 - gate_error) ** module_gates


def module_error_linear(gate_error: float, module_gates: int) -> float:
    """The small-``g`` approximation ``g * T``."""
    if not 0.0 <= gate_error <= 1.0:
        raise AnalysisError(f"gate error must be in [0, 1], got {gate_error}")
    return min(1.0, gate_error * module_gates)


def largest_reliable_module(gate_error: float, target_error: float = 0.5) -> float:
    """Largest ``T`` keeping the module error below ``target_error``."""
    if not 0.0 < gate_error < 1.0:
        raise AnalysisError(f"gate error must be in (0, 1), got {gate_error}")
    if not 0.0 < target_error < 1.0:
        raise AnalysisError(
            f"target error must be in (0, 1), got {target_error}"
        )
    return np.log(1.0 - target_error) / np.log(1.0 - gate_error)


def identity_module(module_gates: int, n_wires: int = 3) -> Circuit:
    """A ``T``-gate circuit whose noiseless action is the identity.

    Alternates ``MAJ`` and ``MAJ⁻¹`` on the same wires (a trailing
    unpaired ``MAJ`` is avoided by requiring an even count), so any
    output corruption is attributable to injected faults.
    """
    if module_gates < 0 or module_gates % 2 != 0:
        raise AnalysisError(
            f"identity module needs an even gate count, got {module_gates}"
        )
    if n_wires < 3:
        raise AnalysisError(f"identity module needs >= 3 wires, got {n_wires}")
    circuit = Circuit(n_wires, name=f"identity-{module_gates}")
    for index in range(module_gates // 2):
        base = (3 * index) % (n_wires - 2)
        circuit.maj(base, base + 1, base + 2)
        circuit.maj_inv(base, base + 1, base + 2)
    return circuit


def simulate_unprotected(
    gate_error: float,
    module_gates: int,
    trials: int,
    seed: int | np.random.Generator | None = None,
    n_wires: int = 3,
    engine: str = "auto",
) -> float:
    """Monte-Carlo module error of an unprotected identity module.

    Returns the fraction of trials whose output differs from the
    input anywhere — the empirical ``1 - (1-g)**T`` (slightly below it,
    since a fault can be silent or cancelled).  ``engine`` selects the
    Monte-Carlo backend (see :mod:`repro.noise.monte_carlo`); the point
    is declared as a :class:`~repro.runtime.RunSpec` and executed
    through :class:`~repro.runtime.Executor`.
    """
    circuit = identity_module(module_gates, n_wires)
    input_bits = tuple(i % 2 for i in range(n_wires))
    spec = RunSpec(
        circuit=circuit,
        input_bits=input_bits,
        observable=any_wire_differs_predicate(range(n_wires), input_bits),
        noise=NoiseModel(gate_error=gate_error),
        trials=trials,
        seed=seed,
    )
    policy = replace(ExecutionPolicy.from_env(), engine=engine, parallel=None)
    return Executor(policy).run_one(spec).failure_fraction
