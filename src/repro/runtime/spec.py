"""Declarative run specifications for the unified execution layer.

Every Monte-Carlo experiment in this repository has one shape —
"evaluate this circuit under this noise at these points with this
failure predicate".  This module gives that shape a value type:

* :class:`RunSpec` — one frozen point: circuit, input, observable,
  noise model, trial count, seed.  Specs are data; nothing runs until
  an :class:`~repro.runtime.executor.Executor` is handed a batch of
  them.
* :class:`ExecutionPolicy` — *how* specs run (engine, worker pool,
  fusion, compile cache, default trial budget, trace sink), hydrated
  once from the environment by :meth:`ExecutionPolicy.from_env`.  This
  is the single home of every ``REPRO_*`` execution knob; nothing else
  in the library reads them mid-run.  (The observability layer
  additionally reads its own ``REPRO_TRACE``/``REPRO_OBS_SAMPLE`` once
  at import so bare CLI runs trace too — see :mod:`repro.obs`.)
* :class:`PointResult` — one point's outcome: failure count, trial
  count, fault statistics, and the engine that produced them.
* Observables — the failure predicate half of a spec.  Anything with a
  ``count_failures(states) -> int`` method qualifies;
  :func:`as_observable` wraps a plain ``states -> bool array``
  predicate.  The provided frozen observables are picklable, so specs
  can cross a process-pool boundary.

Specs are deliberately engine-free: the same ``RunSpec`` runs on the
batched or bitplane engine, serially or pooled, alone or stacked with
other points into one plane array — and, by construction, produces the
same failure counts in every mode.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from dataclasses import dataclass, replace

import numpy as np

from repro.backends import DEFAULT_BACKEND, available_backends
from repro.core.bitplane import BitplaneState, count_trial_ones, words_for
from repro.core.circuit import Circuit
from repro.core.simulator import BatchedState
from repro.errors import ConfigError, SimulationError
from repro.noise.model import NoiseModel
from repro.noise.monte_carlo import ENGINES

States = BatchedState | BitplaneState

#: Default Monte-Carlo trial budget (the ``REPRO_TRIALS`` default).
DEFAULT_TRIALS = 100_000


# ----------------------------------------------------------------------
# Observables
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PredicateObservable:
    """Counts failures through a ``states -> bool array`` predicate.

    The predicate must stick to the engine-agnostic observation API
    (``array``/``columns``/``majority_of``), since the state type
    follows the executing engine.  For pooled execution the predicate
    must be picklable (a module-level function or a
    :func:`functools.partial` of one).
    """

    predicate: Callable[[States], np.ndarray]

    def count_failures(self, states: States) -> int:
        failures = np.asarray(self.predicate(states), dtype=bool)
        if failures.shape != (states.trials,):
            raise SimulationError(
                f"is_failure returned shape {failures.shape}, expected "
                f"({states.trials},)"
            )
        return int(failures.sum())


@dataclass(frozen=True)
class DecodeObservable:
    """Counts trials whose decoded logical word differs from ``expected``.

    ``decoder`` is any object with ``count_decode_failures(states,
    expected)`` — e.g. :class:`~repro.coding.logical.LogicalProcessor`,
    whose bit-plane path compares majority planes without unpacking a
    single trial (the threshold pipeline's hot decode).  Decoders that
    also expose ``decode_failure_plane(states, expected)`` additionally
    get the *stacked* decode: one failure plane computed across a whole
    multi-point plane array, counted per point window.
    """

    decoder: object
    expected: tuple[int, ...]

    def count_failures(self, states: States) -> int:
        return int(self.decoder.count_decode_failures(states, self.expected))

    def count_failures_stacked(
        self, states: BitplaneState, windows
    ) -> list[int]:
        """Per-window failure counts of a stacked multi-point array.

        ``windows`` is a sequence of ``(word_offset, trials)`` pairs
        describing each point's word-aligned window of ``states``.  The
        decoder's failure plane is computed ONCE over the full array
        (plane operations are wordwise, so each window's slice equals
        the plane a solo decode of that window would produce) and then
        counted per window with that window's own padding mask —
        bit-identical to calling :meth:`count_failures` on each window
        view, at one decode pass instead of one per point.  Decoders
        without ``decode_failure_plane`` fall back to exactly that
        per-window path.
        """
        decode_plane = getattr(self.decoder, "decode_failure_plane", None)
        if decode_plane is None:
            counts = []
            for offset, trials in windows:
                window = BitplaneState(
                    states.planes[:, offset:offset + words_for(trials)],
                    trials,
                )
                counts.append(self.count_failures(window))
            return counts
        failed = decode_plane(states, self.expected)
        return [
            count_trial_ones(failed[offset:offset + words_for(trials)], trials)
            for offset, trials in windows
        ]


@dataclass(frozen=True)
class DecodedMismatchObservable:
    """Counts rows of ``decoder.decode_batch`` that mismatch ``expected``.

    For decoders that expose only a batch decode (e.g.
    :class:`~repro.coding.concatenation.ConcatenatedComputation`):
    decodes the whole batch to a ``(trials, n_logical)`` array and
    counts rows differing from ``expected`` anywhere.
    """

    decoder: object
    expected: tuple[int, ...]

    def count_failures(self, states: States) -> int:
        decoded = self.decoder.decode_batch(states)
        expected = np.asarray(self.expected, dtype=np.uint8)
        return int((decoded != expected).any(axis=1).sum())


def as_observable(observable):
    """Normalise a spec's observable to the ``count_failures`` protocol.

    Objects already exposing ``count_failures`` pass through; a plain
    callable is wrapped as a :class:`PredicateObservable`.
    """
    if hasattr(observable, "count_failures"):
        return observable
    if callable(observable):
        return PredicateObservable(observable)
    raise SimulationError(
        f"observable must expose count_failures(states) or be a "
        f"states -> bool-array callable, got {type(observable).__name__}"
    )


# ----------------------------------------------------------------------
# RunSpec
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """One declarative Monte-Carlo point.

    Attributes:
        circuit: the circuit to evolve noisily.
        input_bits: the broadcast input vector (one value per wire).
        observable: the failure predicate — anything accepted by
            :func:`as_observable`.
        noise: the :class:`~repro.noise.model.NoiseModel` applied at
            this point.
        trials: Monte-Carlo batch size (must be >= 1).
        seed: per-point RNG seed.  An integer (or ``None``) spawns a
            fresh ``numpy`` generator; an existing generator is used
            as-is (and is then consumed by the run).
    """

    circuit: Circuit
    input_bits: tuple[int, ...]
    observable: object
    noise: NoiseModel
    trials: int
    seed: int | np.random.Generator | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "input_bits", tuple(self.input_bits))
        if len(self.input_bits) != self.circuit.n_wires:
            raise SimulationError(
                f"input has {len(self.input_bits)} bits but circuit has "
                f"{self.circuit.n_wires} wires"
            )
        if self.trials < 1:
            raise SimulationError(f"trials must be >= 1, got {self.trials}")
        as_observable(self.observable)  # validate the protocol up front

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.circuit.name or f"{self.circuit.n_wires}-wire circuit"
        return (
            f"RunSpec({label!r}, g={self.noise.gate_error:g}, "
            f"trials={self.trials}, seed={self.seed!r})"
        )

    def to_json(self) -> dict:
        """The spec's versioned JSON wire form.

        Delegates to :func:`repro.runtime.serialization.spec_to_json`;
        raises :class:`~repro.errors.SerializationError` for specs with
        no faithful wire form (generator seeds, unregistered
        observables).  The import is deferred because the serialization
        module builds on this one.
        """
        from repro.runtime.serialization import spec_to_json

        return spec_to_json(self)

    @staticmethod
    def from_json(data: dict) -> "RunSpec":
        """Rebuild a spec serialised by :meth:`to_json`."""
        from repro.runtime.serialization import spec_from_json

        return spec_from_json(data)


# ----------------------------------------------------------------------
# ExecutionPolicy
# ----------------------------------------------------------------------


def _parse_parallel(value: str) -> int | bool:
    if value.strip().lower() == "max":
        return True
    return int(value)


@dataclass(frozen=True)
class ExecutionPolicy:
    """How specs execute — the single home of the ``REPRO_*`` knobs.

    Attributes:
        engine: ``"auto" | "batched" | "bitplane"`` (``REPRO_ENGINE``).
        parallel: process-pool width for independent work —
            ``None``/0/1 in-process, ``N`` workers, ``True`` one per
            CPU (``REPRO_PARALLEL``; ``max`` means ``True``).  The
            executor pools only *across* compiled groups; points
            sharing a program batch into one plane array instead.
        fuse: whether the compiler fuses disjoint ops into slots
            (``REPRO_FUSE``).  Unfused execution keeps the pre-fusion
            RNG stream and is evaluated point by point.
        compile_cache: whether compiled programs are reused
            process-wide (``REPRO_COMPILE_CACHE``).
        trials: default Monte-Carlo budget for callers that take their
            trial count from the policy (``REPRO_TRIALS``).
        backend: which registered plane-program backend executes
            bitplane slots (``REPRO_BACKEND``; see
            :mod:`repro.backends`).  Backends are bit-identical, so
            this — like ``parallel`` — can never change a result.
        trace: span-trace sink — a file path, ``"stderr"`` or
            ``"stdout"`` — or ``None`` for no tracing
            (``REPRO_TRACE``; see :mod:`repro.obs`).  Tracing is
            observational only and can never change a result; pooled
            workers inherit the sink through the pickled policy and
            flush ``<path>.<pid>``.

    Unknown engine or backend names raise
    :class:`~repro.errors.ConfigError` (a ``SimulationError``
    subclass): a typo in a knob must fail loudly, not silently run the
    default.
    """

    engine: str = "auto"
    parallel: int | bool | None = None
    fuse: bool = True
    compile_cache: bool = True
    trials: int = DEFAULT_TRIALS
    backend: str = DEFAULT_BACKEND
    trace: str | None = None

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ConfigError(
                f"unknown engine {self.engine!r}; valid engines: {ENGINES}"
            )
        if self.backend not in available_backends():
            raise ConfigError(
                f"unknown backend {self.backend!r}; available backends: "
                f"{available_backends()}"
            )
        if self.trials < 1:
            raise SimulationError(f"trials must be >= 1, got {self.trials}")

    @classmethod
    def from_env(cls, **defaults) -> "ExecutionPolicy":
        """The policy described by the ``REPRO_*`` environment knobs.

        ``defaults`` override the dataclass defaults for knobs the
        environment leaves unset, so callers can say "100k trials
        unless ``REPRO_TRIALS`` is exported".  This classmethod is the
        only place the execution knobs are read; hydrate once and pass
        the policy around.  Invalid values raise
        :class:`~repro.errors.ConfigError` naming the offending
        variable — never a silent fall-back to the default.
        """
        policy = cls(**defaults)
        env = os.environ
        updates: dict = {}
        if "REPRO_ENGINE" in env:
            if env["REPRO_ENGINE"] not in ENGINES:
                raise ConfigError(
                    f"REPRO_ENGINE={env['REPRO_ENGINE']!r} is not a valid "
                    f"engine; valid engines: {ENGINES}"
                )
            updates["engine"] = env["REPRO_ENGINE"]
        if "REPRO_BACKEND" in env:
            if env["REPRO_BACKEND"] not in available_backends():
                raise ConfigError(
                    f"REPRO_BACKEND={env['REPRO_BACKEND']!r} is not a "
                    f"registered backend; available backends: "
                    f"{available_backends()}"
                )
            updates["backend"] = env["REPRO_BACKEND"]
        if env.get("REPRO_PARALLEL") is not None:
            try:
                updates["parallel"] = _parse_parallel(env["REPRO_PARALLEL"])
            except ValueError as exc:
                raise ConfigError(
                    f"REPRO_PARALLEL={env['REPRO_PARALLEL']!r} is not an "
                    f"integer or 'max'"
                ) from exc
        if "REPRO_FUSE" in env:
            updates["fuse"] = env["REPRO_FUSE"] != "0"
        if "REPRO_COMPILE_CACHE" in env:
            updates["compile_cache"] = env["REPRO_COMPILE_CACHE"] != "0"
        if "REPRO_TRIALS" in env:
            try:
                updates["trials"] = int(env["REPRO_TRIALS"])
            except ValueError as exc:
                raise ConfigError(
                    f"REPRO_TRIALS={env['REPRO_TRIALS']!r} is not an integer"
                ) from exc
        if "REPRO_TRACE" in env:
            updates["trace"] = env["REPRO_TRACE"] or None
        return replace(policy, **updates) if updates else policy


# ----------------------------------------------------------------------
# PointResult
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PointResult:
    """Outcome of one :class:`RunSpec`.

    ``failures`` counts trials the spec's observable flagged;
    ``faulted_trials`` counts trials that experienced at least one
    injected fault (the raw noise exposure, independent of the
    observable); ``engine`` records the concrete engine that ran the
    point.
    """

    failures: int
    trials: int
    faulted_trials: int
    engine: str

    @property
    def failure_fraction(self) -> float:
        """``failures / trials``."""
        return self.failures / self.trials

    @property
    def fault_fraction(self) -> float:
        """Fraction of trials with at least one injected fault."""
        return self.faulted_trials / self.trials
