"""Unified declarative execution layer for Monte-Carlo experiments.

The public surface is small: describe each point as a
:class:`RunSpec`, describe *how* to run as an :class:`ExecutionPolicy`
(hydrated from the ``REPRO_*`` environment knobs exactly once via
:meth:`ExecutionPolicy.from_env`), and hand batches of specs to an
:class:`Executor`.  Points that share a compiled program are evaluated
together in one stacked bitplane array; independent groups can fan out
to a process pool.  See :mod:`repro.runtime.executor` for the
execution plan and its bit-identity guarantee.
"""

from repro.runtime.spec import (
    DEFAULT_TRIALS,
    DecodeObservable,
    DecodedMismatchObservable,
    ExecutionPolicy,
    PointResult,
    PredicateObservable,
    RunSpec,
    as_observable,
)
from repro.runtime.executor import Executor, run_specs
from repro.runtime.serialization import (
    SPEC_FORMAT_VERSION,
    spec_from_json,
    spec_to_json,
)

__all__ = [
    "DEFAULT_TRIALS",
    "DecodeObservable",
    "DecodedMismatchObservable",
    "ExecutionPolicy",
    "Executor",
    "PointResult",
    "PredicateObservable",
    "RunSpec",
    "SPEC_FORMAT_VERSION",
    "as_observable",
    "run_specs",
    "spec_from_json",
    "spec_to_json",
]
