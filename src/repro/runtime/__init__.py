"""Unified declarative execution layer for Monte-Carlo experiments.

The public surface is small: describe each point as a
:class:`RunSpec`, describe *how* to run as an :class:`ExecutionPolicy`
(hydrated from the ``REPRO_*`` environment knobs exactly once via
:meth:`ExecutionPolicy.from_env`), and hand batches of specs to an
:class:`Executor`.  Points that share a compiled program are evaluated
together in one stacked bitplane array; independent groups can fan out
to a process pool.  See :mod:`repro.runtime.executor` for the
execution plan and its bit-identity guarantee.
"""

from repro.runtime.spec import (
    DEFAULT_TRIALS,
    DecodeObservable,
    DecodedMismatchObservable,
    ExecutionPolicy,
    PointResult,
    PredicateObservable,
    RunSpec,
    as_observable,
)
from repro.runtime.executor import Executor, run_specs

__all__ = [
    "DEFAULT_TRIALS",
    "DecodeObservable",
    "DecodedMismatchObservable",
    "ExecutionPolicy",
    "Executor",
    "PointResult",
    "PredicateObservable",
    "RunSpec",
    "as_observable",
    "run_specs",
]
