"""JSON wire forms for :class:`~repro.runtime.spec.RunSpec` and its parts.

Until now specs were only *picklable*, which is enough to cross a
process-pool boundary but useless for anything durable: a shard
manifest written by one process and resumed by another (possibly a
different Python, a different machine) needs a stable, inspectable,
versioned wire form.  This module provides exactly that:

* :func:`spec_to_json` / :func:`spec_from_json` — the full round trip,
  stamped with :data:`SPEC_FORMAT_VERSION` so a future format change
  fails loudly on old readers instead of mis-parsing.
* :func:`circuit_to_json` / :func:`circuit_from_json` — circuits with
  gate tables deduplicated (an op references its gate by index), so a
  108-op recovery cycle built from three distinct gates serialises the
  tables three times, not 108.
* Codec registries for observables and decoders —
  :func:`register_observable_codec` / :func:`register_decoder_codec`
  let new observable or decoder types opt into the wire form without
  this module naming them.  The built-in frozen observables and
  :class:`~repro.coding.logical.LogicalProcessor` are pre-registered.

The round trip is *value-faithful*: ``spec_from_json(spec_to_json(s))
== s``, the reconstructed circuit has the same
:meth:`~repro.core.circuit.Circuit.content_key` (so executor grouping
and the compile cache treat it as the same circuit), and running the
reconstructed spec is bit-identical to running the original — which is
what lets a resumed sweep job rebuild its specs from the manifest and
still merge bit-for-bit with shards run before the crash.

Anything without a faithful wire form raises
:class:`~repro.errors.SerializationError` at serialisation time:
predicates that are not module-level functions, live RNG generators as
seeds, decoder types with no registered codec.  Refusing is the
feature — a spec that cannot round-trip must never be written into a
manifest that resume will trust.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Callable
from importlib import import_module

import numpy as np

from repro.coding.logical import LogicalProcessor
from repro.coding.recovery import RecoveryLayout
from repro.core.circuit import Circuit, OpKind, Operation
from repro.core.gate import Gate
from repro.errors import SerializationError
from repro.noise.model import NoiseModel
from repro.runtime.spec import (
    DecodeObservable,
    DecodedMismatchObservable,
    PredicateObservable,
    RunSpec,
)

__all__ = [
    "SPEC_FORMAT_VERSION",
    "canonical_json",
    "circuit_from_json",
    "circuit_to_json",
    "noise_from_json",
    "noise_to_json",
    "observable_from_json",
    "observable_to_json",
    "register_decoder_codec",
    "register_observable_codec",
    "spec_from_json",
    "spec_to_json",
]

#: Version stamp written into every serialised spec.  Bump on any
#: change to the wire form that an old reader would mis-parse; readers
#: reject versions they do not know.
SPEC_FORMAT_VERSION = 1


def canonical_json(payload) -> str:
    """The canonical text form used for hashing wire payloads.

    Sorted keys and minimal separators, so two semantically equal
    payloads produce byte-identical text (and therefore equal content
    digests) regardless of construction order.  Payloads that JSON
    cannot represent canonically (sets, arrays, arbitrary objects)
    raise :class:`~repro.errors.SerializationError` — a set would
    otherwise serialise in iteration order and silently destabilise
    every digest built on top.
    """
    try:
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))
    except TypeError as exc:
        raise SerializationError(
            f"payload is not canonically JSON-serialisable: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# Circuits
# ----------------------------------------------------------------------


#: Memoised wire forms keyed by ``(name, content_key)`` — value-based,
#: so an appended op (which changes ``content_key``) is a clean miss.
#: Sweeps serialize the same shared circuit once per point (the spec
#: AND its decode observable each embed it); without the memo that
#: dominates the warm result-store path.
_CIRCUIT_WIRE_CACHE: dict[tuple, dict] = {}
#: Canonical-text digests of the memoised fragments, keyed by the
#: fragment dict's id — valid exactly as long as the fragment lives in
#: ``_CIRCUIT_WIRE_CACHE`` (which holds the reference, so the id can
#: never be reused while the entry exists).
_CIRCUIT_WIRE_DIGESTS: dict[int, str] = {}
_CIRCUIT_WIRE_CACHE_MAX = 128


def circuit_to_json(circuit: Circuit) -> dict:
    """The circuit's wire form: gate table pool + op list.

    The returned dict is memoised and shared — treat it as frozen
    (serialize it, embed it in payloads, never mutate it in place).
    """
    key = (circuit.name, circuit.content_key())
    cached = _CIRCUIT_WIRE_CACHE.get(key)
    if cached is not None:
        return cached
    payload = _circuit_to_json_uncached(circuit)
    if len(_CIRCUIT_WIRE_CACHE) >= _CIRCUIT_WIRE_CACHE_MAX:
        _CIRCUIT_WIRE_CACHE.clear()
        _CIRCUIT_WIRE_DIGESTS.clear()
    _CIRCUIT_WIRE_CACHE[key] = payload
    _CIRCUIT_WIRE_DIGESTS[id(payload)] = hashlib.sha256(
        canonical_json(payload).encode()
    ).hexdigest()
    return payload


def compress_for_hashing(payload):
    """A copy of ``payload`` with memoised circuit fragments digested.

    Key hashing (the result store, shard IDs) does not need the full
    wire text — only a deterministic function of the content.  Every
    embedded circuit fragment that came out of :func:`circuit_to_json`
    is replaced by ``{"circuit_digest": <sha256 of its canonical
    text>}``, so hashing a sweep's point keys serializes each shared
    circuit once per process instead of twice per point.  Fragments
    not in the memo (e.g. payloads that went through JSON text and
    back) are left in place — the substitution only ever swaps a
    fragment for a digest of the identical bytes, so equal content
    yields equal hashes either way only WITHIN one form; callers must
    hash exclusively compressed or exclusively raw payloads for a
    given key space, never a mix.
    """
    if isinstance(payload, dict):
        digest = _CIRCUIT_WIRE_DIGESTS.get(id(payload))
        if digest is not None:
            return {"circuit_digest": digest}
        # Sorted so the compressed form is itself insertion-order
        # independent; the final key bytes were already order-free
        # (canonical_json sorts at dump time), but key computations
        # must not iterate dicts in insertion order (RL111).
        return {
            key: compress_for_hashing(payload[key])
            for key in sorted(payload)
        }
    if isinstance(payload, list):
        return [compress_for_hashing(item) for item in payload]
    return payload


def _circuit_to_json_uncached(circuit: Circuit) -> dict:
    gates: list[Gate] = []
    gate_index: dict[Gate, int] = {}
    ops = []
    for op in circuit.ops:
        if op.kind is OpKind.GATE:
            index = gate_index.get(op.gate)
            if index is None:
                index = len(gates)
                gate_index[op.gate] = index
                gates.append(op.gate)
            ops.append({"kind": "gate", "wires": list(op.wires), "gate": index})
        else:
            ops.append(
                {
                    "kind": "reset",
                    "wires": list(op.wires),
                    "value": op.reset_value,
                }
            )
    return {
        "n_wires": circuit.n_wires,
        "name": circuit.name,
        "gates": [
            {"name": g.name, "arity": g.arity, "table": list(g.table)}
            for g in gates
        ],
        "ops": ops,
    }


def circuit_from_json(data: dict) -> Circuit:
    """Rebuild a circuit from :func:`circuit_to_json` output.

    Gate and circuit construction re-validate everything (bijective
    tables, wire ranges, arity matches), so a tampered payload fails
    as a library error instead of producing a silently wrong circuit.
    """
    gates = [
        Gate(name=g["name"], arity=g["arity"], table=tuple(g["table"]))
        for g in data["gates"]
    ]
    circuit = Circuit(data["n_wires"], name=data.get("name", ""))
    for op in data["ops"]:
        wires = tuple(op["wires"])
        if op["kind"] == "gate":
            circuit.append(
                Operation(OpKind.GATE, wires, gate=gates[op["gate"]])
            )
        elif op["kind"] == "reset":
            circuit.append(
                Operation(OpKind.RESET, wires, reset_value=op["value"])
            )
        else:
            raise SerializationError(f"unknown op kind {op['kind']!r}")
    return circuit


# ----------------------------------------------------------------------
# Noise models
# ----------------------------------------------------------------------


def noise_to_json(noise: NoiseModel) -> dict:
    return {"gate_error": noise.gate_error, "reset_error": noise.reset_error}


def noise_from_json(data: dict) -> NoiseModel:
    return NoiseModel(
        gate_error=data["gate_error"], reset_error=data["reset_error"]
    )


# ----------------------------------------------------------------------
# Decoders
# ----------------------------------------------------------------------

#: kind -> (type, encode, decode).  ``encode(decoder) -> dict`` (sans
#: the ``kind`` tag), ``decode(dict) -> decoder``.
_DECODER_CODECS: dict[str, tuple[type, Callable, Callable]] = {}


def register_decoder_codec(
    kind: str, cls: type, encode: Callable, decode: Callable
) -> None:
    """Register a wire form for a decoder type.

    ``kind`` is the tag written into the payload; it must be unique.
    Decoders are matched by exact type, not isinstance — a subclass
    with extra state must register its own codec.
    """
    if kind in _DECODER_CODECS:
        raise SerializationError(f"decoder codec {kind!r} already registered")
    _DECODER_CODECS[kind] = (cls, encode, decode)


def _decoder_to_json(decoder: object) -> dict:
    for kind, (cls, encode, _) in _DECODER_CODECS.items():
        if type(decoder) is cls:
            return {"kind": kind, **encode(decoder)}
    raise SerializationError(
        f"decoder type {type(decoder).__name__} has no registered wire "
        f"form; register one with "
        f"repro.runtime.serialization.register_decoder_codec"
    )


def _decoder_from_json(data: dict) -> object:
    kind = data.get("kind")
    entry = _DECODER_CODECS.get(kind)
    if entry is None:
        raise SerializationError(f"unknown decoder kind {kind!r}")
    return entry[2](data)


def _logical_processor_to_json(processor: LogicalProcessor) -> dict:
    return {
        "n_logical": processor.n_logical,
        "include_resets": processor.include_resets,
        "gates_applied": processor.logical_gates_applied,
        "layouts": [
            {"data": list(l.data), "ancillas": list(l.ancillas)}
            for l in processor.layouts
        ],
        "circuit": circuit_to_json(processor.circuit),
    }


def _logical_processor_from_json(data: dict) -> LogicalProcessor:
    circuit = circuit_from_json(data["circuit"])
    processor = LogicalProcessor(
        data["n_logical"],
        include_resets=data["include_resets"],
        name=circuit.name,
    )
    # The constructor builds an empty program; restore the serialised
    # build state wholesale.  RecoveryLayout re-validates wire counts.
    processor.circuit = circuit
    processor.layouts = [
        RecoveryLayout(
            data=tuple(layout["data"]), ancillas=tuple(layout["ancillas"])
        )
        for layout in data["layouts"]
    ]
    processor.logical_gates_applied = data["gates_applied"]
    return processor


register_decoder_codec(
    "logical_processor",
    LogicalProcessor,
    _logical_processor_to_json,
    _logical_processor_from_json,
)


# ----------------------------------------------------------------------
# Observables
# ----------------------------------------------------------------------

_OBSERVABLE_CODECS: dict[str, tuple[type, Callable, Callable]] = {}


def register_observable_codec(
    kind: str, cls: type, encode: Callable, decode: Callable
) -> None:
    """Register a wire form for an observable type (exact-type match)."""
    if kind in _OBSERVABLE_CODECS:
        raise SerializationError(
            f"observable codec {kind!r} already registered"
        )
    _OBSERVABLE_CODECS[kind] = (cls, encode, decode)


def observable_to_json(observable: object) -> dict:
    """The observable's tagged wire form, or :class:`SerializationError`."""
    for kind, (cls, encode, _) in _OBSERVABLE_CODECS.items():
        if type(observable) is cls:
            return {"kind": kind, **encode(observable)}
    raise SerializationError(
        f"observable type {type(observable).__name__} has no registered "
        f"wire form; register one with "
        f"repro.runtime.serialization.register_observable_codec"
    )


def observable_from_json(data: dict) -> object:
    kind = data.get("kind")
    entry = _OBSERVABLE_CODECS.get(kind)
    if entry is None:
        raise SerializationError(f"unknown observable kind {kind!r}")
    return entry[2](data)


def _predicate_to_json(observable: PredicateObservable) -> dict:
    predicate = observable.predicate
    module = getattr(predicate, "__module__", None)
    qualname = getattr(predicate, "__qualname__", None)
    if not module or not qualname or "<" in qualname or "." in qualname:
        raise SerializationError(
            f"predicate {predicate!r} is not a module-level function; only "
            f"importable-by-name predicates have a JSON wire form (lambdas, "
            f"closures, and bound methods do not)"
        )
    resolved = getattr(import_module(module), qualname, None)
    if resolved is not predicate:
        raise SerializationError(
            f"predicate {module}.{qualname} does not resolve back to the "
            f"serialised function; it cannot round-trip"
        )
    return {"module": module, "qualname": qualname}


def _predicate_from_json(data: dict) -> PredicateObservable:
    try:
        module = import_module(data["module"])
        predicate = getattr(module, data["qualname"])
    except (ImportError, AttributeError) as exc:
        raise SerializationError(
            f"predicate {data['module']}.{data['qualname']} is not "
            f"importable: {exc}"
        ) from exc
    return PredicateObservable(predicate)


register_observable_codec(
    "predicate", PredicateObservable, _predicate_to_json, _predicate_from_json
)
register_observable_codec(
    "decode",
    DecodeObservable,
    lambda o: {
        "decoder": _decoder_to_json(o.decoder),
        "expected": list(o.expected),
    },
    lambda d: DecodeObservable(
        decoder=_decoder_from_json(d["decoder"]),
        expected=tuple(d["expected"]),
    ),
)
register_observable_codec(
    "decoded_mismatch",
    DecodedMismatchObservable,
    lambda o: {
        "decoder": _decoder_to_json(o.decoder),
        "expected": list(o.expected),
    },
    lambda d: DecodedMismatchObservable(
        decoder=_decoder_from_json(d["decoder"]),
        expected=tuple(d["expected"]),
    ),
)


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------


def spec_to_json(spec: RunSpec) -> dict:
    """The spec's versioned wire form.

    The seed must be a plain integer or ``None`` — a live
    :class:`numpy.random.Generator` has consumed an unknowable amount
    of stream and cannot be reproduced from JSON, so it is refused
    rather than approximated.  (Durable job manifests additionally
    require a concrete integer; the planner enforces that stricter
    rule itself.)
    """
    seed = spec.seed
    if isinstance(seed, np.random.Generator):
        raise SerializationError(
            "a RunSpec carrying a live numpy Generator cannot be "
            "serialised; give each point an integer seed (see "
            "repro.harness.sweep.spawn_seeds)"
        )
    if seed is not None and not isinstance(seed, (int, np.integer)):
        raise SerializationError(
            f"seed must be an int or None to serialise, got {type(seed).__name__}"
        )
    return {
        "format": SPEC_FORMAT_VERSION,
        "circuit": circuit_to_json(spec.circuit),
        "input_bits": list(spec.input_bits),
        "observable": observable_to_json(spec.observable),
        "noise": noise_to_json(spec.noise),
        "trials": spec.trials,
        "seed": None if seed is None else int(seed),
    }


def spec_from_json(data: dict) -> RunSpec:
    """Rebuild a spec from :func:`spec_to_json` output.

    Unknown format versions are rejected: mis-parsing a future wire
    form into a plausible-but-wrong spec would silently corrupt every
    result derived from it.
    """
    version = data.get("format")
    if version != SPEC_FORMAT_VERSION:
        raise SerializationError(
            f"spec wire format {version!r} is not supported by this code "
            f"(expected {SPEC_FORMAT_VERSION}); regenerate the manifest"
        )
    return RunSpec(
        circuit=circuit_from_json(data["circuit"]),
        input_bits=tuple(data["input_bits"]),
        observable=observable_from_json(data["observable"]),
        noise=noise_from_json(data["noise"]),
        trials=data["trials"],
        seed=data["seed"],
    )
