"""The executor: grouped, stacked, optionally pooled spec evaluation.

:meth:`Executor.run` takes a batch of :class:`~repro.runtime.spec.RunSpec`
points and returns one :class:`~repro.runtime.spec.PointResult` per
spec, in spec order.  The execution plan has three levels:

1. **Grouping.**  Specs sharing a compiled program — same circuit
   content, same input vector, same resolved engine — form one group.
   A bisection or sweep evaluating one circuit at many noise levels is
   a single group; a mixed workload (say fig3's level-1 and level-2
   concatenation circuits) is several.

2. **Stacked plane batching (within a group).**  A bitplane group's
   points all ride in ONE plane array: each point owns a word-aligned
   window of the trial axis (``points x trials`` on the word axis), so
   every fused slot of the shared program executes once over all
   points' words instead of once per point.  Fault handling is
   amortised the same way: each point draws and segments its whole
   per-error-class fault pass ONCE (slot membership, group, instance
   row, and destination word of every fault site come from
   precomputed per-class tables), the slot loop merely slices those
   tables, and all points' sites scatter in one ``randomize_stacked``
   call per slot group.  Fault *randomness* stays strictly per point —
   every point's gap-jumping pass and replacement words come from its
   own seeded generator in solo order — so, plane operations being
   wordwise, every point's window is **bit-identical** to running that
   spec alone through :class:`~repro.noise.monte_carlo.NoisyRunner`.
   Batching is purely an execution detail, never a statistical one.

3. **Process pool (across groups only).**  With
   ``policy.parallel`` >= 2 workers and more than one group, whole
   groups fan out to a :mod:`concurrent.futures` pool (specs must then
   be picklable).  Points within a group never split across processes
   — they are already batched into one array, which is the cheaper
   kind of parallelism.

Batched-engine groups and unfused execution (``policy.fuse=False``,
which must preserve the pre-fusion per-op RNG stream) evaluate point
by point through ``NoisyRunner`` — same results, no stacking.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from functools import partial

import numpy as np

from repro.backends import get_backend
from repro.core.bitplane import BitplaneState, popcount_words, words_for
from repro.core.compiled import compile_circuit
from repro.errors import AnalysisError, SimulationError
from repro.noise.monte_carlo import (
    NoisyRunner,
    _as_generator,
    _bernoulli_positions,
    resolve_engine,
)
from repro.obs import counter, enable_tracing, flush_trace_if_forked, trace
from repro.runtime.spec import (
    ExecutionPolicy,
    PointResult,
    RunSpec,
    as_observable,
)

# Executor-layer metrics (see repro.obs for the naming convention).
# Held as module references so the hot paths pay one attribute
# increment, never a registry lookup.
_RUNS = counter("executor.runs")
_POINTS = counter("executor.points")
_GROUPS = counter("executor.groups")
_STACKED_POINTS = counter("executor.stacked_points")
_LEGACY_POINTS = counter("executor.legacy_points")

#: ``_POW2[b]`` is the uint64 word with only bit ``b`` set.  Indexing
#: this table turns a bit-position vector into select words without the
#: int64 -> uint64 ``astype`` copy a vectorised shift would need.
_POW2 = np.left_shift(np.uint64(1), np.arange(64, dtype=np.uint64))


def resolve_workers(parallel: int | bool | None, points: int) -> int:
    """Worker count for a pooled fan-out: 0 means run in-process.

    ``None``/``False``/0/1 stay in-process, ``True`` means one worker
    per CPU, an integer is an explicit width; the width never exceeds
    the number of independent work items.  (Historically this lived in
    :mod:`repro.harness.sweep`, which still re-exports it.)
    """
    if parallel is None or parallel is False:
        return 0
    if parallel is True:
        workers = os.cpu_count() or 1
    else:
        workers = int(parallel)
        if workers < 0:
            raise AnalysisError(f"parallel must be >= 0, got {parallel}")
    workers = min(workers, points)
    return 0 if workers < 2 else workers


def _group_key(spec: RunSpec, policy: ExecutionPolicy) -> tuple:
    """Specs with equal keys share one compiled program and one batch.

    Circuits are grouped by the public
    :meth:`~repro.core.circuit.Circuit.content_key` — the compile
    cache's own notion of identity — so content-equal circuits in
    distinct objects (a synthesised or peephole-optimised circuit next
    to its hand-written reference, a circuit rebuilt by a spec factory)
    batch into one stacked plane array instead of merely sharing a
    compiled program across separate batches.  Hashing the op sequence
    is cheap next to even one spec's simulation, and batching never
    changes a point's numbers (the executor's bit-identity guarantee),
    so wider grouping is pure upside.
    """
    return (
        resolve_engine(policy.engine, spec.trials),
        spec.circuit.content_key(),
        spec.input_bits,
    )


def _run_point_legacy(spec: RunSpec, engine: str, policy: ExecutionPolicy) -> PointResult:
    """Evaluate one spec through the classic single-point runner."""
    runner = NoisyRunner(
        spec.noise,
        spec.seed,
        engine=engine,
        fuse=policy.fuse,
        compile_cache=policy.compile_cache,
        backend=policy.backend,
    )
    result = runner.run_from_input(spec.circuit, spec.input_bits, spec.trials)
    failures = as_observable(spec.observable).count_failures(result.states)
    return PointResult(
        failures=failures,
        trials=spec.trials,
        faulted_trials=int((result.fault_counts > 0).sum()),
        engine=engine,
    )


class _StackPlan:
    """Per-compiled-circuit injection plan for the stacked executor.

    ``max_groups`` pads every slot to a uniform group axis so a flat
    ``slot * max_groups + group`` *cell* index addresses any injection
    target; ``arity_flat`` holds each cell's gate arity (0 where the
    slot has fewer groups).  Per error class, ``tables`` maps a
    class-op index to its class-local cell and wire-matrix row,
    ``cells`` maps the class's own cell grid into the global one, and
    ``cell_bins``/``monotone`` support the sorted-cell bookkeeping (a
    sorted cell array searchsorted against the bins IS the per-cell
    prefix, and a monotone op -> cell map means the gathered cells are
    already sorted, so the per-point stable sort is skipped).

    When every group of every class shares ONE gate arity (the
    transversal circuits always do), ``combined`` additionally holds
    the merged-class tables: both classes' sites are then resolved in
    a single bookkeeping pass per point (one segmentation, one fault
    plane, one prefix, one flat scatter-index build over a virtual op
    axis of gate ops followed by reset ops), and the slot loop
    scatters through bare flat take/put instead of per-slot wire
    gathers.  ``combined`` is ``None`` for mixed-arity circuits, which
    keep the per-class ``randomize_stacked`` path.

    Built once per compiled program (cached on it) from the fused
    schedule.
    """

    __slots__ = ("max_groups", "arity_flat", "tables", "cells", "combined")

    def __init__(self, compiled):
        slots = compiled.slots
        self.max_groups = max((len(s.groups) for s in slots), default=1)
        self.arity_flat = np.zeros(
            len(slots) * self.max_groups, dtype=np.int64
        )
        for si, slot in enumerate(slots):
            for gi, group in enumerate(slot.groups):
                self.arity_flat[si * self.max_groups + gi] = (
                    group.wire_matrix.shape[1]
                )
        self.tables: dict[bool, tuple] = {}
        self.cells: dict[bool, np.ndarray] = {}
        op_wires: dict[bool, np.ndarray] = {}
        arities = set()
        for is_reset in (False, True):
            class_slots = [
                (si, s) for si, s in enumerate(slots) if s.is_reset == is_reset
            ]
            if not class_slots:
                continue
            op_slot = np.repeat(
                np.arange(len(class_slots), dtype=np.int64),
                [len(s.ops) for _, s in class_slots],
            )
            op_group = np.concatenate(
                [s.op_group for _, s in class_slots]
            ).astype(np.int64)
            op_row = np.concatenate([s.op_row for _, s in class_slots])
            op_cell = op_slot * self.max_groups + op_group
            n_class_cells = len(class_slots) * self.max_groups
            self.tables[is_reset] = (
                op_cell,
                op_row,
                np.arange(n_class_cells + 1, dtype=np.int64),
                bool(np.all(np.diff(op_cell) >= 0)),
            )
            self.cells[is_reset] = np.concatenate(
                [
                    si * self.max_groups + np.arange(self.max_groups)
                    for si, _ in class_slots
                ]
            )
            class_arities = {
                g.wire_matrix.shape[1]
                for _, s in class_slots
                for g in s.groups
            }
            arities |= class_arities
            if len(class_arities) == 1:
                op_wires[is_reset] = np.concatenate(
                    [
                        s.groups[g].wire_matrix[r]
                        for _, s in class_slots
                        for g, r in zip(s.op_group, s.op_row)
                    ]
                ).reshape(len(op_cell), -1)
        if self.tables and len(arities) == 1:
            op_offset: dict[bool, int] = {}
            cell_offset: dict[bool, int] = {}
            cell_parts, wire_parts, global_parts = [], [], []
            op_base = cell_base = 0
            for is_reset in (False, True):  # the solo draw order
                if is_reset not in self.tables:
                    continue
                op_cell = self.tables[is_reset][0]
                op_offset[is_reset] = op_base
                cell_offset[is_reset] = cell_base
                cell_parts.append(op_cell + cell_base)
                wire_parts.append(op_wires[is_reset])
                global_parts.append(self.cells[is_reset])
                op_base += len(op_cell)
                cell_base += len(self.cells[is_reset])
            combined_cell = np.concatenate(cell_parts)
            self.combined = (
                combined_cell,
                np.ascontiguousarray(np.concatenate(wire_parts).T),
                np.arange(cell_base + 1, dtype=np.int64),
                np.concatenate(global_parts),
                bool(np.all(np.diff(combined_cell) >= 0)),
                op_offset,
                cell_offset,
            )
        else:
            self.combined = None


class _PointSites:
    """One point's fully resolved fault sites and replacement words.

    On the combined fast path ``sites`` is ``(indices, select,
    prefix)`` — flat plane indices, packed selects, and the per-cell
    prefix over the merged-class cell axis.  On the
    general path ``classes[is_reset]`` is ``(rows, word_of, select,
    prefix)`` for the per-slot ``randomize_stacked`` gather.  Either
    way the sites are sorted by (class-slot, group) cell and ``prefix``
    (plain ints) slices each cell's run.  ``block``/``block_bounds``
    hold the point's ONE flat replacement-word draw, sliced per global
    cell in slot order — NumPy integer draws are stream-consistent
    under splitting, so this single draw consumes the generator exactly
    like the solo engine's per-slot-per-group blocks.
    """

    __slots__ = ("sites", "classes", "block", "block_bounds")

    def __init__(self):
        self.sites: tuple | None = None
        self.classes: dict[bool, tuple] = {}
        self.block: np.ndarray | None = None
        self.block_bounds: list[int] = []


def _segment_sites(virtual, n_words, trials):
    """Collapse sorted virtual fault positions into per-word segments.

    ``virtual >> 6`` is a flat (op, word) index; equal values form
    contiguous segments whose trial bits OR into one packed select
    word.  The select words come from differences of a modular
    cumulative sum (bits within a segment are distinct powers of two,
    so their OR *is* their sum, and uint64 wraparound cancels in the
    difference) — same values as the solo engine's
    ``bitwise_or.reduceat``, ~3x cheaper at the threshold-regime site
    counts this path batches.  Padding bits beyond ``trials`` are
    masked off.  Returns ``(op_of, word_of, select, fault_plane)``
    with ``fault_plane`` the packed union of the faulted trials
    (point-local words, padding already clear), so the caller never
    materialises a per-trial array.
    """
    flat_words = virtual >> 6
    bits = _POW2[virtual & 63]
    boundary = np.flatnonzero(flat_words[1:] != flat_words[:-1])
    segment_starts = np.concatenate(([0], boundary + 1))
    summed = np.cumsum(bits, dtype=np.uint64)
    last = np.concatenate((summed[boundary], summed[-1:]))
    select = np.empty_like(last)
    select[0] = last[0]
    np.subtract(last[1:], last[:-1], out=select[1:])
    affected = flat_words[segment_starts]
    op_of = affected // n_words
    word_of = affected - op_of * n_words
    if trials % 64:
        select[word_of == n_words - 1] &= np.uint64((1 << (trials % 64)) - 1)
    fault_plane = np.zeros(n_words, dtype=np.uint64)
    np.bitwise_or.at(fault_plane, word_of, select)
    return op_of, word_of, select, fault_plane


def _point_sites_combined(
    rng: np.random.Generator,
    spec: RunSpec,
    compiled,
    plan: _StackPlan,
    n_words: int,
    trials: int,
    word_offset: int,
    plane_stride: int,
) -> tuple | None:
    """Draw and fully resolve BOTH error classes' faults for one point.

    The draws stay one gap-jumping pass per class in the solo order
    (gate class, then reset class — the RNG stream contract), but the
    bookkeeping runs ONCE over the merged virtual axis (gate ops
    followed by reset ops, so the concatenated positions stay sorted):
    one segmentation, one fault plane, one per-cell prefix, and one
    flat scatter-index build through the plan's merged wire table.
    Returns ``(indices, select, prefix, fault_plane)`` or
    ``None`` when nothing was drawn; ``indices`` addresses the flat
    plane buffer of the whole stacked array, so the slot loop scatters
    with a bare take/put per slot group.
    """
    padded = n_words * 64
    op_cell, op_wires, bins, _, monotone, op_offset, _ = plan.combined
    chunks = []
    for is_reset, count in (
        (False, compiled.n_gate_ops),
        (True, compiled.n_reset_ops),
    ):
        error = (
            spec.noise.effective_reset_error
            if is_reset
            else spec.noise.gate_error
        )
        if error <= 0.0 or count == 0 or is_reset not in plan.tables:
            continue
        virtual = _bernoulli_positions(rng, error, count * padded)
        if not virtual.size:
            continue
        base = op_offset[is_reset] * padded
        chunks.append(virtual + base if base else virtual)
    if not chunks:
        return None
    virtual = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
    op_of, word_of, select, fault_plane = _segment_sites(
        virtual, n_words, trials
    )
    if word_offset:
        word_of = word_of + word_offset
    cell = op_cell[op_of]
    if not monotone:
        # Multi-group slots interleave their groups' sites; a stable
        # sort makes every cell's run contiguous without reordering
        # sites within a group (the solo scatter order).  ``op_of`` is
        # sorted, so a monotone op -> cell map needs no sort at all.
        order = np.argsort(cell, kind="stable")
        op_of = op_of[order]
        word_of = word_of[order]
        select = select[order]
        cell = cell[order]
    prefix = np.searchsorted(cell, bins)
    indices = op_wires[:, op_of] * plane_stride + word_of
    return indices, select, prefix, fault_plane


def _point_class_sites(
    rng: np.random.Generator,
    error: float,
    ops: int,
    n_words: int,
    trials: int,
    word_offset: int,
    plan: _StackPlan,
    is_reset: bool,
) -> tuple | None:
    """Draw and fully resolve one error class's faults for one point.

    The general (mixed-arity) counterpart of
    :func:`_point_sites_combined`: one gap-jumping pass over the
    class's ``ops x (n_words * 64)`` virtual axis (exactly the
    single-point engine's draw), one segmentation, and sites annotated
    with their wire-matrix row for the per-slot
    ``randomize_stacked`` gather.  Returns ``(rows, word_of, select,
    prefix, fault_plane)`` or ``None`` when the class draws nothing.
    """
    padded = n_words * 64
    virtual = _bernoulli_positions(rng, error, ops * padded)
    if not virtual.size:
        return None
    op_cell, op_row, bins, monotone = plan.tables[is_reset]
    op_of, word_of, select, fault_plane = _segment_sites(
        virtual, n_words, trials
    )
    if word_offset:
        word_of = word_of + word_offset
    cell = op_cell[op_of]
    if not monotone:
        order = np.argsort(cell, kind="stable")
        op_of = op_of[order]
        word_of = word_of[order]
        select = select[order]
        cell = cell[order]
    prefix = np.searchsorted(cell, bins)
    return op_row[op_of], word_of, select, prefix, fault_plane


def _draw_phase(specs, compiled, plan, words, offsets, total_words, rngs):
    """Fault-draw phase — per point: one gap-jumping draw per error
    class (solo order: gate class, then reset class), the bookkeeping
    merged into one pass on the combined fast path, then ONE flat
    replacement-word draw covering every cell the point will inject.
    Returns the resolved per-point sites, the per-point faulted-trial
    counts, and the per-class active-point index lists.
    """
    max_groups = plan.max_groups
    points: list[_PointSites] = []
    faulted: list[int] = []
    n_cells = len(compiled.slots) * max_groups
    combined = plan.combined
    for p, spec in enumerate(specs):
        point = _PointSites()
        hit_plane = None
        cell_sites = np.zeros(n_cells, dtype=np.int64)
        if combined is not None:
            drawn = _point_sites_combined(
                rngs[p], spec, compiled, plan,
                words[p], spec.trials, offsets[p], total_words,
            )
            if drawn is not None:
                indices, select, prefix, hit_plane = drawn
                point.sites = (indices, select, prefix.tolist())
                cell_sites[combined[3]] = np.diff(prefix)
        else:
            for is_reset, count in (
                (False, compiled.n_gate_ops),
                (True, compiled.n_reset_ops),
            ):
                error = (
                    spec.noise.effective_reset_error
                    if is_reset
                    else spec.noise.gate_error
                )
                if error <= 0.0 or count == 0 or is_reset not in plan.tables:
                    continue
                drawn = _point_class_sites(
                    rngs[p], error, count,
                    words[p], spec.trials, offsets[p], plan, is_reset,
                )
                if drawn is None:
                    continue
                rows, word_of, select, prefix, fault_plane = drawn
                if hit_plane is None:
                    hit_plane = fault_plane
                else:
                    hit_plane |= fault_plane
                point.classes[is_reset] = (
                    rows, word_of, select, prefix.tolist()
                )
                cell_sites[plan.cells[is_reset]] = np.diff(prefix)
        if point.sites is not None or point.classes:
            bounds = [0]
            for value in (cell_sites * plan.arity_flat).tolist():
                bounds.append(bounds[-1] + value)
            point.block_bounds = bounds
            point.block = rngs[p].integers(
                0, 2**64, size=bounds[-1], dtype=np.uint64
            )
        points.append(point)
        faulted.append(0 if hit_plane is None else popcount_words(hit_plane))
    if combined is not None:
        active = [p for p in range(len(specs)) if points[p].sites is not None]
        points_with = {False: active, True: active}
    else:
        points_with = {
            is_reset: [
                p for p in range(len(specs)) if is_reset in points[p].classes
            ]
            for is_reset in (False, True)
        }
    return points, faulted, points_with


def _inject_phase(
    backend, prepared, states, compiled, plan, points, points_with
):
    """Slot-loop phase — one stacked apply per program group, pure
    slicing of each point's precomputed sites and word block, and one
    scatter per group for all points together.  The combined fast path
    scatters through a bare take/put on the flat plane buffer;
    mixed-arity circuits go through ``randomize_stacked``'s per-call
    wire gather.  The reshape MUST alias the planes (a non-contiguous
    array would silently reshape into a copy and every put would write
    to a dead buffer); broadcast allocates contiguous, and this fails
    loudly — not via assert, which -O strips — if that invariant is
    ever broken.
    """
    max_groups = plan.max_groups
    combined = plan.combined
    if not states.planes.flags.c_contiguous:
        raise SimulationError(
            "stacked executor requires C-contiguous planes; the flat "
            "scatter view would silently become a copy"
        )
    flat_planes = states.planes.reshape(-1)
    cell_offset = combined[6] if combined is not None else None
    class_slot_index = {False: 0, True: 0}
    for si, slot in enumerate(compiled.slots):
        prepared.apply_slot(states, si)
        active = points_with[slot.is_reset]
        if not active:
            continue
        slot_c = class_slot_index[slot.is_reset]
        class_slot_index[slot.is_reset] = slot_c + 1
        global_base = si * max_groups
        if combined is not None:
            cell_base = cell_offset[slot.is_reset] + slot_c * max_groups
            for index in range(len(slot.groups)):
                cell = cell_base + index
                parts = []
                for p in active:
                    point = points[p]
                    indices, select, prefix = point.sites
                    start = prefix[cell]
                    stop = prefix[cell + 1]
                    if stop <= start:
                        continue
                    b0 = point.block_bounds[global_base + index]
                    b1 = point.block_bounds[global_base + index + 1]
                    parts.append(
                        (
                            indices[:, start:stop],
                            select[start:stop],
                            point.block[b0:b1].reshape(-1, stop - start),
                        )
                    )
                if not parts:
                    continue
                if len(parts) == 1:
                    indices, select, blocks = parts[0]
                else:
                    indices = np.concatenate([p[0] for p in parts], axis=1)
                    select = np.concatenate([p[1] for p in parts])
                    blocks = np.concatenate([p[2] for p in parts], axis=1)
                current = flat_planes.take(indices)
                # c ^ ((c ^ b) & s) == (b & s) | (c & ~s), one pass less.
                flat_planes.put(
                    indices, current ^ ((current ^ blocks) & select)
                )
            continue
        class_base = slot_c * max_groups
        gathered: list[list[tuple[np.ndarray, ...]]] = [
            [] for _ in slot.groups
        ]
        for p in active:
            point = points[p]
            rows, word_of, select, prefix = point.classes[slot.is_reset]
            bounds = point.block_bounds
            block = point.block
            for index in range(len(slot.groups)):
                start = prefix[class_base + index]
                stop = prefix[class_base + index + 1]
                if stop <= start:
                    continue
                b0 = bounds[global_base + index]
                b1 = bounds[global_base + index + 1]
                gathered[index].append(
                    (
                        rows[start:stop],
                        word_of[start:stop],
                        select[start:stop],
                        block[b0:b1].reshape(-1, stop - start),
                    )
                )
        for index, group in enumerate(slot.groups):
            parts = gathered[index]
            if not parts:
                continue
            if len(parts) == 1:
                rows, word_of, select, blocks = parts[0]
            else:
                rows = np.concatenate([part[0] for part in parts])
                word_of = np.concatenate([part[1] for part in parts])
                select = np.concatenate([part[2] for part in parts])
                blocks = np.concatenate([part[3] for part in parts], axis=1)
            backend.randomize_stacked(
                states, group.wire_matrix, None, rows, word_of, select, blocks
            )


def _decode_phase(specs, states, words, offsets, faulted):
    """Observation phase — points sharing one observable (the sweep
    and threshold-search common case) are decoded in ONE stacked pass
    over the whole plane array; each point's count is read off its
    window of the resulting failure plane, so the decode cost is paid
    per *batch*, not per point.  Observables without a stacked path —
    and singleton clusters, where stacking buys nothing — keep the
    per-window ``count_failures`` call.
    """
    failure_counts: list[int | None] = [None] * len(specs)
    clusters: list[tuple[object, list[int]]] = []
    for p, spec in enumerate(specs):
        observable = as_observable(spec.observable)
        if hasattr(observable, "count_failures_stacked"):
            for seen, members in clusters:
                if seen == observable:
                    members.append(p)
                    break
            else:
                clusters.append((observable, [p]))
    for observable, members in clusters:
        if len(members) < 2:
            continue
        counts = observable.count_failures_stacked(
            states, [(offsets[p], specs[p].trials) for p in members]
        )
        for p, count in zip(members, counts):
            failure_counts[p] = count
    results = []
    for p, spec in enumerate(specs):
        failures = failure_counts[p]
        if failures is None:
            window = BitplaneState(
                states.planes[:, offsets[p]:offsets[p] + words[p]], spec.trials
            )
            failures = as_observable(spec.observable).count_failures(window)
        results.append(
            PointResult(
                failures=failures,
                trials=spec.trials,
                faulted_trials=faulted[p],
                engine="bitplane",
            )
        )
    return results


def _run_group_stacked(
    specs: Sequence[RunSpec], policy: ExecutionPolicy
) -> list[PointResult]:
    """Evaluate one bitplane group's points in a single stacked array.

    Point ``p`` occupies the word window ``[offset_p, offset_p +
    words_p)`` of every wire plane.  The shared program is applied once
    per fused slot over the whole array; fault injection is per point
    (each point's noise level and generator are its own) but batched
    per slot: every point's replacement words are drawn from its own
    generator in the solo order, then all points' fault sites scatter
    in ONE ``randomize_stacked`` call per slot group.

    The per-point generator consumption — class gap passes, then
    per-slot per-group replacement-word blocks — matches a solo
    ``NoisyRunner`` run draw for draw, and plane operations are
    wordwise, so each point's window is **bit-identical** to running
    the spec alone.  The three phases (fault draw, slot loop, decode)
    each get a child span of the group span; tracing reads only the
    clock, never the generators, so an enabled trace cannot move a
    digest.
    """
    first = specs[0]
    compiled = compile_circuit(
        first.circuit, fuse=True, cache=policy.compile_cache
    )
    backend = get_backend(policy.backend)
    prepared = backend.prepare(compiled)
    # The plan is pure structure derived from the fused schedule, so it
    # rides on the compiled program: a bisection or sweep re-running one
    # circuit builds it exactly once per process.
    plan = getattr(compiled, "_stack_plan", None)
    if plan is None:
        plan = _StackPlan(compiled)
        compiled._stack_plan = plan
    words = [words_for(spec.trials) for spec in specs]
    offsets = [0]
    for width in words[:-1]:
        offsets.append(offsets[-1] + width)
    total_words = sum(words)
    with trace(
        "executor.group",
        specs=len(specs),
        trials=sum(spec.trials for spec in specs),
        words=total_words,
        slots=len(compiled.slots),
        circuit=first.circuit.name or f"{first.circuit.n_wires}-wire",
    ):
        states = backend.broadcast(first.input_bits, total_words * 64)
        rngs = [_as_generator(spec.seed) for spec in specs]
        with trace("executor.group.draw"):
            points, faulted, points_with = _draw_phase(
                specs, compiled, plan, words, offsets, total_words, rngs
            )
        with trace("executor.group.apply"):
            _inject_phase(
                backend, prepared, states, compiled, plan, points, points_with
            )
        with trace("executor.group.decode"):
            results = _decode_phase(specs, states, words, offsets, faulted)
    _STACKED_POINTS.inc(len(specs))
    return results


def _run_group(specs: Sequence[RunSpec], policy: ExecutionPolicy) -> list[PointResult]:
    """Evaluate one group in-process (also the pool's task function)."""
    if policy.trace:
        # Pool workers hydrate the tracer from the pickled policy so a
        # spawned child traces too (a forked child inherits it); each
        # worker rewrites its own `<path>.<pid>` file after every task,
        # because pool children exit via os._exit and never run atexit.
        enable_tracing(policy.trace)
    _GROUPS.inc()
    engine = resolve_engine(policy.engine, specs[0].trials)
    if engine == "bitplane" and policy.fuse:
        # Lone points ride the stacked path too: it reproduces a solo
        # run bit for bit, and its cached plan, segmented fault pass,
        # and packed bookkeeping beat the classic runner even for a
        # single point.
        results = _run_group_stacked(specs, policy)
    else:
        # The batched engine has no plane axis to stack on, and unfused
        # execution must keep the pre-fusion per-op RNG stream — both
        # run point by point through the classic runner.
        _LEGACY_POINTS.inc(len(specs))
        results = [_run_point_legacy(spec, engine, policy) for spec in specs]
    flush_trace_if_forked()
    return results


class Executor:
    """Runs batches of :class:`RunSpec` under an :class:`ExecutionPolicy`.

    The default policy is hydrated from the environment once at
    construction (:meth:`ExecutionPolicy.from_env`), so a long-lived
    executor is immune to mid-run environment changes.
    """

    def __init__(self, policy: ExecutionPolicy | None = None):
        self.policy = policy if policy is not None else ExecutionPolicy.from_env()
        if self.policy.trace:
            enable_tracing(self.policy.trace)

    def run(self, specs: Sequence[RunSpec]) -> list[PointResult]:
        """Evaluate every spec; results come back in spec order."""
        specs = list(specs)
        if not specs:
            # Fast path: an empty batch is a valid no-op (the caching
            # executor and the shard runner routinely produce one when
            # every point was served from a store), not worth touching
            # policy resolution or grouping.
            return []
        for spec in specs:
            if not isinstance(spec, RunSpec):
                raise SimulationError(
                    f"Executor.run takes RunSpec instances, got "
                    f"{type(spec).__name__}"
                )
        _RUNS.inc()
        _POINTS.inc(len(specs))
        with trace("executor.run", specs=len(specs)) as span:
            groups: dict[tuple, list[int]] = {}
            for index, spec in enumerate(specs):
                groups.setdefault(
                    _group_key(spec, self.policy), []
                ).append(index)
            plan = list(groups.values())
            workers = resolve_workers(self.policy.parallel, len(plan))
            span.set(groups=len(plan), workers=workers)
            results: list[PointResult | None] = [None] * len(specs)
            if workers == 0:
                for indices in plan:
                    for index, result in zip(
                        indices,
                        _run_group([specs[i] for i in indices], self.policy),
                    ):
                        results[index] = result
            else:
                task = partial(_run_group, policy=self.policy)
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = [
                        pool.submit(task, [specs[i] for i in indices])
                        for indices in plan
                    ]
                    for indices, future in zip(plan, futures):
                        try:
                            group_results = future.result()
                        except Exception as exc:
                            # Cancel the not-yet-started groups so the
                            # error surfaces promptly instead of waiting
                            # for the rest of the batch (mirrors the
                            # harness sweep's fail-fast behaviour).
                            # Per-future cancel, NOT shutdown(
                            # cancel_futures=True): that path swaps the
                            # manager thread's pending-work dict while
                            # the queue feeder still pops from the old
                            # one, and a task that fails to pickle
                            # mid-flight then deadlocks the pool.
                            for pending in futures:
                                pending.cancel()
                            raise SimulationError(
                                f"executor group starting at "
                                f"{specs[indices[0]]!r} failed: {exc}"
                            ) from exc
                        for index, result in zip(indices, group_results):
                            results[index] = result
        return results  # type: ignore[return-value]

    def run_one(self, spec: RunSpec) -> PointResult:
        """Evaluate a single spec (sugar over :meth:`run`)."""
        return self.run([spec])[0]


def run_specs(
    specs: Sequence[RunSpec], policy: ExecutionPolicy | None = None
) -> list[PointResult]:
    """One-shot convenience: ``Executor(policy).run(specs)``."""
    return Executor(policy).run(specs)
