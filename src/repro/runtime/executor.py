"""The executor: grouped, stacked, optionally pooled spec evaluation.

:meth:`Executor.run` takes a batch of :class:`~repro.runtime.spec.RunSpec`
points and returns one :class:`~repro.runtime.spec.PointResult` per
spec, in spec order.  The execution plan has three levels:

1. **Grouping.**  Specs sharing a compiled program — same circuit
   content, same input vector, same resolved engine — form one group.
   A bisection or sweep evaluating one circuit at many noise levels is
   a single group; a mixed workload (say fig3's level-1 and level-2
   concatenation circuits) is several.

2. **Stacked plane batching (within a group).**  A bitplane group's
   points all ride in ONE plane array: each point owns a word-aligned
   window of the trial axis (``points x trials`` on the word axis), so
   every fused slot of the shared program executes once over all
   points' words instead of once per point.  Fault handling is
   amortised the same way: each point draws and segments its whole
   per-error-class fault pass ONCE (slot membership, group, instance
   row, and destination word of every fault site come from
   precomputed per-class tables), the slot loop merely slices those
   tables, and all points' sites scatter in one ``randomize_stacked``
   call per slot group.  Fault *randomness* stays strictly per point —
   every point's gap-jumping pass and replacement words come from its
   own seeded generator in solo order — so, plane operations being
   wordwise, every point's window is **bit-identical** to running that
   spec alone through :class:`~repro.noise.monte_carlo.NoisyRunner`.
   Batching is purely an execution detail, never a statistical one.

3. **Process pool (across groups only).**  With
   ``policy.parallel`` >= 2 workers and more than one group, whole
   groups fan out to a :mod:`concurrent.futures` pool (specs must then
   be picklable).  Points within a group never split across processes
   — they are already batched into one array, which is the cheaper
   kind of parallelism.

Batched-engine groups and unfused execution (``policy.fuse=False``,
which must preserve the pre-fusion per-op RNG stream) evaluate point
by point through ``NoisyRunner`` — same results, no stacking.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from functools import partial

import numpy as np

from repro.core.bitplane import BitplaneState, words_for
from repro.core.compiled import compile_circuit
from repro.errors import AnalysisError, SimulationError
from repro.noise.monte_carlo import (
    NoisyRunner,
    _as_generator,
    _bernoulli_positions,
    resolve_engine,
)
from repro.runtime.spec import (
    ExecutionPolicy,
    PointResult,
    RunSpec,
    as_observable,
)


def resolve_workers(parallel: int | bool | None, points: int) -> int:
    """Worker count for a pooled fan-out: 0 means run in-process.

    ``None``/``False``/0/1 stay in-process, ``True`` means one worker
    per CPU, an integer is an explicit width; the width never exceeds
    the number of independent work items.  (Historically this lived in
    :mod:`repro.harness.sweep`, which still re-exports it.)
    """
    if parallel is None or parallel is False:
        return 0
    if parallel is True:
        workers = os.cpu_count() or 1
    else:
        workers = int(parallel)
        if workers < 0:
            raise AnalysisError(f"parallel must be >= 0, got {parallel}")
    workers = min(workers, points)
    return 0 if workers < 2 else workers


def _group_key(spec: RunSpec, policy: ExecutionPolicy) -> tuple:
    """Specs with equal keys share one compiled program and one batch.

    Circuits are grouped by object identity, not content: hashing a
    full op sequence per spec costs more than it saves, and specs built
    for one sweep share the circuit object anyway.  Content-equal
    circuits in distinct objects still share one *compiled* program
    through the compile cache — they just run as separate batches.
    """
    return (
        resolve_engine(policy.engine, spec.trials),
        id(spec.circuit),
        spec.input_bits,
    )


def _run_point_legacy(spec: RunSpec, engine: str, policy: ExecutionPolicy) -> PointResult:
    """Evaluate one spec through the classic single-point runner."""
    runner = NoisyRunner(
        spec.noise,
        spec.seed,
        engine=engine,
        fuse=policy.fuse,
        compile_cache=policy.compile_cache,
    )
    result = runner.run_from_input(spec.circuit, spec.input_bits, spec.trials)
    failures = as_observable(spec.observable).count_failures(result.states)
    return PointResult(
        failures=failures,
        trials=spec.trials,
        faulted_trials=int((result.fault_counts > 0).sum()),
        engine=engine,
    )


class _StackPlan:
    """Per-compiled-circuit injection plan for the stacked executor.

    ``max_groups`` pads every slot to a uniform group axis so a flat
    ``slot * max_groups + group`` *cell* index addresses any injection
    target; ``arity_flat`` holds each cell's gate arity (0 where the
    slot has fewer groups).  Per error class, ``tables`` maps a class-op
    index to its class-slot, group, and wire-matrix row, and ``cells``
    maps the class's own cell grid into the global one.  Built once per
    group run from the fused schedule.
    """

    __slots__ = ("max_groups", "arity_flat", "tables", "cells")

    def __init__(self, compiled):
        slots = compiled.slots
        self.max_groups = max((len(s.groups) for s in slots), default=1)
        self.arity_flat = np.zeros(
            len(slots) * self.max_groups, dtype=np.int64
        )
        for si, slot in enumerate(slots):
            for gi, group in enumerate(slot.groups):
                self.arity_flat[si * self.max_groups + gi] = (
                    group.wire_matrix.shape[1]
                )
        self.tables: dict[bool, tuple] = {}
        self.cells: dict[bool, np.ndarray] = {}
        for is_reset in (False, True):
            class_slots = [
                (si, s) for si, s in enumerate(slots) if s.is_reset == is_reset
            ]
            if not class_slots:
                continue
            op_slot = np.repeat(
                np.arange(len(class_slots), dtype=np.int64),
                [len(s.ops) for _, s in class_slots],
            )
            op_group = np.concatenate(
                [s.op_group for _, s in class_slots]
            ).astype(np.int64)
            op_row = np.concatenate([s.op_row for _, s in class_slots])
            self.tables[is_reset] = (len(class_slots), op_slot, op_group, op_row)
            self.cells[is_reset] = np.concatenate(
                [
                    si * self.max_groups + np.arange(self.max_groups)
                    for si, _ in class_slots
                ]
            )


class _PointSites:
    """One point's fully resolved fault sites and replacement words.

    ``classes[is_reset]`` is ``(rows, word_of, select, prefix)`` with
    the sites sorted by (class-slot, group) and ``prefix`` (plain ints)
    slicing each class cell's run; ``block``/``block_bounds`` hold the
    point's ONE flat replacement-word draw, sliced per global cell in
    slot order — NumPy integer draws are stream-consistent under
    splitting, so this single draw consumes the generator exactly like
    the solo engine's per-slot-per-group blocks.
    """

    __slots__ = ("classes", "block", "block_bounds")

    def __init__(self):
        self.classes: dict[bool, tuple] = {}
        self.block: np.ndarray | None = None
        self.block_bounds: list[int] = []


def _point_class_sites(
    rng: np.random.Generator,
    error: float,
    ops: int,
    n_words: int,
    trials: int,
    word_offset: int,
    tables: tuple,
    max_groups: int,
) -> tuple | None:
    """Draw and fully resolve one error class's faults for one point.

    One gap-jumping pass over the ``ops x (n_words * 64)`` virtual axis
    (exactly the single-point engine's draw), then ONE segmentation of
    the whole class: equal flat ``(op, word)`` indices collapse into a
    packed select word via reduceat, padding bits beyond ``trials`` are
    masked off, every site is annotated with its wire-matrix row and
    destination word in the stacked array, and the sites are ordered by
    (class-slot, group) cell — stably, so the within-group order the
    solo engine would scatter in is preserved.  Returns ``(rows,
    word_of, select, cell_counts, real_trials)`` or ``None`` when the
    class draws nothing; the slot loop slices runs off the counts'
    prefix sums instead of doing any per-slot work.
    """
    padded = n_words * 64
    virtual = _bernoulli_positions(rng, error, ops * padded)
    if not virtual.size:
        return None
    n_class_slots, op_slot, op_group, op_row = tables
    flat_words = virtual >> 6
    bits = np.uint64(1) << (virtual & 63).astype(np.uint64)
    segment_starts = np.concatenate(
        ([0], np.flatnonzero(flat_words[1:] != flat_words[:-1]) + 1)
    )
    select = np.bitwise_or.reduceat(bits, segment_starts)
    affected = flat_words[segment_starts]
    class_op = affected // n_words
    word_of = affected - class_op * n_words
    if trials % 64:
        select[word_of == n_words - 1] &= np.uint64((1 << (trials % 64)) - 1)
    if word_offset:
        word_of = word_of + word_offset
    rows = op_row[class_op]
    cell = op_slot[class_op] * max_groups + op_group[class_op]
    if (np.diff(cell) < 0).any():
        # Multi-group slots interleave their groups' sites; a stable
        # sort makes every cell's run contiguous without reordering
        # sites within a group (the solo scatter order).
        order = np.argsort(cell, kind="stable")
        rows = rows[order]
        word_of = word_of[order]
        select = select[order]
        cell = cell[order]
    counts = np.bincount(cell, minlength=n_class_slots * max_groups)
    trial_of = virtual % padded
    return rows, word_of, select, counts, trial_of[trial_of < trials]


def _run_group_stacked(
    specs: Sequence[RunSpec], policy: ExecutionPolicy
) -> list[PointResult]:
    """Evaluate one bitplane group's points in a single stacked array.

    Point ``p`` occupies the word window ``[offset_p, offset_p +
    words_p)`` of every wire plane.  The shared program is applied once
    per fused slot over the whole array; fault injection is per point
    (each point's noise level and generator are its own) but batched
    per slot: every point's replacement words are drawn from its own
    generator in the solo order, then all points' fault sites scatter
    in ONE ``randomize_stacked`` call per slot group.

    The per-point generator consumption — class gap passes, then
    per-slot per-group replacement-word blocks — matches a solo
    ``NoisyRunner`` run draw for draw, and plane operations are
    wordwise, so each point's window is **bit-identical** to running
    the spec alone.
    """
    first = specs[0]
    compiled = compile_circuit(
        first.circuit, fuse=True, cache=policy.compile_cache
    )
    plan = _StackPlan(compiled)
    max_groups = plan.max_groups
    words = [words_for(spec.trials) for spec in specs]
    offsets = [0]
    for width in words[:-1]:
        offsets.append(offsets[-1] + width)
    total_words = sum(words)
    states = BitplaneState.broadcast(first.input_bits, total_words * 64)
    rngs = [_as_generator(spec.seed) for spec in specs]

    # Phase 1 — per point: one draw + one segmentation per error class
    # (solo order: gate class, then reset class), then ONE flat
    # replacement-word draw covering every cell the point will inject.
    points: list[_PointSites] = []
    faulted: list[int] = []
    n_cells = len(compiled.slots) * max_groups
    for p, spec in enumerate(specs):
        point = _PointSites()
        hit = None
        cell_sites = np.zeros(n_cells, dtype=np.int64)
        for is_reset, count in (
            (False, compiled.n_gate_ops),
            (True, compiled.n_reset_ops),
        ):
            error = (
                spec.noise.effective_reset_error
                if is_reset
                else spec.noise.gate_error
            )
            if error <= 0.0 or count == 0 or is_reset not in plan.tables:
                continue
            drawn = _point_class_sites(
                rngs[p],
                error,
                count,
                words[p],
                spec.trials,
                offsets[p],
                plan.tables[is_reset],
                max_groups,
            )
            if drawn is None:
                continue
            rows, word_of, select, counts, real = drawn
            if hit is None:
                hit = np.zeros(spec.trials, dtype=bool)
            hit[real] = True
            prefix = [0]
            for value in counts.tolist():
                prefix.append(prefix[-1] + value)
            point.classes[is_reset] = (rows, word_of, select, prefix)
            cell_sites[plan.cells[is_reset]] = counts
        if point.classes:
            bounds = [0]
            for value in (cell_sites * plan.arity_flat).tolist():
                bounds.append(bounds[-1] + value)
            point.block_bounds = bounds
            point.block = rngs[p].integers(
                0, 2**64, size=bounds[-1], dtype=np.uint64
            )
        points.append(point)
        faulted.append(0 if hit is None else int(hit.sum()))
    points_with = {
        is_reset: [
            p for p in range(len(specs)) if is_reset in points[p].classes
        ]
        for is_reset in (False, True)
    }

    # Phase 2 — the slot loop: one stacked apply per program group,
    # pure slicing of each point's precomputed sites and word block,
    # and one scatter per group for all points together.
    class_slot_index = {False: 0, True: 0}
    for si, slot in enumerate(compiled.slots):
        if slot.is_reset:
            for value, wires in slot.resets:
                states.reset(wires, value)
        else:
            for group in slot.groups:
                states.apply_program_stacked(
                    group.program, group.wire_matrix, group.row_slices
                )
        slot_c = class_slot_index[slot.is_reset]
        class_slot_index[slot.is_reset] = slot_c + 1
        class_base = slot_c * max_groups
        global_base = si * max_groups
        gathered: list[list[tuple[np.ndarray, ...]]] = [
            [] for _ in slot.groups
        ]
        for p in points_with[slot.is_reset]:
            point = points[p]
            rows, word_of, select, prefix = point.classes[slot.is_reset]
            bounds = point.block_bounds
            block = point.block
            for index in range(len(slot.groups)):
                start = prefix[class_base + index]
                stop = prefix[class_base + index + 1]
                if stop <= start:
                    continue
                b0 = bounds[global_base + index]
                b1 = bounds[global_base + index + 1]
                gathered[index].append(
                    (
                        rows[start:stop],
                        word_of[start:stop],
                        select[start:stop],
                        block[b0:b1].reshape(-1, stop - start),
                    )
                )
        for index, group in enumerate(slot.groups):
            parts = gathered[index]
            if not parts:
                continue
            if len(parts) == 1:
                rows, word_of, select, blocks = parts[0]
            else:
                rows = np.concatenate([part[0] for part in parts])
                word_of = np.concatenate([part[1] for part in parts])
                select = np.concatenate([part[2] for part in parts])
                blocks = np.concatenate([part[3] for part in parts], axis=1)
            states.randomize_stacked(
                group.wire_matrix, None, rows, word_of, select, blocks
            )

    results = []
    for p, spec in enumerate(specs):
        window = BitplaneState(
            states.planes[:, offsets[p]:offsets[p] + words[p]], spec.trials
        )
        failures = as_observable(spec.observable).count_failures(window)
        results.append(
            PointResult(
                failures=failures,
                trials=spec.trials,
                faulted_trials=faulted[p],
                engine="bitplane",
            )
        )
    return results


def _run_group(specs: Sequence[RunSpec], policy: ExecutionPolicy) -> list[PointResult]:
    """Evaluate one group in-process (also the pool's task function)."""
    engine = resolve_engine(policy.engine, specs[0].trials)
    if engine == "bitplane" and policy.fuse and len(specs) > 1:
        return _run_group_stacked(specs, policy)
    # Lone points take the classic single-point runner directly (the
    # stacked machinery would reproduce it bit for bit, with setup
    # cost); the batched engine has no plane axis to stack on, and
    # unfused execution must keep the pre-fusion per-op RNG stream —
    # all three run point by point.
    return [_run_point_legacy(spec, engine, policy) for spec in specs]


class Executor:
    """Runs batches of :class:`RunSpec` under an :class:`ExecutionPolicy`.

    The default policy is hydrated from the environment once at
    construction (:meth:`ExecutionPolicy.from_env`), so a long-lived
    executor is immune to mid-run environment changes.
    """

    def __init__(self, policy: ExecutionPolicy | None = None):
        self.policy = policy if policy is not None else ExecutionPolicy.from_env()

    def run(self, specs: Sequence[RunSpec]) -> list[PointResult]:
        """Evaluate every spec; results come back in spec order."""
        specs = list(specs)
        for spec in specs:
            if not isinstance(spec, RunSpec):
                raise SimulationError(
                    f"Executor.run takes RunSpec instances, got "
                    f"{type(spec).__name__}"
                )
        if not specs:
            return []
        groups: dict[tuple, list[int]] = {}
        for index, spec in enumerate(specs):
            groups.setdefault(_group_key(spec, self.policy), []).append(index)
        plan = list(groups.values())
        workers = resolve_workers(self.policy.parallel, len(plan))
        results: list[PointResult | None] = [None] * len(specs)
        if workers == 0:
            for indices in plan:
                for index, result in zip(
                    indices, _run_group([specs[i] for i in indices], self.policy)
                ):
                    results[index] = result
        else:
            task = partial(_run_group, policy=self.policy)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(task, [specs[i] for i in indices])
                    for indices in plan
                ]
                for indices, future in zip(plan, futures):
                    try:
                        group_results = future.result()
                    except Exception as exc:
                        raise SimulationError(
                            f"executor group starting at {specs[indices[0]]!r} "
                            f"failed: {exc}"
                        ) from exc
                    for index, result in zip(indices, group_results):
                        results[index] = result
        return results  # type: ignore[return-value]

    def run_one(self, spec: RunSpec) -> PointResult:
        """Evaluate a single spec (sugar over :meth:`run`)."""
        return self.run([spec])[0]


def run_specs(
    specs: Sequence[RunSpec], policy: ExecutionPolicy | None = None
) -> list[PointResult]:
    """One-shot convenience: ``Executor(policy).run(specs)``."""
    return Executor(policy).run(specs)
