"""Near-neighbour error-recovery circuits (Sections 3.1 and 3.2).

**1D (Figure 7).**  Nine line positions hold the labels
``q0 q3 q6 q1 q4 q7 q2 q5 q8`` — data at positions 0, 3, 6 with two
ancillas after each.  The cycle is:

1. reset the ancilla pairs (positions ``1,2 / 4,5 / 7,8``);
2. ``MAJ⁻¹`` on the three contiguous position triples (the encode
   triples land pre-grouped on the line);
3. nine adjacent SWAPs — fused into four ``SWAP3`` gates plus one
   ``SWAP`` — permute the line into label order;
4. ``MAJ`` on the three contiguous triples; the recovered codeword
   lands back on positions 0, 3, 6, so cycles chain with no rotation.

Census: 6 MAJ-type + 4 SWAP3 + 1 SWAP = 11 gates, the paper's
no-initialisation count.  The paper books initialisation as two 3-bit
operations (6 ancilla bits / 3); the physically local circuit uses
three 2-bit resets — both numbers are exposed.

**2D (Figure 4).**  On the 3×3 tile the recovery is local *as is*:
with the codeword on a column, the encode triples are rows and the
decode triples are columns (or vice versa).  Each cycle flips the
orientation; :class:`TileRecovery` tracks it so cycles chain forever,
at the non-local operation count (2 resets + 6 MAJ-type = 8).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import library
from repro.core.circuit import Circuit
from repro.local.lattice import Chain, Grid
from repro.local.routing import PackedOp, adjacent_swaps_to_sort, pack_swaps
from repro.errors import CodingError, LocalityError

# ----------------------------------------------------------------------
# 1D
# ----------------------------------------------------------------------

#: Label (q-index) held at each line position at the start of a cycle.
ONE_D_LINE_LABELS: tuple[int, ...] = (0, 3, 6, 1, 4, 7, 2, 5, 8)

#: Line positions of the codeword at the start (and end) of each cycle.
ONE_D_DATA_POSITIONS: tuple[int, int, int] = (0, 3, 6)

#: Ancilla positions, reset pairwise at the start of each cycle.
ONE_D_RESET_PAIRS: tuple[tuple[int, int], ...] = ((1, 2), (4, 5), (7, 8))

#: Paper's operation count for the 1D recovery: 6 MAJ + 4 SWAP3 +
#: 1 SWAP + 2 idealised 3-bit initialisations.
ONE_D_RECOVERY_OPS_WITH_INIT = 13
ONE_D_RECOVERY_OPS_WITHOUT_INIT = 11


def one_d_routing_ops() -> list[PackedOp]:
    """The fused routing network of Figure 7 (4 SWAP3 + 1 SWAP)."""
    swaps = adjacent_swaps_to_sort(list(ONE_D_LINE_LABELS))
    return pack_swaps(swaps)


def append_one_d_recovery(
    circuit: Circuit, include_resets: bool = True
) -> None:
    """Append one Figure-7 recovery cycle (wires = line positions 0..8)."""
    if circuit.n_wires != 9:
        raise CodingError(
            f"the 1D recovery acts on 9 wires, circuit has {circuit.n_wires}"
        )
    if include_resets:
        for pair in ONE_D_RESET_PAIRS:
            circuit.append_reset(*pair)
    for base in (0, 3, 6):
        circuit.maj_inv(base, base + 1, base + 2)
    for op in one_d_routing_ops():
        if op.kind == "SWAP":
            circuit.swap(*op.wires)
        elif op.kind == "SWAP3_UP":
            circuit.swap3_up(*op.wires)
        else:
            circuit.swap3_down(*op.wires)
    for base in (0, 3, 6):
        circuit.maj(base, base + 1, base + 2)


def one_d_recovery_circuit(
    cycles: int = 1, include_resets: bool = True, name: str = "EL-1D"
) -> Circuit:
    """``cycles`` chained Figure-7 recovery cycles on nine wires.

    The codeword enters and leaves on :data:`ONE_D_DATA_POSITIONS`, so
    no rotation bookkeeping is needed.
    """
    if cycles < 0:
        raise CodingError(f"cycle count must be >= 0, got {cycles}")
    circuit = Circuit(9, name=name)
    for _ in range(cycles):
        append_one_d_recovery(circuit, include_resets)
    return circuit


def one_d_lattice() -> Chain:
    """The nine-site line the 1D recovery must be local on."""
    return Chain(9)


def one_d_census(include_resets: bool = True) -> dict[str, int]:
    """Physical op census of one 1D cycle, plus the paper's accounting."""
    circuit = one_d_recovery_circuit(1, include_resets)
    counts = dict(circuit.count_ops())
    counts["paper_accounting"] = (
        ONE_D_RECOVERY_OPS_WITH_INIT
        if include_resets
        else ONE_D_RECOVERY_OPS_WITHOUT_INIT
    )
    return counts


# ----------------------------------------------------------------------
# 2D
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TileOrientation:
    """Where the codeword lies on the 3×3 tile: a full row or column."""

    axis: str  # "row" or "col"
    index: int

    def __post_init__(self) -> None:
        if self.axis not in ("row", "col"):
            raise LocalityError(f"axis must be 'row' or 'col', got {self.axis!r}")
        if not 0 <= self.index < 3:
            raise LocalityError(f"line index must be in 0..2, got {self.index}")

    def data_cells(self) -> tuple[tuple[int, int], ...]:
        """Grid cells of the codeword, in line order."""
        if self.axis == "col":
            return tuple((row, self.index) for row in range(3))
        return tuple((self.index, col) for col in range(3))


#: Figure 4 starts with the codeword q0,q1,q2 on the middle column.
STANDARD_TILE_ORIENTATION = TileOrientation(axis="col", index=1)


class TileRecovery:
    """Chains local recovery cycles on a 3×3 grid (wires = row*3+col).

    Each cycle: reset the two lines parallel to the data line, encode
    along the perpendicular lines (data cell first), decode along the
    other axis with outputs on line 0.  The orientation flips axis
    every cycle; :attr:`orientation` and :meth:`data_wires` track it.
    """

    def __init__(self, orientation: TileOrientation = STANDARD_TILE_ORIENTATION):
        self.grid = Grid(rows=3, cols=3)
        self.orientation = orientation

    def data_wires(self) -> tuple[int, int, int]:
        """Wires currently holding the codeword."""
        return tuple(
            self.grid.wire(*cell) for cell in self.orientation.data_cells()
        )

    def append_cycle(self, circuit: Circuit, include_resets: bool = True) -> None:
        """Append one recovery cycle and advance the orientation."""
        if circuit.n_wires != 9:
            raise CodingError(
                f"the tile recovery acts on 9 wires, circuit has "
                f"{circuit.n_wires}"
            )
        axis, index = self.orientation.axis, self.orientation.index
        others = [i for i in range(3) if i != index]

        def line_wires(line_axis: str, line_index: int) -> tuple[int, int, int]:
            if line_axis == "col":
                return tuple(self.grid.wire(row, line_index) for row in range(3))
            return tuple(self.grid.wire(line_index, col) for col in range(3))

        if include_resets:
            for other in others:
                circuit.append_reset(*line_wires(axis, other))

        # Encode: perpendicular line through each data cell, data first.
        for cell in self.orientation.data_cells():
            row, col = cell
            if axis == "col":
                triple = [self.grid.wire(row, c) for c in (index, *others)]
            else:
                triple = [self.grid.wire(r, col) for r in (index, *others)]
            circuit.maj_inv(*triple)

        # Decode along the data axis; outputs land on line 0 of the
        # perpendicular axis.
        perpendicular = "row" if axis == "col" else "col"
        for line_index in range(3):
            if perpendicular == "row":
                # Data was a column: decode triples are columns; the
                # first operand (row 0) receives each block majority.
                triple = [self.grid.wire(r, line_index) for r in (0, 1, 2)]
            else:
                # Data was a row: decode triples are rows; outputs on
                # column 0.
                triple = [self.grid.wire(line_index, c) for c in (0, 1, 2)]
            circuit.maj(*triple)

        self.orientation = TileOrientation(axis=perpendicular, index=0)


def two_d_recovery_circuit(
    cycles: int = 1,
    include_resets: bool = True,
    orientation: TileOrientation = STANDARD_TILE_ORIENTATION,
    name: str = "EL-2D",
) -> tuple[Circuit, TileRecovery]:
    """``cycles`` chained tile recovery cycles on a 3×3 grid.

    Returns the circuit and the :class:`TileRecovery` tracker (whose
    :meth:`~TileRecovery.data_wires` give the final codeword wires).
    """
    if cycles < 0:
        raise CodingError(f"cycle count must be >= 0, got {cycles}")
    circuit = Circuit(9, name=name)
    tracker = TileRecovery(orientation)
    for _ in range(cycles):
        tracker.append_cycle(circuit, include_resets)
    return circuit, tracker


def two_d_lattice() -> Grid:
    """The 3×3 grid the tile recovery must be local on."""
    return Grid(3, 3)


#: Per-codeword operation counts for a full 2D logical cycle.  The
#: paper reports 14/16 (Section 3.1); counting with the same
#: per-codeword convention it uses in 1D (3 SWAP3 interleave + 3
#: transversal + 3 SWAP3 uninterleave + recovery) gives 15/17 — a
#: one-operation accounting difference documented in DESIGN.md.
TWO_D_CYCLE_OPS_PAPER = {"with_init": 16, "without_init": 14}
TWO_D_CYCLE_OPS_RECOUNTED = {"with_init": 17, "without_init": 15}


def two_d_cycle_operation_count(include_init: bool = True) -> int:
    """Per-codeword ops of a 2D logical cycle, recounted from circuits.

    3 SWAP3 (interleave) + 3 transversal gates + 3 SWAP3
    (uninterleave) + 8 or 6 recovery operations.
    """
    recovery = 8 if include_init else 6
    return 3 + 3 + 3 + recovery
