"""SWAP routing on a line and SWAP→SWAP3 packing.

The 1D constructions of Section 3.2 move bits with adjacent SWAPs and
then halve the operation count by fusing pairs of SWAPs that act on a
contiguous bit triple into a single ``SWAP3`` gate (Figure 5).  This
module provides:

* :func:`adjacent_swaps_to_sort` — an insertion-sort swap schedule,
  optimal because its length equals the permutation's inversion count;
* :func:`move_token` — the "move this bit over there" primitive used
  by the paper's interleaving description;
* :func:`pack_swaps` — the greedy fusion of consecutive swaps into
  SWAP3 gates (two SWAPs on three contiguous wires).
"""

from __future__ import annotations

from collections.abc import MutableSequence, Sequence
from dataclasses import dataclass

from repro.errors import LocalityError

#: An adjacent transposition of line positions ``(i, i + 1)``.
AdjacentSwap = tuple[int, int]


def check_adjacent(swap: AdjacentSwap) -> None:
    """Raise unless the pair is an ordered adjacent transposition."""
    low, high = swap
    if high != low + 1 or low < 0:
        raise LocalityError(f"swap {swap} is not an adjacent pair (i, i+1)")


def apply_swap_schedule(
    line: MutableSequence, swaps: Sequence[AdjacentSwap]
) -> None:
    """Apply adjacent swaps to a token line, in place."""
    for swap in swaps:
        check_adjacent(swap)
        low, high = swap
        if high >= len(line):
            raise LocalityError(f"swap {swap} outside line of length {len(line)}")
        line[low], line[high] = line[high], line[low]


def adjacent_swaps_to_sort(sequence: Sequence) -> list[AdjacentSwap]:
    """Insertion-sort schedule bringing ``sequence`` into sorted order.

    The schedule length equals the inversion count of the sequence, the
    provable minimum for adjacent transpositions.
    """
    line = list(sequence)
    swaps: list[AdjacentSwap] = []
    for i in range(1, len(line)):
        j = i
        while j > 0 and line[j - 1] > line[j]:
            line[j - 1], line[j] = line[j], line[j - 1]
            swaps.append((j - 1, j))
            j -= 1
    return swaps


def move_token(
    line: MutableSequence, from_position: int, to_position: int
) -> list[AdjacentSwap]:
    """Slide one token along the line via adjacent swaps, in place.

    Every token between source and destination shifts one slot in the
    opposite direction — the physical behaviour of a bucket-brigade of
    SWAP gates.
    """
    size = len(line)
    if not (0 <= from_position < size and 0 <= to_position < size):
        raise LocalityError(
            f"move {from_position} -> {to_position} outside line of "
            f"length {size}"
        )
    swaps: list[AdjacentSwap] = []
    position = from_position
    step = 1 if to_position > from_position else -1
    while position != to_position:
        low = min(position, position + step)
        swaps.append((low, low + 1))
        line[position], line[position + step] = (
            line[position + step],
            line[position],
        )
        position += step
    return swaps


@dataclass(frozen=True)
class PackedOp:
    """A routing gate after SWAP3 fusion.

    ``kind`` is ``"SWAP"`` (one adjacent transposition, two wires) or
    ``"SWAP3_UP"`` / ``"SWAP3_DOWN"`` (two fused transpositions on a
    contiguous wire triple; UP rotates contents ``(a,b,c) -> (c,a,b)``,
    DOWN rotates ``(a,b,c) -> (b,c,a)``).
    """

    kind: str
    wires: tuple[int, ...]


def pack_swaps(swaps: Sequence[AdjacentSwap]) -> list[PackedOp]:
    """Greedily fuse consecutive swap pairs into SWAP3 gates.

    Two consecutive swaps fuse exactly when their four endpoints cover
    a contiguous triple ``(w, w+1, w+2)``; the fused gate is the
    rotation equal to applying the two swaps in order.  Applied to the
    nine-swap schedule of Figure 7 this yields the paper's census of
    four SWAP3 gates plus one SWAP.
    """
    packed: list[PackedOp] = []
    index = 0
    while index < len(swaps):
        first = swaps[index]
        check_adjacent(first)
        if index + 1 < len(swaps):
            second = swaps[index + 1]
            check_adjacent(second)
            if second[0] == first[0] - 1:
                # (i, i+1) then (i-1, i): contents rotate upward.
                base = first[0] - 1
                packed.append(
                    PackedOp(kind="SWAP3_UP", wires=(base, base + 1, base + 2))
                )
                index += 2
                continue
            if second[0] == first[0] + 1:
                # (i, i+1) then (i+1, i+2): contents rotate downward.
                base = first[0]
                packed.append(
                    PackedOp(kind="SWAP3_DOWN", wires=(base, base + 1, base + 2))
                )
                index += 2
                continue
        packed.append(PackedOp(kind="SWAP", wires=first))
        index += 1
    return packed


def packed_census(packed: Sequence[PackedOp]) -> dict[str, int]:
    """Histogram of packed routing gates by kind."""
    census: dict[str, int] = {}
    for op in packed:
        census[op.kind] = census.get(op.kind, 0) + 1
    return census


def swaps_touching(
    swaps: Sequence[AdjacentSwap],
    initial_line: Sequence,
    tokens: set,
) -> int:
    """Count swaps that move at least one of the given tokens.

    Replays the schedule on a copy of the line, checking the tokens at
    each swap's endpoints before applying it.
    """
    line = list(initial_line)
    count = 0
    for swap in swaps:
        check_adjacent(swap)
        low, high = swap
        if line[low] in tokens or line[high] in tokens:
            count += 1
        line[low], line[high] = line[high], line[low]
    return count
