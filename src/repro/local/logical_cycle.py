"""Fully assembled local logical cycles (Sections 3.1 and 3.2).

These functions materialise, as single circuits, the complete
"interleave → transversal gate → uninterleave → recover" cycles whose
per-codeword operation counts set the local thresholds:

* :func:`one_d_logical_cycle` — 27 wires (three nine-slot cells on a
  line): the Figure-6 interleave packed into SWAP3 gates, three
  transversal gate applications on the now-contiguous triples, the
  reversed interleave, and a Figure-7 recovery in each cell.  Local on
  ``Chain(27)`` by construction and checked in tests.
* :func:`two_d_logical_cycle` — 27 wires (three Figure-4 tiles stacked
  along the logical line): the 9-SWAP parallel interleave on the data
  column, transversal gates on vertical triples, uninterleave, and a
  tile recovery per tile.  Local on the stacked ``Grid(9, 3)``.

Both return the circuit *and* a census of operations touching each
codeword, which is how the reproduction recounts the paper's
``G = 40`` (1D) and ``G = 16`` (2D; recounted 17 — see DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.circuit import Circuit
from repro.core.gate import Gate
from repro.local.interleave import interleave_1d_schedule, one_d_initial_line
from repro.local.layout import TileAssembly
from repro.local.local_recovery import (
    ONE_D_DATA_POSITIONS,
    TileOrientation,
    TileRecovery,
    append_one_d_recovery,
)
from repro.local.routing import pack_swaps
from repro.errors import CodingError

#: Wires per codeword cell on the 1D line.
CELL = 9


@dataclass(frozen=True)
class CycleCensus:
    """Operation counts for one assembled logical cycle.

    ``ops_touching_codeword`` counts operations that touch each
    codeword's nine-wire *home cell*.  During interleaving bits stray
    into neighbouring cells, so this is an upper bound on the paper's
    per-codeword ``G`` (which the schedule-level analysis in
    :func:`repro.local.interleave.one_d_cycle_operation_count`
    reproduces exactly as 40/38).
    """

    total_ops: int
    ops_touching_codeword: tuple[int, int, int]

    @property
    def worst_codeword_ops(self) -> int:
        """Operations acting on the busiest codeword's home cell."""
        return max(self.ops_touching_codeword)


def _census(circuit: Circuit, cell_wires: list[set[int]]) -> CycleCensus:
    touching = [0, 0, 0]
    for op in circuit:
        wires = set(op.wires)
        for codeword in range(3):
            if wires & cell_wires[codeword]:
                touching[codeword] += 1
    return CycleCensus(
        total_ops=len(circuit),
        ops_touching_codeword=tuple(touching),  # type: ignore[arg-type]
    )


# ----------------------------------------------------------------------
# 1D
# ----------------------------------------------------------------------


def one_d_logical_cycle(
    gate: Gate, include_resets: bool = True
) -> tuple[Circuit, CycleCensus]:
    """One complete 1D logical cycle of ``gate`` on three codewords.

    The codewords enter and leave on the standard line layout (data at
    slots 0, 3, 6 of each nine-slot cell), so cycles chain.
    """
    if gate.arity != 3:
        raise CodingError(
            f"the 1D cycle applies a 3-bit logical gate, got arity {gate.arity}"
        )
    circuit = Circuit(3 * CELL, name=f"1D-cycle[{gate.name}]")

    swaps, _ = interleave_1d_schedule()
    for op in pack_swaps(swaps):
        if op.kind == "SWAP":
            circuit.swap(*op.wires)
        elif op.kind == "SWAP3_UP":
            circuit.swap3_up(*op.wires)
        else:
            circuit.swap3_down(*op.wires)

    # After interleaving, transversal triple i is contiguous; find it
    # by replaying the schedule on the token line.
    line = one_d_initial_line()
    from repro.local.routing import apply_swap_schedule

    apply_swap_schedule(line, swaps)
    for index in range(3):
        positions = [
            line.index(("data", codeword, index)) for codeword in range(3)
        ]
        circuit.append_gate(gate, *positions)

    for op in pack_swaps([s for s in reversed(swaps)]):
        if op.kind == "SWAP":
            circuit.swap(*op.wires)
        elif op.kind == "SWAP3_UP":
            circuit.swap3_up(*op.wires)
        else:
            circuit.swap3_down(*op.wires)

    for cell in range(3):
        sub = Circuit(CELL)
        append_one_d_recovery(sub, include_resets)
        for op in sub:
            circuit.append(op.remapped({w: w + CELL * cell for w in range(CELL)}))

    cell_wires = [set(range(CELL * j, CELL * (j + 1))) for j in range(3)]
    return circuit, _census(circuit, cell_wires)


def one_d_cycle_io(logical_bits) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Physical input vector and data-wire list for the 1D cycle."""
    if len(logical_bits) != 3:
        raise CodingError(f"expected 3 logical bits, got {len(logical_bits)}")
    state = [0] * (3 * CELL)
    data_wires = []
    for codeword, bit in enumerate(logical_bits):
        if bit not in (0, 1):
            raise CodingError(f"logical bit must be 0 or 1, got {bit!r}")
        for position in ONE_D_DATA_POSITIONS:
            wire = CELL * codeword + position
            state[wire] = bit
            data_wires.append(wire)
    return tuple(state), tuple(data_wires)


# ----------------------------------------------------------------------
# 2D
# ----------------------------------------------------------------------


def two_d_logical_cycle(
    gate: Gate, include_resets: bool = True
) -> tuple[Circuit, CycleCensus, TileAssembly, list[TileRecovery]]:
    """One complete 2D logical cycle on three stacked Figure-4 tiles.

    Returns the circuit (in tile wire numbering: wire = 9·tile + label),
    the per-codeword census, the assembly (for positions/locality), and
    the per-tile recovery trackers whose ``data_wires()`` give where
    each codeword ends up.
    """
    if gate.arity != 3:
        raise CodingError(
            f"the 2D cycle applies a 3-bit logical gate, got arity {gate.arity}"
        )
    assembly = TileAssembly(3, "stacked")
    circuit = Circuit(assembly.n_wires, name=f"2D-cycle[{gate.name}]")

    # The data column, top to bottom: rows 0..8 at the data column.
    column_wires = [assembly.wire_at(row, 1) for row in range(9)]
    # Token at row r belongs to codeword r // 3; its target row under
    # parallel interleaving is 3 * (r % 3) + r // 3 ... but the paper's
    # target is (bit i of every codeword adjacent): token (codeword j,
    # slot s) -> row 3s + j, where s is the slot order within the tile.
    keys = [3 * (row % 3) + (row // 3) for row in range(9)]
    from repro.local.routing import adjacent_swaps_to_sort, apply_swap_schedule

    swaps = adjacent_swaps_to_sort(keys)
    for op in pack_swaps(swaps):
        wires = tuple(column_wires[w] for w in op.wires)
        if op.kind == "SWAP":
            circuit.swap(*wires)
        elif op.kind == "SWAP3_UP":
            circuit.swap3_up(*wires)
        else:
            circuit.swap3_down(*wires)

    # Transversal triples: after sorting, rows 3i..3i+2 hold slot i of
    # codewords 0, 1, 2 (in codeword order by construction of the key).
    line = list(range(9))
    apply_swap_schedule(line, swaps)  # line[row] = original row index
    for i in range(3):
        rows = range(3 * i, 3 * i + 3)
        ordered = sorted(rows, key=lambda row: line[row] // 3)
        circuit.append_gate(gate, *[column_wires[row] for row in ordered])

    for op in pack_swaps([s for s in reversed(swaps)]):
        wires = tuple(column_wires[w] for w in op.wires)
        if op.kind == "SWAP":
            circuit.swap(*wires)
        elif op.kind == "SWAP3_UP":
            circuit.swap3_up(*wires)
        else:
            circuit.swap3_down(*wires)

    trackers = []
    for tile in range(3):
        tracker = TileRecovery(TileOrientation("col", 1))
        sub = Circuit(9)
        tracker.append_cycle(sub, include_resets)
        # The tile recovery uses grid numbering (row*3 + col) within its
        # tile; translate to this assembly's tile wires.
        translate = {
            local: assembly.wire_at(3 * tile + local // 3, local % 3)
            for local in range(9)
        }
        for op in sub:
            circuit.append(op.remapped(translate))
        trackers.append(tracker)

    cell_wires = [set(range(9 * j, 9 * (j + 1))) for j in range(3)]
    return circuit, _census(circuit, cell_wires), assembly, trackers


def two_d_cycle_io(
    logical_bits, assembly: TileAssembly
) -> tuple[tuple[int, ...], list[tuple[int, ...]]]:
    """Physical input and per-codeword data wires for the 2D cycle."""
    if len(logical_bits) != 3:
        raise CodingError(f"expected 3 logical bits, got {len(logical_bits)}")
    state = [0] * assembly.n_wires
    data = []
    for tile, bit in enumerate(logical_bits):
        if bit not in (0, 1):
            raise CodingError(f"logical bit must be 0 or 1, got {bit!r}")
        wires = assembly.data_wires(tile)
        for wire in wires:
            state[wire] = bit
        data.append(wires)
    return tuple(state), data
