"""The 2D tile layout of Figure 4.

One logical bit occupies a 3×3 tile whose cells hold the nine wires of
the recovery circuit.  Figure 4 draws the tile as::

    q8 q2 q5
    q7 q1 q4
    q6 q0 q3

so the codeword ``q0 q1 q2`` sits on the middle column and every
encode triple ``(q0,q3,q6) (q1,q4,q7) (q2,q5,q8)`` is a row while every
decode triple ``(q0,q1,q2) (q3,q4,q5) (q6,q7,q8)`` is a column — the
whole recovery circuit is nearest-neighbour local with no routing.

Tiles assemble into logical registers either stacked along the logical
line (for "parallel" interleaving) or side by side (for
"perpendicular" interleaving); both assemblies expose grid positions
for the locality checker.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.local.lattice import Grid
from repro.errors import LocalityError

#: Figure 4's tile, row by row: entry [r][c] is the wire label there.
FIG4_TILE: tuple[tuple[int, int, int], ...] = (
    (8, 2, 5),
    (7, 1, 4),
    (6, 0, 3),
)


def tile_position(wire: int) -> tuple[int, int]:
    """``(row, col)`` of a wire label inside the Figure-4 tile."""
    for row, entries in enumerate(FIG4_TILE):
        for col, label in enumerate(entries):
            if label == wire:
                return (row, col)
    raise LocalityError(f"wire label {wire} is not in the 3x3 tile")


def tile_wire(row: int, col: int) -> int:
    """Wire label at a tile cell."""
    if not (0 <= row < 3 and 0 <= col < 3):
        raise LocalityError(f"cell ({row}, {col}) outside the 3x3 tile")
    return FIG4_TILE[row][col]


#: Where the codeword q0,q1,q2 lives in the tile: the middle column.
DATA_COLUMN = 1


@dataclass(frozen=True)
class TileAssembly:
    """``n_tiles`` Figure-4 tiles glued into one grid.

    ``orientation='stacked'`` places tile ``t`` on grid rows
    ``3t..3t+2`` (logical bits in a vertical line — data bits of
    consecutive tiles are collinear, the *parallel* geometry);
    ``orientation='side_by_side'`` places tile ``t`` on grid columns
    ``3t..3t+2`` (the *perpendicular* geometry, with two ancilla
    columns between consecutive data columns).

    Circuit wires are numbered ``9 t + label`` for tile ``t`` and
    Figure-4 label ``label``.
    """

    n_tiles: int
    orientation: str = "stacked"

    def __post_init__(self) -> None:
        if self.n_tiles < 1:
            raise LocalityError(f"need >= 1 tile, got {self.n_tiles}")
        if self.orientation not in ("stacked", "side_by_side"):
            raise LocalityError(
                f"orientation must be 'stacked' or 'side_by_side', "
                f"got {self.orientation!r}"
            )

    @property
    def grid(self) -> Grid:
        """The assembled grid."""
        if self.orientation == "stacked":
            return Grid(rows=3 * self.n_tiles, cols=3)
        return Grid(rows=3, cols=3 * self.n_tiles)

    @property
    def n_wires(self) -> int:
        """Total circuit wires across all tiles."""
        return 9 * self.n_tiles

    def wire(self, tile: int, label: int) -> int:
        """Circuit wire of a tile-local Figure-4 label."""
        self._check_tile(tile)
        tile_position(label)  # validates the label
        return 9 * tile + label

    def position(self, wire: int) -> tuple[int, int]:
        """Grid position of a circuit wire."""
        if not 0 <= wire < self.n_wires:
            raise LocalityError(
                f"wire {wire} outside assembly of {self.n_tiles} tiles"
            )
        tile, label = divmod(wire, 9)
        row, col = tile_position(label)
        if self.orientation == "stacked":
            return (3 * tile + row, col)
        return (row, 3 * tile + col)

    def adjacent(self, a: tuple[int, int], b: tuple[int, int]) -> bool:
        """Nearest-neighbour adjacency (so the assembly acts as a lattice).

        Delegating to the grid's Manhattan rule lets the locality
        checker consume a :class:`TileAssembly` directly, with wires in
        tile numbering.
        """
        return self.grid.adjacent(a, b)

    def wire_at(self, row: int, col: int) -> int:
        """Circuit wire at a grid position."""
        if self.orientation == "stacked":
            tile, tile_row = divmod(row, 3)
            tile_col = col
        else:
            tile, tile_col = divmod(col, 3)
            tile_row = row
        self._check_tile(tile)
        return 9 * tile + tile_wire(tile_row, tile_col)

    def grid_lattice_wire_map(self) -> list[int]:
        """``mapping[grid_wire] = circuit_wire`` for the assembled grid.

        Lets callers remap a tile-numbered circuit onto grid-numbered
        wires so the plain :class:`~repro.local.lattice.Grid` position
        convention applies.
        """
        grid = self.grid
        mapping = []
        for site in range(grid.n_sites):
            row, col = grid.position(site)
            mapping.append(self.wire_at(row, col))
        return mapping

    def data_wires(self, tile: int) -> tuple[int, int, int]:
        """Circuit wires of a tile's codeword (labels q0, q1, q2)."""
        self._check_tile(tile)
        return (self.wire(tile, 0), self.wire(tile, 1), self.wire(tile, 2))

    def _check_tile(self, tile: int) -> None:
        if not 0 <= tile < self.n_tiles:
            raise LocalityError(
                f"tile {tile} outside assembly of {self.n_tiles} tiles"
            )


def remapped_grid(assembly: TileAssembly) -> Grid:
    """The plain grid lattice matching :meth:`TileAssembly.position`."""
    return assembly.grid
