"""Near-neighbour lattices and locality checking (Section 3).

Many nano-scale proposals only allow operations on neighbouring bits.
We model a lattice as a map from circuit wires to positions plus an
adjacency relation; an operation is *local* when the positions of its
wires form a connected set under adjacency (and a gate never touches
more than three bits, per the paper's model).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.circuit import Circuit
from repro.errors import LocalityError

Position = tuple[int, ...]

#: The paper's operations act on at most three neighbouring bits.
MAX_LOCAL_OPERATION_SIZE = 3


@dataclass(frozen=True)
class Chain:
    """A 1D line of ``length`` sites; wire ``i`` sits at position ``i``."""

    length: int

    def __post_init__(self) -> None:
        if self.length < 1:
            raise LocalityError(f"chain length must be >= 1, got {self.length}")

    @property
    def n_sites(self) -> int:
        """Number of lattice sites."""
        return self.length

    def position(self, wire: int) -> Position:
        """Position of a wire (the wire index itself)."""
        self._check(wire)
        return (wire,)

    def adjacent(self, a: Position, b: Position) -> bool:
        """True for nearest neighbours on the line."""
        return abs(a[0] - b[0]) == 1

    def _check(self, wire: int) -> None:
        if not 0 <= wire < self.length:
            raise LocalityError(f"wire {wire} outside chain of length {self.length}")


@dataclass(frozen=True)
class Grid:
    """A 2D grid; wire ``r * cols + c`` sits at ``(r, c)``."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise LocalityError(
                f"grid dimensions must be >= 1, got {self.rows}x{self.cols}"
            )

    @property
    def n_sites(self) -> int:
        """Number of lattice sites."""
        return self.rows * self.cols

    def wire(self, row: int, col: int) -> int:
        """Wire index of the site at ``(row, col)``."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise LocalityError(
                f"site ({row}, {col}) outside {self.rows}x{self.cols} grid"
            )
        return row * self.cols + col

    def position(self, wire: int) -> Position:
        """``(row, col)`` of a wire."""
        if not 0 <= wire < self.n_sites:
            raise LocalityError(
                f"wire {wire} outside {self.rows}x{self.cols} grid"
            )
        return divmod(wire, self.cols)

    def adjacent(self, a: Position, b: Position) -> bool:
        """True for sites at Manhattan distance one."""
        return abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1


Lattice = Chain | Grid


def is_connected_set(lattice: Lattice, positions: Sequence[Position]) -> bool:
    """True when the positions induce a connected adjacency subgraph."""
    if not positions:
        return True
    remaining = list(positions)
    frontier = [remaining.pop()]
    while frontier:
        current = frontier.pop()
        linked = [p for p in remaining if lattice.adjacent(current, p)]
        for p in linked:
            remaining.remove(p)
        frontier.extend(linked)
    return not remaining


def is_local_operation(
    lattice: Lattice,
    wires: Iterable[int],
    max_size: int = MAX_LOCAL_OPERATION_SIZE,
) -> bool:
    """True when an operation on ``wires`` is allowed on the lattice."""
    wire_list = list(wires)
    if len(wire_list) > max_size:
        return False
    positions = [lattice.position(w) for w in wire_list]
    return is_connected_set(lattice, positions)


def validate_circuit_locality(
    circuit: Circuit,
    lattice: Lattice,
    max_size: int = MAX_LOCAL_OPERATION_SIZE,
) -> None:
    """Raise :class:`LocalityError` at the first non-local operation."""
    for index, op in enumerate(circuit):
        if not is_local_operation(lattice, op.wires, max_size):
            positions = [lattice.position(w) for w in op.wires]
            raise LocalityError(
                f"operation {index} ({op.label}) on wires {op.wires} at "
                f"positions {positions} is not local on {lattice}"
            )


def circuit_is_local(
    circuit: Circuit,
    lattice: Lattice,
    max_size: int = MAX_LOCAL_OPERATION_SIZE,
) -> bool:
    """Boolean form of :func:`validate_circuit_locality`."""
    try:
        validate_circuit_locality(circuit, lattice, max_size)
    except LocalityError:
        return False
    return True
