"""Interleaving schedules for logical operations on local lattices.

To apply a 3-bit logical gate, the three operand codewords must first
be brought together ("interleaved"), operated on transversally, and
moved back ("uninterleaved").  The paper analyses three geometries:

* **2D parallel** (Figure 4, left option): the codewords lie along one
  line; interleaving is the permutation ``b0 b1 b2 -> (b0[0] b1[0]
  b2[0]) ...`` and costs **9 SWAPs**;
* **2D perpendicular** (Figure 4, right option): the codewords lie on
  parallel data columns two ancilla columns apart; the outer columns
  slide inward and the cost is **12 SWAPs**;
* **1D** (Figure 6): each codeword is embedded in a nine-slot cell
  (data at every third slot); interleaving costs **45 SWAPs** total,
  of which **at most 24 touch any one codeword** — **12 SWAP3** per
  codeword after fusion.

Every schedule here is constructed, simulated, and *counted*; the
benches compare those counts against the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.local.routing import (
    AdjacentSwap,
    adjacent_swaps_to_sort,
    move_token,
    swaps_touching,
)
from repro.errors import LocalityError

#: Token type for schedules: ("data"|"ancilla", codeword, index).
Token = tuple[str, int, int]


def _data(codeword: int, index: int) -> Token:
    return ("data", codeword, index)


def _ancilla(codeword: int, index: int) -> Token:
    return ("ancilla", codeword, index)


@dataclass(frozen=True)
class InterleaveReport:
    """Swap accounting for one interleaving scheme.

    Two counts are kept per codeword:

    * ``swaps_per_codeword`` — swaps that physically *touch* one of the
      codeword's data bits (including being swapped past by another
      codeword's move);
    * ``move_swaps_per_codeword`` — swaps spent deliberately moving
      that codeword's bits, the accounting the paper's 8+7+6 / 10+8+6
      breakdown uses (``None`` for schemes built by sorting rather than
      per-codeword moves).
    """

    scheme: str
    total_swaps: int
    swaps_per_codeword: tuple[int, int, int]
    final_line: tuple[Token, ...]
    move_swaps_per_codeword: tuple[int, int, int] | None = None
    move_breakdown: tuple[tuple[int, ...], ...] | None = None

    @property
    def max_swaps_per_codeword(self) -> int:
        """The worst codeword's swap involvement."""
        return max(self.swaps_per_codeword)

    @property
    def max_swap3_per_codeword(self) -> int:
        """SWAP3 count per codeword after pairwise fusion (ceil n/2)."""
        return (self.max_swaps_per_codeword + 1) // 2


def _report(
    scheme: str,
    initial_line: list[Token],
    swaps: list[AdjacentSwap],
    final_line: list[Token],
) -> InterleaveReport:
    per_codeword = tuple(
        swaps_touching(
            swaps,
            initial_line,
            {token for token in initial_line if token[0] == "data" and token[1] == j},
        )
        for j in range(3)
    )
    return InterleaveReport(
        scheme=scheme,
        total_swaps=len(swaps),
        swaps_per_codeword=per_codeword,  # type: ignore[arg-type]
        final_line=tuple(final_line),
    )


# ----------------------------------------------------------------------
# 2D parallel: codewords collinear with the logical line
# ----------------------------------------------------------------------


def parallel_2d_schedule() -> tuple[list[AdjacentSwap], InterleaveReport]:
    """Interleave three collinear codewords (9 data cells in a line).

    The line holds ``b0[0..2] b1[0..2] b2[0..2]``; the target order is
    ``b0[0] b1[0] b2[0] b0[1] ...`` so transversal gates act on
    contiguous triples.  The permutation has exactly nine inversions,
    so the schedule has the paper's nine SWAPs.
    """
    line: list[Token] = [_data(j, i) for j in range(3) for i in range(3)]
    # Sort key = target position: bit i of codeword j goes to 3*i + j.
    keys = [3 * token[2] + token[1] for token in line]
    swaps = adjacent_swaps_to_sort(keys)
    final = list(line)
    from repro.local.routing import apply_swap_schedule

    apply_swap_schedule(final, swaps)
    return swaps, _report("2d_parallel", line, swaps, final)


# ----------------------------------------------------------------------
# 2D perpendicular: codewords on parallel data columns
# ----------------------------------------------------------------------


def perpendicular_2d_schedule() -> tuple[
    list[tuple[tuple[int, int], tuple[int, int]]], InterleaveReport
]:
    """Interleave three codewords on data columns 1, 4, 7 of a 3×9 grid.

    The outer data columns slide two sites inward (through the ancilla
    columns), leaving the codewords on adjacent columns 3, 4, 5.  Each
    moving cell needs two horizontal swaps: 12 SWAPs total, six per
    moving codeword, zero for the middle one.
    """
    columns = {0: 1, 1: 4, 2: 7}
    swaps: list[tuple[tuple[int, int], tuple[int, int]]] = []
    per_codeword = [0, 0, 0]
    # Codeword 0: column 1 -> 3; codeword 2: column 7 -> 5.
    for codeword, (start, stop, step) in ((0, (1, 3, 1)), (2, (7, 5, -1))):
        column = start
        while column != stop:
            for row in range(3):
                swaps.append(((row, column), (row, column + step)))
                per_codeword[codeword] += 1
            column += step
    final_columns = {0: 3, 1: 4, 2: 7 - 2}
    final = tuple(
        _data(j, i) for i in range(3) for j in sorted(final_columns, key=final_columns.get)
    )
    report = InterleaveReport(
        scheme="2d_perpendicular",
        total_swaps=len(swaps),
        swaps_per_codeword=tuple(per_codeword),  # type: ignore[arg-type]
        final_line=final,
    )
    return swaps, report


# ----------------------------------------------------------------------
# 1D: codewords embedded in nine-slot cells (Figure 6)
# ----------------------------------------------------------------------


def one_d_initial_line() -> list[Token]:
    """Three nine-slot cells; data bits at local slots 0, 3, 6."""
    line: list[Token] = []
    for codeword in range(3):
        ancilla_index = 0
        for local in range(9):
            if local % 3 == 0:
                line.append(_data(codeword, local // 3))
            else:
                line.append(_ancilla(codeword, ancilla_index))
                ancilla_index += 1
    return line


def interleave_1d_schedule() -> tuple[list[AdjacentSwap], InterleaveReport]:
    """Figure 6: interleave three codewords that are linearly adjacent.

    Following the paper's prescription: move the bits of ``b0`` down so
    each sits just above the corresponding bit of ``b1`` (last bit
    first: 8 + 7 + 6 swaps), then move the bits of ``b2`` up so each
    sits just below the corresponding bit of ``b1`` (first bit first:
    10 + 8 + 6 swaps) — 45 swaps in total.
    """
    line = one_d_initial_line()
    initial = list(line)
    swaps: list[AdjacentSwap] = []

    def position_of(token: Token) -> int:
        return line.index(token)

    breakdown_b0: list[int] = []
    breakdown_b2: list[int] = []
    # b0 moves down toward b1, last bit first (8, 7, 6 swaps).
    for index in (2, 1, 0):
        source = position_of(_data(0, index))
        target = position_of(_data(1, index)) - 1
        moved = move_token(line, source, target)
        breakdown_b0.append(len(moved))
        swaps.extend(moved)
    # b2 moves up toward b1, first bit first (10, 8, 6 swaps).
    for index in (0, 1, 2):
        source = position_of(_data(2, index))
        target = position_of(_data(1, index)) + 1
        moved = move_token(line, source, target)
        breakdown_b2.append(len(moved))
        swaps.extend(moved)

    base = _report("1d", initial, swaps, line)
    report = InterleaveReport(
        scheme=base.scheme,
        total_swaps=base.total_swaps,
        swaps_per_codeword=base.swaps_per_codeword,
        final_line=base.final_line,
        move_swaps_per_codeword=(sum(breakdown_b0), 0, sum(breakdown_b2)),
        move_breakdown=(tuple(breakdown_b0), (), tuple(breakdown_b2)),
    )
    _check_interleaved(line)
    return swaps, report


def _check_interleaved(line: list[Token]) -> None:
    """Verify each transversal triple is contiguous after interleaving."""
    for index in range(3):
        positions = sorted(
            line.index(_data(codeword, index)) for codeword in range(3)
        )
        if positions[2] - positions[0] != 2:
            raise LocalityError(
                f"transversal triple {index} not contiguous after "
                f"interleaving: positions {positions}"
            )


def one_d_cycle_operation_count(include_init: bool = True) -> int:
    """Per-codeword operations of a full 1D logical cycle (Section 3.2).

    12 SWAP3 to interleave + 3 transversal gates + 12 SWAP3 to
    uninterleave + the recovery cycle (13 operations counting
    initialisation as two 3-bit resets, 11 without) — the paper's
    G = 40 (or 38).
    """
    _, report = interleave_1d_schedule()
    swap3 = report.max_swap3_per_codeword
    recovery = 13 if include_init else 11
    return swap3 + 3 + swap3 + recovery
