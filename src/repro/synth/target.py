"""What to synthesise, and what a candidate circuit costs.

A :class:`SynthesisTarget` is the *specification* half of a synthesis
problem: the permutation a circuit must implement, given either fully
(a :class:`~repro.core.permutation.Permutation`, a gate, a reference
circuit, or explicit truth-table rows) or partially — inputs marked as
*don't cares* leave their outputs unconstrained, which is how
ancilla-bearing constructions are specified (the paper's MAJ⁻¹ fan-out
only ever sees ancillas at 0, so the other inputs need no prescribed
image).

A :class:`CostModel` is the *objective* half.  It scores circuits by
gate count, depth, and the fault-location census per error class —
exactly the census the threshold accounting uses
(:func:`~repro.coding.concatenation.gamma_census`: every gate op is one
gate-class fault location, every reset op one reset-class location, the
``G`` of the paper's ``rho = 1/(3 C(G,2))``).  With the default weights
the cost of a reset-free circuit is simply its gate count, so minimal
cost coincides with the synthesis literature's minimal gate count; the
fault-aware weights let the peephole optimiser trade towards fewer
fault locations of a specific error class instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.coding.concatenation import gamma_census
from repro.core.bits import bits_to_index, parse_bits
from repro.core.circuit import Circuit
from repro.core.gate import Gate
from repro.core.permutation import Permutation
from repro.core.truth_table import circuit_permutation
from repro.errors import SynthesisError

#: Largest wire count synthesis targets accept: exhaustive search over
#: permutations of 2**n patterns is the whole point of this layer, and
#: beyond this the frontiers stop fitting in memory anyway.
MAX_TARGET_WIRES = 6


@dataclass(frozen=True)
class SynthesisTarget:
    """A (possibly partial) permutation a synthesised circuit must match.

    ``outputs[i]`` is the required image of the packed input pattern
    ``i`` (wire 0 most significant, the library-wide convention), or
    ``None`` when input ``i`` is a don't-care pattern.  Specified
    outputs must be pairwise distinct so at least one completion into a
    full permutation exists.
    """

    n_wires: int
    outputs: tuple[int | None, ...]
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "outputs", tuple(self.outputs))
        if not 1 <= self.n_wires <= MAX_TARGET_WIRES:
            raise SynthesisError(
                f"target needs 1..{MAX_TARGET_WIRES} wires, got {self.n_wires}"
            )
        size = 1 << self.n_wires
        if len(self.outputs) != size:
            raise SynthesisError(
                f"target on {self.n_wires} wires needs {size} outputs, "
                f"got {len(self.outputs)}"
            )
        specified = [image for image in self.outputs if image is not None]
        for image in specified:
            if not isinstance(image, int) or not 0 <= image < size:
                raise SynthesisError(
                    f"target output {image!r} outside range({size})"
                )
        if len(set(specified)) != len(specified):
            raise SynthesisError(
                "target repeats an output image; no permutation can match"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def from_permutation(
        permutation: Permutation, name: str = ""
    ) -> "SynthesisTarget":
        """A fully specified target from a permutation of ``2**n``."""
        size = permutation.size
        n_wires = size.bit_length() - 1
        if 1 << n_wires != size:
            raise SynthesisError(
                f"permutation size {size} is not a power of two"
            )
        return SynthesisTarget(
            n_wires=n_wires, outputs=permutation.mapping, name=name
        )

    @staticmethod
    def from_gate(gate: Gate) -> "SynthesisTarget":
        """The target "implement this gate"."""
        return SynthesisTarget(
            n_wires=gate.arity, outputs=gate.table, name=gate.name
        )

    @staticmethod
    def from_circuit(circuit: Circuit) -> "SynthesisTarget":
        """The target "match this reference circuit's action"."""
        return SynthesisTarget.from_permutation(
            circuit_permutation(circuit), name=circuit.name
        )

    @staticmethod
    def from_truth_table(
        rows: dict[str, str] | list[tuple[str, str]],
        n_wires: int,
        name: str = "",
    ) -> "SynthesisTarget":
        """A target from ``input -> output`` bit-string rows.

        Inputs absent from ``rows`` become don't-care patterns, which is
        the natural way to write ancilla-bearing specifications::

            SynthesisTarget.from_truth_table(
                {"000": "000", "100": "111"}, n_wires=3
            )
        """
        pairs = rows.items() if isinstance(rows, dict) else rows
        outputs: list[int | None] = [None] * (1 << n_wires)
        for input_bits, output_bits in pairs:
            index = bits_to_index(parse_bits(input_bits))
            if len(input_bits) != n_wires or len(output_bits) != n_wires:
                raise SynthesisError(
                    f"truth-table row {input_bits!r} -> {output_bits!r} "
                    f"does not match {n_wires} wires"
                )
            if outputs[index] is not None:
                raise SynthesisError(
                    f"truth-table row for input {input_bits!r} given twice"
                )
            outputs[index] = bits_to_index(parse_bits(output_bits))
        return SynthesisTarget(n_wires=n_wires, outputs=tuple(outputs), name=name)

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------

    @property
    def is_fully_specified(self) -> bool:
        """True when no input pattern is a don't care."""
        return all(image is not None for image in self.outputs)

    @property
    def dont_care_inputs(self) -> tuple[int, ...]:
        """Packed input patterns whose outputs are unconstrained."""
        return tuple(
            index for index, image in enumerate(self.outputs) if image is None
        )

    def permutation(self) -> Permutation:
        """The target as a permutation; requires full specification."""
        if not self.is_fully_specified:
            raise SynthesisError(
                f"target has {len(self.dont_care_inputs)} don't-care "
                "inputs; it is not a single permutation"
            )
        return Permutation(self.outputs)  # type: ignore[arg-type]

    def matches(self, mapping: Permutation | tuple[int, ...]) -> bool:
        """True when ``mapping`` agrees with every specified output."""
        if isinstance(mapping, Permutation):
            mapping = mapping.mapping
        if len(mapping) != len(self.outputs):
            raise SynthesisError(
                f"candidate acts on {len(mapping)} patterns, target on "
                f"{len(self.outputs)}"
            )
        return all(
            image is None or image == candidate
            for image, candidate in zip(self.outputs, mapping)
        )

    def matches_circuit(self, circuit: Circuit) -> bool:
        """Exhaustive check of a candidate circuit against the target."""
        if circuit.n_wires != self.n_wires:
            return False
        return self.matches(circuit_permutation(circuit))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        holes = len(self.dont_care_inputs)
        qualifier = f", {holes} don't cares" if holes else ""
        return f"SynthesisTarget({self.n_wires} wires{label}{qualifier})"


@dataclass(frozen=True)
class CostModel:
    """Scores circuits by gate count, depth, and fault locations.

    ``cost`` is a weighted sum over the op census: every gate op is one
    gate-class fault location and every reset op one reset-class
    location (the same per-error-class census the threshold accounting
    bills — a failing op randomises the wires it touches, regardless of
    which gate it is), plus ``depth_weight`` per layer of ASAP depth.
    The defaults make cost equal to total op count, so "minimal cost"
    is the literature's "minimal gate count" for reset-free synthesis.
    """

    gate_location_weight: float = 1.0
    reset_location_weight: float = 1.0
    depth_weight: float = 0.0

    def __post_init__(self) -> None:
        for label in ("gate_location_weight", "reset_location_weight", "depth_weight"):
            if getattr(self, label) < 0:
                raise SynthesisError(
                    f"{label} must be >= 0, got {getattr(self, label)}"
                )

    def fault_locations(self, circuit: Circuit) -> dict[str, int]:
        """The per-error-class fault-location census of ``circuit``.

        Same counting as the threshold accounting's
        :func:`~repro.coding.concatenation.gamma_census` — one location
        per operation, split by the error rate class it draws.
        """
        return gamma_census(circuit)

    def cost(self, circuit: Circuit) -> float:
        """The circuit's score; lower is better."""
        census = self.fault_locations(circuit)
        total = (
            self.gate_location_weight * census["gates"]
            + self.reset_location_weight * census["resets"]
        )
        if self.depth_weight:
            total += self.depth_weight * circuit.depth()
        return total


#: The default objective: cost == op count == total fault locations.
DEFAULT_COST_MODEL = CostModel()
