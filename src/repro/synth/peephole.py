"""Fault-aware peephole optimisation of reversible circuits.

Every operation of a circuit is a fault location — the paper's noise
model randomises the touched wires of a failing op with probability
``g`` — so removing redundant ops is not cosmetic: it removes fault
locations, and with them logical error rate.  :func:`optimize` runs a
fixed-point window scan with three rewrite families:

1. **identity removal** — gates whose table is the identity disappear;
2. **inverse-pair cancellation** — a gate directly followed (possibly
   across ops on *disjoint* wires, which commute with it exactly) by
   an inverse gate on the same wires cancels with it;
3. **database rewrites** — a contiguous window of gate ops whose
   exhaustive action has a cheaper equivalent in an
   :class:`~repro.synth.database.IdentityDatabase` is spliced out for
   that equivalent (no-op windows are deleted outright).

**Verification contract.**  No rewrite is ever applied on faith: an
inverse-pair cancellation re-checks ``b∘a = identity`` over all
``2**arity`` patterns, and a database rewrite must prove the window's
and the replacement's actions equal — even though the database already
verified its members.  The proof has a fast path and an authority:
first the static ANF prover (:mod:`repro.core.anf`) compares the two
circuits' canonical GF(2) polynomials per output wire, which is a
complete symbolic proof at polynomial cost; only if that does not
certify equality is the full ``2**wires`` exhaustion recomputed, and
exhaustion remains the authority of record — a rewrite raises only
after *both* reject it.  A rewrite that fails verification raises
instead of degrading silently.  Reset operations take part in none of this: they
are not permutations, so they are never moved, merged, or rewritten
(disjoint-wire gates may still cancel *across* them, which is exact).

``optimize`` terminates because every applied rewrite strictly
decreases the cost model's score, and is idempotent because a
fixed point by definition admits no further rewrite; both properties
are pinned by the property tests.  The paper's own constructions
(Figure-1 MAJ, Figure-5 SWAP3, the decomposition catalogue) are
already optimal under the default cost model and pass through
untouched.

:func:`inflate` is the adversary: it pads a circuit with
provably-identity redundancy (commuting X pairs around every gate,
cancelling SWAP pairs after resets, MAJ-family gates expanded into
their Figure-1 decompositions) without changing its action — the
workload the redundant-recovery-cycle experiment feeds back through
``optimize`` and the stacked Executor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import library
from repro.core.anf import circuits_equivalent
from repro.core.circuit import Circuit, Operation
from repro.core.decompositions import maj_circuit, maj_inv_circuit
from repro.core.truth_table import circuit_permutation
from repro.errors import SynthesisError
from repro.synth.database import IdentityDatabase
from repro.synth.target import DEFAULT_COST_MODEL, CostModel

#: Longest contiguous gate window offered to the database.
DEFAULT_MAX_WINDOW = 4

#: Windows touching more wires than this are never evaluated (the
#: exhaustive window action grows as 2**wires).
MAX_WINDOW_WIRES = 6


@dataclass(frozen=True)
class OptimizationReport:
    """What :func:`optimize` did to one circuit.

    ``verified_rewrites`` counts the equivalence proofs that passed
    (static ANF fast path or exhaustive recheck) — by the verification
    contract it equals ``cancellations + identity_removals +
    database_rewrites`` (every applied rewrite was proved; nothing is
    applied unchecked).
    """

    original: Circuit
    circuit: Circuit
    passes: int
    identity_removals: int
    cancellations: int
    database_rewrites: int
    verified_rewrites: int
    locations_before: dict[str, int]
    locations_after: dict[str, int]

    @property
    def locations_removed_fraction(self) -> float:
        """Fraction of fault locations the optimisation removed."""
        before = self.locations_before["total"]
        if before == 0:
            return 0.0
        return 1.0 - self.locations_after["total"] / before


def _composes_to_identity(first: Operation, second: Operation) -> bool:
    """Exhaustive check that ``second`` undoes ``first`` on its wires."""
    if first.wires != second.wires:
        return False
    assert first.gate is not None and second.gate is not None
    if first.gate.arity != second.gate.arity:
        return False
    a, b = first.gate.table, second.gate.table
    return all(b[a[pattern]] == pattern for pattern in range(len(a)))


def _cancel_pass(ops: list[Operation]) -> tuple[int, int]:
    """One in-place identity-removal + inverse-cancellation sweep.

    Returns ``(identity_removals, cancellations)``.  The partner scan
    walks forward only across ops on wires disjoint from the
    candidate's — those commute with it exactly, so deleting the pair
    is equivalent to first commuting them adjacent and then cancelling.
    """
    identity_removals = 0
    cancellations = 0
    index = 0
    while index < len(ops):
        op = ops[index]
        if op.is_reset:
            index += 1
            continue
        assert op.gate is not None
        if op.gate.is_identity():
            del ops[index]
            identity_removals += 1
            continue
        wires = set(op.wires)
        cancelled = False
        for partner in range(index + 1, len(ops)):
            if wires.isdisjoint(ops[partner].wires):
                continue
            if not ops[partner].is_reset and _composes_to_identity(
                op, ops[partner]
            ):
                del ops[partner]
                del ops[index]
                cancellations += 1
                cancelled = True
            break
        if not cancelled:
            index += 1
    return identity_removals, cancellations


def _compact_window(
    ops: list[Operation], start: int, width: int, n_wires: int
) -> tuple[tuple[int, ...], Circuit] | None:
    """``(sorted touched wires, window on compact wires)`` or ``None``.

    ``None`` when the window is not a pure gate run or touches more
    wires than the database covers.  The window is embedded on the
    lowest indices of the database's full wire count, so narrower
    windows still probe the database.
    """
    touched: set[int] = set()
    for op in ops[start:start + width]:
        if op.is_reset:
            return None
        touched.update(op.wires)
    if len(touched) > n_wires or len(touched) > MAX_WINDOW_WIRES:
        return None
    wires = tuple(sorted(touched))
    to_compact = {wire: position for position, wire in enumerate(wires)}
    window = Circuit(n_wires)
    for op in ops[start:start + width]:
        window.append(op.remapped(to_compact))
    return wires, window


def _verify_rewrite(
    window: Circuit, replacement: Circuit, window_mapping: tuple[int, ...]
) -> bool:
    """Prove ``replacement``'s action equals ``window``'s.

    Fast path: the static ANF prover — canonical GF(2) polynomial
    equality per output wire, a complete symbolic proof at polynomial
    cost in the window size.  When it certifies equality the
    ``2**wires`` exhaustion is skipped; when it does not, exhaustion
    runs and remains the authority of record, so a prover regression
    can only cost time, never admit a wrong splice.
    """
    if circuits_equivalent(window, replacement):
        return True
    return circuit_permutation(replacement).mapping == window_mapping


def _window_pass(
    ops: list[Operation],
    database: IdentityDatabase,
    cost_model: CostModel,
) -> tuple[int, int]:
    """One database-rewrite sweep; returns ``(rewrites, verified)``."""
    rewrites = 0
    verified = 0
    index = 0
    while index < len(ops):
        replaced = False
        for width in range(min(DEFAULT_MAX_WINDOW, len(ops) - index), 1, -1):
            located = _compact_window(ops, index, width, database.n_wires)
            if located is None:
                continue
            wires, window = located
            mapping = circuit_permutation(window).mapping
            replacement = database.best(mapping, cost_model)
            if replacement is None:
                continue
            if not replacement.wires_touched() <= set(range(len(wires))):
                continue  # replacement would spill past the window's wires
            if cost_model.cost(replacement) >= cost_model.cost(window):
                continue
            # The verification contract: prove both actions equal
            # before splicing, independent of what the database
            # recorded — static ANF first, exhaustion as authority.
            if not _verify_rewrite(window, replacement, mapping):
                raise SynthesisError(
                    "database rewrite failed equivalence verification; "
                    "refusing to splice"
                )  # pragma: no cover - database verifies on every entry path
            verified += 1
            from_compact = dict(enumerate(wires))
            ops[index:index + width] = [
                op.remapped(from_compact) for op in replacement
            ]
            rewrites += 1
            replaced = True
            break
        if not replaced:
            index += 1
    return rewrites, verified


def optimize_report(
    circuit: Circuit,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    database: IdentityDatabase | None = None,
    max_passes: int | None = None,
) -> OptimizationReport:
    """Run :func:`optimize` and report what happened."""
    locations_before = cost_model.fault_locations(circuit)
    ops = list(circuit.ops)
    if max_passes is None:
        max_passes = len(ops) + 4
    identity_removals = cancellations = database_rewrites = verified = 0
    passes = 0
    while True:
        if passes >= max_passes:
            raise SynthesisError(
                f"peephole optimisation did not reach a fixed point in "
                f"{max_passes} passes; the cost model is not decreasing"
            )  # pragma: no cover - every rewrite strictly lowers cost
        passes += 1
        removed, cancelled = _cancel_pass(ops)
        identity_removals += removed
        cancellations += cancelled
        # Identity removal is verified by Gate.is_identity (the full
        # table) and cancellation by _composes_to_identity — both
        # exhaustive over the pair's 2**arity patterns.
        verified += removed + cancelled
        rewrites = 0
        if database is not None:
            rewrites, checked = _window_pass(ops, database, cost_model)
            database_rewrites += rewrites
            verified += checked
        if not (removed or cancelled or rewrites):
            break
    optimized = Circuit(circuit.n_wires, name=circuit.name)
    for op in ops:
        optimized.append(op)
    return OptimizationReport(
        original=circuit,
        circuit=optimized,
        passes=passes,
        identity_removals=identity_removals,
        cancellations=cancellations,
        database_rewrites=database_rewrites,
        verified_rewrites=verified,
        locations_before=locations_before,
        locations_after=cost_model.fault_locations(optimized),
    )


def optimize(
    circuit: Circuit,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    database: IdentityDatabase | None = None,
) -> Circuit:
    """The circuit with every verified peephole rewrite applied.

    Without a ``database`` only the self-contained rewrites run
    (identity removal, inverse-pair cancellation); with one, window
    actions are also looked up for cheaper equivalents.  The result
    has the same action as the input — every rewrite is verified by
    exhaustion before it is applied — and running ``optimize`` on its
    own output is a no-op (fixed point).
    """
    return optimize_report(circuit, cost_model, database).circuit


# ----------------------------------------------------------------------
# The adversary: provably redundant inflation
# ----------------------------------------------------------------------


def inflate(
    circuit: Circuit,
    expand_maj: bool = True,
    pad_gates: bool = True,
    pair_resets: bool = True,
) -> Circuit:
    """A behaviourally identical circuit with redundant fault locations.

    Three independent redundancy families, each an exact identity:

    * ``expand_maj`` — MAJ/MAJ⁻¹ gates are replaced by their Figure-1
      CNOT·CNOT·Toffoli decompositions (3 fault locations where one
      stood);
    * ``pad_gates`` — every gate op is wrapped in a pair of X gates on
      a wire it does not touch (the pair commutes with the op and
      multiplies to the identity);
    * ``pair_resets`` — every reset is followed by a doubled SWAP on
      two of the wires it just initialised.

    The result is the benchmark workload for :func:`optimize`, which
    must strip all of it back out.
    """
    expanded: list[Operation] = []
    for op in circuit:
        if expand_maj and op.is_gate and op.gate is not None and (
            op.gate.name in library.MAJ_NAMES
        ):
            body = maj_circuit() if op.gate.name == "MAJ" else maj_inv_circuit()
            mapping = dict(enumerate(op.wires))
            expanded.extend(body_op.remapped(mapping) for body_op in body)
        else:
            expanded.append(op)

    inflated = Circuit(
        circuit.n_wires,
        name=f"{circuit.name}+redundant" if circuit.name else "redundant",
    )
    for op in expanded:
        pad_wire = next(
            (w for w in range(circuit.n_wires) if w not in op.wires), None
        )
        if pad_gates and op.is_gate and pad_wire is not None:
            inflated.x(pad_wire)
            inflated.append(op)
            inflated.x(pad_wire)
        else:
            inflated.append(op)
        if pair_resets and op.is_reset and len(op.wires) >= 2:
            a, b = op.wires[0], op.wires[1]
            inflated.swap(a, b)
            inflated.swap(a, b)
    return inflated
