"""Reversible-circuit synthesis, identity mining, peephole optimisation.

Where the rest of the library *simulates* the paper's hand-written
constructions, this package *discovers and improves* constructions —
the core activity of the reversible-synthesis literature.  Four
cooperating layers:

* :mod:`repro.synth.target` — what to build (:class:`SynthesisTarget`,
  optionally with don't-care patterns) and what it costs
  (:class:`CostModel`: gate count, depth, and the per-error-class
  fault-location census the threshold accounting uses);
* :mod:`repro.synth.search` — :func:`find_optimal`, an
  iterative-deepening meet-in-the-middle exhaustive search that
  provably returns minimal-gate-count circuits (it rediscovers the
  paper's Figure-1 MAJ and Figure-5 SWAP3 constructions);
* :mod:`repro.synth.database` — :class:`IdentityDatabase`, equivalence
  classes of circuits mined by the searcher, content-keyed by the same
  :meth:`~repro.core.circuit.Circuit.content_key` hash as the compile
  cache, persisted as JSON and usable as rewrite rules;
* :mod:`repro.synth.peephole` — :func:`optimize`, a fixed-point window
  scan (inverse-pair cancellation across commuting ops, database
  rewrites) in which every rewrite is verified by exhaustive
  equivalence before it is applied.

Synthesised and optimised circuits are ordinary
:class:`~repro.core.circuit.Circuit` values, so they feed straight
into :mod:`repro.runtime` specs and the stacked Executor — the
``synth-peephole`` experiment measures exactly that round trip.
"""

from repro.synth.database import (
    IdentityDatabase,
    circuit_from_json,
    circuit_to_json,
    content_digest,
)
from repro.synth.peephole import (
    OptimizationReport,
    inflate,
    optimize,
    optimize_report,
)
from repro.synth.search import (
    DEFAULT_GATE_LIBRARY,
    PlacedOp,
    SynthesisResult,
    enumerate_canonical,
    find_optimal,
    op_permutation,
    placed_library,
    search_depth_budget,
)
from repro.synth.target import (
    DEFAULT_COST_MODEL,
    CostModel,
    SynthesisTarget,
)

__all__ = [
    "IdentityDatabase",
    "circuit_from_json",
    "circuit_to_json",
    "content_digest",
    "OptimizationReport",
    "inflate",
    "optimize",
    "optimize_report",
    "DEFAULT_GATE_LIBRARY",
    "PlacedOp",
    "SynthesisResult",
    "enumerate_canonical",
    "find_optimal",
    "op_permutation",
    "placed_library",
    "search_depth_budget",
    "DEFAULT_COST_MODEL",
    "CostModel",
    "SynthesisTarget",
]
