"""Provably minimal reversible-circuit search.

:func:`find_optimal` answers "what is the cheapest circuit over this
gate library implementing this target?" by iterative deepening on gate
count with a bidirectional (meet-in-the-middle) frontier: depth ``d``
is decided by hashing every ``ceil(d/2)``-gate prefix action and
probing it against every ``floor(d/2)``-gate suffix action, so the
searched space grows like ``ops**(d/2)`` instead of ``ops**d``.
Frontier keys are raw permutation mapping tuples — composing two
mapping tuples is a single Python comprehension, and the
:class:`~repro.core.permutation.Permutation` algebra is only invoked
at the edges.

**Canonical-order pruning.**  Ops on pairwise-disjoint wires commute
exactly, so frontier expansion skips any extension that would place a
lower-indexed op directly after a higher-indexed disjoint one — of
every run of adjacent commuting ops only the library-order-sorted
arrangement is expanded.  The pruning is *lossless at the level of
reachable actions*: if a skipped extension would have produced action
``m``, then ``m = g_1 ∘ (g_0 ∘ p)`` with ``g_0 < g_1`` disjoint, and
the re-associated edge ``(g_0 ∘ p, g_1)`` reaches the same ``m``
through a strictly higher-indexed final op; op indices are bounded, so
chasing that edge terminates at an unpruned extension.  By induction
every frontier level contains **exactly** the actions reachable by
that many gates, which is what makes the iterative-deepening minimum a
theorem rather than a heuristic.  (The tempting second pruning —
skipping an op directly followed by its inverse — is *not* applied in
the frontiers: the identity action at depth 2 is reachable only
through inverse pairs, and meet-in-the-middle probes interior levels
whose actions may need such words.  The database miner, which
enumerates whole circuits rather than actions, does apply it; see
:func:`enumerate_canonical`.)

Fully specified targets get the bidirectional search; targets with
don't-care patterns cannot be probed by hash (many permutations match
them) and fall back to forward-only iterative deepening over the same
pruned frontiers.

The search is exhaustive at each depth, so the first depth with a
match yields the provably minimal gate count; among the canonical
representatives meeting at that depth the returned circuit minimises
``cost_model`` (ties broken by op order, deterministically).  The
``REPRO_SYNTH_DEPTH`` environment knob does not change behaviour here
— it is read by the benchmark/CI smoke layer via
:func:`search_depth_budget` to cap ``max_gates`` on shared runners.
"""

from __future__ import annotations

import os
from collections.abc import Iterator
from dataclasses import dataclass
from itertools import permutations as wire_orderings

from repro.core import library
from repro.core.bits import bits_to_index, index_to_bits
from repro.core.circuit import Circuit
from repro.core.gate import Gate
from repro.core.permutation import Permutation
from repro.errors import SynthesisError
from repro.synth.target import DEFAULT_COST_MODEL, CostModel, SynthesisTarget

#: The Figure-1 universal basis — the default synthesis library.
DEFAULT_GATE_LIBRARY: tuple[Gate, ...] = (
    library.X,
    library.CNOT,
    library.TOFFOLI,
)

#: Default iterative-deepening bound (gates) before giving up.
DEFAULT_MAX_GATES = 8


def search_depth_budget(default: int = DEFAULT_MAX_GATES) -> int:
    """The ``max_gates`` cap for smoke runs (``REPRO_SYNTH_DEPTH``).

    Benchmarks and the CI synth smoke step read this so shared runners
    can cap the exhaustive search depth; library callers pass
    ``max_gates`` explicitly and never consult the environment.
    """
    raw = os.environ.get("REPRO_SYNTH_DEPTH", default)
    try:
        value = int(raw)
    except (TypeError, ValueError):
        raise SynthesisError(
            f"REPRO_SYNTH_DEPTH must be an integer >= 1, got {raw!r}"
        ) from None
    if value < 1:
        raise SynthesisError(f"REPRO_SYNTH_DEPTH must be >= 1, got {value}")
    return value


@dataclass(frozen=True)
class PlacedOp:
    """One gate placed on concrete wires, with its full-width action.

    ``mapping`` is the permutation of all ``2**n_wires`` patterns the
    placement induces; ``inverse_index`` is the library index of the
    placement undoing it, or ``None`` when the placed library is not
    closed under inversion (the miner's inverse-pair pruning then
    simply never fires for this op).
    """

    index: int
    gate: Gate
    wires: tuple[int, ...]
    mapping: tuple[int, ...]
    inverse_index: int | None = None

    def disjoint(self, other: "PlacedOp") -> bool:
        """True when the two placements touch no common wire."""
        return not set(self.wires) & set(other.wires)


def op_permutation(gate: Gate, wires: tuple[int, ...], n_wires: int) -> tuple[int, ...]:
    """The mapping of all ``2**n_wires`` patterns under one placement."""
    mapping = []
    for pattern in range(1 << n_wires):
        bits = list(index_to_bits(pattern, n_wires))
        packed = bits_to_index(tuple(bits[w] for w in wires))
        image = index_to_bits(gate.table[packed], gate.arity)
        for position, wire in enumerate(wires):
            bits[wire] = image[position]
        mapping.append(bits_to_index(bits))
    return tuple(mapping)


def placed_library(
    gate_library: tuple[Gate, ...], n_wires: int
) -> tuple[PlacedOp, ...]:
    """Every distinct-action placement of the library's gates.

    Placements are enumerated in deterministic (gate, wire-ordering)
    order and deduplicated by action — a SWAP on ``(0, 1)`` and on
    ``(1, 0)`` is one op — keeping the first (lexicographically
    smallest) wire tuple as the canonical representative.  Identity
    actions are dropped.  The op *index* defined by this ordering is
    what the canonical commuting-order pruning sorts by.
    """
    if not gate_library:
        raise SynthesisError("gate library must contain at least one gate")
    seen: dict[tuple[int, ...], int] = {}
    ops: list[PlacedOp] = []
    identity = tuple(range(1 << n_wires))
    for gate in gate_library:
        if gate.arity > n_wires:
            continue
        for wires in wire_orderings(range(n_wires), gate.arity):
            mapping = op_permutation(gate, wires, n_wires)
            if mapping == identity or mapping in seen:
                continue
            seen[mapping] = len(ops)
            ops.append(
                PlacedOp(
                    index=len(ops), gate=gate, wires=wires, mapping=mapping
                )
            )
    if not ops:
        raise SynthesisError(
            f"no gate of the library fits on {n_wires} wires"
        )
    return tuple(
        PlacedOp(
            index=op.index,
            gate=op.gate,
            wires=op.wires,
            mapping=op.mapping,
            inverse_index=seen.get(_invert(op.mapping)),
        )
        for op in ops
    )


def _invert(mapping: tuple[int, ...]) -> tuple[int, ...]:
    inverse = [0] * len(mapping)
    for index, image in enumerate(mapping):
        inverse[image] = index
    return tuple(inverse)


def _canonical_order(ops: tuple[PlacedOp, ...], earlier: int, later: int) -> bool:
    """Whether op ``later`` may directly follow ``earlier`` canonically.

    Rejects out-of-order adjacent commuting (wire-disjoint) pairs; see
    the module docstring for why this pruning loses no reachable
    action at any frontier level.
    """
    return not (ops[earlier].disjoint(ops[later]) and later < earlier)


Frontier = dict[tuple[int, ...], tuple[int, ...]]


def _expand_forward(frontier: Frontier, ops: tuple[PlacedOp, ...]) -> Frontier:
    """All canonical one-op extensions (appended at the late end)."""
    extended: Frontier = {}
    for mapping, sequence in frontier.items():
        last = sequence[-1] if sequence else None
        for op in ops:
            if last is not None and not _canonical_order(ops, last, op.index):
                continue
            composed = tuple(op.mapping[image] for image in mapping)
            if composed not in extended:
                extended[composed] = sequence + (op.index,)
    return extended


def _expand_backward(frontier: Frontier, ops: tuple[PlacedOp, ...]) -> Frontier:
    """All canonical one-op extensions (prepended at the early end)."""
    extended: Frontier = {}
    for mapping, sequence in frontier.items():
        first = sequence[0] if sequence else None
        for op in ops:
            if first is not None and not _canonical_order(ops, op.index, first):
                continue
            composed = tuple(mapping[image] for image in op.mapping)
            if composed not in extended:
                extended[composed] = (op.index,) + sequence
    return extended


def enumerate_canonical(
    ops: tuple[PlacedOp, ...], max_gates: int
) -> Iterator[tuple[tuple[int, ...], tuple[int, ...]]]:
    """Every canonical op sequence of 1..``max_gates`` ops, with action.

    Unlike the search frontiers this enumerates *circuits*, not
    actions: sequences are not deduplicated by action (an identity
    database wants several members per equivalence class), but both
    prunings apply — canonical commuting order, and no op directly
    followed by its inverse (such a circuit is never the cheapest
    member of its class, so the miner loses nothing by skipping it).
    Yields ``(sequence, mapping)`` pairs in deterministic order.
    """
    if max_gates < 0:
        raise SynthesisError(f"max_gates must be >= 0, got {max_gates}")
    level: list[tuple[tuple[int, ...], tuple[int, ...]]] = [
        ((), tuple(range(len(ops[0].mapping))))
    ]
    for _ in range(max_gates):
        extended = []
        for sequence, mapping in level:
            last = sequence[-1] if sequence else None
            for op in ops:
                if last is not None and (
                    not _canonical_order(ops, last, op.index)
                    or ops[last].inverse_index == op.index
                ):
                    continue
                entry = (
                    sequence + (op.index,),
                    tuple(op.mapping[image] for image in mapping),
                )
                extended.append(entry)
                yield entry
        level = extended


@dataclass(frozen=True)
class SynthesisResult:
    """Outcome of :func:`find_optimal`.

    ``circuit`` implements the target at the provably minimal gate
    count over the given library; ``cost`` is its score under the
    search's cost model; ``states_explored`` totals the frontier
    entries ever created (the measure the benchmarks budget).
    """

    circuit: Circuit
    cost: float
    states_explored: int

    @property
    def gate_count(self) -> int:
        """Number of gates in the synthesised circuit."""
        return len(self.circuit)


def build_circuit(
    ops: tuple[PlacedOp, ...],
    sequence: tuple[int, ...],
    n_wires: int,
    name: str = "",
) -> Circuit:
    """Materialise an op-index sequence as a :class:`Circuit`."""
    circuit = Circuit(n_wires, name=name)
    for index in sequence:
        circuit.append_gate(ops[index].gate, *ops[index].wires)
    return circuit


def find_optimal(
    target: SynthesisTarget | Gate | Permutation | Circuit,
    gate_library: tuple[Gate, ...] = DEFAULT_GATE_LIBRARY,
    max_gates: int = DEFAULT_MAX_GATES,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> SynthesisResult:
    """The cheapest circuit over ``gate_library`` implementing ``target``.

    Iterative deepening guarantees the returned circuit's gate count is
    minimal; among the canonical candidates found at that minimal
    depth, ``cost_model`` picks the winner (with the default model the
    two notions coincide — cost *is* gate count for reset-free
    circuits).  Raises :class:`~repro.errors.SynthesisError` when no
    circuit of at most ``max_gates`` gates matches.

    The Figure-1 and Figure-5 constructions fall out directly::

        find_optimal(library.MAJ, (library.CNOT, library.TOFFOLI))
        # -> 2 CNOTs + 1 Toffoli, the paper's Figure 1
        find_optimal(library.SWAP3_UP, (library.SWAP,))
        # -> 2 SWAPs, the paper's Figure 5
    """
    if isinstance(target, Gate):
        target = SynthesisTarget.from_gate(target)
    elif isinstance(target, Permutation):
        target = SynthesisTarget.from_permutation(target)
    elif isinstance(target, Circuit):
        target = SynthesisTarget.from_circuit(target)
    if max_gates < 0:
        raise SynthesisError(f"max_gates must be >= 0, got {max_gates}")
    ops = placed_library(tuple(gate_library), target.n_wires)
    name = f"synth:{target.name}" if target.name else "synth"

    identity = tuple(range(1 << target.n_wires))
    if target.matches(identity):
        return SynthesisResult(
            circuit=Circuit(target.n_wires, name=name), cost=0.0,
            states_explored=0,
        )
    if target.is_fully_specified:
        return _search_bidirectional(target, ops, max_gates, cost_model, name)
    return _search_forward(target, ops, max_gates, cost_model, name)


def _pick_best(
    candidates: list[tuple[int, ...]],
    ops: tuple[PlacedOp, ...],
    n_wires: int,
    cost_model: CostModel,
    name: str,
    states_explored: int,
) -> SynthesisResult:
    best_circuit: Circuit | None = None
    best_key: tuple | None = None
    for sequence in candidates:
        circuit = build_circuit(ops, sequence, n_wires, name)
        key = (cost_model.cost(circuit), sequence)
        if best_key is None or key < best_key:
            best_key, best_circuit = key, circuit
    assert best_circuit is not None and best_key is not None
    return SynthesisResult(
        circuit=best_circuit, cost=best_key[0], states_explored=states_explored
    )


def _no_match(ops: tuple[PlacedOp, ...], max_gates: int, label: str) -> SynthesisError:
    return SynthesisError(
        f"no circuit of <= {max_gates} gates over "
        f"{sorted({op.gate.name for op in ops})} matches target {label}"
    )


def _search_bidirectional(
    target: SynthesisTarget,
    ops: tuple[PlacedOp, ...],
    max_gates: int,
    cost_model: CostModel,
    name: str,
) -> SynthesisResult:
    target_mapping = target.outputs
    empty: Frontier = {tuple(range(len(target_mapping))): ()}
    forward: list[Frontier] = [empty]   # forward[k]: canonical k-gate prefixes
    backward: list[Frontier] = [empty]  # backward[k]: canonical k-gate suffixes
    states = 0
    for depth in range(1, max_gates + 1):
        prefix_depth = (depth + 1) // 2
        suffix_depth = depth - prefix_depth
        while len(forward) <= prefix_depth:
            forward.append(_expand_forward(forward[-1], ops))
            states += len(forward[-1])
        while len(backward) <= suffix_depth:
            backward.append(_expand_backward(backward[-1], ops))
            states += len(backward[-1])
        suffixes = backward[suffix_depth]
        candidates = []
        for mapping, prefix in forward[prefix_depth].items():
            # Need a suffix S with S ∘ F = target, i.e. S = target ∘ F⁻¹.
            needed = tuple(target_mapping[i] for i in _invert(mapping))
            suffix = suffixes.get(needed)  # type: ignore[arg-type]
            if suffix is not None:
                candidates.append(prefix + suffix)
        if candidates:
            return _pick_best(
                candidates, ops, target.n_wires, cost_model, name, states
            )
    raise _no_match(ops, max_gates, target.name or repr(target.outputs))


def _search_forward(
    target: SynthesisTarget,
    ops: tuple[PlacedOp, ...],
    max_gates: int,
    cost_model: CostModel,
    name: str,
) -> SynthesisResult:
    frontier: Frontier = {tuple(range(len(target.outputs))): ()}
    states = 0
    for _ in range(max_gates):
        frontier = _expand_forward(frontier, ops)
        states += len(frontier)
        candidates = [
            sequence
            for mapping, sequence in frontier.items()
            if target.matches(mapping)
        ]
        if candidates:
            return _pick_best(
                candidates, ops, target.n_wires, cost_model, name, states
            )
    raise _no_match(ops, max_gates, target.name or "with don't cares")
